//! The record quarantine sink: rejected raw lines plus structured
//! diagnostics, written as sidecar NDJSON.
//!
//! Under [`ErrorPolicy::Skip`](jsonx_pipeline::ErrorPolicy::Skip) /
//! [`Collect`](jsonx_pipeline::ErrorPolicy::Collect) with
//! [`FaultOptions::keep_rejects`](crate::FaultOptions) set, the
//! [`RunReport`] retains one [`RecordDiagnostic`] — including the raw
//! line — per rejected record. This module serialises them, one JSON
//! object per line, so a dirty corpus splits cleanly into "what the
//! pipeline consumed" and "what it refused, and why":
//!
//! ```json
//! {"line": 7, "offset": 4, "kind": "unexpected-eof", "error": "unexpected end of input at line 1, column 5 (byte 4)", "raw": "{\"a\""}
//! ```
//!
//! `line` is 1-based (matching error messages and editors); `kind` is the
//! stable label of [`ParseErrorKind::label`](jsonx_syntax::ParseErrorKind::label)
//! (plus `"not-a-record"` from the translation stage); `raw` is the
//! rejected line verbatim, or `null` when the run did not retain raw
//! lines.

use jsonx_data::{json, Value};
use jsonx_pipeline::{RecordDiagnostic, RunReport};
use jsonx_syntax::to_string;
use std::io::Write;
use std::path::Path;

/// Serialises one reject as its quarantine diagnostic line.
fn diagnostic_line(diag: &RecordDiagnostic) -> String {
    let raw = match &diag.raw {
        Some(raw) => Value::Str(raw.clone()),
        None => Value::Null,
    };
    to_string(&json!({
        "line": (diag.record as i64 + 1),
        "offset": (diag.offset as i64),
        "kind": diag.kind,
        "error": diag.message.clone(),
        "raw": raw,
    }))
}

/// Writes the report's retained rejects to `out`, one diagnostic JSON
/// object per line, in record order. Returns how many were written.
pub fn write_quarantine<W: Write>(out: &mut W, report: &RunReport) -> std::io::Result<usize> {
    for diag in &report.errors.rejects {
        writeln!(out, "{}", diagnostic_line(diag))?;
    }
    Ok(report.errors.rejects.len())
}

/// Writes the report's retained rejects to the file at `path` (created or
/// truncated). Returns how many diagnostics were written.
pub fn write_quarantine_file(path: &Path, report: &RunReport) -> std::io::Result<usize> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    let n = write_quarantine(&mut file, report)?;
    file.flush()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_pipeline::ErrorSummary;

    fn report_with(rejects: Vec<RecordDiagnostic>) -> RunReport {
        let mut errors = ErrorSummary::new();
        for d in rejects {
            errors.push(d, usize::MAX);
        }
        RunReport {
            records: 10,
            shards: 1,
            errors,
            poisoned: Vec::new(),
            timings: Vec::new(),
        }
    }

    #[test]
    fn diagnostics_round_trip_as_json() {
        let report = report_with(vec![
            RecordDiagnostic {
                record: 6,
                offset: 4,
                kind: "unexpected-eof",
                message: "unexpected end of input".into(),
                raw: Some("{\"a\"".into()),
            },
            RecordDiagnostic {
                record: 9,
                offset: 0,
                kind: "not-a-record",
                message: "not a JSON object".into(),
                raw: None,
            },
        ]);
        let mut buf = Vec::new();
        assert_eq!(write_quarantine(&mut buf, &report).unwrap(), 2);
        let text = String::from_utf8(buf).unwrap();
        let docs = jsonx_syntax::parse_ndjson(&text).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].get("line").unwrap().as_i64(), Some(7));
        assert_eq!(
            docs[0].get("kind").unwrap().as_str(),
            Some("unexpected-eof")
        );
        assert_eq!(docs[0].get("raw").unwrap().as_str(), Some("{\"a\""));
        assert_eq!(docs[1].get("line").unwrap().as_i64(), Some(10));
        assert_eq!(docs[1].get("raw"), Some(&Value::Null));
    }

    #[test]
    fn empty_report_writes_nothing() {
        let mut buf = Vec::new();
        assert_eq!(
            write_quarantine(&mut buf, &report_with(Vec::new())).unwrap(),
            0
        );
        assert!(buf.is_empty());
    }
}
