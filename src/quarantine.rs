//! The record quarantine sink: rejected raw lines plus structured
//! diagnostics, written as sidecar NDJSON.
//!
//! Under [`ErrorPolicy::Skip`](jsonx_pipeline::ErrorPolicy::Skip) /
//! [`Collect`](jsonx_pipeline::ErrorPolicy::Collect) with
//! [`FaultOptions::keep_rejects`](crate::FaultOptions) set, the
//! [`RunReport`] retains one [`RecordDiagnostic`] — including the raw
//! line — per rejected record. This module serialises them, one JSON
//! object per line, so a dirty corpus splits cleanly into "what the
//! pipeline consumed" and "what it refused, and why":
//!
//! ```json
//! {"line": 7, "offset": 4, "kind": "unexpected-eof", "error": "unexpected end of input at line 1, column 5 (byte 4)", "raw": "{\"a\""}
//! ```
//!
//! `line` is 1-based (matching error messages and editors); `kind` is the
//! stable label of [`ParseErrorKind::label`](jsonx_syntax::ParseErrorKind::label)
//! (plus `"not-a-record"` from the translation stage); `raw` is the
//! rejected line verbatim, or `null` when the run did not retain raw
//! lines.

use jsonx_data::{json, Value};
use jsonx_pipeline::{RecordDiagnostic, RunReport};
use jsonx_syntax::to_string;
use std::io::Write;
use std::path::Path;

/// Serialises one reject as its quarantine diagnostic line.
fn diagnostic_line(diag: &RecordDiagnostic) -> String {
    let raw = match &diag.raw {
        Some(raw) => Value::Str(raw.clone()),
        None => Value::Null,
    };
    to_string(&json!({
        "line": (diag.record as i64 + 1),
        "offset": (diag.offset as i64),
        "kind": diag.kind,
        "error": diag.message.clone(),
        "raw": raw,
    }))
}

/// Writes the report's retained rejects to `out`, one diagnostic JSON
/// object per line, in record order. Returns how many were written.
pub fn write_quarantine<W: Write>(out: &mut W, report: &RunReport) -> std::io::Result<usize> {
    for diag in &report.errors.rejects {
        writeln!(out, "{}", diagnostic_line(diag))?;
    }
    Ok(report.errors.rejects.len())
}

/// Writes the report's retained rejects to the file at `path` (created or
/// truncated). Returns how many diagnostics were written.
///
/// The write is crash-safe: diagnostics go to a temporary sibling
/// (`<name>.tmp.<pid>` in the same directory, so the final step stays a
/// same-filesystem rename), are flushed and fsynced, and only then
/// renamed over `path`. A crash mid-run leaves either the previous
/// quarantine file intact or no file — never a truncated NDJSON that a
/// replay tool would silently treat as the complete reject set.
pub fn write_quarantine_file(path: &Path, report: &RunReport) -> std::io::Result<usize> {
    let tmp = sibling_temp_path(path);
    let result = (|| {
        let file = std::fs::File::create(&tmp)?;
        let mut out = std::io::BufWriter::new(file);
        let n = write_quarantine(&mut out, report)?;
        out.flush()?;
        out.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(n)
    })();
    if result.is_err() {
        // Best-effort cleanup; the original error is what matters.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// A temporary path next to `path` (same directory, so `rename` cannot
/// cross filesystems), disambiguated by pid for concurrent runs.
fn sibling_temp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_pipeline::ErrorSummary;

    fn report_with(rejects: Vec<RecordDiagnostic>) -> RunReport {
        let mut errors = ErrorSummary::new();
        for d in rejects {
            errors.push(d, usize::MAX);
        }
        RunReport {
            records: 10,
            shards: 1,
            errors,
            poisoned: Vec::new(),
            timings: Vec::new(),
        }
    }

    #[test]
    fn diagnostics_round_trip_as_json() {
        let report = report_with(vec![
            RecordDiagnostic {
                record: 6,
                offset: 4,
                kind: "unexpected-eof",
                message: "unexpected end of input".into(),
                raw: Some("{\"a\"".into()),
            },
            RecordDiagnostic {
                record: 9,
                offset: 0,
                kind: "not-a-record",
                message: "not a JSON object".into(),
                raw: None,
            },
        ]);
        let mut buf = Vec::new();
        assert_eq!(write_quarantine(&mut buf, &report).unwrap(), 2);
        let text = String::from_utf8(buf).unwrap();
        let docs = jsonx_syntax::parse_ndjson(&text).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].get("line").unwrap().as_i64(), Some(7));
        assert_eq!(
            docs[0].get("kind").unwrap().as_str(),
            Some("unexpected-eof")
        );
        assert_eq!(docs[0].get("raw").unwrap().as_str(), Some("{\"a\""));
        assert_eq!(docs[1].get("line").unwrap().as_i64(), Some(10));
        assert_eq!(docs[1].get("raw"), Some(&Value::Null));
    }

    #[test]
    fn file_write_is_atomic_and_leaves_no_temp_behind() {
        let dir = std::env::temp_dir().join(format!("jsonx-quarantine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rejects.ndjson");
        // Seed a previous run's quarantine file; a failed or interrupted
        // rewrite must never truncate it.
        std::fs::write(&path, "{\"line\": 1}\n").unwrap();
        let report = report_with(vec![RecordDiagnostic {
            record: 2,
            offset: 0,
            kind: "unexpected-eof",
            message: "truncated".into(),
            raw: Some("{".into()),
        }]);
        assert_eq!(write_quarantine_file(&path, &report).unwrap(), 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let docs = jsonx_syntax::parse_ndjson(&text).unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].get("line").unwrap().as_i64(), Some(3));
        // The temp sibling was renamed away, not left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        // A write to an impossible path fails cleanly and does not touch
        // the existing file.
        let bad = dir.join("no-such-dir").join("rejects.ndjson");
        assert!(write_quarantine_file(&bad, &report).is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_report_writes_nothing() {
        let mut buf = Vec::new();
        assert_eq!(
            write_quarantine(&mut buf, &report_with(Vec::new())).unwrap(),
            0
        );
        assert!(buf.is_empty());
    }
}
