//! The fused fast parse path: SWAR structural scanning + projection
//! pushdown for the streaming pipeline.
//!
//! This module glues the pieces the tentpole crates provide into one
//! record driver:
//!
//! * [`jsonx_syntax::structural`] supplies the word-parallel
//!   [`StructuralScanner`], which proves a record well-formed and
//!   extracts the byte spans of the projected root fields without
//!   tokenising the rest;
//! * [`jsonx_schema::CompiledSchema::root_projection`] and
//!   [`jsonx_translate::Shredder::root_fields`] say *which* fields each
//!   consumer actually reads;
//! * the streaming stages in [`crate::streaming`] try
//!   [`FastRecordParser::parse_record`] first and fall back to the full
//!   DOM parser whenever it returns `None` — the Fad.js-style verified
//!   fallback, so verdicts, batches and error reports are identical on
//!   both paths by construction.
//!
//! The assembled document contains only the projected fields (each
//! sub-parsed by the ordinary recursive-descent parser over its exact
//! span), which is precisely what makes skipping profitable: on wide
//! records the driver never materialises the fields nobody reads.

use jsonx_data::{Object, Value};
use jsonx_schema::CompiledSchema;
use jsonx_syntax::structural::{FieldSet, ScanOptions, StructuralScanner};
use jsonx_syntax::{
    parse_with, EventReceiver, ParseError, ParseLimits, ParserOptions, RawEventParser,
    RecordDecoder,
};
use jsonx_translate::Shredder;

/// An immutable projection plan shared by every worker of one streaming
/// run: the projected field set plus the scan limits.
#[derive(Debug, Clone)]
pub(crate) struct FastPlan {
    set: FieldSet,
    opts: ScanOptions,
}

impl FastPlan {
    /// The validation-side plan: project to the fields the compiled
    /// schema's verdict can depend on. `None` when the schema inspects
    /// objects in ways projection cannot preserve — the stage then runs
    /// the slow path for every record.
    pub(crate) fn for_validation(
        schema: &CompiledSchema,
        limits: &ParseLimits,
    ) -> Option<FastPlan> {
        // A string cap must see every literal, but the scanner never
        // parses skipped spans — an oversized string hiding in one would
        // slip through. Decline; the full parser enforces the cap.
        if limits.max_string_bytes.is_some() {
            return None;
        }
        let names = schema.root_projection()?;
        Some(FastPlan {
            set: FieldSet::new(names),
            opts: ScanOptions {
                max_depth: limits.max_depth,
                // The validator addresses root fields by exact name, so a
                // skipped key can never alias a projected one.
                reject_dotted_skipped: false,
            },
        })
    }

    /// The translation-side plan: project to the shred plan's top-level
    /// field names. `None` for non-record layouts and discovering mode.
    pub(crate) fn for_translation(shredder: &Shredder, limits: &ParseLimits) -> Option<FastPlan> {
        // Same reasoning as `for_validation`: a configured string cap
        // requires the full parser's eyes on every literal.
        if limits.max_string_bytes.is_some() {
            return None;
        }
        let names = shredder.root_fields()?;
        Some(FastPlan {
            set: FieldSet::new(names.iter().cloned()),
            opts: ScanOptions {
                max_depth: limits.max_depth,
                // Shred columns are addressed by dotted path: a *skipped*
                // root key containing '.' could alias a nested column, so
                // such records take the full parser.
                reject_dotted_skipped: true,
            },
        })
    }
}

/// Per-worker fast-path state: one reusable scanner. Buffers and
/// speculation hints persist across records, so steady-state scanning of
/// a uniform shard allocates only for the extracted values.
#[derive(Default)]
pub(crate) struct FastRecordParser {
    scanner: StructuralScanner,
}

impl FastRecordParser {
    pub(crate) fn new() -> FastRecordParser {
        FastRecordParser::default()
    }

    /// Attempts the fast path on one record. `Some(doc)` holds the
    /// projected document — only the fields in the plan's set, each
    /// parsed from its exact byte span, duplicates resolved last-wins
    /// like the DOM parser. `None` means the caller must run the full
    /// parser; no claim is made about the record either way.
    pub(crate) fn parse_record(&mut self, line: &[u8], plan: &FastPlan) -> Option<Value> {
        if !self.scanner.scan(line, &plan.set, &plan.opts) {
            return None;
        }
        let popts = ParserOptions {
            max_depth: plan.opts.max_depth,
            allow_trailing: false,
            // Plans are declined whenever a string cap is configured (a
            // skipped span could hide an oversized literal the full
            // parser would reject), so no cap applies here.
            max_string_bytes: None,
        };
        let mut obj = Object::with_capacity(self.scanner.fields().len());
        for field in self.scanner.fields() {
            // Key spans are escape-free by the scan contract; spans of a
            // `&str` line cut at ASCII quotes are valid UTF-8. Defensive:
            // any surprise falls back instead of panicking.
            let key = std::str::from_utf8(&line[field.key.clone()]).ok()?;
            let value = parse_with(&line[field.value.clone()], popts).ok()?;
            obj.insert(key, value);
        }
        Some(Value::Obj(obj))
    }
}

/// The SWAR fast path as a [`RecordDecoder`]: `decode_value` tries
/// [`FastRecordParser::parse_record`] when a plan is present and falls
/// back to the full recursive-descent parser (the Fad.js-style verified
/// fallback), so with `plan: None` it reproduces the historical slow
/// path byte for byte — one decoder covers both. This is how the SWAR
/// scanner slots in behind the same seam every other source uses.
pub(crate) struct FastJsonDecoder {
    plan: Option<FastPlan>,
    limits: ParseLimits,
}

impl FastJsonDecoder {
    pub(crate) fn new(plan: Option<FastPlan>, limits: ParseLimits) -> FastJsonDecoder {
        FastJsonDecoder { plan, limits }
    }

    fn parser_options(&self) -> ParserOptions {
        ParserOptions {
            max_depth: self.limits.max_depth,
            allow_trailing: false,
            max_string_bytes: self.limits.max_string_bytes,
        }
    }
}

impl RecordDecoder for FastJsonDecoder {
    type Scratch = FastRecordParser;

    fn scratch(&self) -> FastRecordParser {
        FastRecordParser::new()
    }

    fn decode_events<R: EventReceiver + ?Sized>(
        &self,
        _scratch: &mut FastRecordParser,
        record: &str,
        recv: &mut R,
    ) -> Result<(), ParseError> {
        // Event consumers read every field, so projection cannot help;
        // stream the full tokenisation under the configured limits.
        let mut parser = RawEventParser::new(record.as_bytes()).with_limits(self.limits);
        while let Some(ev) = parser.next_event()? {
            recv.event(&ev);
        }
        Ok(())
    }

    fn decode_value(
        &self,
        scratch: &mut FastRecordParser,
        record: &str,
    ) -> Result<Value, ParseError> {
        if let Some(plan) = &self.plan {
            if let Some(doc) = scratch.parse_record(record.as_bytes(), plan) {
                return Ok(doc);
            }
        }
        parse_with(record.as_bytes(), self.parser_options())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    fn schema_plan(schema_doc: &Value) -> Option<FastPlan> {
        let schema = CompiledSchema::compile(schema_doc).expect("schema compiles");
        FastPlan::for_validation(&schema, &ParseLimits::default())
    }

    #[test]
    fn validation_plan_from_simple_properties() {
        let plan = schema_plan(&json!({
            "type": "object",
            "properties": {"id": {"type": "integer"}, "name": {"type": "string"}},
            "required": ["id"]
        }))
        .expect("projectable");
        assert_eq!(plan.set.len(), 2);
        assert!(plan.set.contains(b"id"));
        assert!(plan.set.contains(b"name"));
        assert!(!plan.opts.reject_dotted_skipped);
    }

    #[test]
    fn validation_plan_rejects_non_projectable_schemas() {
        // Combinators read the whole document.
        assert!(schema_plan(&json!({"allOf": [{"type": "object"}]})).is_none());
        // additionalProperties with a real schema constrains skipped keys.
        assert!(schema_plan(&json!({
            "type": "object",
            "additionalProperties": {"type": "string"}
        }))
        .is_none());
        // Property-count constraints observe skipped fields.
        assert!(schema_plan(&json!({"type": "object", "minProperties": 2})).is_none());
        // patternProperties matches arbitrary keys.
        assert!(schema_plan(&json!({
            "type": "object",
            "patternProperties": {"^x": {"type": "integer"}}
        }))
        .is_none());
    }

    #[test]
    fn trivial_schemas_project_everything_away() {
        let plan = schema_plan(&json!(true)).expect("Any projects");
        assert!(plan.set.is_empty());
        let plan = schema_plan(&json!({})).expect("empty schema projects");
        assert!(plan.set.is_empty());
    }

    #[test]
    fn parse_record_assembles_projected_doc() {
        let plan = schema_plan(&json!({
            "type": "object",
            "properties": {"id": {"type": "integer"}},
            "required": ["id"]
        }))
        .expect("projectable");
        let mut parser = FastRecordParser::new();
        let line = br#"{"name": "ada", "id": 7, "huge": [1, 2, 3]}"#;
        let doc = parser.parse_record(line, &plan).expect("fast path");
        assert_eq!(doc, json!({"id": 7}));
        // Malformed line: scanner rejects, caller falls back.
        assert!(parser.parse_record(br#"{"id": }"#, &plan).is_none());
        // Duplicate projected keys resolve last-wins like the DOM.
        let doc = parser
            .parse_record(br#"{"id": 1, "id": 2}"#, &plan)
            .expect("fast path");
        assert_eq!(doc, json!({"id": 2}));
    }

    #[test]
    fn translation_plan_uses_root_fields_and_dotted_guard() {
        let ndjson = "{\"id\": 1, \"geo\": {\"lat\": 0.5}}\n{\"id\": 2, \"geo\": {\"lat\": 1.5}}";
        let docs = jsonx_syntax::parse_ndjson(ndjson).unwrap();
        let ty = jsonx_core::infer_collection(&docs, jsonx_core::Equivalence::Kind);
        let shredder = Shredder::from_type(&ty);
        let plan =
            FastPlan::for_translation(&shredder, &ParseLimits::default()).expect("record type");
        assert!(plan.set.contains(b"id"));
        assert!(plan.set.contains(b"geo"));
        assert!(plan.opts.reject_dotted_skipped);
        // Discovering shredders have no fixed projection.
        assert!(
            FastPlan::for_translation(&Shredder::discovering(), &ParseLimits::default()).is_none()
        );
    }
}
