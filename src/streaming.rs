//! Streaming pipeline stages over NDJSON collections: inference,
//! validation, combined infer+validate, and schema-driven translation.
//!
//! Every parallel entry point here is a thin [`ShardFold`] adapter over
//! the generic sharded engine of [`jsonx_pipeline`]: newline-boundary
//! sharding, scoped worker threads, shard-order fusion, first-error-line
//! selection. The stages differ only in their per-worker state and merge:
//!
//! * [`infer_streaming_parallel`] — a [`StreamTyper`] per worker, types
//!   fused with the §4.1 monoid (commutative + associative, `Bottom`
//!   unit), so every worker count reproduces the sequential — and DOM —
//!   result bit for bit.
//! * [`validate_streaming_parallel`] — a compiled fail-fast
//!   [`FastValidator`](jsonx_schema::FastValidator) per worker, per-line
//!   verdict vectors concatenated in shard order.
//! * [`infer_validate_streaming_parallel`] — the combined single pass:
//!   **one tokenisation** per line feeds both the typer and the
//!   validator ([`StreamTyper::type_and_build`] builds the DOM value for
//!   the validator from the same raw-event walk that types the line).
//! * [`translate_streaming_parallel`] — §5's schema-driven translation:
//!   per-shard Arrow-like columnar batches
//!   ([`ShredStream`](jsonx_translate::ShredStream)), concatenated in
//!   shard order into the batch a DOM
//!   [`Shredder::shred`](jsonx_translate::Shredder::shred) would build.
//!
//! The massive-collection setting of §4.1 is exactly where building a
//! [`Value`](jsonx_data::Value) per document hurts: the map step only
//! needs the *types*. [`infer_streaming`] fuses each document's type
//! directly from [`RawEventParser`] events, with memory bounded by
//! document depth rather than document size. Three things keep the
//! per-document allocation budget near zero:
//!
//! - events borrow escape-free keys and strings from the input
//!   ([`RawEvent`]'s `Cow` payloads), so scalar strings never allocate —
//!   typing only needs their *kind*;
//! - field names are interned per [`StreamTyper`]: a repeated key costs an
//!   `Arc` refcount bump instead of a fresh `String`;
//! - the container frame stack is reused across documents, so steady-state
//!   typing of uniform documents performs no stack (re)allocation at all.

use jsonx_core::{fuse, Equivalence, JType};
use jsonx_core::{ArrayType, FieldName, FieldType, RecordType};
use jsonx_data::{Object, Value};
use jsonx_pipeline::{merge_line_results, run_lines, ShardFold};
use jsonx_schema::{CompiledSchema, FastValidator, ValidatorOptions};
use jsonx_syntax::{ParseError, RawEvent, RawEventParser};
use jsonx_translate::{ColumnarBatch, ShredError, ShredStream, Shredder};
use std::collections::HashSet;

/// Options for the byte-sharded streaming stages — the shared
/// [`PipelineOptions`](jsonx_pipeline::PipelineOptions) of
/// `jsonx-pipeline`, kept under this crate's historical name.
pub use jsonx_pipeline::PipelineOptions as StreamingOptions;

/// A reusable event-stream typing engine.
///
/// One `StreamTyper` types many documents in sequence: its frame stack and
/// field-name interner persist across [`type_document`](Self::type_document)
/// calls. Workers in [`infer_streaming_parallel`] each own one.
pub struct StreamTyper {
    equiv: Equivalence,
    stack: Vec<Frame>,
    interner: HashSet<FieldName>,
}

/// Observes the raw event stream alongside typing — the hook that lets
/// [`StreamTyper::type_and_build`] reuse one tokenisation for both the
/// type and the DOM value.
trait EventSink {
    fn event(&mut self, ev: &RawEvent<'_>);
}

/// The pure-typing sink: compiles to nothing.
struct NullSink;

impl EventSink for NullSink {
    #[inline(always)]
    fn event(&mut self, _ev: &RawEvent<'_>) {}
}

/// Rebuilds the document [`Value`] from the event stream, mirroring the
/// DOM parser exactly (insertion order, duplicate keys last-wins in
/// place).
#[derive(Default)]
struct ValueSink {
    stack: Vec<Value>,
    keys: Vec<Option<String>>,
    pending_key: Option<String>,
    result: Option<Value>,
}

impl ValueSink {
    fn attach(&mut self, v: Value) {
        match self.stack.last_mut() {
            Some(Value::Arr(items)) => items.push(v),
            Some(Value::Obj(obj)) => {
                let key = self.pending_key.take().expect("key precedes value");
                obj.insert(key, v);
            }
            _ => self.result = Some(v),
        }
    }
}

impl EventSink for ValueSink {
    fn event(&mut self, ev: &RawEvent<'_>) {
        match ev {
            RawEvent::StartObject => {
                self.keys.push(self.pending_key.take());
                self.stack.push(Value::Obj(Object::new()));
            }
            RawEvent::StartArray => {
                self.keys.push(self.pending_key.take());
                self.stack.push(Value::Arr(Vec::new()));
            }
            RawEvent::EndObject | RawEvent::EndArray => {
                let v = self.stack.pop().expect("balanced events");
                self.pending_key = self.keys.pop().expect("balanced events");
                self.attach(v);
            }
            RawEvent::Key(k) => self.pending_key = Some(k.as_ref().to_owned()),
            RawEvent::Null => self.attach(Value::Null),
            RawEvent::Bool(b) => self.attach(Value::Bool(*b)),
            RawEvent::Num(n) => self.attach(Value::Num(*n)),
            RawEvent::Str(s) => self.attach(Value::Str(s.as_ref().to_owned())),
        }
    }
}

impl StreamTyper {
    /// Creates a typer for the given equivalence.
    pub fn new(equiv: Equivalence) -> Self {
        StreamTyper {
            equiv,
            stack: Vec::new(),
            interner: HashSet::new(),
        }
    }

    /// Returns the interned name for `key`, allocating only on first sight.
    fn intern(&mut self, key: &str) -> FieldName {
        match self.interner.get(key) {
            Some(name) => name.clone(),
            None => {
                let name = FieldName::from(key);
                self.interner.insert(name.clone());
                name
            }
        }
    }

    /// Types one document from its event stream without building a DOM.
    pub fn type_document(&mut self, input: &[u8]) -> Result<JType, ParseError> {
        self.drive(input, &mut NullSink)
    }

    /// Types one document **and** rebuilds its [`Value`] from the same
    /// event walk — one tokenisation feeding two consumers. The built
    /// value is identical to [`jsonx_syntax::parse`] on the same bytes,
    /// which is what lets the combined infer+validate pass probe the
    /// compiled validator without re-parsing.
    pub fn type_and_build(&mut self, input: &[u8]) -> Result<(JType, Value), ParseError> {
        let mut sink = ValueSink::default();
        let ty = self.drive(input, &mut sink)?;
        Ok((ty, sink.result.unwrap_or(Value::Null)))
    }

    /// The event loop shared by [`type_document`](Self::type_document) and
    /// [`type_and_build`](Self::type_and_build); `NullSink` monomorphises
    /// back to the pure typing loop.
    fn drive<S: EventSink>(&mut self, input: &[u8], sink: &mut S) -> Result<JType, ParseError> {
        let mut parser = RawEventParser::new(input);
        self.stack.clear();
        let mut result: Option<JType> = None;

        let outcome = loop {
            let event = match parser.next_event() {
                Ok(Some(ev)) => ev,
                Ok(None) => break Ok(()),
                Err(e) => break Err(e),
            };
            sink.event(&event);
            match event {
                RawEvent::StartObject => self.stack.push(Frame::Record {
                    fields: Vec::new(),
                    pending_key: None,
                }),
                RawEvent::StartArray => self.stack.push(Frame::Array {
                    item: JType::Bottom,
                    len: 0,
                }),
                RawEvent::EndObject | RawEvent::EndArray => {
                    let frame = self.stack.pop().expect("balanced events");
                    let ty = frame.finish();
                    self.attach(&mut result, ty);
                }
                RawEvent::Key(k) => {
                    let name = self.intern(&k);
                    if let Some(Frame::Record { pending_key, .. }) = self.stack.last_mut() {
                        *pending_key = Some(name);
                    }
                }
                RawEvent::Null => self.attach(&mut result, JType::Null { count: 1 }),
                RawEvent::Bool(_) => self.attach(&mut result, JType::Bool { count: 1 }),
                RawEvent::Num(n) if n.is_integer() => {
                    self.attach(&mut result, JType::Int { count: 1 })
                }
                RawEvent::Num(_) => self.attach(&mut result, JType::Float { count: 1 }),
                RawEvent::Str(_) => self.attach(&mut result, JType::Str { count: 1 }),
            }
        };
        if let Err(e) = outcome {
            // Leave the typer reusable after malformed input.
            self.stack.clear();
            return Err(e);
        }
        Ok(result.unwrap_or(JType::Bottom))
    }

    fn attach(&mut self, result: &mut Option<JType>, ty: JType) {
        match self.stack.last_mut() {
            Some(Frame::Record {
                fields,
                pending_key,
            }) => {
                let key = pending_key.take().expect("key precedes value");
                // Duplicate keys resolve in `Frame::finish` (last wins);
                // appending here keeps attachment O(1) per field.
                fields.push((key, FieldType { ty, presence: 1 }));
            }
            Some(Frame::Array { item, len }) => {
                let current = std::mem::replace(item, JType::Bottom);
                *item = fuse(current, ty, self.equiv);
                *len += 1;
            }
            None => *result = Some(ty),
        }
    }
}

enum Frame {
    Record {
        fields: Vec<(FieldName, FieldType)>,
        pending_key: Option<FieldName>,
    },
    Array {
        item: JType,
        len: u64,
    },
}

impl Frame {
    fn finish(self) -> JType {
        match self {
            Frame::Record { mut fields, .. } => {
                // Sort is stable, so among equal names insertion order
                // survives; dedup then keeps the *last* occurrence —
                // mirroring the DOM parser — in one linear pass (the old
                // per-key `retain` was quadratic in the duplicate case).
                fields.sort_by(|(a, _), (b, _)| a.cmp(b));
                fields.dedup_by(|next, prev| {
                    if next.0 == prev.0 {
                        std::mem::swap(next, prev);
                        true
                    } else {
                        false
                    }
                });
                JType::Record(RecordType { fields, count: 1 })
            }
            Frame::Array { item, len } => JType::Array(ArrayType {
                item: Box::new(item),
                count: 1,
                total_items: len,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Inference stage
// ---------------------------------------------------------------------------

/// The inference stage: one [`StreamTyper`] per worker, first-error-line
/// selection across shards.
struct InferFold {
    equiv: Equivalence,
}

struct InferState {
    typer: StreamTyper,
    acc: Result<JType, (usize, ParseError)>,
}

impl ShardFold<str> for InferFold {
    type State = InferState;
    type Out = Result<JType, (usize, ParseError)>;

    fn init(&self) -> InferState {
        InferState {
            typer: StreamTyper::new(self.equiv),
            acc: Ok(JType::Bottom),
        }
    }

    fn feed(&self, state: &mut InferState, line: &str, line_no: usize) {
        let Ok(acc) = &mut state.acc else { return };
        if line.trim().is_empty() {
            return;
        }
        match state.typer.type_document(line.as_bytes()) {
            Ok(ty) => {
                let current = std::mem::replace(acc, JType::Bottom);
                *acc = fuse(current, ty, self.equiv);
            }
            Err(e) => state.acc = Err((line_no, e)),
        }
    }

    fn finish(&self, state: InferState) -> Self::Out {
        state.acc
    }

    fn merge(&self, left: Self::Out, right: Self::Out) -> Self::Out {
        merge_line_results(left, right, |a, b| fuse(a, b, self.equiv))
    }
}

/// Infers the collection type of NDJSON text without building DOMs.
///
/// Equivalent to parsing every line and running
/// [`infer_collection`](jsonx_core::infer_collection) — property-tested in
/// `tests/streaming_inference.rs` — but allocation stays proportional to
/// nesting depth. Errors carry the zero-based line index.
pub fn infer_streaming(ndjson: &str, equiv: Equivalence) -> Result<JType, (usize, ParseError)> {
    run_lines(
        ndjson,
        &InferFold { equiv },
        StreamingOptions::with_workers(1),
    )
}

/// Types one document from its event stream.
pub fn infer_document_events(input: &[u8], equiv: Equivalence) -> Result<JType, ParseError> {
    StreamTyper::new(equiv).type_document(input)
}

/// Infers the collection type of NDJSON text on parallel workers.
///
/// The input is split into contiguous byte-range shards snapped to newline
/// boundaries; each scoped worker types its shard with a private
/// [`StreamTyper`], and the per-shard types are fused in shard order.
/// Because fusion is commutative and associative with `Bottom` as unit,
/// the result is identical to [`infer_streaming`] — and to the DOM path —
/// for every worker count. On malformed input the reported line index
/// matches the sequential path (the first bad line).
pub fn infer_streaming_parallel(
    ndjson: &str,
    equiv: Equivalence,
    opts: StreamingOptions,
) -> Result<JType, (usize, ParseError)> {
    run_lines(ndjson, &InferFold { equiv }, opts)
}

// ---------------------------------------------------------------------------
// Validation stage
// ---------------------------------------------------------------------------

/// Per-line outcome of streaming NDJSON validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineVerdict {
    /// The line parsed and satisfies the schema.
    Valid,
    /// The line parsed but violates the schema.
    Invalid,
    /// The line is not well-formed JSON.
    Malformed(ParseError),
}

impl LineVerdict {
    /// True only for [`LineVerdict::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, LineVerdict::Valid)
    }
}

/// The validation stage: one fail-fast [`FastValidator`] per worker,
/// verdict vectors concatenated in shard order.
struct ValidateFold<'s> {
    schema: &'s CompiledSchema,
    options: ValidatorOptions,
}

struct ValidateState<'s> {
    validator: FastValidator<'s>,
    verdicts: Vec<(usize, LineVerdict)>,
}

impl<'s> ShardFold<str> for ValidateFold<'s> {
    type State = ValidateState<'s>;
    type Out = Vec<(usize, LineVerdict)>;

    fn init(&self) -> ValidateState<'s> {
        ValidateState {
            validator: self.schema.fast_validator_with(self.options),
            verdicts: Vec::new(),
        }
    }

    fn feed(&self, state: &mut ValidateState<'s>, line: &str, line_no: usize) {
        if line.trim().is_empty() {
            return;
        }
        let verdict = match jsonx_syntax::parse(line) {
            Ok(doc) => {
                if state.validator.is_valid(&doc) {
                    LineVerdict::Valid
                } else {
                    LineVerdict::Invalid
                }
            }
            Err(e) => LineVerdict::Malformed(e),
        };
        state.verdicts.push((line_no, verdict));
    }

    fn finish(&self, state: ValidateState<'s>) -> Self::Out {
        state.verdicts
    }

    fn merge(&self, mut left: Self::Out, right: Self::Out) -> Self::Out {
        left.extend(right);
        left
    }
}

/// Validates an NDJSON collection line by line on the fail-fast path.
///
/// Each non-blank line is parsed and probed with the compiled validation IR
/// (the allocation-free boolean path behind
/// [`CompiledSchema::is_valid`]); verdicts are **identical** to running the
/// error-collecting interpreter per document — property-tested in
/// `tests/streaming_validation.rs` — so callers wanting diagnostics can
/// re-run [`CompiledSchema::validate`] on just the invalid lines.
pub fn validate_streaming(
    ndjson: &str,
    schema: &CompiledSchema,
    options: ValidatorOptions,
) -> Vec<(usize, LineVerdict)> {
    run_lines(
        ndjson,
        &ValidateFold { schema, options },
        StreamingOptions::with_workers(1),
    )
}

/// Validates an NDJSON collection on parallel workers.
///
/// Reuses the newline-boundary sharding of
/// [`infer_streaming_parallel`]: the input splits into contiguous shards
/// snapped to newline boundaries, each scoped worker owns one fail-fast
/// validator for its shard, and the per-shard verdict vectors concatenate
/// in shard order — so the result is *positionally identical* to
/// [`validate_streaming`] for every worker count. Small inputs (or
/// `workers == 1`) fall back to the sequential path.
pub fn validate_streaming_parallel(
    ndjson: &str,
    schema: &CompiledSchema,
    options: ValidatorOptions,
    opts: StreamingOptions,
) -> Vec<(usize, LineVerdict)> {
    run_lines(ndjson, &ValidateFold { schema, options }, opts)
}

// ---------------------------------------------------------------------------
// Combined infer + validate stage (single pass)
// ---------------------------------------------------------------------------

/// Result of the combined single-pass infer + validate stage.
#[derive(Debug, Clone)]
pub struct InferValidateOutcome {
    /// The collection type — identical to what [`infer_streaming`] returns
    /// on the same input.
    pub ty: Result<JType, (usize, ParseError)>,
    /// Per-line verdicts in input order — `is_valid`-identical to
    /// [`validate_streaming`] on the same input.
    pub verdicts: Vec<(usize, LineVerdict)>,
}

/// The combined stage: one tokenisation per line feeds both the typer and
/// the compiled validator.
struct InferValidateFold<'s> {
    equiv: Equivalence,
    schema: &'s CompiledSchema,
    options: ValidatorOptions,
}

struct InferValidateState<'s> {
    typer: StreamTyper,
    validator: FastValidator<'s>,
    acc: Result<JType, (usize, ParseError)>,
    verdicts: Vec<(usize, LineVerdict)>,
}

impl<'s> ShardFold<str> for InferValidateFold<'s> {
    type State = InferValidateState<'s>;
    type Out = InferValidateOutcome;

    fn init(&self) -> InferValidateState<'s> {
        InferValidateState {
            typer: StreamTyper::new(self.equiv),
            validator: self.schema.fast_validator_with(self.options),
            acc: Ok(JType::Bottom),
            verdicts: Vec::new(),
        }
    }

    fn feed(&self, state: &mut InferValidateState<'s>, line: &str, line_no: usize) {
        if line.trim().is_empty() {
            return;
        }
        match state.typer.type_and_build(line.as_bytes()) {
            Ok((ty, doc)) => {
                if let Ok(acc) = &mut state.acc {
                    let current = std::mem::replace(acc, JType::Bottom);
                    *acc = fuse(current, ty, self.equiv);
                }
                let verdict = if state.validator.is_valid(&doc) {
                    LineVerdict::Valid
                } else {
                    LineVerdict::Invalid
                };
                state.verdicts.push((line_no, verdict));
            }
            Err(e) => {
                if state.acc.is_ok() {
                    state.acc = Err((line_no, e.clone()));
                }
                state.verdicts.push((line_no, LineVerdict::Malformed(e)));
            }
        }
    }

    fn finish(&self, state: InferValidateState<'s>) -> InferValidateOutcome {
        InferValidateOutcome {
            ty: state.acc,
            verdicts: state.verdicts,
        }
    }

    fn merge(&self, left: InferValidateOutcome, right: InferValidateOutcome) -> Self::Out {
        let mut verdicts = left.verdicts;
        verdicts.extend(right.verdicts);
        InferValidateOutcome {
            ty: merge_line_results(left.ty, right.ty, |a, b| fuse(a, b, self.equiv)),
            verdicts,
        }
    }
}

/// Infers **and** validates an NDJSON collection in one sequential pass.
///
/// Each non-blank line is tokenised once
/// ([`StreamTyper::type_and_build`]): the raw-event walk types the line
/// for the fusion fold while rebuilding the document value for the
/// compiled fail-fast validator. The outcome's type equals
/// [`infer_streaming`] and its verdicts equal [`validate_streaming`] on
/// the same input — pinned by `tests/pipeline_equivalence.rs` — for half the
/// tokenisation work of running the two passes back to back.
pub fn infer_validate_streaming(
    ndjson: &str,
    equiv: Equivalence,
    schema: &CompiledSchema,
    options: ValidatorOptions,
) -> InferValidateOutcome {
    run_lines(
        ndjson,
        &InferValidateFold {
            equiv,
            schema,
            options,
        },
        StreamingOptions::with_workers(1),
    )
}

/// The combined single-pass stage on parallel workers: sharding and merge
/// semantics of [`infer_streaming_parallel`] and
/// [`validate_streaming_parallel`] at once, in one pass over the bytes.
pub fn infer_validate_streaming_parallel(
    ndjson: &str,
    equiv: Equivalence,
    schema: &CompiledSchema,
    options: ValidatorOptions,
    opts: StreamingOptions,
) -> InferValidateOutcome {
    run_lines(
        ndjson,
        &InferValidateFold {
            equiv,
            schema,
            options,
        },
        opts,
    )
}

// ---------------------------------------------------------------------------
// Schema-driven translation stage (§5)
// ---------------------------------------------------------------------------

/// Per-line failure of the streaming translation stage.
#[derive(Debug, Clone, PartialEq)]
pub enum TranslateLineError {
    /// The line is not well-formed JSON.
    Malformed(ParseError),
    /// The line parsed but is not a JSON object (columnar batches shred
    /// records only — the streaming face of
    /// [`ShredError::NotARecord`]).
    NotARecord,
}

impl std::fmt::Display for TranslateLineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateLineError::Malformed(e) => write!(f, "{e}"),
            TranslateLineError::NotARecord => write!(f, "not a JSON object"),
        }
    }
}

/// The translation stage: one [`ShredStream`] per worker over a shared
/// fixed layout, per-shard batches concatenated in shard order.
struct TranslateFold<'t> {
    shredder: &'t Shredder,
}

struct TranslateState<'t> {
    stream: ShredStream<'t>,
    err: Option<(usize, TranslateLineError)>,
}

impl<'t> ShardFold<str> for TranslateFold<'t> {
    type State = TranslateState<'t>;
    type Out = Result<ColumnarBatch, (usize, TranslateLineError)>;

    fn init(&self) -> TranslateState<'t> {
        TranslateState {
            stream: self.shredder.stream(),
            err: None,
        }
    }

    fn feed(&self, state: &mut TranslateState<'t>, line: &str, line_no: usize) {
        if state.err.is_some() || line.trim().is_empty() {
            return;
        }
        match jsonx_syntax::parse(line) {
            Ok(doc) => {
                if let Err(ShredError::NotARecord { .. }) = state.stream.push(&doc) {
                    state.err = Some((line_no, TranslateLineError::NotARecord));
                }
            }
            Err(e) => state.err = Some((line_no, TranslateLineError::Malformed(e))),
        }
    }

    fn finish(&self, state: TranslateState<'t>) -> Self::Out {
        match state.err {
            Some(e) => Err(e),
            None => Ok(state.stream.finish()),
        }
    }

    fn merge(&self, left: Self::Out, right: Self::Out) -> Self::Out {
        merge_line_results(left, right, |mut a, b| {
            a.append(b);
            a
        })
    }
}

/// Translates an NDJSON collection into one columnar batch, sequentially.
///
/// Schema-driven (§5): `shredder` must carry a fixed layout
/// ([`Shredder::from_type`], typically over a type inferred by
/// [`infer_streaming`]). The batch is identical to parsing every line and
/// shredding the whole collection with
/// [`Shredder::shred`](jsonx_translate::Shredder::shred) — property-tested
/// in `tests/pipeline_equivalence.rs`. Errors carry the zero-based line index
/// of the first offending line.
pub fn translate_streaming(
    ndjson: &str,
    shredder: &Shredder,
) -> Result<ColumnarBatch, (usize, TranslateLineError)> {
    run_lines(
        ndjson,
        &TranslateFold { shredder },
        StreamingOptions::with_workers(1),
    )
}

/// Streaming schema-driven translation on parallel workers.
///
/// Each scoped worker shreds its newline-bounded shard into a private
/// [`ShredStream`] over the shared layout; per-shard batches concatenate
/// in shard order, so the batch is row-identical to [`translate_streaming`]
/// — and to the DOM path — at every worker count.
pub fn translate_streaming_parallel(
    ndjson: &str,
    shredder: &Shredder,
    opts: StreamingOptions,
) -> Result<ColumnarBatch, (usize, TranslateLineError)> {
    run_lines(ndjson, &TranslateFold { shredder }, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_core::infer_collection;
    use jsonx_data::json;
    use jsonx_syntax::parse_ndjson;

    #[test]
    fn matches_dom_inference_on_mixed_documents() {
        let ndjson = r#"
{"id": 1, "tags": ["a", 2], "geo": null}
{"id": "x", "geo": {"lat": 1.5}, "tags": []}
{"dup": 1, "dup": "last-wins"}
42
[1, {"k": true}]
"#;
        let docs = parse_ndjson(ndjson).unwrap();
        for equiv in [Equivalence::Kind, Equivalence::Label] {
            let dom = infer_collection(&docs, equiv);
            let streamed = infer_streaming(ndjson, equiv).unwrap();
            assert_eq!(streamed, dom, "equiv {equiv:?}");
        }
    }

    #[test]
    fn duplicate_keys_last_wins_like_dom() {
        let doc = br#"{"a": 1, "b": true, "a": "s", "a": null}"#;
        let streamed = infer_document_events(doc, Equivalence::Kind).unwrap();
        let dom = jsonx_syntax::parse(std::str::from_utf8(doc).unwrap()).unwrap();
        assert_eq!(streamed, jsonx_core::infer_value(&dom, Equivalence::Kind));
        match streamed {
            JType::Record(rt) => {
                assert_eq!(rt.fields.len(), 2);
                assert!(matches!(rt.field("a").unwrap().ty, JType::Null { .. }));
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn type_and_build_rebuilds_the_dom_value() {
        let mut typer = StreamTyper::new(Equivalence::Kind);
        for doc in [
            r#"{"a": 1, "b": [true, null, {"c": "x\ny"}], "geo": {"lat": 1.5}}"#,
            r#"{"dup": 1, "dup": "last-wins", "keep": 0}"#,
            r#"[[], {}, [1, "s"]]"#,
            "42",
            "\"plain\"",
            "null",
        ] {
            let (ty, built) = typer.type_and_build(doc.as_bytes()).unwrap();
            let dom = jsonx_syntax::parse(doc).unwrap();
            assert_eq!(built, dom, "doc {doc}");
            assert_eq!(ty, jsonx_core::infer_value(&dom, Equivalence::Kind));
        }
    }

    #[test]
    fn reports_line_of_malformed_document() {
        let err = infer_streaming("{\"a\":1}\n{bad\n", Equivalence::Kind).unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn empty_input_is_bottom() {
        assert_eq!(
            infer_streaming("", Equivalence::Kind).unwrap(),
            JType::Bottom
        );
    }

    #[test]
    fn typer_is_reusable_after_error() {
        let mut typer = StreamTyper::new(Equivalence::Kind);
        assert!(typer.type_document(b"{broken").is_err());
        let ty = typer.type_document(br#"{"ok": 1}"#).unwrap();
        assert!(matches!(ty, JType::Record(_)));
    }

    fn corpus_ndjson(n: usize) -> String {
        let mut out = String::new();
        for i in 0..n {
            match i % 4 {
                0 => out.push_str(&format!("{{\"id\": {i}, \"name\": \"a\"}}\n")),
                1 => out.push_str(&format!("{{\"id\": {i}}}\n")),
                2 => out.push_str(&format!("{{\"id\": \"s{i}\", \"tags\": [1, \"x\"]}}\n")),
                _ => out.push_str(&format!(
                    "{{\"geo\": {{\"lat\": 1.5, \"lon\": -0.5}}, \"id\": {i}}}\n"
                )),
            }
        }
        out
    }

    #[test]
    fn parallel_equals_sequential_and_dom() {
        let ndjson = corpus_ndjson(3_000);
        let docs = parse_ndjson(&ndjson).unwrap();
        for equiv in [Equivalence::Kind, Equivalence::Label] {
            let dom = infer_collection(&docs, equiv);
            let seq = infer_streaming(&ndjson, equiv).unwrap();
            assert_eq!(seq, dom);
            for workers in [1, 2, 3, 8] {
                let par = infer_streaming_parallel(
                    &ndjson,
                    equiv,
                    StreamingOptions {
                        workers,
                        min_shard_bytes: 256,
                    },
                )
                .unwrap();
                assert_eq!(par, dom, "workers={workers} equiv={equiv:?}");
            }
        }
    }

    #[test]
    fn parallel_reports_first_error_line() {
        let base = corpus_ndjson(500);
        let total = base.lines().count();
        // Corrupt two lines, one early and one late; the early one must win
        // regardless of which shard fails first.
        let mut corrupted: Vec<String> = base.lines().map(str::to_string).collect();
        corrupted[40] = "{oops".to_string();
        corrupted[total - 10] = "[1,".to_string();
        let mut ndjson = corrupted.join("\n");
        ndjson.push('\n');
        let seq_err = infer_streaming(&ndjson, Equivalence::Kind).unwrap_err();
        let par_err = infer_streaming_parallel(
            &ndjson,
            Equivalence::Kind,
            StreamingOptions {
                workers: 4,
                min_shard_bytes: 64,
            },
        )
        .unwrap_err();
        assert_eq!(seq_err.0, 40);
        assert_eq!(par_err.0, seq_err.0);
        assert_eq!(par_err.1.kind, seq_err.1.kind);
    }

    #[test]
    fn small_inputs_fall_back_to_sequential() {
        let ndjson = corpus_ndjson(10);
        let par = infer_streaming_parallel(&ndjson, Equivalence::Kind, StreamingOptions::default())
            .unwrap();
        assert_eq!(par, infer_streaming(&ndjson, Equivalence::Kind).unwrap());
    }

    #[test]
    fn combined_pass_matches_two_passes() {
        let schema_doc = json!({
            "type": "object",
            "properties": {"id": {"type": "integer"}},
            "required": ["id"]
        });
        let schema = CompiledSchema::compile(&schema_doc).unwrap();
        let vopts = ValidatorOptions::default();
        let ndjson = corpus_ndjson(600);
        let ty = infer_streaming(&ndjson, Equivalence::Kind).unwrap();
        let verdicts = validate_streaming(&ndjson, &schema, vopts);
        for workers in [1, 2, 3, 8] {
            let combined = infer_validate_streaming_parallel(
                &ndjson,
                Equivalence::Kind,
                &schema,
                vopts,
                StreamingOptions {
                    workers,
                    min_shard_bytes: 128,
                },
            );
            assert_eq!(combined.ty.as_ref().unwrap(), &ty, "workers={workers}");
            assert_eq!(combined.verdicts, verdicts, "workers={workers}");
        }
    }

    #[test]
    fn combined_pass_reports_first_error_and_malformed_verdicts() {
        let schema = CompiledSchema::compile(&json!({"type": "object"})).unwrap();
        let ndjson = "{\"a\": 1}\n{bad\nnot json\n{\"b\": 2}\n";
        let outcome = infer_validate_streaming(
            ndjson,
            Equivalence::Kind,
            &schema,
            ValidatorOptions::default(),
        );
        assert_eq!(outcome.ty.unwrap_err().0, 1);
        assert_eq!(outcome.verdicts.len(), 4);
        assert!(outcome.verdicts[0].1.is_valid());
        assert!(matches!(outcome.verdicts[1].1, LineVerdict::Malformed(_)));
        assert!(matches!(outcome.verdicts[2].1, LineVerdict::Malformed(_)));
        assert!(outcome.verdicts[3].1.is_valid());
    }

    #[test]
    fn streaming_translation_matches_dom_shred() {
        let ndjson = corpus_ndjson(500);
        let docs = parse_ndjson(&ndjson).unwrap();
        let ty = infer_collection(&docs, Equivalence::Kind);
        let shredder = Shredder::from_type(&ty);
        let dom = shredder.clone().shred(&docs).unwrap();
        for workers in [1, 2, 3, 8] {
            let streamed = translate_streaming_parallel(
                &ndjson,
                &shredder,
                StreamingOptions {
                    workers,
                    min_shard_bytes: 128,
                },
            )
            .unwrap();
            assert_eq!(streamed, dom, "workers={workers}");
        }
    }

    #[test]
    fn streaming_translation_reports_first_bad_line() {
        let mut lines: Vec<String> = corpus_ndjson(200).lines().map(str::to_string).collect();
        lines[150] = "{oops".into();
        lines[20] = "[1, 2]".into(); // well-formed but not a record
        let ndjson = lines.join("\n") + "\n";
        let docs_ty = infer_collection(
            &parse_ndjson(&corpus_ndjson(10)).unwrap(),
            Equivalence::Kind,
        );
        let shredder = Shredder::from_type(&docs_ty);
        for workers in [1, 4] {
            let err = translate_streaming_parallel(
                &ndjson,
                &shredder,
                StreamingOptions {
                    workers,
                    min_shard_bytes: 64,
                },
            )
            .unwrap_err();
            assert_eq!(
                err,
                (20, TranslateLineError::NotARecord),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn interner_shares_repeated_keys() {
        let mut typer = StreamTyper::new(Equivalence::Kind);
        let a = typer.type_document(br#"{"hot": 1}"#).unwrap();
        let b = typer.type_document(br#"{"hot": 2}"#).unwrap();
        let (JType::Record(ra), JType::Record(rb)) = (a, b) else {
            panic!("expected records");
        };
        assert!(FieldName::ptr_eq(&ra.fields[0].0, &rb.fields[0].0));
    }
}
