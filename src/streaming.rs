//! Streaming schema inference and validation over NDJSON collections.
//!
//! Inference types documents straight off the event stream, without
//! materialising a DOM; validation ([`validate_streaming`],
//! [`validate_streaming_parallel`]) runs the compiled fail-fast probe
//! per line, sharing the newline-boundary sharding machinery.
//!
//! The massive-collection setting of §4.1 is exactly where building a
//! [`Value`](jsonx_data::Value) per document hurts: the map step only
//! needs the *types*. [`infer_streaming`] fuses each document's type
//! directly from [`RawEventParser`] events, with memory bounded by
//! document depth rather than document size, and
//! [`infer_streaming_parallel`] shards NDJSON input at newline boundaries
//! across scoped worker threads.
//!
//! Three things keep the per-document allocation budget near zero:
//!
//! - events borrow escape-free keys and strings from the input
//!   ([`RawEvent`]'s `Cow` payloads), so scalar strings never allocate —
//!   typing only needs their *kind*;
//! - field names are interned per [`StreamTyper`]: a repeated key costs an
//!   `Arc` refcount bump instead of a fresh `String`;
//! - the container frame stack is reused across documents, so steady-state
//!   typing of uniform documents performs no stack (re)allocation at all.

use jsonx_core::{fuse, Equivalence, JType};
use jsonx_core::{ArrayType, FieldName, FieldType, RecordType};
use jsonx_schema::{CompiledSchema, ValidatorOptions};
use jsonx_syntax::{ParseError, RawEvent, RawEventParser};
use std::collections::HashSet;

/// Options for [`infer_streaming_parallel`].
#[derive(Debug, Clone, Copy)]
pub struct StreamingOptions {
    /// Number of worker threads (0 = number of available CPUs).
    pub workers: usize,
    /// Minimum shard size in bytes; smaller inputs run sequentially.
    pub min_shard_bytes: usize,
}

impl Default for StreamingOptions {
    fn default() -> Self {
        StreamingOptions {
            workers: 0,
            min_shard_bytes: 64 * 1024,
        }
    }
}

impl StreamingOptions {
    /// A fixed worker count (used by the E14 bench and the CLI).
    pub fn with_workers(workers: usize) -> Self {
        StreamingOptions {
            workers,
            ..Default::default()
        }
    }

    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// A reusable event-stream typing engine.
///
/// One `StreamTyper` types many documents in sequence: its frame stack and
/// field-name interner persist across [`type_document`](Self::type_document)
/// calls. Workers in [`infer_streaming_parallel`] each own one.
pub struct StreamTyper {
    equiv: Equivalence,
    stack: Vec<Frame>,
    interner: HashSet<FieldName>,
}

impl StreamTyper {
    /// Creates a typer for the given equivalence.
    pub fn new(equiv: Equivalence) -> Self {
        StreamTyper {
            equiv,
            stack: Vec::new(),
            interner: HashSet::new(),
        }
    }

    /// Returns the interned name for `key`, allocating only on first sight.
    fn intern(&mut self, key: &str) -> FieldName {
        match self.interner.get(key) {
            Some(name) => name.clone(),
            None => {
                let name = FieldName::from(key);
                self.interner.insert(name.clone());
                name
            }
        }
    }

    /// Types one document from its event stream without building a DOM.
    pub fn type_document(&mut self, input: &[u8]) -> Result<JType, ParseError> {
        let mut parser = RawEventParser::new(input);
        self.stack.clear();
        let mut result: Option<JType> = None;

        let outcome = loop {
            let event = match parser.next_event() {
                Ok(Some(ev)) => ev,
                Ok(None) => break Ok(()),
                Err(e) => break Err(e),
            };
            match event {
                RawEvent::StartObject => self.stack.push(Frame::Record {
                    fields: Vec::new(),
                    pending_key: None,
                }),
                RawEvent::StartArray => self.stack.push(Frame::Array {
                    item: JType::Bottom,
                    len: 0,
                }),
                RawEvent::EndObject | RawEvent::EndArray => {
                    let frame = self.stack.pop().expect("balanced events");
                    let ty = frame.finish();
                    self.attach(&mut result, ty);
                }
                RawEvent::Key(k) => {
                    let name = self.intern(&k);
                    if let Some(Frame::Record { pending_key, .. }) = self.stack.last_mut() {
                        *pending_key = Some(name);
                    }
                }
                RawEvent::Null => self.attach(&mut result, JType::Null { count: 1 }),
                RawEvent::Bool(_) => self.attach(&mut result, JType::Bool { count: 1 }),
                RawEvent::Num(n) if n.is_integer() => {
                    self.attach(&mut result, JType::Int { count: 1 })
                }
                RawEvent::Num(_) => self.attach(&mut result, JType::Float { count: 1 }),
                RawEvent::Str(_) => self.attach(&mut result, JType::Str { count: 1 }),
            }
        };
        if let Err(e) = outcome {
            // Leave the typer reusable after malformed input.
            self.stack.clear();
            return Err(e);
        }
        Ok(result.unwrap_or(JType::Bottom))
    }

    /// Types every non-blank line of `ndjson` and fuses the results. Errors
    /// carry the zero-based line index, offset by `first_line`.
    fn type_lines(
        &mut self,
        ndjson: &str,
        first_line: usize,
    ) -> Result<JType, (usize, ParseError)> {
        let mut acc = JType::Bottom;
        for (idx, line) in ndjson.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let ty = self
                .type_document(line.as_bytes())
                .map_err(|e| (first_line + idx, e))?;
            acc = fuse(acc, ty, self.equiv);
        }
        Ok(acc)
    }

    fn attach(&mut self, result: &mut Option<JType>, ty: JType) {
        match self.stack.last_mut() {
            Some(Frame::Record {
                fields,
                pending_key,
            }) => {
                let key = pending_key.take().expect("key precedes value");
                // Duplicate keys resolve in `Frame::finish` (last wins);
                // appending here keeps attachment O(1) per field.
                fields.push((key, FieldType { ty, presence: 1 }));
            }
            Some(Frame::Array { item, len }) => {
                let current = std::mem::replace(item, JType::Bottom);
                *item = fuse(current, ty, self.equiv);
                *len += 1;
            }
            None => *result = Some(ty),
        }
    }
}

enum Frame {
    Record {
        fields: Vec<(FieldName, FieldType)>,
        pending_key: Option<FieldName>,
    },
    Array {
        item: JType,
        len: u64,
    },
}

impl Frame {
    fn finish(self) -> JType {
        match self {
            Frame::Record { mut fields, .. } => {
                // Sort is stable, so among equal names insertion order
                // survives; dedup then keeps the *last* occurrence —
                // mirroring the DOM parser — in one linear pass (the old
                // per-key `retain` was quadratic in the duplicate case).
                fields.sort_by(|(a, _), (b, _)| a.cmp(b));
                fields.dedup_by(|next, prev| {
                    if next.0 == prev.0 {
                        std::mem::swap(next, prev);
                        true
                    } else {
                        false
                    }
                });
                JType::Record(RecordType { fields, count: 1 })
            }
            Frame::Array { item, len } => JType::Array(ArrayType {
                item: Box::new(item),
                count: 1,
                total_items: len,
            }),
        }
    }
}

/// Infers the collection type of NDJSON text without building DOMs.
///
/// Equivalent to parsing every line and running
/// [`infer_collection`](jsonx_core::infer_collection) — property-tested in
/// `tests/streaming_inference.rs` — but allocation stays proportional to
/// nesting depth. Errors carry the zero-based line index.
pub fn infer_streaming(ndjson: &str, equiv: Equivalence) -> Result<JType, (usize, ParseError)> {
    StreamTyper::new(equiv).type_lines(ndjson, 0)
}

/// Types one document from its event stream.
pub fn infer_document_events(input: &[u8], equiv: Equivalence) -> Result<JType, ParseError> {
    StreamTyper::new(equiv).type_document(input)
}

/// Infers the collection type of NDJSON text on parallel workers.
///
/// The input is split into contiguous byte-range shards snapped to newline
/// boundaries; each scoped worker types its shard with a private
/// [`StreamTyper`], and the per-shard types are fused in shard order.
/// Because fusion is commutative and associative with `Bottom` as unit,
/// the result is identical to [`infer_streaming`] — and to the DOM path —
/// for every worker count. On malformed input the reported line index
/// matches the sequential path (the first bad line).
pub fn infer_streaming_parallel(
    ndjson: &str,
    equiv: Equivalence,
    opts: StreamingOptions,
) -> Result<JType, (usize, ParseError)> {
    let workers = opts.effective_workers().max(1);
    if workers == 1 || ndjson.len() < opts.min_shard_bytes.saturating_mul(2) {
        return infer_streaming(ndjson, equiv);
    }
    let shards = shard_lines(ndjson, workers);
    let partials: Vec<Result<JType, (usize, ParseError)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|&(first_line, shard)| {
                scope.spawn(move || StreamTyper::new(equiv).type_lines(shard, first_line))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("streaming worker panicked"))
            .collect()
    });
    // First (lowest-line) error wins, matching sequential behaviour even
    // when a later shard also fails.
    let mut acc = JType::Bottom;
    let mut first_err: Option<(usize, ParseError)> = None;
    for partial in partials {
        match partial {
            Ok(ty) => acc = fuse(acc, ty, equiv),
            Err(e) => {
                if first_err.as_ref().is_none_or(|f| e.0 < f.0) {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(acc),
    }
}

/// Per-line outcome of streaming NDJSON validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineVerdict {
    /// The line parsed and satisfies the schema.
    Valid,
    /// The line parsed but violates the schema.
    Invalid,
    /// The line is not well-formed JSON.
    Malformed(ParseError),
}

impl LineVerdict {
    /// True only for [`LineVerdict::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, LineVerdict::Valid)
    }
}

/// Validates every non-blank line of `ndjson` against `schema` with one
/// reused [`FastValidator`](jsonx_schema::FastValidator), returning
/// `(line index, verdict)` pairs in input order.
fn validate_lines(
    ndjson: &str,
    first_line: usize,
    schema: &CompiledSchema,
    options: ValidatorOptions,
) -> Vec<(usize, LineVerdict)> {
    let mut validator = schema.fast_validator_with(options);
    let mut out = Vec::new();
    for (idx, line) in ndjson.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let verdict = match jsonx_syntax::parse(line) {
            Ok(doc) => {
                if validator.is_valid(&doc) {
                    LineVerdict::Valid
                } else {
                    LineVerdict::Invalid
                }
            }
            Err(e) => LineVerdict::Malformed(e),
        };
        out.push((first_line + idx, verdict));
    }
    out
}

/// Validates an NDJSON collection line by line on the fail-fast path.
///
/// Each non-blank line is parsed and probed with the compiled validation IR
/// (the allocation-free boolean path behind
/// [`CompiledSchema::is_valid`]); verdicts are **identical** to running the
/// error-collecting interpreter per document — property-tested in
/// `tests/streaming_validation.rs` — so callers wanting diagnostics can
/// re-run [`CompiledSchema::validate`] on just the invalid lines.
pub fn validate_streaming(
    ndjson: &str,
    schema: &CompiledSchema,
    options: ValidatorOptions,
) -> Vec<(usize, LineVerdict)> {
    validate_lines(ndjson, 0, schema, options)
}

/// Validates an NDJSON collection on parallel workers.
///
/// Reuses the newline-boundary sharding of
/// [`infer_streaming_parallel`]: the input splits into contiguous shards
/// snapped to newline boundaries, each scoped worker owns one fail-fast
/// validator for its shard, and the per-shard verdict vectors concatenate
/// in shard order — so the result is *positionally identical* to
/// [`validate_streaming`] for every worker count. Small inputs (or
/// `workers == 1`) fall back to the sequential path.
pub fn validate_streaming_parallel(
    ndjson: &str,
    schema: &CompiledSchema,
    options: ValidatorOptions,
    opts: StreamingOptions,
) -> Vec<(usize, LineVerdict)> {
    let workers = opts.effective_workers().max(1);
    if workers == 1 || ndjson.len() < opts.min_shard_bytes.saturating_mul(2) {
        return validate_streaming(ndjson, schema, options);
    }
    let shards = shard_lines(ndjson, workers);
    let partials: Vec<Vec<(usize, LineVerdict)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|&(first_line, shard)| {
                scope.spawn(move || validate_lines(shard, first_line, schema, options))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("validation worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(partials.iter().map(Vec::len).sum());
    for partial in partials {
        out.extend(partial);
    }
    out
}

/// Splits `ndjson` into up to `workers` contiguous shards whose boundaries
/// sit just after a newline, tagging each with its starting line index.
fn shard_lines(ndjson: &str, workers: usize) -> Vec<(usize, &str)> {
    let bytes = ndjson.as_bytes();
    let target = ndjson.len().div_ceil(workers).max(1);
    let mut shards = Vec::with_capacity(workers);
    let mut start = 0usize;
    let mut line = 0usize;
    while start < bytes.len() {
        let mut end = (start + target).min(bytes.len());
        // Snap forward to just past the next newline so no document spans
        // two shards.
        while end < bytes.len() && bytes[end - 1] != b'\n' {
            end += 1;
        }
        let shard = &ndjson[start..end];
        shards.push((line, shard));
        line += shard.bytes().filter(|&b| b == b'\n').count();
        start = end;
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_core::infer_collection;
    use jsonx_syntax::parse_ndjson;

    #[test]
    fn matches_dom_inference_on_mixed_documents() {
        let ndjson = r#"
{"id": 1, "tags": ["a", 2], "geo": null}
{"id": "x", "geo": {"lat": 1.5}, "tags": []}
{"dup": 1, "dup": "last-wins"}
42
[1, {"k": true}]
"#;
        let docs = parse_ndjson(ndjson).unwrap();
        for equiv in [Equivalence::Kind, Equivalence::Label] {
            let dom = infer_collection(&docs, equiv);
            let streamed = infer_streaming(ndjson, equiv).unwrap();
            assert_eq!(streamed, dom, "equiv {equiv:?}");
        }
    }

    #[test]
    fn duplicate_keys_last_wins_like_dom() {
        let doc = br#"{"a": 1, "b": true, "a": "s", "a": null}"#;
        let streamed = infer_document_events(doc, Equivalence::Kind).unwrap();
        let dom = jsonx_syntax::parse(std::str::from_utf8(doc).unwrap()).unwrap();
        assert_eq!(streamed, jsonx_core::infer_value(&dom, Equivalence::Kind));
        match streamed {
            JType::Record(rt) => {
                assert_eq!(rt.fields.len(), 2);
                assert!(matches!(rt.field("a").unwrap().ty, JType::Null { .. }));
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn reports_line_of_malformed_document() {
        let err = infer_streaming("{\"a\":1}\n{bad\n", Equivalence::Kind).unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn empty_input_is_bottom() {
        assert_eq!(
            infer_streaming("", Equivalence::Kind).unwrap(),
            JType::Bottom
        );
    }

    #[test]
    fn typer_is_reusable_after_error() {
        let mut typer = StreamTyper::new(Equivalence::Kind);
        assert!(typer.type_document(b"{broken").is_err());
        let ty = typer.type_document(br#"{"ok": 1}"#).unwrap();
        assert!(matches!(ty, JType::Record(_)));
    }

    fn corpus_ndjson(n: usize) -> String {
        let mut out = String::new();
        for i in 0..n {
            match i % 4 {
                0 => out.push_str(&format!("{{\"id\": {i}, \"name\": \"a\"}}\n")),
                1 => out.push_str(&format!("{{\"id\": {i}}}\n")),
                2 => out.push_str(&format!("{{\"id\": \"s{i}\", \"tags\": [1, \"x\"]}}\n")),
                _ => out.push_str(&format!(
                    "{{\"geo\": {{\"lat\": 1.5, \"lon\": -0.5}}, \"id\": {i}}}\n"
                )),
            }
        }
        out
    }

    #[test]
    fn parallel_equals_sequential_and_dom() {
        let ndjson = corpus_ndjson(3_000);
        let docs = parse_ndjson(&ndjson).unwrap();
        for equiv in [Equivalence::Kind, Equivalence::Label] {
            let dom = infer_collection(&docs, equiv);
            let seq = infer_streaming(&ndjson, equiv).unwrap();
            assert_eq!(seq, dom);
            for workers in [1, 2, 3, 8] {
                let par = infer_streaming_parallel(
                    &ndjson,
                    equiv,
                    StreamingOptions {
                        workers,
                        min_shard_bytes: 256,
                    },
                )
                .unwrap();
                assert_eq!(par, dom, "workers={workers} equiv={equiv:?}");
            }
        }
    }

    #[test]
    fn parallel_reports_first_error_line() {
        let base = corpus_ndjson(500);
        let total = base.lines().count();
        // Corrupt two lines, one early and one late; the early one must win
        // regardless of which shard fails first.
        let mut corrupted: Vec<String> = base.lines().map(str::to_string).collect();
        corrupted[40] = "{oops".to_string();
        corrupted[total - 10] = "[1,".to_string();
        let mut ndjson = corrupted.join("\n");
        ndjson.push('\n');
        let seq_err = infer_streaming(&ndjson, Equivalence::Kind).unwrap_err();
        let par_err = infer_streaming_parallel(
            &ndjson,
            Equivalence::Kind,
            StreamingOptions {
                workers: 4,
                min_shard_bytes: 64,
            },
        )
        .unwrap_err();
        assert_eq!(seq_err.0, 40);
        assert_eq!(par_err.0, seq_err.0);
        assert_eq!(par_err.1.kind, seq_err.1.kind);
    }

    #[test]
    fn small_inputs_fall_back_to_sequential() {
        let ndjson = corpus_ndjson(10);
        let par = infer_streaming_parallel(&ndjson, Equivalence::Kind, StreamingOptions::default())
            .unwrap();
        assert_eq!(par, infer_streaming(&ndjson, Equivalence::Kind).unwrap());
    }

    #[test]
    fn shards_cover_input_without_splitting_lines() {
        let ndjson = corpus_ndjson(100);
        for workers in [1, 2, 3, 7, 16] {
            let shards = shard_lines(&ndjson, workers);
            let rejoined: String = shards.iter().map(|(_, s)| *s).collect();
            assert_eq!(rejoined, ndjson, "workers={workers}");
            let mut expected_line = 0;
            for (first_line, shard) in &shards {
                assert_eq!(*first_line, expected_line);
                assert!(shard.ends_with('\n') || *shard == shards.last().unwrap().1);
                expected_line += shard.bytes().filter(|&b| b == b'\n').count();
            }
        }
    }

    #[test]
    fn interner_shares_repeated_keys() {
        let mut typer = StreamTyper::new(Equivalence::Kind);
        let a = typer.type_document(br#"{"hot": 1}"#).unwrap();
        let b = typer.type_document(br#"{"hot": 2}"#).unwrap();
        let (JType::Record(ra), JType::Record(rb)) = (a, b) else {
            panic!("expected records");
        };
        assert!(FieldName::ptr_eq(&ra.fields[0].0, &rb.fields[0].0));
    }
}
