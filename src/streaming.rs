//! Streaming pipeline stages over record collections: inference,
//! validation, combined infer+validate, and schema-driven translation.
//!
//! Every parallel entry point here is a thin [`ShardFold`] adapter over
//! the generic sharded engine of [`jsonx_pipeline`]: newline-boundary
//! sharding, scoped worker threads, shard-order fusion, first-error-line
//! selection. Since the decoder-seam refactor the stages are also
//! **source-agnostic**: each is generic over a [`RecordDecoder`]
//! (NDJSON via [`JsonDecoder`], the SWAR fast path via the crate-private
//! `FastJsonDecoder`, CSV via [`jsonx_syntax::CsvDecoder`], …), so the
//! engine's work stealing, fault tolerance and out-of-core layers never
//! assume JSON — the `*_decoded` entry points expose this directly. The
//! stages differ only in their per-worker state and merge:
//!
//! * [`infer_streaming_parallel`] — a [`StreamTyper`] per worker, types
//!   fused with the §4.1 monoid (commutative + associative, `Bottom`
//!   unit), so every worker count reproduces the sequential — and DOM —
//!   result bit for bit.
//! * [`validate_streaming_parallel`] — a compiled fail-fast
//!   [`FastValidator`](jsonx_schema::FastValidator) per worker, per-line
//!   verdict vectors concatenated in shard order.
//! * [`infer_validate_streaming_parallel`] — the combined single pass:
//!   **one tokenisation** per line feeds both the typer and the
//!   validator ([`StreamTyper::type_and_build`] builds the DOM value for
//!   the validator from the same raw-event walk that types the line).
//! * [`translate_streaming_parallel`] — §5's schema-driven translation:
//!   per-shard Arrow-like columnar batches
//!   ([`ShredStream`](jsonx_translate::ShredStream)), concatenated in
//!   shard order into the batch a DOM
//!   [`Shredder::shred`](jsonx_translate::Shredder::shred) would build.
//!
//! The massive-collection setting of §4.1 is exactly where building a
//! [`Value`](jsonx_data::Value) per document hurts: the map step only
//! needs the *types*. [`infer_streaming`] fuses each document's type
//! directly from [`RawEventParser`] events, with memory bounded by
//! document depth rather than document size. Three things keep the
//! per-document allocation budget near zero:
//!
//! - events borrow escape-free keys and strings from the input
//!   ([`RawEvent`]'s `Cow` payloads), so scalar strings never allocate —
//!   typing only needs their *kind*;
//! - field names are interned per [`StreamTyper`]: a repeated key costs an
//!   `Arc` refcount bump instead of a fresh `String`;
//! - the container frame stack is reused across documents, so steady-state
//!   typing of uniform documents performs no stack (re)allocation at all.

use crate::fastpath::{FastJsonDecoder, FastPlan};
use jsonx_core::{fuse, Equivalence, JType};
use jsonx_core::{ArrayType, FieldName, FieldType, RecordType};
use jsonx_data::Value;
use jsonx_pipeline::{
    merge_line_results, run_lines, run_lines_stealing, run_reader_caught, ChunkOptions,
    ErrorPolicy, ErrorSummary, RecordDiagnostic, RunReport, ShardFold, ShardPanic,
};
use jsonx_schema::{CompiledSchema, FastValidator, ValidatorOptions};
use jsonx_syntax::{
    EventReceiver, JsonDecoder, ParseError, ParseErrorKind, ParseLimits, RawEvent, RawEventParser,
    RecordDecoder, RecordLimit, Tee, ValueBuilder,
};
use jsonx_translate::{ColumnarBatch, ShredError, ShredStream, Shredder};
use std::collections::HashSet;

/// Options for the byte-sharded streaming stages — the shared
/// [`PipelineOptions`](jsonx_pipeline::PipelineOptions) of
/// `jsonx-pipeline`, kept under this crate's historical name.
pub use jsonx_pipeline::PipelineOptions as StreamingOptions;

/// A reusable event-stream typing engine.
///
/// One `StreamTyper` types many documents in sequence: its frame stack and
/// field-name interner persist across [`type_document`](Self::type_document)
/// calls. Workers in [`infer_streaming_parallel`] each own one.
pub struct StreamTyper {
    equiv: Equivalence,
    limits: ParseLimits,
    stack: Vec<Frame>,
    interner: HashSet<FieldName>,
}

/// The typing logic as an [`EventReceiver`]: splits mutable borrows of a
/// [`StreamTyper`]'s frame stack and interner so any
/// [`RecordDecoder`]'s event stream — JSON, CSV, whatever comes next —
/// can drive the same §4.1 type fusion. Typing is infallible; decode
/// errors belong to the decoder, and on error the abandoned sink's frames
/// are cleared by the typer.
struct TypeSink<'t> {
    equiv: Equivalence,
    stack: &'t mut Vec<Frame>,
    interner: &'t mut HashSet<FieldName>,
    result: Option<JType>,
}

impl<'t> TypeSink<'t> {
    fn new(
        equiv: Equivalence,
        stack: &'t mut Vec<Frame>,
        interner: &'t mut HashSet<FieldName>,
    ) -> Self {
        stack.clear();
        TypeSink {
            equiv,
            stack,
            interner,
            result: None,
        }
    }

    /// Returns the interned name for `key`, allocating only on first sight.
    fn intern(&mut self, key: &str) -> FieldName {
        match self.interner.get(key) {
            Some(name) => name.clone(),
            None => {
                let name = FieldName::from(key);
                self.interner.insert(name.clone());
                name
            }
        }
    }

    fn attach(&mut self, ty: JType) {
        match self.stack.last_mut() {
            Some(Frame::Record {
                fields,
                pending_key,
            }) => {
                let key = pending_key.take().expect("key precedes value");
                // Duplicate keys resolve in `Frame::finish` (last wins);
                // appending here keeps attachment O(1) per field.
                fields.push((key, FieldType { ty, presence: 1 }));
            }
            Some(Frame::Array { item, len }) => {
                let current = std::mem::replace(item, JType::Bottom);
                *item = fuse(current, ty, self.equiv);
                *len += 1;
            }
            None => self.result = Some(ty),
        }
    }

    /// The typed document ([`JType::Bottom`] when no value event arrived).
    fn finish(self) -> JType {
        self.result.unwrap_or(JType::Bottom)
    }
}

impl EventReceiver for TypeSink<'_> {
    fn event(&mut self, ev: &RawEvent<'_>) {
        match ev {
            RawEvent::StartObject => self.stack.push(Frame::Record {
                fields: Vec::new(),
                pending_key: None,
            }),
            RawEvent::StartArray => self.stack.push(Frame::Array {
                item: JType::Bottom,
                len: 0,
            }),
            RawEvent::EndObject | RawEvent::EndArray => {
                let frame = self.stack.pop().expect("balanced events");
                let ty = frame.finish();
                self.attach(ty);
            }
            RawEvent::Key(k) => {
                let name = self.intern(k);
                if let Some(Frame::Record { pending_key, .. }) = self.stack.last_mut() {
                    *pending_key = Some(name);
                }
            }
            RawEvent::Null => self.attach(JType::Null { count: 1 }),
            RawEvent::Bool(_) => self.attach(JType::Bool { count: 1 }),
            RawEvent::Num(n) if n.is_integer() => self.attach(JType::Int { count: 1 }),
            RawEvent::Num(_) => self.attach(JType::Float { count: 1 }),
            RawEvent::Str(_) => self.attach(JType::Str { count: 1 }),
        }
    }
}

impl StreamTyper {
    /// Creates a typer for the given equivalence.
    pub fn new(equiv: Equivalence) -> Self {
        StreamTyper {
            equiv,
            limits: ParseLimits::default(),
            stack: Vec::new(),
            interner: HashSet::new(),
        }
    }

    /// Replaces the per-record resource limits enforced on the event
    /// parser underneath (depth, record bytes, string bytes).
    pub fn with_limits(mut self, limits: ParseLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Types one document from its event stream without building a DOM.
    pub fn type_document(&mut self, input: &[u8]) -> Result<JType, ParseError> {
        let limits = self.limits;
        let outcome = {
            let mut sink = TypeSink::new(self.equiv, &mut self.stack, &mut self.interner);
            let mut parser = RawEventParser::new(input).with_limits(limits);
            loop {
                match parser.next_event() {
                    Ok(Some(ev)) => sink.event(&ev),
                    Ok(None) => break Ok(sink.finish()),
                    Err(e) => break Err(e),
                }
            }
        };
        outcome.inspect_err(|_| {
            // Leave the typer reusable after malformed input.
            self.stack.clear();
        })
    }

    /// Types one document **and** rebuilds its [`Value`] from the same
    /// event walk — one tokenisation feeding two consumers. The built
    /// value is identical to [`jsonx_syntax::parse`] on the same bytes,
    /// which is what lets the combined infer+validate pass probe the
    /// compiled validator without re-parsing.
    pub fn type_and_build(&mut self, input: &[u8]) -> Result<(JType, Value), ParseError> {
        let limits = self.limits;
        let mut builder = ValueBuilder::new();
        let outcome = {
            let mut sink = TypeSink::new(self.equiv, &mut self.stack, &mut self.interner);
            let mut parser = RawEventParser::new(input).with_limits(limits);
            loop {
                match parser.next_event() {
                    Ok(Some(ev)) => {
                        builder.event(&ev);
                        sink.event(&ev);
                    }
                    Ok(None) => break Ok(sink.finish()),
                    Err(e) => break Err(e),
                }
            }
        };
        match outcome {
            Ok(ty) => Ok((ty, builder.take())),
            Err(e) => {
                self.stack.clear();
                Err(e)
            }
        }
    }

    /// Types one record through an arbitrary [`RecordDecoder`] — the
    /// source-agnostic face of [`type_document`](Self::type_document).
    /// With [`JsonDecoder`] this is event-for-event the JSON path; with
    /// any other decoder the same fusion runs over whatever events the
    /// source produces.
    pub fn type_decoded<D: RecordDecoder>(
        &mut self,
        decoder: &D,
        scratch: &mut D::Scratch,
        record: &str,
    ) -> Result<JType, ParseError> {
        let outcome = {
            let mut sink = TypeSink::new(self.equiv, &mut self.stack, &mut self.interner);
            decoder
                .decode_events(scratch, record, &mut sink)
                .map(|()| sink.finish())
        };
        outcome.inspect_err(|_| {
            self.stack.clear();
        })
    }

    /// [`type_and_build`](Self::type_and_build) through an arbitrary
    /// [`RecordDecoder`]: one decode feeds the typer and the DOM builder.
    pub fn type_and_build_decoded<D: RecordDecoder>(
        &mut self,
        decoder: &D,
        scratch: &mut D::Scratch,
        record: &str,
    ) -> Result<(JType, Value), ParseError> {
        let mut builder = ValueBuilder::new();
        let outcome = {
            let mut sink = TypeSink::new(self.equiv, &mut self.stack, &mut self.interner);
            decoder
                .decode_events(scratch, record, &mut Tee(&mut builder, &mut sink))
                .map(|()| sink.finish())
        };
        match outcome {
            Ok(ty) => Ok((ty, builder.take())),
            Err(e) => {
                self.stack.clear();
                Err(e)
            }
        }
    }
}

enum Frame {
    Record {
        fields: Vec<(FieldName, FieldType)>,
        pending_key: Option<FieldName>,
    },
    Array {
        item: JType,
        len: u64,
    },
}

impl Frame {
    fn finish(self) -> JType {
        match self {
            Frame::Record { mut fields, .. } => {
                // Sort is stable, so among equal names insertion order
                // survives; dedup then keeps the *last* occurrence —
                // mirroring the DOM parser — in one linear pass (the old
                // per-key `retain` was quadratic in the duplicate case).
                fields.sort_by(|(a, _), (b, _)| a.cmp(b));
                fields.dedup_by(|next, prev| {
                    if next.0 == prev.0 {
                        std::mem::swap(next, prev);
                        true
                    } else {
                        false
                    }
                });
                JType::Record(RecordType { fields, count: 1 })
            }
            Frame::Array { item, len } => JType::Array(ArrayType {
                item: Box::new(item),
                count: 1,
                total_items: len,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-tolerant execution layer
// ---------------------------------------------------------------------------

/// Why one record was rejected by a streaming stage.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordIssue {
    /// The record is not well-formed JSON, or tripped a [`ParseLimits`]
    /// guard.
    Parse(ParseError),
    /// The record parsed but is not a JSON object (translation shreds
    /// records only).
    NotARecord,
}

impl RecordIssue {
    /// Stable machine-readable label, the grouping key of
    /// [`ErrorSummary::by_kind`] and the `"kind"` field of quarantine
    /// diagnostics.
    pub fn kind_label(&self) -> &'static str {
        match self {
            RecordIssue::Parse(e) => e.kind.label(),
            RecordIssue::NotARecord => "not-a-record",
        }
    }

    /// Byte offset of the error within the record (0 for shape errors).
    pub fn offset(&self) -> usize {
        match self {
            RecordIssue::Parse(e) => e.offset,
            RecordIssue::NotARecord => 0,
        }
    }
}

impl std::fmt::Display for RecordIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordIssue::Parse(e) => write!(f, "{e}"),
            RecordIssue::NotARecord => write!(f, "not a JSON object"),
        }
    }
}

/// How a guarded streaming run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// Under [`ErrorPolicy::FailFast`]: the first rejected record.
    Record {
        /// Zero-based record (line) index.
        record: usize,
        /// Why it was rejected.
        issue: RecordIssue,
    },
    /// Under a tolerant policy: the rejection count exceeded the policy's
    /// `max_errors` bound.
    TooManyErrors {
        /// The configured bound.
        limit: usize,
        /// Rejections seen before the run gave up (at least `limit + 1`;
        /// shards stop counting once the bound trips, so this is a lower
        /// bound on the corpus total).
        seen: usize,
    },
    /// Under [`ErrorPolicy::FailFast`]: a worker panicked, with shard
    /// provenance.
    ShardPanicked(ShardPanic),
    /// The input itself could not be read (out-of-core mode only): an
    /// I/O failure or non-UTF-8 bytes. No error policy applies — without
    /// readable bytes there is no trustworthy record numbering to skip
    /// past — so any partial results are discarded.
    Input(String),
    /// A journaled run was stopped gracefully (signal, operator) after
    /// committing a resumable prefix to its checkpoint journal. Not an
    /// input fault: rerunning with `--resume` continues from the last
    /// committed chunk.
    Interrupted,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Record { record, issue } => write!(f, "line {}: {issue}", record + 1),
            StreamError::TooManyErrors { limit, seen } => {
                write!(f, "too many rejected records: {seen} seen, limit {limit}")
            }
            StreamError::ShardPanicked(p) => write!(f, "{p}"),
            StreamError::Input(msg) => write!(f, "{msg}"),
            StreamError::Interrupted => {
                write!(f, "interrupted; committed progress is resumable")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// Fault-tolerance settings for the guarded streaming entry points,
/// orthogonal to the sharding knobs in [`StreamingOptions`].
#[derive(Debug, Clone, Copy)]
pub struct FaultOptions {
    /// What to do with rejected records.
    pub policy: ErrorPolicy,
    /// Retain **every** reject's diagnostic *and raw line* in the report —
    /// required when a quarantine sink will write them back out.
    pub keep_rejects: bool,
    /// Per-record resource limits (depth, record bytes, string bytes).
    pub limits: ParseLimits,
}

impl Default for FaultOptions {
    fn default() -> Self {
        FaultOptions {
            policy: ErrorPolicy::FailFast,
            keep_rejects: false,
            limits: ParseLimits::default(),
        }
    }
}

impl FaultOptions {
    fn sample_cap(&self) -> usize {
        if self.keep_rejects {
            usize::MAX
        } else {
            self.policy.sample_cap()
        }
    }
}

/// One streaming stage's record-level logic, with the error handling
/// factored out: [`FaultFold`] supplies blank-line skipping, the central
/// record-size guard, policy bookkeeping, and shard merging, so a stage
/// only says what to do with one record and how to fuse shard outputs.
pub(crate) trait RecordStage: Sync {
    /// Per-worker scratch state.
    type State;
    /// Per-shard result.
    type Out: Send;

    fn init(&self) -> Self::State;
    /// Processes one non-blank record; `Err` rejects it (the state must be
    /// left reusable for the next record).
    fn record(&self, state: &mut Self::State, line: &str, record: usize)
        -> Result<(), RecordIssue>;
    fn finish(&self, state: Self::State) -> Self::Out;
    fn merge(&self, left: Self::Out, right: Self::Out) -> Self::Out;
    /// Extracts the current chunk's output, leaving the state ready for
    /// the worker's next claimed chunk (see [`ShardFold::take`]). Stages
    /// override this so expensive machinery (interners, validators,
    /// column builders) survives across chunks.
    fn take(&self, state: &mut Self::State) -> Self::Out {
        self.finish(std::mem::replace(state, self.init()))
    }
}

/// Why a shard stopped feeding records early.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Halt {
    /// Fail-fast: the shard's first rejected record.
    Fault { record: usize, issue: RecordIssue },
    /// Tolerant: the shard alone exceeded the rejection bound.
    TooMany,
}

/// What one shard yields: the stage output plus the fault account.
pub(crate) struct ShardYield<T> {
    pub(crate) out: T,
    pub(crate) records: usize,
    pub(crate) errors: ErrorSummary,
    pub(crate) halt: Option<Halt>,
}

pub(crate) struct FaultState<T> {
    inner: T,
    records: usize,
    errors: ErrorSummary,
    halt: Option<Halt>,
}

/// The adapter that runs a [`RecordStage`] under an error policy on the
/// sharded engine.
///
/// The policy-derived values every record consults (`input_cap`,
/// `tolerates`, `sample_cap`, `max_errors`) are hoisted out of the inner
/// loop at construction: they are constant for a run, and deriving them
/// per record put measurable per-record overhead on the guarded paths.
pub(crate) struct FaultFold<'s, S> {
    stage: &'s S,
    fault: FaultOptions,
    input_cap: Option<usize>,
    tolerates: bool,
    sample_cap: usize,
    max_errors: Option<usize>,
}

impl<'s, S> FaultFold<'s, S> {
    pub(crate) fn new(stage: &'s S, fault: FaultOptions) -> Self {
        FaultFold {
            stage,
            input_cap: fault.limits.max_input_bytes,
            tolerates: fault.policy.tolerates(),
            sample_cap: fault.sample_cap(),
            max_errors: fault.policy.max_errors(),
            fault,
        }
    }

    /// The diagnostic-retention cap this fold applies when merging
    /// [`ErrorSummary`]s — journaled runs re-apply it when fusing a
    /// resumed prefix with fresh tail results.
    pub(crate) fn retention_cap(&self) -> usize {
        self.sample_cap
    }
}

impl<'s, S: RecordStage> ShardFold<str> for FaultFold<'s, S> {
    type State = FaultState<S::State>;
    type Out = ShardYield<S::Out>;

    fn init(&self) -> Self::State {
        FaultState {
            inner: self.stage.init(),
            records: 0,
            errors: ErrorSummary::new(),
            halt: None,
        }
    }

    fn feed(&self, state: &mut Self::State, line: &str, record: usize) {
        if state.halt.is_some() || line.trim().is_empty() {
            return;
        }
        state.records += 1;
        // The record-size guard runs centrally so every stage gets it —
        // including the DOM-parsing ones whose parser has no byte limits —
        // and an oversized line is rejected before any parsing starts.
        let issue = match self.input_cap {
            Some(limit) if line.len() > limit => Some(RecordIssue::Parse(ParseError::at(
                ParseErrorKind::LimitExceeded(RecordLimit::InputBytes),
                line.as_bytes(),
                limit,
            ))),
            _ => self.stage.record(&mut state.inner, line, record).err(),
        };
        let Some(issue) = issue else { return };
        if !self.tolerates {
            state.halt = Some(Halt::Fault { record, issue });
            return;
        }
        let diag = RecordDiagnostic {
            record,
            offset: issue.offset(),
            kind: issue.kind_label(),
            message: issue.to_string(),
            raw: self.fault.keep_rejects.then(|| line.to_string()),
        };
        state.errors.push(diag, self.sample_cap);
        if let Some(max) = self.max_errors {
            // Shard-local short-circuit: if this shard alone is over the
            // bound the merged total is too, so stop paying for the rest.
            if state.errors.total > max {
                state.halt = Some(Halt::TooMany);
            }
        }
    }

    fn finish(&self, state: Self::State) -> Self::Out {
        ShardYield {
            out: self.stage.finish(state.inner),
            records: state.records,
            errors: state.errors,
            halt: state.halt,
        }
    }

    fn take(&self, state: &mut Self::State) -> Self::Out {
        // Per-chunk extraction on the work-stealing path: the stage's
        // reusable machinery survives in `inner` while the fault account
        // resets. A halt moves into the chunk's yield — the halted chunk
        // already stopped feeding, and the worker's next chunk starts
        // clean, exactly like a fresh static shard would.
        ShardYield {
            out: self.stage.take(&mut state.inner),
            records: std::mem::take(&mut state.records),
            errors: std::mem::take(&mut state.errors),
            halt: state.halt.take(),
        }
    }

    fn merge(&self, mut left: Self::Out, right: Self::Out) -> Self::Out {
        // Lowest-record fault wins across shards — the error a sequential
        // scan would have hit first (TooMany only meets TooMany, because a
        // policy is uniform across one run).
        let halt = match (left.halt, right.halt) {
            (None, h) | (h, None) => h,
            (Some(Halt::Fault { record: a, issue }), Some(Halt::Fault { record: b, .. }))
                if a <= b =>
            {
                Some(Halt::Fault { record: a, issue })
            }
            (Some(_), Some(h)) => Some(h),
        };
        left.errors.merge(right.errors, self.sample_cap);
        ShardYield {
            out: self.stage.merge(left.out, right.out),
            records: left.records + right.records,
            errors: left.errors,
            halt,
        }
    }
}

/// Where a streaming stage reads its NDJSON records from.
///
/// `Slice` is the historical in-memory path, dispatched as zero-copy
/// work-stealing chunks; `Reader` streams out-of-core through a bounded
/// ring of chunk buffers, so corpora much larger than RAM process with
/// peak residency around `workers × chunk_bytes`. The type parameter
/// defaults to [`std::io::Empty`] so slice-only callers can write
/// `StreamSource::slice(text)` without naming a reader type.
pub enum StreamSource<'a, R = std::io::Empty> {
    /// An in-memory NDJSON slice.
    Slice(&'a str),
    /// Any buffered reader (file, socket, decompressor).
    Reader(R),
}

impl<'a> StreamSource<'a> {
    /// An in-memory source with the reader type pinned to
    /// [`std::io::Empty`] — avoids type-annotation noise at call sites
    /// that never stream.
    pub fn slice(ndjson: &'a str) -> Self {
        StreamSource::Slice(ndjson)
    }
}

/// Runs a stage under the fault layer and folds the outcome into the
/// `(result, report)` / [`StreamError`] contract every guarded entry point
/// shares.
fn run_stage<S: RecordStage>(
    ndjson: &str,
    stage: &S,
    opts: StreamingOptions,
    fault: FaultOptions,
) -> Result<(S::Out, RunReport), StreamError> {
    run_stage_source(
        StreamSource::slice(ndjson),
        stage,
        opts,
        ChunkOptions::default(),
        fault,
    )
}

/// [`run_stage`] generalised over input sources and chunk dispatch knobs
/// — the single execution path every entry point (in-memory or
/// out-of-core) now funnels through.
fn run_stage_source<R: std::io::BufRead + Send, S: RecordStage>(
    source: StreamSource<'_, R>,
    stage: &S,
    opts: StreamingOptions,
    chunk: ChunkOptions,
    fault: FaultOptions,
) -> Result<(S::Out, RunReport), StreamError> {
    let fold = FaultFold::new(stage, fault);
    let outcome = match source {
        StreamSource::Slice(ndjson) => run_lines_stealing(ndjson, &fold, opts, chunk),
        StreamSource::Reader(reader) => run_reader_caught(reader, &fold, opts, chunk)
            .map_err(|e| StreamError::Input(e.to_string()))?,
    };
    let yielded = outcome.out;
    let report = RunReport {
        records: yielded.records,
        shards: outcome.shards,
        errors: yielded.errors,
        poisoned: outcome.poisoned,
        timings: outcome.timings,
    };
    seal_stage_outcome(yielded.out, yielded.halt, report, fault)
}

/// Folds a finished run's halt state and report into the
/// `(result, report)` / [`StreamError`] contract — shared by the plain
/// funnel above and the journaled runs in [`crate::checkpoint`], which
/// build their reports from a resumed prefix plus fresh tail chunks.
pub(crate) fn seal_stage_outcome<T>(
    out: T,
    halt: Option<Halt>,
    mut report: RunReport,
    fault: FaultOptions,
) -> Result<(T, RunReport), StreamError> {
    if !fault.policy.tolerates() && !report.poisoned.is_empty() {
        return Err(StreamError::ShardPanicked(report.poisoned.remove(0)));
    }
    match halt {
        Some(Halt::Fault { record, issue }) => Err(StreamError::Record { record, issue }),
        Some(Halt::TooMany) => Err(StreamError::TooManyErrors {
            limit: fault.policy.max_errors().unwrap_or(0),
            seen: report.errors.total,
        }),
        None => match fault.policy.max_errors() {
            // The authoritative bound check is on the *merged* total: each
            // shard may be under the limit while the run is over it.
            Some(max) if report.errors.total > max => Err(StreamError::TooManyErrors {
                limit: max,
                seen: report.errors.total,
            }),
            _ => Ok((out, report)),
        },
    }
}

/// Maps a fail-fast [`StreamError`] back onto the historical
/// `(line, ParseError)` shape, panicking (with shard provenance) on a
/// poisoned shard — the legacy entry points cannot carry a panic in their
/// signatures.
fn legacy_parse_error<T>(
    result: Result<(T, RunReport), StreamError>,
) -> Result<T, (usize, ParseError)> {
    match result {
        Ok((out, _report)) => Ok(out),
        Err(StreamError::Record {
            record,
            issue: RecordIssue::Parse(e),
        }) => Err((record, e)),
        Err(StreamError::ShardPanicked(p)) => panic!("pipeline {p}"),
        Err(e) => unreachable!("fail-fast parse stage produced {e:?}"),
    }
}

// ---------------------------------------------------------------------------
// Inference stage
// ---------------------------------------------------------------------------

/// The inference stage: one [`StreamTyper`] per worker, types fused with
/// the §4.1 monoid. Generic over the [`RecordDecoder`], so the same
/// stage types NDJSON, CSV, or any future source.
pub(crate) struct InferStage<D> {
    pub(crate) equiv: Equivalence,
    pub(crate) decoder: D,
}

impl<D: RecordDecoder> RecordStage for InferStage<D> {
    type State = (StreamTyper, D::Scratch, JType);
    type Out = JType;

    fn init(&self) -> Self::State {
        (
            StreamTyper::new(self.equiv),
            self.decoder.scratch(),
            JType::Bottom,
        )
    }

    fn record(
        &self,
        (typer, scratch, acc): &mut Self::State,
        line: &str,
        _record: usize,
    ) -> Result<(), RecordIssue> {
        let ty = typer
            .type_decoded(&self.decoder, scratch, line)
            .map_err(RecordIssue::Parse)?;
        let current = std::mem::replace(acc, JType::Bottom);
        *acc = fuse(current, ty, self.equiv);
        Ok(())
    }

    fn finish(&self, (_, _, acc): Self::State) -> JType {
        acc
    }

    fn merge(&self, left: JType, right: JType) -> JType {
        fuse(left, right, self.equiv)
    }

    fn take(&self, (_, _, acc): &mut Self::State) -> JType {
        // The typer (frame stack + interner) and decoder scratch survive
        // across chunks; only the fused accumulator is the chunk's output.
        std::mem::replace(acc, JType::Bottom)
    }
}

/// Infers the collection type of NDJSON text without building DOMs.
///
/// Equivalent to parsing every line and running
/// [`infer_collection`](jsonx_core::infer_collection) — property-tested in
/// `tests/streaming_inference.rs` — but allocation stays proportional to
/// nesting depth. Errors carry the zero-based line index.
pub fn infer_streaming(ndjson: &str, equiv: Equivalence) -> Result<JType, (usize, ParseError)> {
    infer_streaming_parallel(ndjson, equiv, StreamingOptions::with_workers(1))
}

/// Types one document from its event stream.
pub fn infer_document_events(input: &[u8], equiv: Equivalence) -> Result<JType, ParseError> {
    StreamTyper::new(equiv).type_document(input)
}

/// Infers the collection type of NDJSON text on parallel workers.
///
/// The input is split into contiguous byte-range shards snapped to newline
/// boundaries; each scoped worker types its shard with a private
/// [`StreamTyper`], and the per-shard types are fused in shard order.
/// Because fusion is commutative and associative with `Bottom` as unit,
/// the result is identical to [`infer_streaming`] — and to the DOM path —
/// for every worker count. On malformed input the reported line index
/// matches the sequential path (the first bad line).
pub fn infer_streaming_parallel(
    ndjson: &str,
    equiv: Equivalence,
    opts: StreamingOptions,
) -> Result<JType, (usize, ParseError)> {
    let stage = InferStage {
        equiv,
        decoder: JsonDecoder::new(),
    };
    legacy_parse_error(run_stage(ndjson, &stage, opts, FaultOptions::default()))
}

/// Streaming inference under an explicit [error policy](FaultOptions).
///
/// Under [`ErrorPolicy::FailFast`] this is [`infer_streaming_parallel`]
/// returning its [`RunReport`]; under `Skip`/`Collect` rejected records
/// (malformed JSON, limit violations) are skipped and accounted in the
/// report, and the inferred type equals what `FailFast` infers on the same
/// corpus with the rejected lines removed — pinned by
/// `tests/fault_tolerance.rs` at every worker count.
pub fn infer_streaming_guarded(
    ndjson: &str,
    equiv: Equivalence,
    opts: StreamingOptions,
    fault: FaultOptions,
) -> Result<(JType, RunReport), StreamError> {
    let stage = InferStage {
        equiv,
        decoder: JsonDecoder::new().with_limits(fault.limits),
    };
    run_stage(ndjson, &stage, opts, fault)
}

/// Streaming inference over any [`StreamSource`]: in-memory slices ride
/// the work-stealing chunk dispatcher, readers stream out-of-core with
/// bounded resident memory. Semantics (policy, report, inferred type)
/// are identical to [`infer_streaming_guarded`] on the same bytes.
pub fn infer_streaming_source<R: std::io::BufRead + Send>(
    source: StreamSource<'_, R>,
    equiv: Equivalence,
    opts: StreamingOptions,
    chunk: ChunkOptions,
    fault: FaultOptions,
) -> Result<(JType, RunReport), StreamError> {
    let stage = InferStage {
        equiv,
        decoder: JsonDecoder::new().with_limits(fault.limits),
    };
    run_stage_source(source, &stage, opts, chunk, fault)
}

/// Streaming inference through an arbitrary [`RecordDecoder`] — the
/// source-agnostic entry point. [`infer_streaming_source`] is exactly
/// this with [`JsonDecoder`]; pass a
/// [`CsvDecoder`](jsonx_syntax::CsvDecoder) (or any other implementation)
/// and the full engine — work stealing, out-of-core chunking, error
/// policies, quarantine — runs unchanged over the new source.
pub fn infer_streaming_decoded<R: std::io::BufRead + Send, D: RecordDecoder>(
    source: StreamSource<'_, R>,
    decoder: D,
    equiv: Equivalence,
    opts: StreamingOptions,
    chunk: ChunkOptions,
    fault: FaultOptions,
) -> Result<(JType, RunReport), StreamError> {
    let stage = InferStage { equiv, decoder };
    run_stage_source(source, &stage, opts, chunk, fault)
}

// ---------------------------------------------------------------------------
// Validation stage
// ---------------------------------------------------------------------------

/// Per-line outcome of streaming NDJSON validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineVerdict {
    /// The line parsed and satisfies the schema.
    Valid,
    /// The line parsed but violates the schema.
    Invalid,
    /// The line is not well-formed JSON.
    Malformed(ParseError),
}

impl LineVerdict {
    /// True only for [`LineVerdict::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, LineVerdict::Valid)
    }
}

/// The validation stage: one fail-fast [`FastValidator`] per worker,
/// verdict vectors concatenated in shard order.
///
/// Two faces share this stage. The historical one (`malformed_verdicts`)
/// records malformed lines as inline [`LineVerdict::Malformed`] entries
/// and never rejects a record; the guarded one rejects malformed lines to
/// the fault layer, so the verdict vector covers exactly the records that
/// parsed.
pub(crate) struct ValidateStage<'s, D> {
    pub(crate) schema: &'s CompiledSchema,
    pub(crate) options: ValidatorOptions,
    pub(crate) malformed_verdicts: bool,
    /// How record text becomes a document. The JSON paths pass
    /// [`FastJsonDecoder`], whose `decode_value` tries the SWAR
    /// projecting fast path first and falls back to the full parser —
    /// verdicts are identical either way (the scanner never accepts a
    /// record the parser rejects). Any other decoder plugs in here
    /// unchanged.
    pub(crate) decoder: D,
}

impl<'s, D: RecordDecoder> RecordStage for ValidateStage<'s, D> {
    type State = (FastValidator<'s>, Vec<(usize, LineVerdict)>, D::Scratch);
    type Out = Vec<(usize, LineVerdict)>;

    fn init(&self) -> Self::State {
        (
            self.schema.fast_validator_with(self.options),
            Vec::new(),
            self.decoder.scratch(),
        )
    }

    fn record(
        &self,
        (validator, verdicts, scratch): &mut Self::State,
        line: &str,
        record: usize,
    ) -> Result<(), RecordIssue> {
        match self.decoder.decode_value(scratch, line) {
            Ok(doc) => {
                let verdict = if validator.is_valid(&doc) {
                    LineVerdict::Valid
                } else {
                    LineVerdict::Invalid
                };
                verdicts.push((record, verdict));
                Ok(())
            }
            Err(e) if self.malformed_verdicts => {
                verdicts.push((record, LineVerdict::Malformed(e)));
                Ok(())
            }
            Err(e) => Err(RecordIssue::Parse(e)),
        }
    }

    fn finish(&self, (_, verdicts, _): Self::State) -> Self::Out {
        verdicts
    }

    fn merge(&self, mut left: Self::Out, right: Self::Out) -> Self::Out {
        left.extend(right);
        left
    }

    fn take(&self, (_, verdicts, _): &mut Self::State) -> Self::Out {
        // Validator and decoder scratch survive across chunks; verdicts
        // are the chunk's output.
        std::mem::take(verdicts)
    }
}

/// Validates an NDJSON collection line by line on the fail-fast path.
///
/// Each non-blank line is parsed and probed with the compiled validation IR
/// (the allocation-free boolean path behind
/// [`CompiledSchema::is_valid`]); verdicts are **identical** to running the
/// error-collecting interpreter per document — property-tested in
/// `tests/streaming_validation.rs` — so callers wanting diagnostics can
/// re-run [`CompiledSchema::validate`] on just the invalid lines.
pub fn validate_streaming(
    ndjson: &str,
    schema: &CompiledSchema,
    options: ValidatorOptions,
) -> Vec<(usize, LineVerdict)> {
    validate_streaming_parallel(ndjson, schema, options, StreamingOptions::with_workers(1))
}

/// Validates an NDJSON collection on parallel workers.
///
/// Reuses the newline-boundary sharding of
/// [`infer_streaming_parallel`]: the input splits into contiguous shards
/// snapped to newline boundaries, each scoped worker owns one fail-fast
/// validator for its shard, and the per-shard verdict vectors concatenate
/// in shard order — so the result is *positionally identical* to
/// [`validate_streaming`] for every worker count. Small inputs (or
/// `workers == 1`) fall back to the sequential path.
pub fn validate_streaming_parallel(
    ndjson: &str,
    schema: &CompiledSchema,
    options: ValidatorOptions,
    opts: StreamingOptions,
) -> Vec<(usize, LineVerdict)> {
    validate_parallel_impl(ndjson, schema, options, opts, None)
}

/// [`validate_streaming_parallel`] with the fused SWAR fast path enabled.
///
/// When the compiled schema is projectable
/// ([`CompiledSchema::root_projection`]), each worker first runs the
/// word-parallel structural scanner, validating only the fields the
/// schema can observe; records the scanner declines — and every record of
/// a non-projectable schema — take the full parser, so the verdict vector
/// is **identical** to [`validate_streaming_parallel`] at every worker
/// count (pinned by `tests/parsing_fastpath.rs`).
pub fn validate_streaming_parallel_fast(
    ndjson: &str,
    schema: &CompiledSchema,
    options: ValidatorOptions,
    opts: StreamingOptions,
) -> Vec<(usize, LineVerdict)> {
    let fast = FastPlan::for_validation(schema, &ParseLimits::default());
    validate_parallel_impl(ndjson, schema, options, opts, fast)
}

fn validate_parallel_impl(
    ndjson: &str,
    schema: &CompiledSchema,
    options: ValidatorOptions,
    opts: StreamingOptions,
    fast: Option<FastPlan>,
) -> Vec<(usize, LineVerdict)> {
    let stage = ValidateStage {
        schema,
        options,
        malformed_verdicts: true,
        decoder: FastJsonDecoder::new(fast, ParseLimits::default()),
    };
    // With malformed lines recorded as inline verdicts, the stage rejects
    // nothing, so the fail-fast run can only fail on a poisoned shard.
    match run_stage(ndjson, &stage, opts, FaultOptions::default()) {
        Ok((verdicts, _report)) => verdicts,
        Err(StreamError::ShardPanicked(p)) => panic!("pipeline {p}"),
        Err(e) => unreachable!("verdict-only validation produced {e:?}"),
    }
}

/// Streaming validation under an explicit [error policy](FaultOptions).
///
/// Unlike [`validate_streaming_parallel`] — which records malformed lines
/// as inline [`LineVerdict::Malformed`] entries — the guarded face hands
/// malformed records (and limit violations) to the fault layer: under
/// `FailFast` the first one aborts the run, under `Skip`/`Collect` they
/// are accounted in the [`RunReport`] (and quarantinable), and the verdict
/// vector covers exactly the records that parsed.
pub fn validate_streaming_guarded(
    ndjson: &str,
    schema: &CompiledSchema,
    options: ValidatorOptions,
    opts: StreamingOptions,
    fault: FaultOptions,
) -> Result<(Vec<(usize, LineVerdict)>, RunReport), StreamError> {
    validate_guarded_impl(ndjson, schema, options, opts, fault, None)
}

/// [`validate_streaming_guarded`] with the fused SWAR fast path enabled.
///
/// Fast-path acceptance implies well-formedness, so a scanner-accepted
/// record can never reach the fault layer as a parse reject; declined
/// records run the full parser whose error kind and offset remain
/// authoritative. Verdicts, [`RunReport`]s and [`StreamError`]s are
/// identical to [`validate_streaming_guarded`] under every policy.
pub fn validate_streaming_guarded_fast(
    ndjson: &str,
    schema: &CompiledSchema,
    options: ValidatorOptions,
    opts: StreamingOptions,
    fault: FaultOptions,
) -> Result<(Vec<(usize, LineVerdict)>, RunReport), StreamError> {
    let fast = FastPlan::for_validation(schema, &fault.limits);
    validate_guarded_impl(ndjson, schema, options, opts, fault, fast)
}

fn validate_guarded_impl(
    ndjson: &str,
    schema: &CompiledSchema,
    options: ValidatorOptions,
    opts: StreamingOptions,
    fault: FaultOptions,
    fast: Option<FastPlan>,
) -> Result<(Vec<(usize, LineVerdict)>, RunReport), StreamError> {
    let stage = ValidateStage {
        schema,
        options,
        malformed_verdicts: false,
        decoder: FastJsonDecoder::new(fast, fault.limits),
    };
    run_stage(ndjson, &stage, opts, fault)
}

/// Streaming validation over any [`StreamSource`]; `fast` enables the
/// SWAR projecting fast path when the schema supports it (verdicts are
/// identical either way). Semantics match
/// [`validate_streaming_guarded`] / [`validate_streaming_guarded_fast`]
/// on the same bytes; readers stream out-of-core with bounded resident
/// memory.
pub fn validate_streaming_source<R: std::io::BufRead + Send>(
    source: StreamSource<'_, R>,
    schema: &CompiledSchema,
    options: ValidatorOptions,
    opts: StreamingOptions,
    chunk: ChunkOptions,
    fault: FaultOptions,
    fast: bool,
) -> Result<(Vec<(usize, LineVerdict)>, RunReport), StreamError> {
    let stage = ValidateStage {
        schema,
        options,
        malformed_verdicts: false,
        decoder: FastJsonDecoder::new(
            if fast {
                FastPlan::for_validation(schema, &fault.limits)
            } else {
                None
            },
            fault.limits,
        ),
    };
    run_stage_source(source, &stage, opts, chunk, fault)
}

/// Streaming validation through an arbitrary [`RecordDecoder`]: decoded
/// records probe the compiled validator exactly as parsed JSON documents
/// would, with malformed records handed to the fault layer. This is how
/// a CSV corpus validates against a JSON Schema without any
/// format-specific validation code.
pub fn validate_streaming_decoded<R: std::io::BufRead + Send, D: RecordDecoder>(
    source: StreamSource<'_, R>,
    decoder: D,
    schema: &CompiledSchema,
    options: ValidatorOptions,
    opts: StreamingOptions,
    chunk: ChunkOptions,
    fault: FaultOptions,
) -> Result<(Vec<(usize, LineVerdict)>, RunReport), StreamError> {
    let stage = ValidateStage {
        schema,
        options,
        malformed_verdicts: false,
        decoder,
    };
    run_stage_source(source, &stage, opts, chunk, fault)
}

// ---------------------------------------------------------------------------
// Combined infer + validate stage (single pass)
// ---------------------------------------------------------------------------

/// Result of the combined single-pass infer + validate stage.
#[derive(Debug, Clone)]
pub struct InferValidateOutcome {
    /// The collection type — identical to what [`infer_streaming`] returns
    /// on the same input.
    pub ty: Result<JType, (usize, ParseError)>,
    /// Per-line verdicts in input order — `is_valid`-identical to
    /// [`validate_streaming`] on the same input.
    pub verdicts: Vec<(usize, LineVerdict)>,
}

/// The combined stage: one tokenisation per line feeds both the typer and
/// the compiled validator.
struct InferValidateFold<'s> {
    equiv: Equivalence,
    schema: &'s CompiledSchema,
    options: ValidatorOptions,
}

struct InferValidateState<'s> {
    typer: StreamTyper,
    validator: FastValidator<'s>,
    acc: Result<JType, (usize, ParseError)>,
    verdicts: Vec<(usize, LineVerdict)>,
}

impl<'s> ShardFold<str> for InferValidateFold<'s> {
    type State = InferValidateState<'s>;
    type Out = InferValidateOutcome;

    fn init(&self) -> InferValidateState<'s> {
        InferValidateState {
            typer: StreamTyper::new(self.equiv),
            validator: self.schema.fast_validator_with(self.options),
            acc: Ok(JType::Bottom),
            verdicts: Vec::new(),
        }
    }

    fn feed(&self, state: &mut InferValidateState<'s>, line: &str, line_no: usize) {
        if line.trim().is_empty() {
            return;
        }
        match state.typer.type_and_build(line.as_bytes()) {
            Ok((ty, doc)) => {
                if let Ok(acc) = &mut state.acc {
                    let current = std::mem::replace(acc, JType::Bottom);
                    *acc = fuse(current, ty, self.equiv);
                }
                let verdict = if state.validator.is_valid(&doc) {
                    LineVerdict::Valid
                } else {
                    LineVerdict::Invalid
                };
                state.verdicts.push((line_no, verdict));
            }
            Err(e) => {
                if state.acc.is_ok() {
                    state.acc = Err((line_no, e.clone()));
                }
                state.verdicts.push((line_no, LineVerdict::Malformed(e)));
            }
        }
    }

    fn finish(&self, state: InferValidateState<'s>) -> InferValidateOutcome {
        InferValidateOutcome {
            ty: state.acc,
            verdicts: state.verdicts,
        }
    }

    fn merge(&self, left: InferValidateOutcome, right: InferValidateOutcome) -> Self::Out {
        let mut verdicts = left.verdicts;
        verdicts.extend(right.verdicts);
        InferValidateOutcome {
            ty: merge_line_results(left.ty, right.ty, |a, b| fuse(a, b, self.equiv)),
            verdicts,
        }
    }

    fn take(&self, state: &mut InferValidateState<'s>) -> InferValidateOutcome {
        // Typer and validator survive across chunks; the fused type and
        // the verdict vector are the chunk's output.
        InferValidateOutcome {
            ty: std::mem::replace(&mut state.acc, Ok(JType::Bottom)),
            verdicts: std::mem::take(&mut state.verdicts),
        }
    }
}

/// Infers **and** validates an NDJSON collection in one sequential pass.
///
/// Each non-blank line is tokenised once
/// ([`StreamTyper::type_and_build`]): the raw-event walk types the line
/// for the fusion fold while rebuilding the document value for the
/// compiled fail-fast validator. The outcome's type equals
/// [`infer_streaming`] and its verdicts equal [`validate_streaming`] on
/// the same input — pinned by `tests/pipeline_equivalence.rs` — for half the
/// tokenisation work of running the two passes back to back.
pub fn infer_validate_streaming(
    ndjson: &str,
    equiv: Equivalence,
    schema: &CompiledSchema,
    options: ValidatorOptions,
) -> InferValidateOutcome {
    infer_validate_streaming_parallel(
        ndjson,
        equiv,
        schema,
        options,
        StreamingOptions::with_workers(1),
    )
}

/// The combined single-pass stage on parallel workers: sharding and merge
/// semantics of [`infer_streaming_parallel`] and
/// [`validate_streaming_parallel`] at once, in one pass over the bytes.
pub fn infer_validate_streaming_parallel(
    ndjson: &str,
    equiv: Equivalence,
    schema: &CompiledSchema,
    options: ValidatorOptions,
    opts: StreamingOptions,
) -> InferValidateOutcome {
    let fold = InferValidateFold {
        equiv,
        schema,
        options,
    };
    match run_lines(ndjson, &fold, opts) {
        Ok(outcome) => outcome,
        Err(p) => panic!("pipeline {p}"),
    }
}

/// The combined single-pass stage under a tolerant policy: one
/// tokenisation per accepted record feeds both the typer and the compiled
/// validator; rejected records appear in neither the type nor the verdict
/// vector (unlike the legacy combined pass, which records malformed lines
/// as inline verdicts).
struct InferValidateStage<'s, D: RecordDecoder> {
    equiv: Equivalence,
    schema: &'s CompiledSchema,
    options: ValidatorOptions,
    decoder: D,
}

impl<'s, D: RecordDecoder> RecordStage for InferValidateStage<'s, D> {
    type State = (
        StreamTyper,
        FastValidator<'s>,
        D::Scratch,
        JType,
        Vec<(usize, LineVerdict)>,
    );
    type Out = (JType, Vec<(usize, LineVerdict)>);

    fn init(&self) -> Self::State {
        (
            StreamTyper::new(self.equiv),
            self.schema.fast_validator_with(self.options),
            self.decoder.scratch(),
            JType::Bottom,
            Vec::new(),
        )
    }

    fn record(
        &self,
        (typer, validator, scratch, acc, verdicts): &mut Self::State,
        line: &str,
        record: usize,
    ) -> Result<(), RecordIssue> {
        let (ty, doc) = typer
            .type_and_build_decoded(&self.decoder, scratch, line)
            .map_err(RecordIssue::Parse)?;
        let current = std::mem::replace(acc, JType::Bottom);
        *acc = fuse(current, ty, self.equiv);
        let verdict = if validator.is_valid(&doc) {
            LineVerdict::Valid
        } else {
            LineVerdict::Invalid
        };
        verdicts.push((record, verdict));
        Ok(())
    }

    fn finish(&self, (_, _, _, acc, verdicts): Self::State) -> Self::Out {
        (acc, verdicts)
    }

    fn merge(&self, left: Self::Out, right: Self::Out) -> Self::Out {
        let (lty, mut lverdicts) = left;
        let (rty, rverdicts) = right;
        lverdicts.extend(rverdicts);
        (fuse(lty, rty, self.equiv), lverdicts)
    }

    fn take(&self, (_, _, _, acc, verdicts): &mut Self::State) -> Self::Out {
        (
            std::mem::replace(acc, JType::Bottom),
            std::mem::take(verdicts),
        )
    }
}

/// What a successful guarded combined pass yields: the fused collection
/// type next to the per-record verdicts (original record indices).
pub type TypedVerdicts = (JType, Vec<(usize, LineVerdict)>);

/// The combined single-pass stage under an explicit
/// [error policy](FaultOptions): the inferred type and the verdicts both
/// cover exactly the accepted records, with rejects accounted in the
/// [`RunReport`].
pub fn infer_validate_streaming_guarded(
    ndjson: &str,
    equiv: Equivalence,
    schema: &CompiledSchema,
    options: ValidatorOptions,
    opts: StreamingOptions,
    fault: FaultOptions,
) -> Result<(TypedVerdicts, RunReport), StreamError> {
    let stage = InferValidateStage {
        equiv,
        schema,
        options,
        decoder: JsonDecoder::new().with_limits(fault.limits),
    };
    run_stage(ndjson, &stage, opts, fault)
}

/// The combined single-pass stage over any [`StreamSource`]; semantics
/// match [`infer_validate_streaming_guarded`] on the same bytes, with
/// readers streamed out-of-core under bounded resident memory.
pub fn infer_validate_streaming_source<R: std::io::BufRead + Send>(
    source: StreamSource<'_, R>,
    equiv: Equivalence,
    schema: &CompiledSchema,
    options: ValidatorOptions,
    opts: StreamingOptions,
    chunk: ChunkOptions,
    fault: FaultOptions,
) -> Result<(TypedVerdicts, RunReport), StreamError> {
    let stage = InferValidateStage {
        equiv,
        schema,
        options,
        decoder: JsonDecoder::new().with_limits(fault.limits),
    };
    run_stage_source(source, &stage, opts, chunk, fault)
}

/// The combined single-pass stage through an arbitrary
/// [`RecordDecoder`]: one decode per accepted record feeds both the
/// typer and the compiled validator, whatever the source format.
#[allow(clippy::too_many_arguments)]
pub fn infer_validate_streaming_decoded<R: std::io::BufRead + Send, D: RecordDecoder>(
    source: StreamSource<'_, R>,
    decoder: D,
    equiv: Equivalence,
    schema: &CompiledSchema,
    options: ValidatorOptions,
    opts: StreamingOptions,
    chunk: ChunkOptions,
    fault: FaultOptions,
) -> Result<(TypedVerdicts, RunReport), StreamError> {
    let stage = InferValidateStage {
        equiv,
        schema,
        options,
        decoder,
    };
    run_stage_source(source, &stage, opts, chunk, fault)
}

// ---------------------------------------------------------------------------
// Schema-driven translation stage (§5)
// ---------------------------------------------------------------------------

/// Per-line failure of the streaming translation stage.
#[derive(Debug, Clone, PartialEq)]
pub enum TranslateLineError {
    /// The line is not well-formed JSON.
    Malformed(ParseError),
    /// The line parsed but is not a JSON object (columnar batches shred
    /// records only — the streaming face of
    /// [`ShredError::NotARecord`]).
    NotARecord,
}

impl std::fmt::Display for TranslateLineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateLineError::Malformed(e) => write!(f, "{e}"),
            TranslateLineError::NotARecord => write!(f, "not a JSON object"),
        }
    }
}

/// The translation stage: one [`ShredStream`] per worker over a shared
/// fixed layout, per-shard batches concatenated in shard order.
pub(crate) struct TranslateStage<'t, D> {
    pub(crate) shredder: &'t Shredder,
    /// How record text becomes a document. The JSON paths pass
    /// [`FastJsonDecoder`] (SWAR projection to the shred plan's root
    /// fields, dotted skipped keys rejected so column paths can't alias,
    /// full-parser fallback — batches row-identical either way); any
    /// other decoder feeds the same shredder unchanged.
    pub(crate) decoder: D,
}

impl<'t, D: RecordDecoder> RecordStage for TranslateStage<'t, D> {
    type State = (ShredStream<'t>, D::Scratch);
    type Out = ColumnarBatch;

    fn init(&self) -> Self::State {
        (self.shredder.stream(), self.decoder.scratch())
    }

    fn record(
        &self,
        (stream, scratch): &mut Self::State,
        line: &str,
        _record: usize,
    ) -> Result<(), RecordIssue> {
        let doc = self
            .decoder
            .decode_value(scratch, line)
            .map_err(RecordIssue::Parse)?;
        match stream.push(&doc) {
            Err(ShredError::NotARecord { .. }) => Err(RecordIssue::NotARecord),
            _ => Ok(()),
        }
    }

    fn finish(&self, (stream, _): Self::State) -> ColumnarBatch {
        stream.finish()
    }

    fn merge(&self, mut left: ColumnarBatch, right: ColumnarBatch) -> ColumnarBatch {
        left.append(right);
        left
    }

    fn take(&self, (stream, _): &mut Self::State) -> ColumnarBatch {
        // Column builders reset inside `take_batch`; the decoder's
        // scratch survives across chunks.
        stream.take_batch()
    }
}

/// Translates an NDJSON collection into one columnar batch, sequentially.
///
/// Schema-driven (§5): `shredder` must carry a fixed layout
/// ([`Shredder::from_type`], typically over a type inferred by
/// [`infer_streaming`]). The batch is identical to parsing every line and
/// shredding the whole collection with
/// [`Shredder::shred`](jsonx_translate::Shredder::shred) — property-tested
/// in `tests/pipeline_equivalence.rs`. Errors carry the zero-based line index
/// of the first offending line.
pub fn translate_streaming(
    ndjson: &str,
    shredder: &Shredder,
) -> Result<ColumnarBatch, (usize, TranslateLineError)> {
    translate_streaming_parallel(ndjson, shredder, StreamingOptions::with_workers(1))
}

/// Streaming schema-driven translation on parallel workers.
///
/// Each scoped worker shreds its newline-bounded shard into a private
/// [`ShredStream`] over the shared layout; per-shard batches concatenate
/// in shard order, so the batch is row-identical to [`translate_streaming`]
/// — and to the DOM path — at every worker count.
pub fn translate_streaming_parallel(
    ndjson: &str,
    shredder: &Shredder,
    opts: StreamingOptions,
) -> Result<ColumnarBatch, (usize, TranslateLineError)> {
    translate_parallel_impl(ndjson, shredder, opts, None)
}

/// [`translate_streaming_parallel`] with the fused SWAR fast path enabled.
///
/// When the shredder carries a fixed record layout
/// ([`Shredder::root_fields`]), each worker first runs the word-parallel
/// structural scanner projected to the layout's top-level fields; records
/// it declines — including any with skipped dotted root keys, which could
/// alias a nested column path — take the full parser. Batches are
/// row-identical to [`translate_streaming_parallel`] at every worker
/// count (pinned by `tests/parsing_fastpath.rs`).
pub fn translate_streaming_parallel_fast(
    ndjson: &str,
    shredder: &Shredder,
    opts: StreamingOptions,
) -> Result<ColumnarBatch, (usize, TranslateLineError)> {
    let fast = FastPlan::for_translation(shredder, &ParseLimits::default());
    translate_parallel_impl(ndjson, shredder, opts, fast)
}

fn translate_parallel_impl(
    ndjson: &str,
    shredder: &Shredder,
    opts: StreamingOptions,
    fast: Option<FastPlan>,
) -> Result<ColumnarBatch, (usize, TranslateLineError)> {
    let stage = TranslateStage {
        shredder,
        decoder: FastJsonDecoder::new(fast, ParseLimits::default()),
    };
    match run_stage(ndjson, &stage, opts, FaultOptions::default()) {
        Ok((batch, _report)) => Ok(batch),
        Err(StreamError::Record { record, issue }) => Err((
            record,
            match issue {
                RecordIssue::Parse(e) => TranslateLineError::Malformed(e),
                RecordIssue::NotARecord => TranslateLineError::NotARecord,
            },
        )),
        Err(StreamError::ShardPanicked(p)) => panic!("pipeline {p}"),
        Err(e) => unreachable!("fail-fast translation produced {e:?}"),
    }
}

/// Streaming schema-driven translation under an explicit
/// [error policy](FaultOptions): under `Skip`/`Collect` rejected records
/// (malformed JSON, non-record lines, limit violations) simply contribute
/// no row, and the batch equals what `FailFast` builds on the same corpus
/// with the rejected lines removed.
pub fn translate_streaming_guarded(
    ndjson: &str,
    shredder: &Shredder,
    opts: StreamingOptions,
    fault: FaultOptions,
) -> Result<(ColumnarBatch, RunReport), StreamError> {
    translate_guarded_impl(ndjson, shredder, opts, fault, None)
}

/// [`translate_streaming_guarded`] with the fused SWAR fast path enabled.
///
/// Scanner-accepted records are well-formed objects, so they can reach
/// the fault layer only through the central record-size guard (which runs
/// before either parser) — never as parse or `NotARecord` rejects.
/// Batches, [`RunReport`]s and [`StreamError`]s are identical to
/// [`translate_streaming_guarded`] under every policy.
pub fn translate_streaming_guarded_fast(
    ndjson: &str,
    shredder: &Shredder,
    opts: StreamingOptions,
    fault: FaultOptions,
) -> Result<(ColumnarBatch, RunReport), StreamError> {
    let fast = FastPlan::for_translation(shredder, &fault.limits);
    translate_guarded_impl(ndjson, shredder, opts, fault, fast)
}

fn translate_guarded_impl(
    ndjson: &str,
    shredder: &Shredder,
    opts: StreamingOptions,
    fault: FaultOptions,
    fast: Option<FastPlan>,
) -> Result<(ColumnarBatch, RunReport), StreamError> {
    let stage = TranslateStage {
        shredder,
        decoder: FastJsonDecoder::new(fast, fault.limits),
    };
    run_stage(ndjson, &stage, opts, fault)
}

/// Streaming schema-driven translation over any [`StreamSource`];
/// `fast` enables the SWAR projecting fast path when the shredder's
/// layout supports it (batches are row-identical either way). Semantics
/// match [`translate_streaming_guarded`] /
/// [`translate_streaming_guarded_fast`] on the same bytes; readers
/// stream out-of-core with bounded resident memory.
pub fn translate_streaming_source<R: std::io::BufRead + Send>(
    source: StreamSource<'_, R>,
    shredder: &Shredder,
    opts: StreamingOptions,
    chunk: ChunkOptions,
    fault: FaultOptions,
    fast: bool,
) -> Result<(ColumnarBatch, RunReport), StreamError> {
    let stage = TranslateStage {
        shredder,
        decoder: FastJsonDecoder::new(
            if fast {
                FastPlan::for_translation(shredder, &fault.limits)
            } else {
                None
            },
            fault.limits,
        ),
    };
    run_stage_source(source, &stage, opts, chunk, fault)
}

/// Streaming schema-driven translation through an arbitrary
/// [`RecordDecoder`]: decoded records shred into the fixed columnar
/// layout exactly as parsed JSON objects would — the path that turns a
/// CSV corpus into the same [`ColumnarBatch`] (and on-disk `.jxc` file)
/// as its NDJSON rendering.
pub fn translate_streaming_decoded<R: std::io::BufRead + Send, D: RecordDecoder>(
    source: StreamSource<'_, R>,
    decoder: D,
    shredder: &Shredder,
    opts: StreamingOptions,
    chunk: ChunkOptions,
    fault: FaultOptions,
) -> Result<(ColumnarBatch, RunReport), StreamError> {
    let stage = TranslateStage { shredder, decoder };
    run_stage_source(source, &stage, opts, chunk, fault)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_core::infer_collection;
    use jsonx_data::json;
    use jsonx_syntax::parse_ndjson;

    #[test]
    fn matches_dom_inference_on_mixed_documents() {
        let ndjson = r#"
{"id": 1, "tags": ["a", 2], "geo": null}
{"id": "x", "geo": {"lat": 1.5}, "tags": []}
{"dup": 1, "dup": "last-wins"}
42
[1, {"k": true}]
"#;
        let docs = parse_ndjson(ndjson).unwrap();
        for equiv in [Equivalence::Kind, Equivalence::Label] {
            let dom = infer_collection(&docs, equiv);
            let streamed = infer_streaming(ndjson, equiv).unwrap();
            assert_eq!(streamed, dom, "equiv {equiv:?}");
        }
    }

    #[test]
    fn duplicate_keys_last_wins_like_dom() {
        let doc = br#"{"a": 1, "b": true, "a": "s", "a": null}"#;
        let streamed = infer_document_events(doc, Equivalence::Kind).unwrap();
        let dom = jsonx_syntax::parse(std::str::from_utf8(doc).unwrap()).unwrap();
        assert_eq!(streamed, jsonx_core::infer_value(&dom, Equivalence::Kind));
        match streamed {
            JType::Record(rt) => {
                assert_eq!(rt.fields.len(), 2);
                assert!(matches!(rt.field("a").unwrap().ty, JType::Null { .. }));
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn type_and_build_rebuilds_the_dom_value() {
        let mut typer = StreamTyper::new(Equivalence::Kind);
        for doc in [
            r#"{"a": 1, "b": [true, null, {"c": "x\ny"}], "geo": {"lat": 1.5}}"#,
            r#"{"dup": 1, "dup": "last-wins", "keep": 0}"#,
            r#"[[], {}, [1, "s"]]"#,
            "42",
            "\"plain\"",
            "null",
        ] {
            let (ty, built) = typer.type_and_build(doc.as_bytes()).unwrap();
            let dom = jsonx_syntax::parse(doc).unwrap();
            assert_eq!(built, dom, "doc {doc}");
            assert_eq!(ty, jsonx_core::infer_value(&dom, Equivalence::Kind));
        }
    }

    #[test]
    fn reports_line_of_malformed_document() {
        let err = infer_streaming("{\"a\":1}\n{bad\n", Equivalence::Kind).unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn empty_input_is_bottom() {
        assert_eq!(
            infer_streaming("", Equivalence::Kind).unwrap(),
            JType::Bottom
        );
    }

    #[test]
    fn typer_is_reusable_after_error() {
        let mut typer = StreamTyper::new(Equivalence::Kind);
        assert!(typer.type_document(b"{broken").is_err());
        let ty = typer.type_document(br#"{"ok": 1}"#).unwrap();
        assert!(matches!(ty, JType::Record(_)));
    }

    fn corpus_ndjson(n: usize) -> String {
        let mut out = String::new();
        for i in 0..n {
            match i % 4 {
                0 => out.push_str(&format!("{{\"id\": {i}, \"name\": \"a\"}}\n")),
                1 => out.push_str(&format!("{{\"id\": {i}}}\n")),
                2 => out.push_str(&format!("{{\"id\": \"s{i}\", \"tags\": [1, \"x\"]}}\n")),
                _ => out.push_str(&format!(
                    "{{\"geo\": {{\"lat\": 1.5, \"lon\": -0.5}}, \"id\": {i}}}\n"
                )),
            }
        }
        out
    }

    #[test]
    fn parallel_equals_sequential_and_dom() {
        let ndjson = corpus_ndjson(3_000);
        let docs = parse_ndjson(&ndjson).unwrap();
        for equiv in [Equivalence::Kind, Equivalence::Label] {
            let dom = infer_collection(&docs, equiv);
            let seq = infer_streaming(&ndjson, equiv).unwrap();
            assert_eq!(seq, dom);
            for workers in [1, 2, 3, 8] {
                let par = infer_streaming_parallel(
                    &ndjson,
                    equiv,
                    StreamingOptions {
                        workers,
                        min_shard_bytes: 256,
                    },
                )
                .unwrap();
                assert_eq!(par, dom, "workers={workers} equiv={equiv:?}");
            }
        }
    }

    #[test]
    fn parallel_reports_first_error_line() {
        let base = corpus_ndjson(500);
        let total = base.lines().count();
        // Corrupt two lines, one early and one late; the early one must win
        // regardless of which shard fails first.
        let mut corrupted: Vec<String> = base.lines().map(str::to_string).collect();
        corrupted[40] = "{oops".to_string();
        corrupted[total - 10] = "[1,".to_string();
        let mut ndjson = corrupted.join("\n");
        ndjson.push('\n');
        let seq_err = infer_streaming(&ndjson, Equivalence::Kind).unwrap_err();
        let par_err = infer_streaming_parallel(
            &ndjson,
            Equivalence::Kind,
            StreamingOptions {
                workers: 4,
                min_shard_bytes: 64,
            },
        )
        .unwrap_err();
        assert_eq!(seq_err.0, 40);
        assert_eq!(par_err.0, seq_err.0);
        assert_eq!(par_err.1.kind, seq_err.1.kind);
    }

    #[test]
    fn small_inputs_fall_back_to_sequential() {
        let ndjson = corpus_ndjson(10);
        let par = infer_streaming_parallel(&ndjson, Equivalence::Kind, StreamingOptions::default())
            .unwrap();
        assert_eq!(par, infer_streaming(&ndjson, Equivalence::Kind).unwrap());
    }

    #[test]
    fn combined_pass_matches_two_passes() {
        let schema_doc = json!({
            "type": "object",
            "properties": {"id": {"type": "integer"}},
            "required": ["id"]
        });
        let schema = CompiledSchema::compile(&schema_doc).unwrap();
        let vopts = ValidatorOptions::default();
        let ndjson = corpus_ndjson(600);
        let ty = infer_streaming(&ndjson, Equivalence::Kind).unwrap();
        let verdicts = validate_streaming(&ndjson, &schema, vopts);
        for workers in [1, 2, 3, 8] {
            let combined = infer_validate_streaming_parallel(
                &ndjson,
                Equivalence::Kind,
                &schema,
                vopts,
                StreamingOptions {
                    workers,
                    min_shard_bytes: 128,
                },
            );
            assert_eq!(combined.ty.as_ref().unwrap(), &ty, "workers={workers}");
            assert_eq!(combined.verdicts, verdicts, "workers={workers}");
        }
    }

    #[test]
    fn combined_pass_reports_first_error_and_malformed_verdicts() {
        let schema = CompiledSchema::compile(&json!({"type": "object"})).unwrap();
        let ndjson = "{\"a\": 1}\n{bad\nnot json\n{\"b\": 2}\n";
        let outcome = infer_validate_streaming(
            ndjson,
            Equivalence::Kind,
            &schema,
            ValidatorOptions::default(),
        );
        assert_eq!(outcome.ty.unwrap_err().0, 1);
        assert_eq!(outcome.verdicts.len(), 4);
        assert!(outcome.verdicts[0].1.is_valid());
        assert!(matches!(outcome.verdicts[1].1, LineVerdict::Malformed(_)));
        assert!(matches!(outcome.verdicts[2].1, LineVerdict::Malformed(_)));
        assert!(outcome.verdicts[3].1.is_valid());
    }

    #[test]
    fn streaming_translation_matches_dom_shred() {
        let ndjson = corpus_ndjson(500);
        let docs = parse_ndjson(&ndjson).unwrap();
        let ty = infer_collection(&docs, Equivalence::Kind);
        let shredder = Shredder::from_type(&ty);
        let dom = shredder.clone().shred(&docs).unwrap();
        for workers in [1, 2, 3, 8] {
            let streamed = translate_streaming_parallel(
                &ndjson,
                &shredder,
                StreamingOptions {
                    workers,
                    min_shard_bytes: 128,
                },
            )
            .unwrap();
            assert_eq!(streamed, dom, "workers={workers}");
        }
    }

    #[test]
    fn streaming_translation_reports_first_bad_line() {
        let mut lines: Vec<String> = corpus_ndjson(200).lines().map(str::to_string).collect();
        lines[150] = "{oops".into();
        lines[20] = "[1, 2]".into(); // well-formed but not a record
        let ndjson = lines.join("\n") + "\n";
        let docs_ty = infer_collection(
            &parse_ndjson(&corpus_ndjson(10)).unwrap(),
            Equivalence::Kind,
        );
        let shredder = Shredder::from_type(&docs_ty);
        for workers in [1, 4] {
            let err = translate_streaming_parallel(
                &ndjson,
                &shredder,
                StreamingOptions {
                    workers,
                    min_shard_bytes: 64,
                },
            )
            .unwrap_err();
            assert_eq!(
                err,
                (20, TranslateLineError::NotARecord),
                "workers={workers}"
            );
        }
    }

    fn skip_fault(policy: ErrorPolicy) -> FaultOptions {
        FaultOptions {
            policy,
            keep_rejects: true,
            limits: ParseLimits::default(),
        }
    }

    #[test]
    fn skip_policy_infers_type_of_surviving_lines() {
        let mut lines: Vec<String> = corpus_ndjson(100).lines().map(str::to_string).collect();
        lines[13] = "{broken".into();
        lines[55] = "[1, 2".into();
        let dirty = lines.join("\n") + "\n";
        // Reference: blank the bad lines (preserving indices) and fail-fast.
        let mut clean_lines = lines.clone();
        clean_lines[13].clear();
        clean_lines[55].clear();
        let clean = clean_lines.join("\n") + "\n";
        let reference = infer_streaming(&clean, Equivalence::Kind).unwrap();
        for workers in [1, 2, 4] {
            let (ty, report) = infer_streaming_guarded(
                &dirty,
                Equivalence::Kind,
                StreamingOptions {
                    workers,
                    min_shard_bytes: 64,
                },
                skip_fault(ErrorPolicy::Skip { max_errors: None }),
            )
            .unwrap();
            assert_eq!(ty, reference, "workers={workers}");
            assert_eq!(report.errors.total, 2);
            let rejected: Vec<usize> = report.errors.rejects.iter().map(|d| d.record).collect();
            assert_eq!(rejected, vec![13, 55]);
            assert_eq!(report.errors.rejects[0].raw.as_deref(), Some("{broken"));
            assert_eq!(report.records, 100, "rejected lines still count as records");
        }
    }

    #[test]
    fn failfast_guarded_matches_legacy_error() {
        let mut lines: Vec<String> = corpus_ndjson(50).lines().map(str::to_string).collect();
        lines[20] = "{oops".into();
        let ndjson = lines.join("\n") + "\n";
        let legacy = infer_streaming(&ndjson, Equivalence::Kind).unwrap_err();
        let guarded = infer_streaming_guarded(
            &ndjson,
            Equivalence::Kind,
            StreamingOptions::with_workers(1),
            FaultOptions::default(),
        )
        .unwrap_err();
        match guarded {
            StreamError::Record {
                record,
                issue: RecordIssue::Parse(e),
            } => {
                assert_eq!(record, legacy.0);
                assert_eq!(e, legacy.1);
            }
            other => panic!("expected record fault, got {other:?}"),
        }
    }

    #[test]
    fn max_errors_bound_trips_deterministically() {
        let mut lines: Vec<String> = corpus_ndjson(60).lines().map(str::to_string).collect();
        for i in [5, 15, 25, 35] {
            lines[i] = "{bad".into();
        }
        let ndjson = lines.join("\n") + "\n";
        for workers in [1, 3] {
            let opts = StreamingOptions {
                workers,
                min_shard_bytes: 32,
            };
            // Bound above the rejection count: run succeeds.
            let (_, report) = infer_streaming_guarded(
                &ndjson,
                Equivalence::Kind,
                opts,
                skip_fault(ErrorPolicy::Skip {
                    max_errors: Some(4),
                }),
            )
            .unwrap();
            assert_eq!(report.errors.total, 4, "workers={workers}");
            // Bound below: the run fails with TooManyErrors.
            let err = infer_streaming_guarded(
                &ndjson,
                Equivalence::Kind,
                opts,
                skip_fault(ErrorPolicy::Skip {
                    max_errors: Some(3),
                }),
            )
            .unwrap_err();
            assert!(
                matches!(err, StreamError::TooManyErrors { limit: 3, .. }),
                "workers={workers}, got {err:?}"
            );
        }
    }

    #[test]
    fn collect_policy_retains_all_diagnostics_up_to_bound() {
        let mut lines: Vec<String> = corpus_ndjson(40).lines().map(str::to_string).collect();
        for i in [3, 9, 21] {
            lines[i] = "nope!".into();
        }
        let ndjson = lines.join("\n") + "\n";
        let (_, report) = infer_streaming_guarded(
            &ndjson,
            Equivalence::Kind,
            StreamingOptions::with_workers(1),
            FaultOptions {
                policy: ErrorPolicy::Collect { max_errors: 100 },
                keep_rejects: false,
                limits: ParseLimits::default(),
            },
        )
        .unwrap();
        assert_eq!(report.errors.rejects.len(), 3);
        assert_eq!(report.errors.dropped, 0);
        // Without keep_rejects the raw lines are not retained.
        assert!(report.errors.rejects.iter().all(|d| d.raw.is_none()));
    }

    #[test]
    fn resource_limits_reject_pathological_records() {
        let bomb = "[".repeat(200) + &"]".repeat(200);
        let huge = format!("[{}1]", "1, ".repeat(600));
        let ndjson = format!("{{\"ok\": 1}}\n{bomb}\n{huge}\n{{\"ok\": 2}}\n");
        let fault = FaultOptions {
            policy: ErrorPolicy::Skip { max_errors: None },
            keep_rejects: false,
            limits: ParseLimits::new()
                .with_max_depth(128)
                .with_max_input_bytes(1024)
                .with_max_string_bytes(64),
        };
        let (ty, report) = infer_streaming_guarded(
            &ndjson,
            Equivalence::Kind,
            StreamingOptions::with_workers(1),
            fault,
        )
        .unwrap();
        assert_eq!(report.errors.total, 2);
        assert_eq!(report.errors.by_kind["too-deep"], 1);
        assert_eq!(report.errors.by_kind["limit-exceeded-input-bytes"], 1);
        // Only the two {"ok": n} records contribute to the type.
        assert_eq!(ty.count(), 2);
    }

    #[test]
    fn string_limit_rejects_on_event_path() {
        let ndjson = format!("{{\"k\": \"{}\"}}\n{{\"k\": \"s\"}}\n", "y".repeat(100));
        let fault = FaultOptions {
            policy: ErrorPolicy::Skip { max_errors: None },
            keep_rejects: false,
            limits: ParseLimits::new().with_max_string_bytes(16),
        };
        let (_, report) = infer_streaming_guarded(
            &ndjson,
            Equivalence::Kind,
            StreamingOptions::with_workers(1),
            fault,
        )
        .unwrap();
        assert_eq!(report.errors.by_kind["limit-exceeded-string-bytes"], 1);
        assert_eq!(report.errors.total, 1);
    }

    #[test]
    fn guarded_validation_rejects_malformed_instead_of_verdicts() {
        let schema = CompiledSchema::compile(&json!({"type": "object"})).unwrap();
        let ndjson = "{\"a\": 1}\n{oops\n[1, 2]\n";
        let (verdicts, report) = validate_streaming_guarded(
            ndjson,
            &schema,
            ValidatorOptions::default(),
            StreamingOptions::with_workers(1),
            skip_fault(ErrorPolicy::Skip { max_errors: None }),
        )
        .unwrap();
        assert_eq!(
            verdicts,
            vec![(0, LineVerdict::Valid), (2, LineVerdict::Invalid)]
        );
        assert_eq!(report.errors.total, 1);
        assert_eq!(report.errors.rejects[0].record, 1);
    }

    #[test]
    fn guarded_translation_skips_non_records() {
        let ndjson = corpus_ndjson(30);
        let docs = parse_ndjson(&ndjson).unwrap();
        let ty = infer_collection(&docs, Equivalence::Kind);
        let shredder = Shredder::from_type(&ty);
        let mut lines: Vec<String> = ndjson.lines().map(str::to_string).collect();
        lines[10] = "[1, 2]".into();
        lines[17] = "{nope".into();
        let dirty = lines.join("\n") + "\n";
        let mut clean = lines.clone();
        clean[10].clear();
        clean[17].clear();
        let clean = clean.join("\n") + "\n";
        let reference = translate_streaming(&clean, &shredder).unwrap();
        let (batch, report) = translate_streaming_guarded(
            &dirty,
            &shredder,
            StreamingOptions::with_workers(1),
            skip_fault(ErrorPolicy::Skip { max_errors: None }),
        )
        .unwrap();
        assert_eq!(batch, reference);
        assert_eq!(report.errors.total, 2);
        assert_eq!(report.errors.by_kind["not-a-record"], 1);
    }

    /// A stage that panics on a trigger line — the facade-level face of
    /// the engine's panic isolation.
    struct PanicStage;

    impl RecordStage for PanicStage {
        type State = usize;
        type Out = usize;

        fn init(&self) -> usize {
            0
        }

        fn record(&self, seen: &mut usize, line: &str, _record: usize) -> Result<(), RecordIssue> {
            assert!(!line.contains("boom"), "injected stage panic");
            *seen += 1;
            Ok(())
        }

        fn finish(&self, seen: usize) -> usize {
            seen
        }

        fn merge(&self, a: usize, b: usize) -> usize {
            a + b
        }
    }

    #[test]
    fn panicked_shard_fails_cleanly_under_failfast() {
        let mut lines: Vec<String> = (0..80).map(|i| format!("{{\"i\": {i}}}")).collect();
        lines[60] = "{\"i\": \"boom\"}".into();
        let ndjson = lines.join("\n") + "\n";
        let err = run_stage(
            &ndjson,
            &PanicStage,
            StreamingOptions {
                workers: 4,
                min_shard_bytes: 32,
            },
            FaultOptions::default(),
        )
        .unwrap_err();
        match err {
            StreamError::ShardPanicked(p) => {
                assert!(p.message.contains("injected stage panic"));
            }
            other => panic!("expected shard panic, got {other:?}"),
        }
    }

    #[test]
    fn panicked_shard_degrades_gracefully_under_skip() {
        let mut lines: Vec<String> = (0..80).map(|i| format!("{{\"i\": {i}}}")).collect();
        lines[60] = "{\"i\": \"boom\"}".into();
        let ndjson = lines.join("\n") + "\n";
        let (seen, report) = run_stage(
            &ndjson,
            &PanicStage,
            StreamingOptions {
                workers: 4,
                min_shard_bytes: 32,
            },
            skip_fault(ErrorPolicy::Skip { max_errors: None }),
        )
        .unwrap();
        assert_eq!(report.poisoned.len(), 1, "one shard poisoned");
        assert!(report.poisoned[0].message.contains("injected stage panic"));
        assert!(report.shards > 1);
        // The surviving shards' records merged.
        assert!(seen > 0 && seen < 80, "got {seen}");
    }

    #[test]
    fn interner_shares_repeated_keys() {
        let mut typer = StreamTyper::new(Equivalence::Kind);
        let a = typer.type_document(br#"{"hot": 1}"#).unwrap();
        let b = typer.type_document(br#"{"hot": 2}"#).unwrap();
        let (JType::Record(ra), JType::Record(rb)) = (a, b) else {
            panic!("expected records");
        };
        assert!(FieldName::ptr_eq(&ra.fields[0].0, &rb.fields[0].0));
    }
}
