//! Streaming schema inference: typing documents straight off the event
//! stream, without materialising a DOM.
//!
//! The massive-collection setting of §4.1 is exactly where building a
//! [`Value`](jsonx_data::Value) per document hurts: the map step only
//! needs the *types*. [`infer_streaming`] fuses each document's type
//! directly from [`EventParser`] events, with
//! memory bounded by document depth rather than document size.

use jsonx_core::{fuse, Equivalence, JType};
use jsonx_core::{ArrayType, FieldType, RecordType};
use jsonx_syntax::{Event, EventParser, ParseError};

/// Infers the collection type of NDJSON text without building DOMs.
///
/// Equivalent to parsing every line and running
/// [`infer_collection`](jsonx_core::infer_collection) — property-tested in
/// `tests/streaming_inference.rs` — but allocation stays proportional to
/// nesting depth.
pub fn infer_streaming(ndjson: &str, equiv: Equivalence) -> Result<JType, (usize, ParseError)> {
    let mut acc = JType::Bottom;
    for (idx, line) in ndjson.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ty = infer_document_events(line.as_bytes(), equiv).map_err(|e| (idx, e))?;
        acc = fuse(acc, ty, equiv);
    }
    Ok(acc)
}

/// Types one document from its event stream.
pub fn infer_document_events(input: &[u8], equiv: Equivalence) -> Result<JType, ParseError> {
    let mut parser = EventParser::new(input);
    let mut stack: Vec<Frame> = Vec::new();
    let mut result: Option<JType> = None;

    while let Some(event) = parser.next_event()? {
        match event {
            Event::StartObject => stack.push(Frame::Record {
                fields: Vec::new(),
                pending_key: None,
            }),
            Event::StartArray => stack.push(Frame::Array {
                item: JType::Bottom,
                len: 0,
            }),
            Event::EndObject | Event::EndArray => {
                let frame = stack.pop().expect("balanced events");
                let ty = frame.finish();
                attach(&mut stack, &mut result, ty, equiv);
            }
            Event::Key(k) => {
                if let Some(Frame::Record { pending_key, .. }) = stack.last_mut() {
                    *pending_key = Some(k);
                }
            }
            Event::Null => attach(&mut stack, &mut result, JType::Null { count: 1 }, equiv),
            Event::Bool(_) => attach(&mut stack, &mut result, JType::Bool { count: 1 }, equiv),
            Event::Num(n) if n.is_integer() => {
                attach(&mut stack, &mut result, JType::Int { count: 1 }, equiv)
            }
            Event::Num(_) => attach(&mut stack, &mut result, JType::Float { count: 1 }, equiv),
            Event::Str(_) => attach(&mut stack, &mut result, JType::Str { count: 1 }, equiv),
        }
    }
    Ok(result.unwrap_or(JType::Bottom))
}

enum Frame {
    Record {
        fields: Vec<(String, FieldType)>,
        pending_key: Option<String>,
    },
    Array {
        item: JType,
        len: u64,
    },
}

impl Frame {
    fn finish(self) -> JType {
        match self {
            Frame::Record { mut fields, .. } => {
                fields.sort_by(|(a, _), (b, _)| a.cmp(b));
                JType::Record(RecordType { fields, count: 1 })
            }
            Frame::Array { item, len } => JType::Array(ArrayType {
                item: Box::new(item),
                count: 1,
                total_items: len,
            }),
        }
    }
}

fn attach(stack: &mut [Frame], result: &mut Option<JType>, ty: JType, equiv: Equivalence) {
    match stack.last_mut() {
        Some(Frame::Record {
            fields,
            pending_key,
        }) => {
            let key = pending_key.take().expect("key precedes value");
            // Duplicate keys: last wins, mirroring the DOM parser.
            fields.retain(|(k, _)| *k != key);
            fields.push((key, FieldType { ty, presence: 1 }));
        }
        Some(Frame::Array { item, len }) => {
            let current = std::mem::replace(item, JType::Bottom);
            *item = fuse(current, ty, equiv);
            *len += 1;
        }
        None => *result = Some(ty),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_core::infer_collection;
    use jsonx_syntax::parse_ndjson;

    #[test]
    fn matches_dom_inference_on_mixed_documents() {
        let ndjson = r#"
{"id": 1, "tags": ["a", 2], "geo": null}
{"id": "x", "geo": {"lat": 1.5}, "tags": []}
{"dup": 1, "dup": "last-wins"}
42
[1, {"k": true}]
"#;
        let docs = parse_ndjson(ndjson).unwrap();
        for equiv in [Equivalence::Kind, Equivalence::Label] {
            let dom = infer_collection(&docs, equiv);
            let streamed = infer_streaming(ndjson, equiv).unwrap();
            assert_eq!(streamed, dom, "equiv {equiv:?}");
        }
    }

    #[test]
    fn reports_line_of_malformed_document() {
        let err = infer_streaming("{\"a\":1}\n{bad\n", Equivalence::Kind).unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn empty_input_is_bottom() {
        assert_eq!(
            infer_streaming("", Equivalence::Kind).unwrap(),
            JType::Bottom
        );
    }
}
