//! # jsonx — Schemas And Types For JSON Data
//!
//! Facade crate re-exporting the whole `jsonx` workspace: a Rust toolkit for
//! JSON schema languages, structural type inference, structural-index
//! parsing, and schema-driven translation, reproducing the system landscape
//! of the EDBT 2019 tutorial *"Schemas And Types For JSON Data"* (Baazizi,
//! Colazzo, Ghelli, Sartiani).
//!
//! Sub-crates (also usable directly):
//!
//! * [`data`] — JSON value model, pointers, canonical comparison.
//! * [`syntax`] — from-scratch JSON lexer/parser/serializer and streaming.
//! * [`regex`] — the small regex engine behind schema `pattern` keywords.
//! * [`schema`] — JSON Schema (Pezoa et al. formal core) validator.
//! * [`joi`] — Joi-style object schema DSL with co-occurrence constraints.
//! * [`jsound`] — JSound-style compact schema-by-example language.
//! * [`skeleton`] — Wang et al. skeleton schemas (frequent-structure mining).
//! * [`core`] — the type algebra and parametric schema inference (K/L
//!   equivalences, counting types, parallel fusion).
//! * [`baselines`] — Spark-style, Studio3T-naive, mongodb-schema-style and
//!   Skinfer-style inference baselines.
//! * [`typelang`] — a miniature TypeScript/Swift-flavoured structural type
//!   system with typed decoding.
//! * [`mison`] — Mison-style structural-index parser with projection
//!   pushdown and a Fad.js-style speculative decoder.
//! * [`pipeline`] — the generic sharded fold engine behind every parallel
//!   entry point (newline sharding, scoped workers, shard-order fusion).
//! * [`translate`] — schema-driven translation to columnar batches and an
//!   Avro-like binary row format.
//! * [`gen`] — seeded synthetic dataset generators with heterogeneity dials.
//! * [`serve`] — the resident schema service: validate/infer/translate over
//!   a line protocol with bounded queues, deadlines, and hot reload.

pub mod checkpoint;
pub(crate) mod fastpath;
pub mod quarantine;
pub mod streaming;

pub use jsonx_baselines as baselines;
pub use jsonx_core as core;
pub use jsonx_data as data;
pub use jsonx_gen as gen;
pub use jsonx_jaql as jaql;
pub use jsonx_joi as joi;
pub use jsonx_jsound as jsound;
pub use jsonx_mison as mison;
pub use jsonx_regex as regex;
pub use jsonx_schema as schema;
pub use jsonx_serve as serve;
pub use jsonx_skeleton as skeleton;
pub use jsonx_syntax as syntax;
pub use jsonx_translate as translate;
pub use jsonx_typelang as typelang;

pub use checkpoint::{
    infer_streaming_journaled, translate_streaming_journaled, validate_streaming_journaled,
    JournalControl,
};
pub use jsonx_data::{json, Kind, Number, Object, Pointer, Value};
pub use jsonx_pipeline as pipeline;
pub use jsonx_pipeline::{
    ChunkOptions, ErrorPolicy, ErrorSummary, RecordDiagnostic, RunReport, ShardPanic, WorkerTiming,
};
pub use jsonx_syntax::{
    CsvDecoder, EventReceiver, JsonDecoder, ParseLimits, RecordDecoder, ValueBuilder,
};
pub use quarantine::{write_quarantine, write_quarantine_file};
pub use streaming::{
    infer_document_events, infer_streaming, infer_streaming_decoded, infer_streaming_guarded,
    infer_streaming_parallel, infer_streaming_source, infer_validate_streaming,
    infer_validate_streaming_decoded, infer_validate_streaming_guarded,
    infer_validate_streaming_parallel, infer_validate_streaming_source, translate_streaming,
    translate_streaming_decoded, translate_streaming_guarded, translate_streaming_guarded_fast,
    translate_streaming_parallel, translate_streaming_parallel_fast, translate_streaming_source,
    validate_streaming, validate_streaming_decoded, validate_streaming_guarded,
    validate_streaming_guarded_fast, validate_streaming_parallel, validate_streaming_parallel_fast,
    validate_streaming_source, FaultOptions, InferValidateOutcome, LineVerdict, RecordIssue,
    StreamError, StreamSource, StreamTyper, StreamingOptions, TranslateLineError,
};
