//! Crash-safe journaled runs: durable chunk-commit journals and
//! `--resume` for the out-of-core streaming stages.
//!
//! A journaled run writes one CRC-framed, fsync'd record per committed
//! chunk to a [journal](jsonx_pipeline::JournalWriter) *before* the
//! chunk's result is fused — and chunks commit strictly in input order
//! (see [`ChunkJournal`]). Because chunk boundaries depend only on the
//! byte stream and the chunk-size target (never on worker count or
//! scheduling), the journal is a durable, deterministic prefix of the
//! run: after a crash, a signal, or an operator stop, rerunning with the
//! same journal skips every committed chunk, seeks the input to the
//! first uncommitted byte, and merges fresh tail results onto the
//! decoded prefix. The final output is byte-identical to an
//! uninterrupted run at any worker count.
//!
//! What goes in a journal record is the chunk's **entire observable
//! effect**: the stage output (an inferred [`JType`], a verdict vector,
//! a columnar batch), the record count, and the full rejection account
//! (including raw quarantined lines when the run keeps them). Final
//! artifacts — stdout verdicts, the quarantine sidecar, the `.jxc` file
//! — are only written at end-of-run, exactly like an unjournaled run,
//! so the journal is the *only* durable state a resume needs.
//!
//! Torn tails are expected, not fatal: [`read_journal`] stops at the
//! first incomplete or CRC-failing record, and the resume path truncates
//! the file back to the intact prefix before appending
//! ([`JournalWriter::resume`]). A record damaged *before* the tail — or
//! a header that does not match the current invocation — means the
//! journal belongs to a different run (input replaced, options changed,
//! incompatible version) and the resume refuses instead of guessing.
//!
//! Translation journals both of its passes into one file, phase-tagged,
//! with a `type` marker record sealing phase 1 — so a kill during either
//! pass resumes precisely, and the shred layout is reconstructed from
//! the journal rather than re-inferred.

use crate::fastpath::{FastJsonDecoder, FastPlan};
use crate::streaming::{
    seal_stage_outcome, FaultFold, FaultOptions, InferStage, LineVerdict, RecordStage, ShardYield,
    StreamError, StreamingOptions, TranslateStage, ValidateStage,
};
use jsonx_core::{parse_type, print_type, Equivalence, JType, PrintOptions};
use jsonx_data::{Number, Object, Value};
use jsonx_pipeline::{
    read_journal, run_source_controlled, ChunkJournal, ChunkMeta, ChunkOptions, ErrorSummary,
    JournalWriter, ReaderChunks, RecordDiagnostic, RunControl, RunReport, DEFAULT_CHUNK_BYTES,
};
use jsonx_schema::{CompiledSchema, ValidatorOptions};
use jsonx_syntax::parse;
use jsonx_translate::{read_jxc, write_jxc, ColumnarBatch, Shredder};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, Seek, SeekFrom};
use std::path::Path;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex, OnceLock};

/// Journal format version — bumped whenever record shapes change, so a
/// stale journal refuses cleanly instead of decoding garbage.
const JOURNAL_VERSION: i64 = 1;

/// How a journaled entry point finds its journal and reacts to stop
/// requests.
pub struct JournalControl<'a> {
    /// Path of the journal file.
    pub journal: &'a Path,
    /// `false` starts a fresh run (truncating any prior journal); `true`
    /// resumes from the journal's committed prefix.
    pub resume: bool,
    /// Graceful-stop latch: when set (signal handler, operator), workers
    /// stop claiming chunks, drain in-flight work, and the run returns
    /// [`StreamError::Interrupted`] with everything committed so far
    /// durable in the journal.
    pub stop: Option<&'a AtomicBool>,
    /// Called after each journal commit with the running commit count —
    /// the crash/stop injection hook the kill-and-resume harness uses.
    pub after_commit: Option<Arc<dyn Fn(u64) + Send + Sync>>,
}

impl<'a> JournalControl<'a> {
    /// A control with just a journal path: fresh run, no stop latch.
    pub fn new(journal: &'a Path) -> Self {
        JournalControl {
            journal,
            resume: false,
            stop: None,
            after_commit: None,
        }
    }
}

// ---------------------------------------------------------------------------
// JSON codec plumbing
// ---------------------------------------------------------------------------

fn s(text: impl Into<String>) -> Value {
    Value::Str(text.into())
}

fn num(n: usize) -> Value {
    Value::Num(Number::Int(n as i64))
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    let mut o = Object::new();
    for (k, v) in entries {
        o.insert(k, v);
    }
    Value::Obj(o)
}

fn get_usize(v: &Value, key: &str) -> Option<usize> {
    let n = v.get(key)?.as_i64()?;
    usize::try_from(n).ok()
}

fn get_str<'v>(v: &'v Value, key: &str) -> Option<&'v str> {
    v.get(key)?.as_str()
}

/// Re-interns a diagnostic kind label read back from a journal.
///
/// [`RecordDiagnostic::kind`] is `&'static str` in memory; labels are a
/// small closed set (one per error kind), so leaking each distinct label
/// once on resume is bounded and keeps the report types unchanged.
fn intern_kind(kind: &str) -> &'static str {
    static CACHE: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let mut cache = CACHE
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap();
    if let Some(interned) = cache.get(kind) {
        return interned;
    }
    let leaked: &'static str = Box::leak(kind.to_string().into_boxed_str());
    cache.insert(kind.to_string(), leaked);
    leaked
}

fn encode_errors(e: &ErrorSummary) -> Value {
    let kinds = e
        .by_kind
        .iter()
        .map(|(k, n)| Value::Arr(vec![s(*k), num(*n)]))
        .collect();
    let rejects = e
        .rejects
        .iter()
        .map(|d| {
            obj(vec![
                ("record", num(d.record)),
                ("offset", num(d.offset)),
                ("kind", s(d.kind)),
                ("message", s(d.message.clone())),
                ("raw", d.raw.clone().map(Value::Str).unwrap_or(Value::Null)),
            ])
        })
        .collect();
    obj(vec![
        ("total", num(e.total)),
        ("dropped", num(e.dropped)),
        ("kinds", Value::Arr(kinds)),
        ("rejects", Value::Arr(rejects)),
    ])
}

fn decode_errors(v: &Value) -> Option<ErrorSummary> {
    let mut by_kind = BTreeMap::new();
    for pair in v.get("kinds")?.as_array()? {
        let kind = pair.get_index(0)?.as_str()?;
        let n = usize::try_from(pair.get_index(1)?.as_i64()?).ok()?;
        by_kind.insert(intern_kind(kind), n);
    }
    let mut rejects = Vec::new();
    for d in v.get("rejects")?.as_array()? {
        rejects.push(RecordDiagnostic {
            record: get_usize(d, "record")?,
            offset: get_usize(d, "offset")?,
            kind: intern_kind(get_str(d, "kind")?),
            message: get_str(d, "message")?.to_string(),
            raw: match d.get("raw")? {
                Value::Null => None,
                raw => Some(raw.as_str()?.to_string()),
            },
        });
    }
    Some(ErrorSummary {
        total: get_usize(v, "total")?,
        by_kind,
        rejects,
        dropped: get_usize(v, "dropped")?,
    })
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(text: &str) -> Option<Vec<u8>> {
    if !text.len().is_multiple_of(2) {
        return None;
    }
    (0..text.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(text.get(i..i + 2)?, 16).ok())
        .collect()
}

/// How one stage output round-trips through a journal record. Plain
/// function pointers so the commit closure handed to [`ChunkJournal`]
/// stays `'static` without capturing borrowed stage state.
struct OutCodec<T> {
    encode: fn(&T) -> Option<Value>,
    decode: fn(&Value) -> Option<T>,
}

fn infer_codec() -> OutCodec<JType> {
    OutCodec {
        // The counting printer/parser round-trip is exact (pinned by
        // `counting_round_trip_exact`), so the journaled prefix fuses to
        // the same type the live run computed.
        encode: |ty| Some(s(print_type(ty, PrintOptions::with_counts()))),
        decode: |v| parse_type(v.as_str()?).ok(),
    }
}

fn validate_codec() -> OutCodec<Vec<(usize, LineVerdict)>> {
    OutCodec {
        encode: |verdicts| {
            let mut rows = Vec::with_capacity(verdicts.len());
            for (record, verdict) in verdicts {
                let flag = match verdict {
                    LineVerdict::Valid => 1,
                    LineVerdict::Invalid => 0,
                    // Guarded source runs reject malformed lines to the
                    // fault layer instead of recording inline verdicts,
                    // so this arm is unreachable on the journaled path —
                    // refuse to commit rather than journal a lie.
                    LineVerdict::Malformed(_) => return None,
                };
                rows.push(Value::Arr(vec![num(*record), num(flag)]));
            }
            Some(Value::Arr(rows))
        },
        decode: |v| {
            let mut verdicts = Vec::new();
            for row in v.as_array()? {
                let record = usize::try_from(row.get_index(0)?.as_i64()?).ok()?;
                let verdict = match row.get_index(1)?.as_i64()? {
                    1 => LineVerdict::Valid,
                    0 => LineVerdict::Invalid,
                    _ => return None,
                };
                verdicts.push((record, verdict));
            }
            Some(verdicts)
        },
    }
}

fn translate_codec() -> OutCodec<ColumnarBatch> {
    OutCodec {
        // A chunk's batch is journaled as its checksummed `.jxc` image;
        // decoding reconstructs the identical batch (layout included),
        // and batches append in seq order exactly like live merging.
        encode: |batch| Some(s(hex_encode(&write_jxc(batch)))),
        decode: |v| {
            let bytes = hex_decode(v.as_str()?)?;
            read_jxc(&bytes).ok().map(|file| file.batch)
        },
    }
}

// ---------------------------------------------------------------------------
// Journal session: header validation, prefix decoding
// ---------------------------------------------------------------------------

fn header_record(stage: &str, chunk_bytes: usize, input_bytes: u64, config: &str) -> Value {
    obj(vec![
        ("kind", s("header")),
        ("v", Value::Num(Number::Int(JOURNAL_VERSION))),
        ("stage", s(stage)),
        ("chunk_bytes", num(chunk_bytes)),
        ("input_bytes", num(input_bytes as usize)),
        ("config", s(config)),
    ])
}

fn input_err(e: impl std::fmt::Display) -> StreamError {
    StreamError::Input(e.to_string())
}

fn journal_err(context: &str, e: impl std::fmt::Display) -> StreamError {
    StreamError::Input(format!("checkpoint journal: {context}: {e}"))
}

/// Opens the journal for this run: fresh runs truncate and write the
/// header; resumes read the intact prefix back, verify the header
/// matches this invocation, cut any torn tail, and return the committed
/// records for replay.
fn open_session(
    ctrl: &JournalControl<'_>,
    header: Value,
) -> Result<(JournalWriter, Vec<Value>), StreamError> {
    let path = ctrl.journal;
    if !ctrl.resume {
        let mut writer =
            JournalWriter::create(path).map_err(|e| journal_err(&path.display().to_string(), e))?;
        writer
            .append(&header.to_json_string())
            .map_err(|e| journal_err("writing header", e))?;
        return Ok((writer, Vec::new()));
    }
    let read = read_journal(path).map_err(|e| {
        StreamError::Input(format!(
            "--resume: cannot read checkpoint journal {}: {e}",
            path.display()
        ))
    })?;
    let mut records = Vec::with_capacity(read.records.len());
    for (idx, line) in read.records.iter().enumerate() {
        let value = parse(line).map_err(|e| {
            journal_err(
                &format!("record {idx} is framed correctly but is not JSON"),
                e,
            )
        })?;
        records.push(value);
    }
    let mut writer = JournalWriter::resume(path, read.valid_bytes)
        .map_err(|e| journal_err("truncating torn tail", e))?;
    match records.first() {
        // A journal that died before its header committed holds no
        // progress; restart it as a fresh run.
        None => {
            writer
                .append(&header.to_json_string())
                .map_err(|e| journal_err("writing header", e))?;
            Ok((writer, Vec::new()))
        }
        Some(found) if *found == header => {
            records.remove(0);
            Ok((writer, records))
        }
        Some(found) => Err(StreamError::Input(format!(
            "--resume: checkpoint journal {} was written by a different run \
             (expected header {header}, found {found}); \
             pass a fresh --checkpoint path or drop --resume",
            path.display()
        ))),
    }
}

fn phase_chunks(records: &[Value], phase: usize) -> Vec<&Value> {
    records
        .iter()
        .filter(|r| {
            r.get("kind").and_then(Value::as_str) == Some("chunk")
                && r.get("phase").and_then(Value::as_i64) == Some(phase as i64)
        })
        .collect()
}

fn type_marker(records: &[Value]) -> Option<&str> {
    records
        .iter()
        .find(|r| r.get("kind").and_then(Value::as_str) == Some("type"))
        .and_then(|r| r.get("type"))
        .and_then(Value::as_str)
}

fn encode_chunk_record<T>(
    phase: usize,
    encode: fn(&T) -> Option<Value>,
    meta: &ChunkMeta,
    y: &ShardYield<T>,
) -> Option<String> {
    // A halted chunk stopped feeding mid-way; its partial output must
    // never become durable. Returning `None` latches the committer, so
    // nothing after this chunk commits either.
    if y.halt.is_some() {
        return None;
    }
    let out = encode(&y.out)?;
    Some(
        obj(vec![
            ("kind", s("chunk")),
            ("phase", num(phase)),
            ("seq", num(meta.seq)),
            ("first", num(meta.first_line)),
            ("lines", num(meta.lines)),
            ("bytes", num(meta.bytes)),
            ("records", num(y.records)),
            ("errors", encode_errors(&y.errors)),
            ("out", out),
        ])
        .to_json_string(),
    )
}

struct DecodedChunk<T> {
    seq: usize,
    first_line: usize,
    lines: usize,
    bytes: usize,
    records: usize,
    errors: ErrorSummary,
    out: T,
}

fn decode_chunk_record<T>(
    value: &Value,
    decode: fn(&Value) -> Option<T>,
) -> Option<DecodedChunk<T>> {
    Some(DecodedChunk {
        seq: get_usize(value, "seq")?,
        first_line: get_usize(value, "first")?,
        lines: get_usize(value, "lines")?,
        bytes: get_usize(value, "bytes")?,
        records: get_usize(value, "records")?,
        errors: decode_errors(value.get("errors")?)?,
        out: decode(value.get("out")?)?,
    })
}

// ---------------------------------------------------------------------------
// The journaled runner
// ---------------------------------------------------------------------------

fn effective_chunk_bytes(chunk: &ChunkOptions) -> usize {
    if chunk.chunk_bytes > 0 {
        chunk.chunk_bytes
    } else {
        DEFAULT_CHUNK_BYTES
    }
}

fn input_len(input: &Path) -> Result<u64, StreamError> {
    std::fs::metadata(input)
        .map(|m| m.len())
        .map_err(|e| StreamError::Input(format!("{}: {e}", input.display())))
}

/// Runs one stage pass with chunk commits journaled: decodes the
/// committed prefix, seeks the input past it, streams the tail through
/// the engine with the journal as commit sink, and fuses prefix + tail
/// into the same `(out, report)` contract the unjournaled entry points
/// return. Interruption surfaces as [`StreamError::Interrupted`] *after*
/// data-level failures, which a resume would deterministically re-hit.
#[allow(clippy::too_many_arguments)]
fn run_phase<S: RecordStage>(
    input: &Path,
    stage: &S,
    opts: StreamingOptions,
    chunk: ChunkOptions,
    fault: FaultOptions,
    codec: OutCodec<S::Out>,
    phase: usize,
    committed: &[&Value],
    writer: JournalWriter,
    ctrl: &JournalControl<'_>,
) -> Result<(S::Out, RunReport, JournalWriter), StreamError>
where
    S::Out: 'static,
{
    let fold = FaultFold::new(stage, fault);
    let cap = fold.retention_cap();

    // Replay the committed prefix: fold chunk outputs in seq order with
    // the stage's own merge — the same fusion the live run applied.
    let mut prefix_out: Option<S::Out> = None;
    let mut bytes = 0u64;
    let mut lines = 0usize;
    let mut records = 0usize;
    let mut errors = ErrorSummary::new();
    for (idx, rec) in committed.iter().enumerate() {
        let c = decode_chunk_record(rec, codec.decode).ok_or_else(|| {
            StreamError::Input(format!(
                "checkpoint journal: committed chunk record {idx} cannot be decoded \
                 (incompatible journal version?)"
            ))
        })?;
        if c.seq != idx || c.first_line != lines {
            return Err(StreamError::Input(format!(
                "checkpoint journal: committed chunks are not contiguous at record {idx}"
            )));
        }
        bytes += c.bytes as u64;
        lines += c.lines;
        records += c.records;
        errors.merge(c.errors, cap);
        prefix_out = Some(match prefix_out.take() {
            Some(acc) => stage.merge(acc, c.out),
            None => c.out,
        });
    }
    let resumed_chunks = committed.len();

    // Chunk boundaries depend only on bytes and the chunk target, so
    // seeking to the committed byte total lands exactly on the first
    // uncommitted chunk's first byte.
    let mut file =
        File::open(input).map_err(|e| StreamError::Input(format!("{}: {e}", input.display())))?;
    if bytes > 0 {
        file.seek(SeekFrom::Start(bytes)).map_err(input_err)?;
    }
    let workers = opts.effective_workers().max(1);
    let target = effective_chunk_bytes(&chunk);
    let ring = if chunk.ring > 0 { chunk.ring } else { workers };
    let source =
        ReaderChunks::with_offset(BufReader::new(file), target, ring, resumed_chunks, lines);

    let enc = codec.encode;
    let journal = ChunkJournal::new(writer, resumed_chunks, move |meta: &ChunkMeta, y| {
        encode_chunk_record(phase, enc, meta, y)
    });
    let journal = match &ctrl.after_commit {
        Some(hook) => {
            let hook = hook.clone();
            journal.with_after_commit(move |n| hook(n))
        }
        None => journal,
    };
    let control = RunControl {
        sink: Some(&journal),
        stop: ctrl.stop,
    };
    let outcome =
        run_source_controlled(&source, &fold, workers, chunk.timing, control).map_err(input_err)?;
    let (writer, _committed_now) = journal
        .finish()
        .map_err(|e| journal_err("commit failed", e))?;

    let tail = outcome.out;
    errors.merge(tail.errors, cap);
    let out = match prefix_out {
        Some(prefix) => stage.merge(prefix, tail.out),
        None => tail.out,
    };
    let report = RunReport {
        records: records + tail.records,
        shards: resumed_chunks + outcome.shards,
        errors,
        poisoned: outcome.poisoned,
        timings: outcome.timings,
    };
    let (out, report) = seal_stage_outcome(out, tail.halt, report, fault)?;
    if outcome.interrupted {
        return Err(StreamError::Interrupted);
    }
    Ok((out, report, writer))
}

// ---------------------------------------------------------------------------
// Public journaled entry points
// ---------------------------------------------------------------------------

/// Journaled out-of-core streaming inference over an NDJSON file.
///
/// Semantics (type, report, errors) are identical to
/// [`infer_streaming_source`](crate::infer_streaming_source) on the same
/// file; additionally every committed chunk is durable in
/// `ctrl.journal`, and with `ctrl.resume` the run continues from the
/// last committed chunk instead of starting over.
pub fn infer_streaming_journaled(
    input: &Path,
    equiv: Equivalence,
    opts: StreamingOptions,
    chunk: ChunkOptions,
    fault: FaultOptions,
    ctrl: &JournalControl<'_>,
) -> Result<(JType, RunReport), StreamError> {
    let header = header_record(
        "infer",
        effective_chunk_bytes(&chunk),
        input_len(input)?,
        &format!("equiv={equiv:?} fault={fault:?}"),
    );
    let (writer, committed) = open_session(ctrl, header)?;
    let stage = InferStage {
        equiv,
        decoder: jsonx_syntax::JsonDecoder::new().with_limits(fault.limits),
    };
    let prefix = phase_chunks(&committed, 1);
    let (ty, report, _writer) = run_phase(
        input,
        &stage,
        opts,
        chunk,
        fault,
        infer_codec(),
        1,
        &prefix,
        writer,
        ctrl,
    )?;
    Ok((ty, report))
}

/// Journaled out-of-core streaming validation over an NDJSON file.
///
/// Verdicts, reports and errors are identical to
/// [`validate_streaming_source`](crate::validate_streaming_source) on
/// the same file (malformed records go to the fault layer, never into
/// the verdict vector); commits and resume behave as in
/// [`infer_streaming_journaled`]. `schema_tag` is a caller-computed
/// fingerprint of the schema text, baked into the journal header so a
/// resume against a different schema refuses.
#[allow(clippy::too_many_arguments)]
pub fn validate_streaming_journaled(
    input: &Path,
    schema: &CompiledSchema,
    options: ValidatorOptions,
    opts: StreamingOptions,
    chunk: ChunkOptions,
    fault: FaultOptions,
    fast: bool,
    schema_tag: u32,
    ctrl: &JournalControl<'_>,
) -> Result<(Vec<(usize, LineVerdict)>, RunReport), StreamError> {
    let header = header_record(
        "validate",
        effective_chunk_bytes(&chunk),
        input_len(input)?,
        // `fast` is deliberately absent: the fast path is
        // verdict-identical, so a resume may toggle it freely.
        &format!("schema={schema_tag:08x} options={options:?} fault={fault:?}"),
    );
    let (writer, committed) = open_session(ctrl, header)?;
    let stage = ValidateStage {
        schema,
        options,
        malformed_verdicts: false,
        decoder: FastJsonDecoder::new(
            if fast {
                FastPlan::for_validation(schema, &fault.limits)
            } else {
                None
            },
            fault.limits,
        ),
    };
    let prefix = phase_chunks(&committed, 1);
    let (verdicts, report, _writer) = run_phase(
        input,
        &stage,
        opts,
        chunk,
        fault,
        validate_codec(),
        1,
        &prefix,
        writer,
        ctrl,
    )?;
    Ok((verdicts, report))
}

/// Journaled out-of-core translation over an NDJSON file: the inference
/// pass and the shredding pass journal into **one** file, phase-tagged,
/// with a `type` marker sealing phase 1.
///
/// A kill during inference resumes inference; a kill during shredding
/// reconstructs the layout from the marker (no re-inference) and
/// resumes shredding. The returned report covers the translate pass,
/// matching the unjournaled CLI behaviour.
pub fn translate_streaming_journaled(
    input: &Path,
    equiv: Equivalence,
    opts: StreamingOptions,
    chunk: ChunkOptions,
    fault: FaultOptions,
    fast: bool,
    ctrl: &JournalControl<'_>,
) -> Result<(JType, ColumnarBatch, RunReport), StreamError> {
    let header = header_record(
        "translate",
        effective_chunk_bytes(&chunk),
        input_len(input)?,
        &format!("equiv={equiv:?} fault={fault:?}"),
    );
    let (mut writer, committed) = open_session(ctrl, header)?;

    let ty = match type_marker(&committed) {
        Some(printed) => parse_type(printed)
            .map_err(|e| journal_err("type marker does not parse", format!("{e:?}")))?,
        None => {
            let stage = InferStage {
                equiv,
                decoder: jsonx_syntax::JsonDecoder::new().with_limits(fault.limits),
            };
            let prefix = phase_chunks(&committed, 1);
            let (ty, _report, w) = run_phase(
                input,
                &stage,
                opts,
                chunk,
                fault,
                infer_codec(),
                1,
                &prefix,
                writer,
                ctrl,
            )?;
            writer = w;
            // Seal phase 1: once this marker is durable, a resume never
            // re-infers — the layout is pinned for phase 2 forever.
            let marker = obj(vec![
                ("kind", s("type")),
                ("type", s(print_type(&ty, PrintOptions::with_counts()))),
            ]);
            writer
                .append(&marker.to_json_string())
                .map_err(|e| journal_err("writing type marker", e))?;
            ty
        }
    };

    let shredder = Shredder::from_type(&ty);
    let stage = TranslateStage {
        shredder: &shredder,
        decoder: FastJsonDecoder::new(
            if fast {
                FastPlan::for_translation(&shredder, &fault.limits)
            } else {
                None
            },
            fault.limits,
        ),
    };
    let prefix = phase_chunks(&committed, 2);
    let (batch, report, _writer) = run_phase(
        input,
        &stage,
        opts,
        chunk,
        fault,
        translate_codec(),
        2,
        &prefix,
        writer,
        ctrl,
    )?;
    Ok((ty, batch, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::{infer_streaming_source, translate_streaming_source, StreamSource};
    use jsonx_pipeline::ErrorPolicy;
    use std::io::Write as _;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!("jsonx-ckpt-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self, name: &str) -> std::path::PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn corpus(lines: usize) -> String {
        let mut text = String::new();
        for i in 0..lines {
            text.push_str(&format!(
                "{{\"id\":{i},\"name\":\"row {i}\",\"flag\":{}}}\n",
                i % 2 == 0
            ));
        }
        text
    }

    fn write_input(dir: &TempDir, name: &str, text: &str) -> std::path::PathBuf {
        let path = dir.path(name);
        std::fs::File::create(&path)
            .unwrap()
            .write_all(text.as_bytes())
            .unwrap();
        path
    }

    fn small_chunks() -> ChunkOptions {
        ChunkOptions {
            chunk_bytes: 64,
            ..ChunkOptions::default()
        }
    }

    #[test]
    fn journaled_infer_matches_plain_run() {
        let dir = TempDir::new("infer-plain");
        let text = corpus(40);
        let input = write_input(&dir, "in.ndjson", &text);
        let journal = dir.path("run.journal");
        let opts = StreamingOptions::with_workers(3);
        let fault = FaultOptions::default();

        let (ty, report) = infer_streaming_journaled(
            &input,
            Equivalence::Kind,
            opts,
            small_chunks(),
            fault,
            &JournalControl::new(&journal),
        )
        .unwrap();
        let (want_ty, want_report) = infer_streaming_source(
            StreamSource::slice(&text),
            Equivalence::Kind,
            opts,
            small_chunks(),
            fault,
        )
        .unwrap();
        assert_eq!(ty, want_ty);
        assert_eq!(report.records, want_report.records);
        assert!(journal.exists());
    }

    #[test]
    fn interrupted_run_resumes_to_identical_result() {
        let dir = TempDir::new("stop-resume");
        let text = corpus(60);
        let input = write_input(&dir, "in.ndjson", &text);
        let journal = dir.path("run.journal");
        let opts = StreamingOptions::with_workers(2);
        let fault = FaultOptions {
            policy: ErrorPolicy::Skip { max_errors: None },
            ..FaultOptions::default()
        };

        // Stop after 3 committed chunks. The flag is leaked so the
        // 'static commit hook can store to it — the same wiring the CLI
        // uses for `JSONX_CRASHPOINT=stop:N`.
        let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let commits = Arc::new(AtomicU64::new(0));
        let err = {
            let commits = commits.clone();
            let ctrl = JournalControl {
                journal: &journal,
                resume: false,
                stop: Some(stop),
                after_commit: Some(Arc::new(move |_| {
                    if commits.fetch_add(1, Ordering::SeqCst) + 1 >= 3 {
                        stop.store(true, Ordering::SeqCst);
                    }
                })),
            };
            infer_streaming_journaled(
                &input,
                Equivalence::Kind,
                opts,
                small_chunks(),
                fault,
                &ctrl,
            )
            .unwrap_err()
        };
        assert_eq!(err, StreamError::Interrupted);
        assert!(commits.load(Ordering::SeqCst) >= 3);

        let ctrl = JournalControl {
            journal: &journal,
            resume: true,
            stop: None,
            after_commit: None,
        };
        let (ty, report) = infer_streaming_journaled(
            &input,
            Equivalence::Kind,
            opts,
            small_chunks(),
            fault,
            &ctrl,
        )
        .unwrap();
        let (want_ty, want_report) = infer_streaming_source(
            StreamSource::slice(&text),
            Equivalence::Kind,
            opts,
            small_chunks(),
            fault,
        )
        .unwrap();
        assert_eq!(ty, want_ty, "resumed type identical to uninterrupted run");
        assert_eq!(report.records, want_report.records);
    }

    #[test]
    fn resume_with_torn_tail_continues_from_last_valid_record() {
        let dir = TempDir::new("torn-tail");
        let text = corpus(50);
        let input = write_input(&dir, "in.ndjson", &text);
        let journal = dir.path("run.journal");
        let opts = StreamingOptions::with_workers(2);
        let fault = FaultOptions::default();

        // Interrupt after 2 commits, then tear the journal's tail.
        let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let ctrl = JournalControl {
            journal: &journal,
            resume: false,
            stop: Some(stop),
            after_commit: Some(Arc::new(move |n| {
                if n >= 2 {
                    stop.store(true, Ordering::SeqCst);
                }
            })),
        };
        let err = infer_streaming_journaled(
            &input,
            Equivalence::Kind,
            opts,
            small_chunks(),
            fault,
            &ctrl,
        )
        .unwrap_err();
        assert_eq!(err, StreamError::Interrupted);
        let mut file = std::fs::File::options()
            .append(true)
            .open(&journal)
            .unwrap();
        file.write_all(b"00000000 {\"kind\":\"chunk\",\"torn")
            .unwrap();

        let ctrl = JournalControl {
            journal: &journal,
            resume: true,
            stop: None,
            after_commit: None,
        };
        let (ty, _report) = infer_streaming_journaled(
            &input,
            Equivalence::Kind,
            opts,
            small_chunks(),
            fault,
            &ctrl,
        )
        .unwrap();
        let (want_ty, _) = infer_streaming_source(
            StreamSource::slice(&text),
            Equivalence::Kind,
            opts,
            small_chunks(),
            fault,
        )
        .unwrap();
        assert_eq!(ty, want_ty);
    }

    #[test]
    fn resume_refuses_mismatched_header() {
        let dir = TempDir::new("bad-header");
        let text = corpus(10);
        let input = write_input(&dir, "in.ndjson", &text);
        let journal = dir.path("run.journal");
        let fault = FaultOptions::default();

        infer_streaming_journaled(
            &input,
            Equivalence::Kind,
            StreamingOptions::with_workers(1),
            small_chunks(),
            fault,
            &JournalControl::new(&journal),
        )
        .unwrap();

        // Same journal, different equivalence: the header no longer
        // matches, so the resume must refuse.
        let ctrl = JournalControl {
            journal: &journal,
            resume: true,
            stop: None,
            after_commit: None,
        };
        let err = infer_streaming_journaled(
            &input,
            Equivalence::Label,
            StreamingOptions::with_workers(1),
            small_chunks(),
            fault,
            &ctrl,
        )
        .unwrap_err();
        assert!(
            matches!(&err, StreamError::Input(msg) if msg.contains("different run")),
            "got {err:?}"
        );
    }

    #[test]
    fn journaled_translate_two_phase_resume_is_batch_identical() {
        let dir = TempDir::new("translate");
        let text = corpus(60);
        let input = write_input(&dir, "in.ndjson", &text);
        let journal = dir.path("run.journal");
        let opts = StreamingOptions::with_workers(2);
        let fault = FaultOptions::default();

        // Stop during phase 2: phase 1 commits ~13 chunks of 64B, so a
        // threshold past that lands the interruption mid-shred.
        let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let commits = Arc::new(AtomicU64::new(0));
        let commits_hook = commits.clone();
        let ctrl = JournalControl {
            journal: &journal,
            resume: false,
            stop: Some(stop),
            after_commit: Some(Arc::new(move |_| {
                // The counter spans both phases, mirroring the CLI hook.
                if commits_hook.fetch_add(1, Ordering::SeqCst) + 1 >= 40 {
                    stop.store(true, Ordering::SeqCst);
                }
            })),
        };
        let err = translate_streaming_journaled(
            &input,
            Equivalence::Kind,
            opts,
            small_chunks(),
            fault,
            true,
            &ctrl,
        )
        .unwrap_err();
        assert_eq!(err, StreamError::Interrupted);

        let ctrl = JournalControl {
            journal: &journal,
            resume: true,
            stop: None,
            after_commit: None,
        };
        let (ty, batch, report) = translate_streaming_journaled(
            &input,
            Equivalence::Kind,
            opts,
            small_chunks(),
            fault,
            true,
            &ctrl,
        )
        .unwrap();

        let (want_ty, _) = infer_streaming_source(
            StreamSource::slice(&text),
            Equivalence::Kind,
            opts,
            small_chunks(),
            fault,
        )
        .unwrap();
        let shredder = Shredder::from_type(&want_ty);
        let (want_batch, want_report) = translate_streaming_source(
            StreamSource::slice(&text),
            &shredder,
            opts,
            small_chunks(),
            fault,
            true,
        )
        .unwrap();
        assert_eq!(ty, want_ty);
        assert_eq!(report.records, want_report.records);
        assert_eq!(
            write_jxc(&batch),
            write_jxc(&want_batch),
            "resumed .jxc bytes identical to uninterrupted run"
        );
    }
}
