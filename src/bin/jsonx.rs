//! `jsonx` — command-line front end for the workspace.
//!
//! ```text
//! jsonx infer     [--equiv K|L] [--counts] [--schema] [--streaming] [--workers N]
//!                 [--validate SCHEMA.json] [FILE]
//! jsonx validate  --schema SCHEMA.json [--formats] [--streaming] [--workers N]
//!                 [--no-fast-parse] [FILE]
//! jsonx profile   [FILE]
//! jsonx skeleton  [--coverage 0.9] [FILE]
//! jsonx project   --fields a,b.c [FILE]
//! jsonx convert   --to avro|columnar|relational [FILE]
//! jsonx translate [--to avro|columnar|relational] [--streaming] [--workers N]
//!                 [--no-fast-parse] [FILE]
//! jsonx query     [--where-exists p] [--expand p] [--project a,b.c] [--top n] [FILE]
//! ```
//!
//! `FILE` is newline-delimited JSON; `-` or no file reads stdin. The
//! streaming commands also accept `--input FILE` to process the corpus
//! out-of-core (bounded chunk buffers, never materialised), plus
//! `--chunk-bytes N` and `--report-timing` to tune and observe the
//! work-stealing dispatch.

use jsonx::baselines::MongoProfiler;
use jsonx::core::{infer_collection, print_type, to_json_schema, Equivalence, PrintOptions};
use jsonx::mison::ProjectedParser;
use jsonx::schema::{CompiledSchema, ValidatorOptions};
use jsonx::skeleton::Skeleton;
use jsonx::syntax::{parse, parse_ndjson, to_string, to_string_pretty};
use jsonx::translate::{normalize, AvroCodec, AvroSchema, Shredder};
use jsonx::Value;
use jsonx::{
    infer_streaming_guarded, infer_streaming_parallel, infer_streaming_source,
    infer_validate_streaming_guarded, infer_validate_streaming_parallel,
    infer_validate_streaming_source, translate_streaming_guarded, translate_streaming_guarded_fast,
    translate_streaming_parallel, translate_streaming_parallel_fast, translate_streaming_source,
    validate_streaming_guarded, validate_streaming_guarded_fast, validate_streaming_parallel,
    validate_streaming_parallel_fast, validate_streaming_source, write_quarantine_file,
    ChunkOptions, ErrorPolicy, FaultOptions, LineVerdict, ParseLimits, RunReport, StreamSource,
    StreamingOptions,
};
use std::io::{BufRead, Read};
use std::process::ExitCode;

const USAGE: &str = "usage: jsonx <command> [options] [FILE]

commands:
  infer     infer a schema for an NDJSON collection
              --equiv K|L     equivalence (default K)
              --counts        show counting annotations
              --schema        emit JSON Schema instead of type syntax
              --streaming     type the event stream directly (no DOMs)
              --workers N     shard across N threads (implies --streaming;
                              0 = one per CPU)
              --validate F    also validate against schema F in the same
                              pass (one tokenisation per line; implies
                              --streaming)
            (plus the fault-tolerance flags below)
  validate  validate documents against a JSON Schema
              --schema FILE   schema document (required)
              --formats       enforce the `format` keyword
              --streaming     fail-fast per line, diagnostics on demand
              --workers N     shard across N threads (implies --streaming;
                              0 = one per CPU)
              --fast-parse    SWAR structural fast path with projection
                              pushdown (default on for --streaming);
                              --no-fast-parse forces the full parser
            (plus the fault-tolerance flags below)
  profile   mongodb-schema-style streaming field profile
  skeleton  mine the frequent-structure skeleton
              --coverage F    coverage threshold in (0,1] (default 0.9)
  project   parse only selected fields (Mison-style)
              --fields a,b.c  dotted field paths (required)
  convert   translate the collection
              --to TARGET     avro | columnar | relational (required)
  translate schema-driven translation with a streaming columnar path
              --to TARGET     avro | columnar | relational
                              (default columnar)
              --streaming     shred newline-bounded shards incrementally
                              (columnar only)
              --workers N     shard across N threads (implies --streaming;
                              0 = one per CPU)
              --fast-parse    SWAR structural fast path projected to the
                              shred plan (default on for --streaming);
                              --no-fast-parse forces the full parser
            (plus the fault-tolerance flags below)
  query     run a Jaql-style pipeline and show its inferred output schema
              --where-exists P   keep documents where path P is non-null
              --expand P         flatten the array at path P
              --project a,b.c    transform to a record of the given paths
              --top N            keep the first N results
            (stages apply in the order above)

fault-tolerance flags (streaming infer / validate / translate; any of
these implies --streaming):
  --on-error fail|skip|collect   record-error policy (default fail).
                                 skip drops bad records and keeps going;
                                 collect additionally retains every
                                 diagnostic (bounded by --max-errors,
                                 default 1000)
  --max-errors N                 abort once more than N records reject
  --quarantine FILE              write one JSON diagnostic per rejected
                                 record (with the raw line) to FILE
  --max-depth N                  reject records nested deeper than N
                                 (default 128)
  --max-line-bytes N             reject records longer than N bytes

out-of-core flags (streaming infer / validate / translate; any of
these implies --streaming and routes through the chunked
work-stealing engine):
  --input FILE        stream FILE through a bounded ring of reusable
                      chunk buffers instead of materialising it
                      ('-' streams stdin); invalid-document
                      diagnostics shrink to line numbers
  --chunk-bytes N     target chunk size in bytes (default: sized
                      from the input, capped at 1 MiB)
  --report-timing     print per-worker chunk/record/byte counts,
                      steal counts and throughput to stderr

FILE is newline-delimited JSON; '-' or absent reads stdin.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("jsonx: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(format!("missing command\n{USAGE}"));
    };
    let rest = &args[1..];
    match command.as_str() {
        "infer" => cmd_infer(rest),
        "validate" => cmd_validate(rest),
        "profile" => cmd_profile(rest),
        "skeleton" => cmd_skeleton(rest),
        "project" => cmd_project(rest),
        "convert" => cmd_convert(rest),
        "translate" => cmd_translate(rest),
        "query" => cmd_query(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    }
}

/// Splits flags (with optional values) from the positional FILE argument.
struct Opts {
    flags: Vec<(String, Option<String>)>,
    file: Option<String>,
}

/// Flags that take a value.
const VALUED: [&str; 18] = [
    "--input",
    "--chunk-bytes",
    "--equiv",
    "--workers",
    "--schema",
    "--coverage",
    "--fields",
    "--to",
    "--validate",
    "--where-exists",
    "--expand",
    "--project",
    "--top",
    "--on-error",
    "--max-errors",
    "--quarantine",
    "--max-depth",
    "--max-line-bytes",
];

/// The fault-tolerance flags shared by the streaming commands; any of
/// them routes the run through the guarded pipeline (and implies
/// `--streaming`).
const FAULT_FLAGS: [&str; 5] = [
    "on-error",
    "max-errors",
    "quarantine",
    "max-depth",
    "max-line-bytes",
];

/// The out-of-core flags shared by the streaming commands; any of them
/// routes the run through the chunk-source work-stealing engine (and
/// implies `--streaming`).
const CHUNK_FLAGS: [&str; 3] = ["input", "chunk-bytes", "report-timing"];

/// Out-of-core run configuration parsed from the chunk flags.
struct ChunkCli {
    /// `--input FILE`: stream this file instead of the positional FILE.
    input: Option<String>,
    chunk: ChunkOptions,
}

/// Builds the out-of-core configuration, or `None` when no chunk flag
/// was given (the in-memory paths keep their exact legacy output).
fn chunk_cli(opts: &Opts) -> Result<Option<ChunkCli>, String> {
    if !CHUNK_FLAGS.iter().any(|f| opts.has(f)) {
        return Ok(None);
    }
    let chunk_bytes: usize = opts
        .get("chunk-bytes")
        .map(str::parse)
        .transpose()
        .map_err(|e| format!("bad --chunk-bytes: {e}"))?
        .unwrap_or(0);
    Ok(Some(ChunkCli {
        input: opts.get("input").map(str::to_string),
        chunk: ChunkOptions {
            chunk_bytes,
            timing: opts.has("report-timing"),
            ..ChunkOptions::default()
        },
    }))
}

/// The reader half of an out-of-core run: `--input FILE` opened for
/// bounded streaming (`-` streams stdin).
type BoxedInput = Box<dyn BufRead + Send>;

fn open_input(path: &str) -> Result<BoxedInput, String> {
    if path == "-" {
        Ok(Box::new(std::io::BufReader::new(std::io::stdin())))
    } else {
        let file = std::fs::File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
        Ok(Box::new(std::io::BufReader::new(file)))
    }
}

/// Opens the corpus for a chunk-dispatched run: `--input` streams a
/// reader out-of-core; otherwise the positional FILE/stdin text is
/// loaded into `storage` and chunk-dispatched in place.
fn open_source<'a>(
    input: Option<&str>,
    file: Option<&str>,
    storage: &'a mut String,
) -> Result<StreamSource<'a, BoxedInput>, String> {
    match input {
        Some(path) => Ok(StreamSource::Reader(open_input(path)?)),
        None => {
            *storage = read_text(file)?;
            Ok(StreamSource::Slice(storage))
        }
    }
}

fn parse_opts(args: &[String], allow_schema_value: bool, known: &[&str]) -> Result<Opts, String> {
    let mut flags = Vec::new();
    let mut file = None;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if !known.contains(&name) {
                return Err(format!("unknown flag --{name} (see `jsonx help`)"));
            }
            let takes_value =
                VALUED.contains(&a.as_str()) && (a != "--schema" || allow_schema_value);
            if takes_value {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.push((name.to_string(), Some(v.clone())));
                i += 2;
            } else {
                flags.push((name.to_string(), None));
                i += 1;
            }
        } else {
            if file.is_some() {
                return Err(format!("unexpected extra argument '{a}'"));
            }
            file = Some(a.clone());
            i += 1;
        }
    }
    Ok(Opts { flags, file })
}

impl Opts {
    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

/// Builds [`FaultOptions`] from the shared fault-tolerance flags, or
/// `None` when none were given (legacy fail-fast paths).
/// Whether the streaming runs should try the SWAR projecting fast path
/// first. On by default; `--no-fast-parse` is the escape hatch (and wins
/// over an explicit `--fast-parse`).
fn fast_parse_enabled(opts: &Opts) -> bool {
    !opts.has("no-fast-parse")
}

fn fault_options(opts: &Opts) -> Result<Option<FaultOptions>, String> {
    if !FAULT_FLAGS.iter().any(|f| opts.has(f)) {
        return Ok(None);
    }
    let max_errors: Option<usize> = opts
        .get("max-errors")
        .map(str::parse)
        .transpose()
        .map_err(|e| format!("bad --max-errors: {e}"))?;
    let policy = match opts.get("on-error").unwrap_or("fail") {
        "fail" => ErrorPolicy::FailFast,
        "skip" => ErrorPolicy::Skip { max_errors },
        "collect" => ErrorPolicy::Collect {
            max_errors: max_errors.unwrap_or(1000),
        },
        other => {
            return Err(format!(
                "unknown --on-error policy '{other}' (use fail, skip or collect)"
            ))
        }
    };
    let mut limits = ParseLimits::new();
    if let Some(depth) = opts.get("max-depth") {
        limits = limits.with_max_depth(depth.parse().map_err(|e| format!("bad --max-depth: {e}"))?);
    }
    if let Some(bytes) = opts.get("max-line-bytes") {
        limits = limits.with_max_input_bytes(
            bytes
                .parse()
                .map_err(|e| format!("bad --max-line-bytes: {e}"))?,
        );
    }
    Ok(Some(FaultOptions {
        policy,
        keep_rejects: opts.has("quarantine"),
        limits,
    }))
}

/// Post-run bookkeeping for a guarded streaming command: writes the
/// quarantine sidecar when requested, surfaces poisoned shards on
/// stderr, and returns the `, N rejected` suffix for the summary line.
fn finish_guarded_run(opts: &Opts, report: &RunReport) -> Result<String, String> {
    if let Some(path) = opts.get("quarantine") {
        let n = write_quarantine_file(std::path::Path::new(path), report)
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("» {n} diagnostics quarantined to {path}");
    }
    for p in &report.poisoned {
        eprintln!("» warning: {p}");
    }
    for t in &report.timings {
        eprintln!(
            "» worker {}: {} chunks ({} stolen), {} records, {} bytes, {:.3}s busy ({:.0} rec/s, {:.2} MB/s)",
            t.worker,
            t.chunks,
            t.steals,
            t.records,
            t.bytes,
            t.busy.as_secs_f64(),
            t.records_per_sec(),
            t.bytes_per_sec() / 1e6,
        );
    }
    Ok(format!(", {} rejected", report.errors.total))
}

/// Loads the whole corpus into memory — the in-memory path shared by
/// every command (`--input` is the out-of-core alternative). Raw bytes
/// are read first so non-UTF-8 input gets a clean diagnostic naming the
/// offending byte offset instead of a generic io error.
fn read_text(file: Option<&str>) -> Result<String, String> {
    let (bytes, name) = match file {
        None | Some("-") => {
            let mut buf = Vec::new();
            std::io::stdin()
                .read_to_end(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            (buf, "stdin")
        }
        Some(path) => (
            std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?,
            path,
        ),
    };
    String::from_utf8(bytes).map_err(|e| {
        format!(
            "{name}: input is not valid UTF-8 (bad byte at offset {})",
            e.utf8_error().valid_up_to()
        )
    })
}

fn read_collection(file: Option<&str>) -> Result<Vec<Value>, String> {
    let text = read_text(file)?;
    parse_ndjson(&text).map_err(|(line, e)| format!("line {}: {e}", line + 1))
}

fn cmd_infer(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(
        args,
        false,
        &[
            "equiv",
            "counts",
            "schema",
            "streaming",
            "workers",
            "validate",
            "input",
            "chunk-bytes",
            "report-timing",
            "on-error",
            "max-errors",
            "quarantine",
            "max-depth",
            "max-line-bytes",
        ],
    )?;
    let equiv = match opts.get("equiv").unwrap_or("K") {
        "K" | "k" | "kind" => Equivalence::Kind,
        "L" | "l" | "label" => Equivalence::Label,
        other => return Err(format!("unknown equivalence '{other}' (use K or L)")),
    };
    let workers: Option<usize> = opts
        .get("workers")
        .map(str::parse)
        .transpose()
        .map_err(|e| format!("bad --workers: {e}"))?;
    let fault = fault_options(&opts)?;
    let chunked = chunk_cli(&opts)?;
    if let Some(schema_path) = opts.get("validate") {
        return infer_validate_cli(
            &opts,
            equiv,
            schema_path,
            workers.unwrap_or(0),
            fault,
            chunked,
        );
    }
    if let Some(ChunkCli { input, chunk }) = chunked {
        let fault = fault.unwrap_or_default();
        let sopts = StreamingOptions::with_workers(workers.unwrap_or(0));
        let mut storage = String::new();
        let source = open_source(input.as_deref(), opts.file.as_deref(), &mut storage)?;
        let (ty, report) = infer_streaming_source(source, equiv, sopts, chunk, fault)
            .map_err(|e| e.to_string())?;
        let suffix = finish_guarded_run(&opts, &report)?;
        print_inferred_type(&opts, &ty);
        eprintln!(
            "» {} documents (streaming), equivalence {}, type size {} nodes{suffix}",
            report.records - report.errors.total,
            equiv.name(),
            jsonx::core::type_size(&ty)
        );
        return Ok(());
    }
    if let Some(fault) = fault {
        let text = read_text(opts.file.as_deref())?;
        let sopts = StreamingOptions::with_workers(workers.unwrap_or(0));
        let (ty, report) =
            infer_streaming_guarded(&text, equiv, sopts, fault).map_err(|e| e.to_string())?;
        let suffix = finish_guarded_run(&opts, &report)?;
        print_inferred_type(&opts, &ty);
        eprintln!(
            "» {} documents (streaming), equivalence {}, type size {} nodes{suffix}",
            report.records - report.errors.total,
            equiv.name(),
            jsonx::core::type_size(&ty)
        );
        return Ok(());
    }
    let (ty, n_docs, mode) = if opts.has("streaming") || workers.is_some() {
        let text = read_text(opts.file.as_deref())?;
        let sopts = StreamingOptions::with_workers(workers.unwrap_or(0));
        let ty = infer_streaming_parallel(&text, equiv, sopts)
            .map_err(|(line, e)| format!("line {}: {e}", line + 1))?;
        let n = text.lines().filter(|l| !l.trim().is_empty()).count();
        (ty, n, "streaming")
    } else {
        let docs = read_collection(opts.file.as_deref())?;
        let ty = infer_collection(&docs, equiv);
        let n = docs.len();
        (ty, n, "dom")
    };
    print_inferred_type(&opts, &ty);
    eprintln!(
        "» {n_docs} documents ({mode}), equivalence {}, type size {} nodes",
        equiv.name(),
        jsonx::core::type_size(&ty)
    );
    Ok(())
}

fn print_inferred_type(opts: &Opts, ty: &jsonx::core::JType) {
    if opts.has("schema") {
        println!("{}", to_string_pretty(&to_json_schema(ty)));
    } else {
        let popts = if opts.has("counts") {
            PrintOptions::with_counts()
        } else {
            PrintOptions::plain()
        };
        println!("{}", print_type(ty, popts));
    }
}

/// The combined single-pass path behind `infer --validate SCHEMA.json`:
/// one tokenisation per line feeds both type fusion and the compiled
/// fail-fast validator, with interpreter diagnostics re-run on just the
/// invalid lines. Invalid documents are reported but don't fail the run —
/// the primary output is still the inferred type.
fn infer_validate_cli(
    opts: &Opts,
    equiv: Equivalence,
    schema_path: &str,
    workers: usize,
    fault: Option<FaultOptions>,
    chunked: Option<ChunkCli>,
) -> Result<(), String> {
    let schema_text =
        std::fs::read_to_string(schema_path).map_err(|e| format!("reading {schema_path}: {e}"))?;
    let schema_doc = parse(&schema_text).map_err(|e| format!("{schema_path}: {e}"))?;
    let schema = CompiledSchema::compile(&schema_doc).map_err(|e| e.to_string())?;
    let vopts = ValidatorOptions::default();
    if let Some(ChunkCli { input, chunk }) = chunked {
        // Chunk-dispatched combined pass. The corpus may never be
        // materialised, so invalid documents report line numbers only
        // (re-run in-memory for full interpreter diagnostics).
        let fault = fault.unwrap_or_default();
        let sopts = StreamingOptions::with_workers(workers);
        let mut storage = String::new();
        let source = open_source(input.as_deref(), opts.file.as_deref(), &mut storage)?;
        let ((ty, verdicts), report) =
            infer_validate_streaming_source(source, equiv, &schema, vopts, sopts, chunk, fault)
                .map_err(|e| e.to_string())?;
        let suffix = finish_guarded_run(opts, &report)?;
        let mut invalid = 0usize;
        for (line_no, verdict) in &verdicts {
            if matches!(verdict, LineVerdict::Invalid) {
                invalid += 1;
                println!("doc {line_no}: invalid");
            }
        }
        print_inferred_type(opts, &ty);
        eprintln!(
            "» {}/{} documents valid (combined pass), equivalence {}, type size {} nodes{suffix}",
            verdicts.len() - invalid,
            verdicts.len(),
            equiv.name(),
            jsonx::core::type_size(&ty)
        );
        return Ok(());
    }
    let text = read_text(opts.file.as_deref())?;
    let sopts = StreamingOptions::with_workers(workers);
    let (ty, verdicts, suffix) = if let Some(fault) = fault {
        let ((ty, verdicts), report) =
            infer_validate_streaming_guarded(&text, equiv, &schema, vopts, sopts, fault)
                .map_err(|e| e.to_string())?;
        let suffix = finish_guarded_run(opts, &report)?;
        (ty, verdicts, suffix)
    } else {
        let outcome = infer_validate_streaming_parallel(&text, equiv, &schema, vopts, sopts);
        let ty = outcome
            .ty
            .map_err(|(line, e)| format!("line {}: {e}", line + 1))?;
        (ty, outcome.verdicts, String::new())
    };
    let lines: Vec<&str> = text.lines().collect();
    let mut invalid = 0usize;
    for (line_no, verdict) in &verdicts {
        if matches!(verdict, LineVerdict::Invalid) {
            invalid += 1;
            let doc = parse(lines[*line_no]).expect("combined pass parsed this line");
            if let Err(errors) = schema.validate_with(&doc, vopts) {
                for e in errors {
                    println!("doc {line_no}: {e}");
                }
            }
        }
    }
    print_inferred_type(opts, &ty);
    eprintln!(
        "» {}/{} documents valid (combined pass), equivalence {}, type size {} nodes{suffix}",
        verdicts.len() - invalid,
        verdicts.len(),
        equiv.name(),
        jsonx::core::type_size(&ty)
    );
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(
        args,
        true,
        &[
            "schema",
            "formats",
            "streaming",
            "workers",
            "fast-parse",
            "no-fast-parse",
            "input",
            "chunk-bytes",
            "report-timing",
            "on-error",
            "max-errors",
            "quarantine",
            "max-depth",
            "max-line-bytes",
        ],
    )?;
    let schema_path = opts
        .get("schema")
        .ok_or("validate needs --schema SCHEMA.json")?;
    let schema_text =
        std::fs::read_to_string(schema_path).map_err(|e| format!("reading {schema_path}: {e}"))?;
    let schema_doc = parse(&schema_text).map_err(|e| format!("{schema_path}: {e}"))?;
    let schema = CompiledSchema::compile(&schema_doc).map_err(|e| e.to_string())?;
    let vopts = ValidatorOptions {
        enforce_formats: opts.has("formats"),
    };
    let workers: Option<usize> = opts
        .get("workers")
        .map(str::parse)
        .transpose()
        .map_err(|e| format!("bad --workers: {e}"))?;
    let fault = fault_options(&opts)?;
    let chunked = chunk_cli(&opts)?;
    if opts.has("streaming") || workers.is_some() || fault.is_some() || chunked.is_some() {
        return validate_streaming_cli(&opts, &schema, vopts, workers.unwrap_or(0), fault, chunked);
    }
    let docs = read_collection(opts.file.as_deref())?;
    let mut invalid = 0usize;
    for (i, doc) in docs.iter().enumerate() {
        if let Err(errors) = schema.validate_with(doc, vopts) {
            invalid += 1;
            for e in errors {
                println!("doc {i}: {e}");
            }
        }
    }
    eprintln!("» {}/{} documents valid", docs.len() - invalid, docs.len());
    if invalid > 0 {
        return Err(format!("{invalid} invalid documents"));
    }
    Ok(())
}

/// Streaming validation path: fail-fast probe per line on shared workers,
/// then the error-collecting interpreter re-runs on *just* the invalid
/// lines so diagnostics match the DOM path exactly.
fn validate_streaming_cli(
    opts: &Opts,
    schema: &CompiledSchema,
    vopts: ValidatorOptions,
    workers: usize,
    fault: Option<FaultOptions>,
    chunked: Option<ChunkCli>,
) -> Result<(), String> {
    if let Some(ChunkCli { input, chunk }) = chunked {
        // Chunk-dispatched path. The corpus may never be materialised,
        // so invalid documents report line numbers only (re-run
        // in-memory for full interpreter diagnostics).
        let fault = fault.unwrap_or_default();
        let sopts = StreamingOptions::with_workers(workers);
        let fast = fast_parse_enabled(opts);
        let mut storage = String::new();
        let source = open_source(input.as_deref(), opts.file.as_deref(), &mut storage)?;
        let (verdicts, report) =
            validate_streaming_source(source, schema, vopts, sopts, chunk, fault, fast)
                .map_err(|e| e.to_string())?;
        let suffix = finish_guarded_run(opts, &report)?;
        let mut invalid = 0usize;
        for (line_no, verdict) in &verdicts {
            match verdict {
                LineVerdict::Valid => {}
                LineVerdict::Invalid => {
                    invalid += 1;
                    println!("doc {line_no}: invalid");
                }
                LineVerdict::Malformed(e) => return Err(format!("line {}: {e}", line_no + 1)),
            }
        }
        eprintln!(
            "» {}/{} documents valid (streaming){suffix}",
            verdicts.len() - invalid,
            verdicts.len()
        );
        if invalid > 0 {
            return Err(format!("{invalid} invalid documents"));
        }
        return Ok(());
    }
    let text = read_text(opts.file.as_deref())?;
    let sopts = StreamingOptions::with_workers(workers);
    let fast = fast_parse_enabled(opts);
    let (verdicts, suffix) = if let Some(fault) = fault {
        let (verdicts, report) = if fast {
            validate_streaming_guarded_fast(&text, schema, vopts, sopts, fault)
        } else {
            validate_streaming_guarded(&text, schema, vopts, sopts, fault)
        }
        .map_err(|e| e.to_string())?;
        let suffix = finish_guarded_run(opts, &report)?;
        (verdicts, suffix)
    } else {
        let verdicts = if fast {
            validate_streaming_parallel_fast(&text, schema, vopts, sopts)
        } else {
            validate_streaming_parallel(&text, schema, vopts, sopts)
        };
        (verdicts, String::new())
    };
    let lines: Vec<&str> = text.lines().collect();
    let mut invalid = 0usize;
    for (line_no, verdict) in &verdicts {
        match verdict {
            LineVerdict::Valid => {}
            LineVerdict::Invalid => {
                invalid += 1;
                let doc = parse(lines[*line_no]).expect("fail-fast path parsed this line");
                if let Err(errors) = schema.validate_with(&doc, vopts) {
                    for e in errors {
                        println!("doc {line_no}: {e}");
                    }
                }
            }
            LineVerdict::Malformed(e) => return Err(format!("line {}: {e}", line_no + 1)),
        }
    }
    eprintln!(
        "» {}/{} documents valid (streaming){suffix}",
        verdicts.len() - invalid,
        verdicts.len()
    );
    if invalid > 0 {
        return Err(format!("{invalid} invalid documents"));
    }
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args, false, &[])?;
    let docs = read_collection(opts.file.as_deref())?;
    let mut profiler = MongoProfiler::default();
    for d in &docs {
        profiler.observe(d);
    }
    print!("{}", profiler.report());
    eprintln!("» {} documents, {} paths", docs.len(), profiler.size());
    Ok(())
}

fn cmd_skeleton(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args, false, &["coverage"])?;
    let coverage: f64 = opts
        .get("coverage")
        .map(str::parse)
        .transpose()
        .map_err(|e| format!("bad --coverage: {e}"))?
        .unwrap_or(0.9);
    let docs = read_collection(opts.file.as_deref())?;
    let sk = Skeleton::mine(&docs, coverage);
    for (tree, count) in &sk.structures {
        println!("{count:>8}  {tree}");
    }
    let stats = sk.stats();
    eprintln!(
        "» {} structures, {:.1}% coverage, {} queryable paths",
        stats.structures,
        stats.coverage * 100.0,
        stats.paths
    );
    Ok(())
}

fn cmd_project(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args, false, &["fields"])?;
    let fields_arg = opts.get("fields").ok_or("project needs --fields a,b.c")?;
    let fields: Vec<&str> = fields_arg.split(',').collect();
    let parser = ProjectedParser::new(&fields).map_err(|e| e.to_string())?;
    let docs_text = read_text(opts.file.as_deref())?;
    for line in docs_text.lines().filter(|l| !l.trim().is_empty()) {
        let projected = parser.parse(line.as_bytes()).map_err(|e| {
            let prefix: String = line.chars().take(60).collect();
            format!("{e} in document starting {prefix}...")
        })?;
        println!("{}", to_string(&Value::Obj(projected)));
    }
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args, false, &["to"])?;
    let target = opts
        .get("to")
        .ok_or("convert needs --to avro|columnar|relational")?;
    let docs = read_collection(opts.file.as_deref())?;
    convert_collection(target, &docs)
}

/// Schema-driven translation with a streaming columnar path.
///
/// `--streaming` (or `--workers`) shreds newline-bounded shards into
/// per-worker columnar batches concatenated in shard order — the type is
/// inferred from the same text by the streaming typer, so no DOM for the
/// whole collection ever exists. Other targets fall back to the DOM path
/// shared with `convert`.
fn cmd_translate(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(
        args,
        false,
        &[
            "to",
            "streaming",
            "workers",
            "fast-parse",
            "no-fast-parse",
            "input",
            "chunk-bytes",
            "report-timing",
            "on-error",
            "max-errors",
            "quarantine",
            "max-depth",
            "max-line-bytes",
        ],
    )?;
    let target = opts.get("to").unwrap_or("columnar");
    let workers: Option<usize> = opts
        .get("workers")
        .map(str::parse)
        .transpose()
        .map_err(|e| format!("bad --workers: {e}"))?;
    let fault = fault_options(&opts)?;
    let chunked = chunk_cli(&opts)?;
    let streaming =
        opts.has("streaming") || workers.is_some() || fault.is_some() || chunked.is_some();
    if streaming && target != "columnar" {
        return Err(format!(
            "--streaming supports only columnar, not '{target}'"
        ));
    }
    if !streaming {
        let docs = read_collection(opts.file.as_deref())?;
        return convert_collection(target, &docs);
    }
    if let Some(ChunkCli { input, chunk }) = chunked {
        // Translation is two passes over the corpus (type, then shred);
        // out-of-core mode re-opens `--input` so neither pass
        // materialises it. Stdin can't be rewound for the second pass.
        if input.as_deref() == Some("-") {
            return Err(
                "translate needs two passes over the corpus; --input - (stdin) cannot be \
                 re-read — pass a regular file"
                    .into(),
            );
        }
        let fault = fault.unwrap_or_default();
        let sopts = StreamingOptions::with_workers(workers.unwrap_or(0));
        let mut storage = String::new();
        let source = open_source(input.as_deref(), opts.file.as_deref(), &mut storage)?;
        let (ty, _) = infer_streaming_source(source, Equivalence::Kind, sopts, chunk, fault)
            .map_err(|e| e.to_string())?;
        let shredder = Shredder::from_type(&ty);
        let source = match input.as_deref() {
            Some(path) => StreamSource::Reader(open_input(path)?),
            None => StreamSource::Slice(&storage),
        };
        let (batch, report) = translate_streaming_source(
            source,
            &shredder,
            sopts,
            chunk,
            fault,
            fast_parse_enabled(&opts),
        )
        .map_err(|e| e.to_string())?;
        let suffix = finish_guarded_run(&opts, &report)?;
        println!("{}", batch.schema_string());
        eprintln!(
            "» {} columns x {} rows (streaming){suffix}",
            batch.columns.len(),
            batch.rows
        );
        return Ok(());
    }
    let text = read_text(opts.file.as_deref())?;
    let sopts = StreamingOptions::with_workers(workers.unwrap_or(0));
    if let Some(fault) = fault {
        // Both passes run under the same policy: a record the typer
        // rejected is rejected again (and quarantined) by the shredding
        // pass, so the sidecar reflects what the batch actually dropped.
        let (ty, _) = infer_streaming_guarded(&text, Equivalence::Kind, sopts, fault)
            .map_err(|e| e.to_string())?;
        let shredder = Shredder::from_type(&ty);
        let (batch, report) = if fast_parse_enabled(&opts) {
            translate_streaming_guarded_fast(&text, &shredder, sopts, fault)
        } else {
            translate_streaming_guarded(&text, &shredder, sopts, fault)
        }
        .map_err(|e| e.to_string())?;
        let suffix = finish_guarded_run(&opts, &report)?;
        println!("{}", batch.schema_string());
        eprintln!(
            "» {} columns x {} rows (streaming){suffix}",
            batch.columns.len(),
            batch.rows
        );
        return Ok(());
    }
    let ty = infer_streaming_parallel(&text, Equivalence::Kind, sopts)
        .map_err(|(line, e)| format!("line {}: {e}", line + 1))?;
    let shredder = Shredder::from_type(&ty);
    let batch = if fast_parse_enabled(&opts) {
        translate_streaming_parallel_fast(&text, &shredder, sopts)
    } else {
        translate_streaming_parallel(&text, &shredder, sopts)
    }
    .map_err(|(line, e)| format!("line {}: {e}", line + 1))?;
    println!("{}", batch.schema_string());
    eprintln!(
        "» {} columns x {} rows (streaming)",
        batch.columns.len(),
        batch.rows
    );
    Ok(())
}

fn convert_collection(target: &str, docs: &[Value]) -> Result<(), String> {
    let ty = infer_collection(docs, Equivalence::Kind);
    match target {
        "avro" => {
            let codec = AvroCodec::new(AvroSchema::from_type(&ty));
            let mut total = 0usize;
            for doc in docs {
                total += codec.encode(doc).map_err(|e| e.to_string())?.len();
            }
            eprintln!(
                "» {} documents encoded: {} bytes binary (schema derived from inference)",
                docs.len(),
                total
            );
        }
        "columnar" => {
            let batch = Shredder::from_type(&ty)
                .shred(docs)
                .map_err(|e| e.to_string())?;
            println!("{}", batch.schema_string());
            eprintln!("» {} columns x {} rows", batch.columns.len(), batch.rows);
        }
        "relational" => {
            for rel in normalize("root", docs) {
                println!(
                    "{}({})  -- {} rows",
                    rel.name,
                    rel.columns.join(", "),
                    rel.rows.len()
                );
            }
        }
        other => return Err(format!("unknown target '{other}'")),
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    use jsonx::jaql::{expr, infer_output_type, Pipeline};
    let opts = parse_opts(args, false, &["where-exists", "expand", "project", "top"])?;
    let mut q = Pipeline::new();
    if let Some(path) = opts.get("where-exists") {
        q = q.filter(expr::exists(expr::path(path)));
    }
    if let Some(path) = opts.get("expand") {
        q = q.expand(expr::path(path));
    }
    if let Some(projection) = opts.get("project") {
        let fields: Vec<(&str, jsonx::jaql::Expr)> = projection
            .split(',')
            .map(|p| {
                let name = p.rsplit('.').next().unwrap_or(p);
                (name, expr::path(p))
            })
            .collect();
        q = q.transform(expr::record(fields));
    }
    if let Some(n) = opts.get("top") {
        let n: usize = n.parse().map_err(|e| format!("bad --top: {e}"))?;
        q = q.top(n);
    }
    let docs = read_collection(opts.file.as_deref())?;
    // Static output schema first — the Jaql §4.1 feature.
    let input_ty = infer_collection(&docs, Equivalence::Kind);
    let output_ty = infer_output_type(&q, &input_ty);
    eprintln!("» pipeline: {q}");
    eprintln!(
        "» inferred output type: {}",
        print_type(&output_ty, PrintOptions::plain())
    );
    for row in q.eval(&docs) {
        println!("{}", to_string(&row));
    }
    Ok(())
}
