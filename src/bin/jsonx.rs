//! `jsonx` — command-line front end for the workspace.
//!
//! ```text
//! jsonx infer     [--equiv K|L] [--counts] [--schema] [--streaming] [--workers N]
//!                 [--validate SCHEMA.json] [--format json|csv] [FILE]
//! jsonx validate  --schema SCHEMA.json [--formats] [--streaming] [--workers N]
//!                 [--no-fast-parse] [--format json|csv] [FILE]
//! jsonx profile   [FILE]
//! jsonx skeleton  [--coverage 0.9] [FILE]
//! jsonx project   --fields a,b.c [FILE]
//! jsonx convert   --to avro|columnar|relational [--out FILE.jxc] [FILE]
//! jsonx translate [--to avro|columnar|relational] [--out FILE.jxc] [--streaming]
//!                 [--workers N] [--no-fast-parse] [--format json|csv] [FILE]
//! jsonx query     [--where-exists p] [--expand p] [--project a,b.c] [--top n] [FILE]
//! jsonx cat       FILE.jxc [--head N] [--flatten]
//! jsonx serve     [--listen ADDR] [--schema FILE] [--queue-depth N] [--deadline-ms N]
//!                 [--max-conns N] [--workers N] [--max-depth N] [--max-line-bytes N]
//! ```
//!
//! `FILE` is newline-delimited JSON — or header-led CSV with
//! `--format csv`, which routes the same corpus through the same typed
//! pipeline via the CSV record decoder. `-` or no file reads stdin. The
//! streaming commands also accept `--input FILE` to process the corpus
//! out-of-core, plus `--chunk-bytes N` and `--report-timing` to tune
//! and observe the work-stealing dispatch, and `--checkpoint FILE` /
//! `--resume` to journal chunk commits durably and continue an
//! interrupted run.
//!
//! Every command's flags live in one [`FlagSpec`] table; `jsonx help`
//! is generated from those tables, so "implies --streaming" markers and
//! value placeholders can never drift from what the parser accepts.
//!
//! Exit codes are uniform across subcommands (see README):
//! `0` success, `1` invalid data (malformed input or failed validation
//! verdicts), `2` usage error, `3` I/O error, `4` interrupted with a
//! resumable checkpoint.

use jsonx::baselines::MongoProfiler;
use jsonx::core::{infer_collection, print_type, to_json_schema, Equivalence, PrintOptions};
use jsonx::mison::ProjectedParser;
use jsonx::schema::{CompiledSchema, ValidatorOptions};
use jsonx::skeleton::Skeleton;
use jsonx::syntax::{parse, parse_ndjson, to_string, to_string_pretty};
use jsonx::translate::{flatten_rows, read_jxc_file, rows_as_values, OutputSink, Shredder};
use jsonx::Value;
use jsonx::{
    infer_streaming_decoded, infer_streaming_guarded, infer_streaming_journaled,
    infer_streaming_parallel, infer_streaming_source, infer_validate_streaming_decoded,
    infer_validate_streaming_guarded, infer_validate_streaming_parallel,
    infer_validate_streaming_source, translate_streaming_decoded, translate_streaming_guarded,
    translate_streaming_guarded_fast, translate_streaming_journaled, translate_streaming_parallel,
    translate_streaming_parallel_fast, translate_streaming_source, validate_streaming_decoded,
    validate_streaming_guarded, validate_streaming_guarded_fast, validate_streaming_journaled,
    validate_streaming_parallel, validate_streaming_parallel_fast, validate_streaming_source,
    write_quarantine_file, ChunkOptions, CsvDecoder, ErrorPolicy, FaultOptions, JournalControl,
    LineVerdict, ParseLimits, RunReport, StreamError, StreamSource, StreamingOptions,
};
use std::io::{BufRead, Read, Write as _};
use std::process::ExitCode;

// ---------------------------------------------------------------------------
// Flag tables: one source of truth for parsing AND `jsonx help`
// ---------------------------------------------------------------------------

/// One CLI flag: name, optional value placeholder, help text, and
/// whether its presence routes the run through the streaming engine.
#[derive(Clone, Copy)]
struct FlagSpec {
    name: &'static str,
    value: Option<&'static str>,
    help: &'static str,
    implies_streaming: bool,
}

const fn flag(name: &'static str, help: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        value: None,
        help,
        implies_streaming: false,
    }
}

const fn valued(name: &'static str, value: &'static str, help: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        value: Some(value),
        help,
        implies_streaming: false,
    }
}

/// A flag whose presence implies `--streaming` (the help text gets the
/// marker appended automatically).
const fn implies(mut spec: FlagSpec) -> FlagSpec {
    spec.implies_streaming = true;
    spec
}

/// `--format json|csv`, shared by the streaming commands.
const FORMAT_FLAG: FlagSpec = implies(valued(
    "format",
    "json|csv",
    "input format: csv reads a header-led CSV corpus through the same typed pipeline",
));

/// The fault-tolerance flags shared by the streaming commands; any of
/// them routes the run through the guarded pipeline.
const FAULT_FLAGS: &[FlagSpec] = &[
    implies(valued(
        "on-error",
        "fail|skip|collect",
        "record-error policy (default fail). skip drops bad records and keeps going; collect additionally retains every diagnostic (bounded by --max-errors, default 1000)",
    )),
    implies(valued("max-errors", "N", "abort once more than N records reject")),
    implies(valued(
        "quarantine",
        "FILE",
        "write one JSON diagnostic per rejected record (with the raw line) to FILE",
    )),
    implies(valued(
        "max-depth",
        "N",
        "reject records nested deeper than N (default 128)",
    )),
    implies(valued(
        "max-line-bytes",
        "N",
        "reject records longer than N bytes",
    )),
];

/// The out-of-core flags shared by the streaming commands; any of them
/// routes the run through the chunk-source work-stealing engine.
const CHUNK_FLAGS: &[FlagSpec] = &[
    implies(valued(
        "input",
        "FILE",
        "stream FILE through a bounded ring of reusable chunk buffers instead of materialising it ('-' streams stdin); invalid-document diagnostics shrink to line numbers",
    )),
    implies(valued(
        "chunk-bytes",
        "N",
        "target chunk size in bytes (default: sized from the input, capped at 1 MiB)",
    )),
    implies(flag(
        "report-timing",
        "print per-worker chunk/record/byte counts, steal counts and throughput to stderr",
    )),
    implies(valued(
        "checkpoint",
        "FILE",
        "journal every committed chunk to FILE (fsync'd, CRC-framed, committed in input order) so a crashed or interrupted run can be resumed; needs --input with a regular file",
    )),
    implies(flag(
        "resume",
        "continue from the last committed chunk in the --checkpoint journal instead of starting over; the final output is byte-identical to an uninterrupted run",
    )),
];

const INFER_FLAGS: &[FlagSpec] = &[
    valued("equiv", "K|L", "equivalence (default K)"),
    flag("counts", "show counting annotations"),
    flag("schema", "emit JSON Schema instead of type syntax"),
    flag("streaming", "type the event stream directly (no DOMs)"),
    implies(valued(
        "workers",
        "N",
        "shard across N threads (0 = one per CPU)",
    )),
    implies(valued(
        "validate",
        "F",
        "also validate against schema F in the same pass (one tokenisation per line)",
    )),
    FORMAT_FLAG,
];

const VALIDATE_FLAGS: &[FlagSpec] = &[
    valued("schema", "FILE", "schema document (required)"),
    flag("formats", "enforce the `format` keyword"),
    flag("streaming", "fail-fast per line, diagnostics on demand"),
    implies(valued(
        "workers",
        "N",
        "shard across N threads (0 = one per CPU)",
    )),
    flag(
        "fast-parse",
        "SWAR structural fast path with projection pushdown (default on for --streaming); --no-fast-parse forces the full parser",
    ),
    flag("no-fast-parse", "force the full parser"),
    FORMAT_FLAG,
];

const SKELETON_FLAGS: &[FlagSpec] = &[valued(
    "coverage",
    "F",
    "coverage threshold in (0,1] (default 0.9)",
)];

const PROJECT_FLAGS: &[FlagSpec] = &[valued("fields", "a,b.c", "dotted field paths (required)")];

const CONVERT_FLAGS: &[FlagSpec] = &[
    valued("to", "TARGET", "avro | columnar | relational (required)"),
    valued(
        "out",
        "FILE",
        "persist the batch as a binary .jxc file (columnar only)",
    ),
];

const TRANSLATE_FLAGS: &[FlagSpec] = &[
    valued(
        "to",
        "TARGET",
        "avro | columnar | relational (default columnar)",
    ),
    valued(
        "out",
        "FILE",
        "persist the batch as a binary .jxc file (columnar only)",
    ),
    flag(
        "streaming",
        "shred newline-bounded shards incrementally (columnar only)",
    ),
    implies(valued(
        "workers",
        "N",
        "shard across N threads (0 = one per CPU)",
    )),
    flag(
        "fast-parse",
        "SWAR structural fast path projected to the shred plan (default on for --streaming); --no-fast-parse forces the full parser",
    ),
    flag("no-fast-parse", "force the full parser"),
    FORMAT_FLAG,
];

const QUERY_FLAGS: &[FlagSpec] = &[
    valued(
        "where-exists",
        "P",
        "keep documents where path P is non-null",
    ),
    valued("expand", "P", "flatten the array at path P"),
    valued(
        "project",
        "a,b.c",
        "transform to a record of the given paths",
    ),
    valued("top", "N", "keep the first N results"),
];

const CAT_FLAGS: &[FlagSpec] = &[
    valued("head", "N", "show at most N rows (default 10)"),
    flag(
        "flatten",
        "cross-join list columns into flat rows (unnest semantics)",
    ),
];

const SERVE_FLAGS: &[FlagSpec] = &[
    valued(
        "listen",
        "ADDR",
        "listen address (default 127.0.0.1:7077; port 0 picks a free port, printed on stdout)",
    ),
    valued(
        "schema",
        "FILE",
        "schema to compile once and serve; the RELOAD verb recompiles it and swaps epochs without interrupting in-flight requests",
    ),
    valued(
        "queue-depth",
        "N",
        "bounded request-queue depth; a full queue sheds load with a structured busy response instead of buffering (default 64)",
    ),
    valued(
        "deadline-ms",
        "N",
        "answer deadline-exceeded when a request waited in the queue longer than N ms",
    ),
    valued(
        "max-conns",
        "N",
        "concurrent-connection cap; excess connections get one busy line and are closed (default 64)",
    ),
    valued("workers", "N", "worker threads (0 = one per CPU)"),
    valued(
        "max-depth",
        "N",
        "reject payloads nested deeper than N (default 128)",
    ),
    valued(
        "max-line-bytes",
        "N",
        "reject payloads longer than N bytes (also caps the frame buffer)",
    ),
    valued(
        "frame-budget-ms",
        "N",
        "cut off frames that do not finish arriving within N ms — the slow-loris guard (default 2000)",
    ),
    flag(
        "debug-faults",
        "enable the deterministic fault verbs (BOOM, SLEEP) the fault-injection harness drives",
    ),
];

/// One subcommand: its summary line, flag table, and whether it also
/// accepts the shared fault-tolerance / out-of-core flag groups.
struct CommandSpec {
    name: &'static str,
    summary: &'static str,
    flags: &'static [FlagSpec],
    guarded: bool,
}

const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "infer",
        summary: "infer a schema for an NDJSON (or CSV) collection",
        flags: INFER_FLAGS,
        guarded: true,
    },
    CommandSpec {
        name: "validate",
        summary: "validate documents against a JSON Schema",
        flags: VALIDATE_FLAGS,
        guarded: true,
    },
    CommandSpec {
        name: "profile",
        summary: "mongodb-schema-style streaming field profile",
        flags: &[],
        guarded: false,
    },
    CommandSpec {
        name: "skeleton",
        summary: "mine the frequent-structure skeleton",
        flags: SKELETON_FLAGS,
        guarded: false,
    },
    CommandSpec {
        name: "project",
        summary: "parse only selected fields (Mison-style)",
        flags: PROJECT_FLAGS,
        guarded: false,
    },
    CommandSpec {
        name: "convert",
        summary: "translate the collection",
        flags: CONVERT_FLAGS,
        guarded: false,
    },
    CommandSpec {
        name: "translate",
        summary: "schema-driven translation with a streaming columnar path",
        flags: TRANSLATE_FLAGS,
        guarded: true,
    },
    CommandSpec {
        name: "query",
        summary: "run a Jaql-style pipeline and show its inferred output schema (stages apply in flag order)",
        flags: QUERY_FLAGS,
        guarded: false,
    },
    CommandSpec {
        name: "cat",
        summary: "inspect a binary .jxc columnar file (schema, rows, encodings)",
        flags: CAT_FLAGS,
        guarded: false,
    },
    CommandSpec {
        name: "serve",
        summary: "run the resident schema service (validate/infer/translate over a line protocol)",
        flags: SERVE_FLAGS,
        guarded: false,
    },
];

impl CommandSpec {
    /// Every flag this command accepts: its own plus the shared groups.
    fn all_flags(&self) -> impl Iterator<Item = &'static FlagSpec> {
        self.flags
            .iter()
            .chain(self.guarded.then_some(FAULT_FLAGS).into_iter().flatten())
            .chain(self.guarded.then_some(CHUNK_FLAGS).into_iter().flatten())
    }
}

/// Greedy word-wrap for generated help text.
fn wrap(text: &str, width: usize) -> Vec<String> {
    let mut lines = Vec::new();
    let mut line = String::new();
    for word in text.split_whitespace() {
        if !line.is_empty() && line.len() + 1 + word.len() > width {
            lines.push(std::mem::take(&mut line));
        }
        if !line.is_empty() {
            line.push(' ');
        }
        line.push_str(word);
    }
    if !line.is_empty() {
        lines.push(line);
    }
    lines
}

fn render_flag(out: &mut String, spec: &FlagSpec) {
    let head = match spec.value {
        Some(v) => format!("--{} {v}", spec.name),
        None => format!("--{}", spec.name),
    };
    let mut help = spec.help.to_string();
    if spec.implies_streaming {
        help.push_str(" (implies --streaming)");
    }
    for (i, line) in wrap(&help, 42).into_iter().enumerate() {
        if i == 0 {
            out.push_str(&format!("              {head:<19} {line}\n"));
        } else {
            out.push_str(&format!("              {:<19} {line}\n", ""));
        }
    }
}

/// The help text, generated from the command and flag tables.
fn usage() -> String {
    let mut s = String::from("usage: jsonx <command> [options] [FILE]\n\ncommands:\n");
    for cmd in COMMANDS {
        s.push_str(&format!("  {:<9} {}\n", cmd.name, cmd.summary));
        for spec in cmd.flags {
            render_flag(&mut s, spec);
        }
        if cmd.guarded {
            s.push_str("            (plus the fault-tolerance and out-of-core flags below)\n");
        }
    }
    s.push_str("\nfault-tolerance flags (streaming infer / validate / translate):\n");
    for spec in FAULT_FLAGS {
        render_flag(&mut s, spec);
    }
    s.push_str("\nout-of-core flags (route through the chunked work-stealing engine):\n");
    for spec in CHUNK_FLAGS {
        render_flag(&mut s, spec);
    }
    s.push_str(
        "\nFILE is newline-delimited JSON (header-led CSV with --format csv);\n'-' or absent reads stdin.",
    );
    s
}

/// A classified CLI failure. Every subcommand exits through one of
/// these, so exit codes are uniform across the tool: `0` success,
/// `1` invalid data, `2` usage, `3` I/O, `4` interrupted-resumable.
/// Plain `String` errors (the bulk of the data-shaped failures) convert
/// to [`CliError::Data`].
#[derive(Debug)]
enum CliError {
    /// Bad flags, bad flag values, wrong command shape — exit 2.
    Usage(String),
    /// The input is malformed or failed its validation verdicts — exit 1.
    Data(String),
    /// A file or stream could not be read or written — exit 3.
    Io(String),
    /// Stopped gracefully with a resumable checkpoint journal — exit 4.
    Interrupted(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(msg.into())
    }

    fn data(msg: impl Into<String>) -> CliError {
        CliError::Data(msg.into())
    }

    fn io(msg: impl Into<String>) -> CliError {
        CliError::Io(msg.into())
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Data(m) | CliError::Io(m) | CliError::Interrupted(m) => {
                m
            }
        }
    }

    fn code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Data(_) => 1,
            CliError::Io(_) => 3,
            CliError::Interrupted(_) => 4,
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Data(msg)
    }
}

/// Classifies a streaming-run failure: input problems are I/O, a
/// graceful stop is interrupted-resumable, everything else is bad data.
fn stream_err(e: StreamError) -> CliError {
    match e {
        StreamError::Interrupted => CliError::Interrupted(format!(
            "{e} — rerun with --resume to continue from the last committed chunk"
        )),
        StreamError::Input(msg) => CliError::Io(msg),
        other => CliError::Data(other.to_string()),
    }
}

/// Parses `--name VALUE` through `FromStr`, reporting failures as usage
/// errors (exit 2) naming the flag.
fn parse_flag<T: std::str::FromStr>(opts: &Opts, name: &str) -> Result<Option<T>, CliError>
where
    T::Err: std::fmt::Display,
{
    opts.get(name)
        .map(str::parse)
        .transpose()
        .map_err(|e| CliError::usage(format!("bad --{name}: {e}")))
}

/// SIGINT/SIGTERM handling for journaled runs: the handler only trips a
/// latch; workers drain their in-flight chunks and the run exits as
/// interrupted-resumable. Installed only when a checkpoint is active —
/// unjournaled runs keep the default die-on-signal behaviour, because
/// without a journal there is nothing graceful to save.
mod sig {
    use std::sync::atomic::AtomicBool;

    static STOP: AtomicBool = AtomicBool::new(false);

    pub fn stop_flag() -> &'static AtomicBool {
        &STOP
    }

    #[cfg(unix)]
    pub fn install() {
        // Declared locally instead of pulling in a libc dependency;
        // glibc's `signal` installs BSD semantics (SA_RESTART), so
        // blocked reads resume after the handler runs and the stop
        // latch is observed at the next chunk-claim boundary.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_signal(_sig: i32) {
            STOP.store(true, std::sync::atomic::Ordering::SeqCst);
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("jsonx: {}", err.message());
            ExitCode::from(err.code())
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::usage(format!("missing command\n{}", usage())));
    };
    let rest = &args[1..];
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        println!("{}", usage());
        return Ok(());
    }
    let Some(cmd) = COMMANDS.iter().find(|c| c.name == command.as_str()) else {
        return Err(CliError::usage(format!(
            "unknown command '{command}'\n{}",
            usage()
        )));
    };
    let opts = parse_opts(rest, cmd)?;
    match cmd.name {
        "infer" => cmd_infer(&opts),
        "validate" => cmd_validate(&opts),
        "profile" => cmd_profile(&opts),
        "skeleton" => cmd_skeleton(&opts),
        "project" => cmd_project(&opts),
        "convert" => cmd_convert(&opts),
        "translate" => cmd_translate(&opts),
        "query" => cmd_query(&opts),
        "cat" => cmd_cat(&opts),
        "serve" => cmd_serve(&opts),
        _ => unreachable!("command table and dispatch table agree"),
    }
}

/// Parsed flags (with optional values) plus the positional FILE argument.
struct Opts {
    flags: Vec<(String, Option<String>)>,
    file: Option<String>,
    /// Some present flag's spec implies `--streaming`.
    streaming_implied: bool,
}

/// Splits `args` into flags and the positional FILE according to the
/// command's flag table — whether a flag takes a value is read off its
/// spec, so the same name can be boolean in one command and valued in
/// another (`infer --schema` vs `validate --schema FILE`).
fn parse_opts(args: &[String], cmd: &CommandSpec) -> Result<Opts, CliError> {
    let mut flags = Vec::new();
    let mut file = None;
    let mut streaming_implied = false;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            let Some(spec) = cmd.all_flags().find(|s| s.name == name) else {
                return Err(CliError::usage(format!(
                    "unknown flag --{name} (see `jsonx help`)"
                )));
            };
            streaming_implied |= spec.implies_streaming;
            if spec.value.is_some() {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::usage(format!("flag --{name} needs a value")))?;
                flags.push((name.to_string(), Some(v.clone())));
                i += 2;
            } else {
                flags.push((name.to_string(), None));
                i += 1;
            }
        } else {
            if file.is_some() {
                return Err(CliError::usage(format!("unexpected extra argument '{a}'")));
            }
            file = Some(a.clone());
            i += 1;
        }
    }
    Ok(Opts {
        flags,
        file,
        streaming_implied,
    })
}

impl Opts {
    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// `--streaming` itself, or any present flag whose spec implies it.
    fn streaming_requested(&self) -> bool {
        self.has("streaming") || self.streaming_implied
    }
}

// ---------------------------------------------------------------------------
// Shared run configuration (fault tolerance, out-of-core, input format)
// ---------------------------------------------------------------------------

/// Out-of-core run configuration parsed from the chunk flags.
struct ChunkCli {
    /// `--input FILE`: stream this file instead of the positional FILE.
    input: Option<String>,
    chunk: ChunkOptions,
}

/// Builds the out-of-core configuration, or `None` when no chunk flag
/// was given (the in-memory paths keep their exact legacy output).
fn chunk_cli(opts: &Opts) -> Result<Option<ChunkCli>, CliError> {
    if !CHUNK_FLAGS.iter().any(|f| opts.has(f.name)) {
        return Ok(None);
    }
    let chunk_bytes: usize = parse_flag(opts, "chunk-bytes")?.unwrap_or(0);
    Ok(Some(ChunkCli {
        input: opts.get("input").map(str::to_string),
        chunk: ChunkOptions {
            chunk_bytes,
            timing: opts.has("report-timing"),
            ..ChunkOptions::default()
        },
    }))
}

/// The reader half of an out-of-core run: `--input FILE` opened for
/// bounded streaming (`-` streams stdin).
type BoxedInput = Box<dyn BufRead + Send>;

fn open_input(path: &str) -> Result<BoxedInput, CliError> {
    if path == "-" {
        Ok(Box::new(std::io::BufReader::new(std::io::stdin())))
    } else {
        let file =
            std::fs::File::open(path).map_err(|e| CliError::io(format!("reading {path}: {e}")))?;
        Ok(Box::new(std::io::BufReader::new(file)))
    }
}

/// Opens the corpus for a chunk-dispatched run: `--input` streams a
/// reader out-of-core; otherwise the positional FILE/stdin text is
/// loaded into `storage` and chunk-dispatched in place.
fn open_source<'a>(
    input: Option<&str>,
    file: Option<&str>,
    storage: &'a mut String,
) -> Result<StreamSource<'a, BoxedInput>, CliError> {
    match input {
        Some(path) => Ok(StreamSource::Reader(open_input(path)?)),
        None => {
            *storage = read_text(file)?;
            Ok(StreamSource::Slice(storage))
        }
    }
}

/// Whether `--format csv` selected the CSV front-end.
fn csv_requested(opts: &Opts) -> Result<bool, CliError> {
    match opts.get("format") {
        None | Some("json") => Ok(false),
        Some("csv") => Ok(true),
        Some(other) => Err(CliError::usage(format!(
            "unknown --format '{other}' (use json or csv)"
        ))),
    }
}

/// Splits the CSV header row off a source, returning it together with
/// the remainder (whose record indices then count data rows from 0, as
/// the decoder expects).
fn peel_csv_header<R: BufRead + Send>(
    source: StreamSource<'_, R>,
) -> Result<(String, StreamSource<'_, R>), CliError> {
    let (header, rest) = match source {
        StreamSource::Slice(text) => match text.find('\n') {
            Some(i) => (text[..i].to_string(), StreamSource::Slice(&text[i + 1..])),
            None => (text.to_string(), StreamSource::Slice("")),
        },
        StreamSource::Reader(mut reader) => {
            let mut line = String::new();
            reader
                .read_line(&mut line)
                .map_err(|e| CliError::io(format!("reading csv header: {e}")))?;
            (line, StreamSource::Reader(reader))
        }
    };
    let header = header.trim_end_matches(['\n', '\r']).to_string();
    if header.trim().is_empty() {
        return Err(CliError::data("csv input has no header row"));
    }
    Ok((header, rest))
}

/// A CSV decoder for the peeled header, carrying the run's parse limits.
fn csv_decoder(header: &str, fault: &FaultOptions) -> Result<CsvDecoder, String> {
    CsvDecoder::from_header(header)
        .map(|d| d.with_limits(fault.limits))
        .map_err(|e| format!("csv header: {e}"))
}

/// Whether the streaming runs should try the SWAR projecting fast path
/// first. On by default; `--no-fast-parse` is the escape hatch (and wins
/// over an explicit `--fast-parse`).
fn fast_parse_enabled(opts: &Opts) -> bool {
    !opts.has("no-fast-parse")
}

/// Builds [`FaultOptions`] from the shared fault-tolerance flags, or
/// `None` when none were given (legacy fail-fast paths).
fn fault_options(opts: &Opts) -> Result<Option<FaultOptions>, CliError> {
    if !FAULT_FLAGS.iter().any(|f| opts.has(f.name)) {
        return Ok(None);
    }
    let max_errors: Option<usize> = parse_flag(opts, "max-errors")?;
    let policy = match opts.get("on-error").unwrap_or("fail") {
        "fail" => ErrorPolicy::FailFast,
        "skip" => ErrorPolicy::Skip { max_errors },
        "collect" => ErrorPolicy::Collect {
            max_errors: max_errors.unwrap_or(1000),
        },
        other => {
            return Err(CliError::usage(format!(
                "unknown --on-error policy '{other}' (use fail, skip or collect)"
            )))
        }
    };
    let mut limits = ParseLimits::new();
    if let Some(depth) = parse_flag(opts, "max-depth")? {
        limits = limits.with_max_depth(depth);
    }
    if let Some(bytes) = parse_flag(opts, "max-line-bytes")? {
        limits = limits.with_max_input_bytes(bytes);
    }
    Ok(Some(FaultOptions {
        policy,
        keep_rejects: opts.has("quarantine"),
        limits,
    }))
}

/// Post-run bookkeeping for a guarded streaming command: writes the
/// quarantine sidecar when requested, surfaces poisoned shards on
/// stderr, and returns the `, N rejected` suffix for the summary line.
fn finish_guarded_run(opts: &Opts, report: &RunReport) -> Result<String, CliError> {
    if let Some(path) = opts.get("quarantine") {
        let n = write_quarantine_file(std::path::Path::new(path), report)
            .map_err(|e| CliError::io(format!("writing {path}: {e}")))?;
        eprintln!("» {n} diagnostics quarantined to {path}");
    }
    for p in &report.poisoned {
        eprintln!("» warning: {p}");
    }
    for t in &report.timings {
        eprintln!(
            "» worker {}: {} chunks ({} stolen), {} records, {} bytes, {:.3}s busy ({:.0} rec/s, {:.2} MB/s)",
            t.worker,
            t.chunks,
            t.steals,
            t.records,
            t.bytes,
            t.busy.as_secs_f64(),
            t.records_per_sec(),
            t.bytes_per_sec() / 1e6,
        );
    }
    Ok(format!(", {} rejected", report.errors.total))
}

/// Loads the whole corpus into memory — the in-memory path shared by
/// every command (`--input` is the out-of-core alternative). Raw bytes
/// are read first so non-UTF-8 input gets a clean diagnostic naming the
/// offending byte offset instead of a generic io error.
fn read_text(file: Option<&str>) -> Result<String, CliError> {
    let (bytes, name) = match file {
        None | Some("-") => {
            let mut buf = Vec::new();
            std::io::stdin()
                .read_to_end(&mut buf)
                .map_err(|e| CliError::io(format!("reading stdin: {e}")))?;
            (buf, "stdin")
        }
        Some(path) => (
            std::fs::read(path).map_err(|e| CliError::io(format!("reading {path}: {e}")))?,
            path,
        ),
    };
    String::from_utf8(bytes).map_err(|e| {
        CliError::data(format!(
            "{name}: input is not valid UTF-8 (bad byte at offset {})",
            e.utf8_error().valid_up_to()
        ))
    })
}

fn read_collection(file: Option<&str>) -> Result<Vec<Value>, CliError> {
    let text = read_text(file)?;
    parse_ndjson(&text).map_err(|(line, e)| CliError::data(format!("line {}: {e}", line + 1)))
}

/// Stdout wrapped for pipeline use (`jsonx cat big.jxc | head`): a
/// broken pipe quietly stops output instead of failing the run, so the
/// process still exits 0 — verdict loops keep counting, they just stop
/// printing. Any other write failure is a real I/O error (exit 3).
struct PipeOut {
    out: std::io::BufWriter<std::io::Stdout>,
    open: bool,
}

impl PipeOut {
    fn new() -> PipeOut {
        PipeOut {
            out: std::io::BufWriter::new(std::io::stdout()),
            open: true,
        }
    }

    /// Writes one line; returns `false` once the reader has gone away.
    /// Print-only callers may stop early on `false`; counting callers
    /// carry on and every later call is a cheap no-op.
    fn line(&mut self, text: &str) -> Result<bool, CliError> {
        if !self.open {
            return Ok(false);
        }
        match writeln!(self.out, "{text}") {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {
                self.open = false;
                Ok(false)
            }
            Err(e) => Err(CliError::io(format!("writing stdout: {e}"))),
        }
    }

    fn finish(mut self) -> Result<(), CliError> {
        match self.out.flush() {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
            Err(e) => Err(CliError::io(format!("writing stdout: {e}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint / resume wiring
// ---------------------------------------------------------------------------

/// Parses and validates `--checkpoint FILE` / `--resume`. Resume seeks
/// the input by committed byte offset, so the journal requires `--input`
/// with a regular file (stdin cannot be re-read); the CSV front-end is
/// refused because its row identity hangs off a peeled header line the
/// journal's byte accounting does not cover.
fn checkpoint_cli(
    opts: &Opts,
    chunked: &Option<ChunkCli>,
    csv: bool,
) -> Result<Option<(String, bool)>, CliError> {
    let resume = opts.has("resume");
    let Some(journal) = opts.get("checkpoint") else {
        if resume {
            return Err(CliError::usage("--resume needs --checkpoint FILE"));
        }
        return Ok(None);
    };
    if csv {
        return Err(CliError::usage(
            "--checkpoint does not support --format csv",
        ));
    }
    let Some(input) = chunked.as_ref().and_then(|c| c.input.as_deref()) else {
        return Err(CliError::usage(
            "--checkpoint needs --input FILE (resume seeks the input by byte offset)",
        ));
    };
    if input == "-" {
        return Err(CliError::usage(
            "--checkpoint cannot journal stdin; pass --input with a regular file",
        ));
    }
    if let Ok(meta) = std::fs::metadata(input) {
        if !meta.is_file() {
            return Err(CliError::usage(format!(
                "--checkpoint needs --input with a regular file, but {input} is not one"
            )));
        }
    }
    Ok(Some((journal.to_string(), resume)))
}

/// Builds the [`JournalControl`] for a journaled run: installs the
/// SIGINT/SIGTERM stop latch and wires the deterministic crash injector
/// (`JSONX_CRASHPOINT`) the kill-and-resume harness drives. The injector
/// counts commits across the whole run — translate's two phases share
/// one counter — so `commits:N` always means the Nth journal record.
fn journal_control(journal: &std::path::Path, resume: bool) -> JournalControl<'_> {
    sig::install();
    let mut ctrl = JournalControl::new(journal);
    ctrl.resume = resume;
    ctrl.stop = Some(sig::stop_flag());
    if let Some(cp) = jsonx::gen::Crashpoint::from_env() {
        let total = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        ctrl.after_commit = Some(std::sync::Arc::new(move |_phase_commits| {
            let n = total.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
            cp.observe_commit(n, sig::stop_flag());
        }));
    }
    ctrl
}

// ---------------------------------------------------------------------------
// infer
// ---------------------------------------------------------------------------

fn cmd_infer(opts: &Opts) -> Result<(), CliError> {
    let equiv = match opts.get("equiv").unwrap_or("K") {
        "K" | "k" | "kind" => Equivalence::Kind,
        "L" | "l" | "label" => Equivalence::Label,
        other => {
            return Err(CliError::usage(format!(
                "unknown equivalence '{other}' (use K or L)"
            )))
        }
    };
    let workers: Option<usize> = parse_flag(opts, "workers")?;
    let fault = fault_options(opts)?;
    let chunked = chunk_cli(opts)?;
    let csv = csv_requested(opts)?;
    let checkpoint = checkpoint_cli(opts, &chunked, csv)?;
    if let Some(schema_path) = opts.get("validate") {
        if checkpoint.is_some() {
            return Err(CliError::usage(
                "--checkpoint does not support infer --validate (journal one pass at a time)",
            ));
        }
        return infer_validate_cli(
            opts,
            equiv,
            schema_path,
            workers.unwrap_or(0),
            fault,
            chunked,
            csv,
        );
    }
    if csv {
        // CSV front-end: peel the header, then the decoded engine path.
        let (input, chunk) = match chunked {
            Some(c) => (c.input, c.chunk),
            None => (None, ChunkOptions::default()),
        };
        let fault = fault.unwrap_or_default();
        let sopts = StreamingOptions::with_workers(workers.unwrap_or(0));
        let mut storage = String::new();
        let source = open_source(input.as_deref(), opts.file.as_deref(), &mut storage)?;
        let (header, source) = peel_csv_header(source)?;
        let decoder = csv_decoder(&header, &fault)?;
        let (ty, report) = infer_streaming_decoded(source, decoder, equiv, sopts, chunk, fault)
            .map_err(stream_err)?;
        let suffix = finish_guarded_run(opts, &report)?;
        print_inferred_type(opts, &ty)?;
        eprintln!(
            "» {} documents (streaming csv), equivalence {}, type size {} nodes{suffix}",
            report.records - report.errors.total,
            equiv.name(),
            jsonx::core::type_size(&ty)
        );
        return Ok(());
    }
    if let Some(ChunkCli { input, chunk }) = chunked {
        let fault = fault.unwrap_or_default();
        let sopts = StreamingOptions::with_workers(workers.unwrap_or(0));
        let (ty, report) = if let Some((journal, resume)) = &checkpoint {
            let input = input.as_deref().expect("checkpoint_cli verified --input");
            let ctrl = journal_control(std::path::Path::new(journal), *resume);
            infer_streaming_journaled(
                std::path::Path::new(input),
                equiv,
                sopts,
                chunk,
                fault,
                &ctrl,
            )
            .map_err(stream_err)?
        } else {
            let mut storage = String::new();
            let source = open_source(input.as_deref(), opts.file.as_deref(), &mut storage)?;
            infer_streaming_source(source, equiv, sopts, chunk, fault).map_err(stream_err)?
        };
        let suffix = finish_guarded_run(opts, &report)?;
        print_inferred_type(opts, &ty)?;
        eprintln!(
            "» {} documents (streaming), equivalence {}, type size {} nodes{suffix}",
            report.records - report.errors.total,
            equiv.name(),
            jsonx::core::type_size(&ty)
        );
        return Ok(());
    }
    if let Some(fault) = fault {
        let text = read_text(opts.file.as_deref())?;
        let sopts = StreamingOptions::with_workers(workers.unwrap_or(0));
        let (ty, report) =
            infer_streaming_guarded(&text, equiv, sopts, fault).map_err(stream_err)?;
        let suffix = finish_guarded_run(opts, &report)?;
        print_inferred_type(opts, &ty)?;
        eprintln!(
            "» {} documents (streaming), equivalence {}, type size {} nodes{suffix}",
            report.records - report.errors.total,
            equiv.name(),
            jsonx::core::type_size(&ty)
        );
        return Ok(());
    }
    let (ty, n_docs, mode) = if opts.streaming_requested() {
        let text = read_text(opts.file.as_deref())?;
        let sopts = StreamingOptions::with_workers(workers.unwrap_or(0));
        let ty = infer_streaming_parallel(&text, equiv, sopts)
            .map_err(|(line, e)| format!("line {}: {e}", line + 1))?;
        let n = text.lines().filter(|l| !l.trim().is_empty()).count();
        (ty, n, "streaming")
    } else {
        let docs = read_collection(opts.file.as_deref())?;
        let ty = infer_collection(&docs, equiv);
        let n = docs.len();
        (ty, n, "dom")
    };
    print_inferred_type(opts, &ty)?;
    eprintln!(
        "» {n_docs} documents ({mode}), equivalence {}, type size {} nodes",
        equiv.name(),
        jsonx::core::type_size(&ty)
    );
    Ok(())
}

fn print_inferred_type(opts: &Opts, ty: &jsonx::core::JType) -> Result<(), CliError> {
    let text = if opts.has("schema") {
        to_string_pretty(&to_json_schema(ty))
    } else {
        let popts = if opts.has("counts") {
            PrintOptions::with_counts()
        } else {
            PrintOptions::plain()
        };
        print_type(ty, popts)
    };
    let mut out = PipeOut::new();
    for line in text.lines() {
        if !out.line(line)? {
            break;
        }
    }
    out.finish()
}

/// The combined single-pass path behind `infer --validate SCHEMA.json`:
/// one tokenisation per line feeds both type fusion and the compiled
/// fail-fast validator, with interpreter diagnostics re-run on just the
/// invalid lines. Invalid documents are reported but don't fail the run —
/// the primary output is still the inferred type.
#[allow(clippy::too_many_arguments)]
fn infer_validate_cli(
    opts: &Opts,
    equiv: Equivalence,
    schema_path: &str,
    workers: usize,
    fault: Option<FaultOptions>,
    chunked: Option<ChunkCli>,
    csv: bool,
) -> Result<(), CliError> {
    let schema_text = std::fs::read_to_string(schema_path)
        .map_err(|e| CliError::io(format!("reading {schema_path}: {e}")))?;
    let schema_doc =
        parse(&schema_text).map_err(|e| CliError::data(format!("{schema_path}: {e}")))?;
    let schema = CompiledSchema::compile(&schema_doc).map_err(|e| e.to_string())?;
    let vopts = ValidatorOptions::default();
    if csv {
        // CSV combined pass: rows are synthesised records, so invalid
        // documents report line numbers only.
        let (input, chunk) = match chunked {
            Some(c) => (c.input, c.chunk),
            None => (None, ChunkOptions::default()),
        };
        let fault = fault.unwrap_or_default();
        let sopts = StreamingOptions::with_workers(workers);
        let mut storage = String::new();
        let source = open_source(input.as_deref(), opts.file.as_deref(), &mut storage)?;
        let (header, source) = peel_csv_header(source)?;
        let decoder = csv_decoder(&header, &fault)?;
        let ((ty, verdicts), report) = infer_validate_streaming_decoded(
            source, decoder, equiv, &schema, vopts, sopts, chunk, fault,
        )
        .map_err(stream_err)?;
        let suffix = finish_guarded_run(opts, &report)?;
        let mut out = PipeOut::new();
        let mut invalid = 0usize;
        for (line_no, verdict) in &verdicts {
            if matches!(verdict, LineVerdict::Invalid) {
                invalid += 1;
                out.line(&format!("doc {line_no}: invalid"))?;
            }
        }
        out.finish()?;
        print_inferred_type(opts, &ty)?;
        eprintln!(
            "» {}/{} documents valid (combined pass, csv), equivalence {}, type size {} nodes{suffix}",
            verdicts.len() - invalid,
            verdicts.len(),
            equiv.name(),
            jsonx::core::type_size(&ty)
        );
        return Ok(());
    }
    if let Some(ChunkCli { input, chunk }) = chunked {
        // Chunk-dispatched combined pass. The corpus may never be
        // materialised, so invalid documents report line numbers only
        // (re-run in-memory for full interpreter diagnostics).
        let fault = fault.unwrap_or_default();
        let sopts = StreamingOptions::with_workers(workers);
        let mut storage = String::new();
        let source = open_source(input.as_deref(), opts.file.as_deref(), &mut storage)?;
        let ((ty, verdicts), report) =
            infer_validate_streaming_source(source, equiv, &schema, vopts, sopts, chunk, fault)
                .map_err(stream_err)?;
        let suffix = finish_guarded_run(opts, &report)?;
        let mut out = PipeOut::new();
        let mut invalid = 0usize;
        for (line_no, verdict) in &verdicts {
            if matches!(verdict, LineVerdict::Invalid) {
                invalid += 1;
                out.line(&format!("doc {line_no}: invalid"))?;
            }
        }
        out.finish()?;
        print_inferred_type(opts, &ty)?;
        eprintln!(
            "» {}/{} documents valid (combined pass), equivalence {}, type size {} nodes{suffix}",
            verdicts.len() - invalid,
            verdicts.len(),
            equiv.name(),
            jsonx::core::type_size(&ty)
        );
        return Ok(());
    }
    let text = read_text(opts.file.as_deref())?;
    let sopts = StreamingOptions::with_workers(workers);
    let (ty, verdicts, suffix) = if let Some(fault) = fault {
        let ((ty, verdicts), report) =
            infer_validate_streaming_guarded(&text, equiv, &schema, vopts, sopts, fault)
                .map_err(stream_err)?;
        let suffix = finish_guarded_run(opts, &report)?;
        (ty, verdicts, suffix)
    } else {
        let outcome = infer_validate_streaming_parallel(&text, equiv, &schema, vopts, sopts);
        let ty = outcome
            .ty
            .map_err(|(line, e)| format!("line {}: {e}", line + 1))?;
        (ty, outcome.verdicts, String::new())
    };
    let lines: Vec<&str> = text.lines().collect();
    let mut out = PipeOut::new();
    let mut invalid = 0usize;
    for (line_no, verdict) in &verdicts {
        if matches!(verdict, LineVerdict::Invalid) {
            invalid += 1;
            let doc = parse(lines[*line_no]).expect("combined pass parsed this line");
            if let Err(errors) = schema.validate_with(&doc, vopts) {
                for e in errors {
                    out.line(&format!("doc {line_no}: {e}"))?;
                }
            }
        }
    }
    out.finish()?;
    print_inferred_type(opts, &ty)?;
    eprintln!(
        "» {}/{} documents valid (combined pass), equivalence {}, type size {} nodes{suffix}",
        verdicts.len() - invalid,
        verdicts.len(),
        equiv.name(),
        jsonx::core::type_size(&ty)
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// validate
// ---------------------------------------------------------------------------

fn cmd_validate(opts: &Opts) -> Result<(), CliError> {
    let schema_path = opts
        .get("schema")
        .ok_or_else(|| CliError::usage("validate needs --schema SCHEMA.json"))?;
    let schema_text = std::fs::read_to_string(schema_path)
        .map_err(|e| CliError::io(format!("reading {schema_path}: {e}")))?;
    let schema_doc =
        parse(&schema_text).map_err(|e| CliError::data(format!("{schema_path}: {e}")))?;
    let schema = CompiledSchema::compile(&schema_doc).map_err(|e| e.to_string())?;
    // Identifies the schema in a checkpoint journal's header, so a
    // resume with a different schema is refused instead of mixing
    // verdicts from two schemas in one output.
    let schema_tag = jsonx::data::crc32(schema_text.as_bytes());
    let vopts = ValidatorOptions {
        enforce_formats: opts.has("formats"),
    };
    let workers: Option<usize> = parse_flag(opts, "workers")?;
    let fault = fault_options(opts)?;
    let chunked = chunk_cli(opts)?;
    let csv = csv_requested(opts)?;
    if opts.streaming_requested() {
        return validate_streaming_cli(
            opts,
            &schema,
            vopts,
            workers.unwrap_or(0),
            fault,
            chunked,
            csv,
            schema_tag,
        );
    }
    let docs = read_collection(opts.file.as_deref())?;
    let mut out = PipeOut::new();
    let mut invalid = 0usize;
    for (i, doc) in docs.iter().enumerate() {
        if let Err(errors) = schema.validate_with(doc, vopts) {
            invalid += 1;
            for e in errors {
                out.line(&format!("doc {i}: {e}"))?;
            }
        }
    }
    out.finish()?;
    eprintln!("» {}/{} documents valid", docs.len() - invalid, docs.len());
    if invalid > 0 {
        return Err(CliError::data(format!("{invalid} invalid documents")));
    }
    Ok(())
}

/// Streaming validation path: fail-fast probe per line on shared workers,
/// then the error-collecting interpreter re-runs on *just* the invalid
/// lines so diagnostics match the DOM path exactly.
#[allow(clippy::too_many_arguments)]
fn validate_streaming_cli(
    opts: &Opts,
    schema: &CompiledSchema,
    vopts: ValidatorOptions,
    workers: usize,
    fault: Option<FaultOptions>,
    chunked: Option<ChunkCli>,
    csv: bool,
    schema_tag: u32,
) -> Result<(), CliError> {
    let checkpoint = checkpoint_cli(opts, &chunked, csv)?;
    if csv {
        // CSV rows are synthesised records with no raw JSON line to
        // re-validate, so invalid documents report line numbers only.
        let (input, chunk) = match chunked {
            Some(c) => (c.input, c.chunk),
            None => (None, ChunkOptions::default()),
        };
        let fault = fault.unwrap_or_default();
        let sopts = StreamingOptions::with_workers(workers);
        let mut storage = String::new();
        let source = open_source(input.as_deref(), opts.file.as_deref(), &mut storage)?;
        let (header, source) = peel_csv_header(source)?;
        let decoder = csv_decoder(&header, &fault)?;
        let (verdicts, report) =
            validate_streaming_decoded(source, decoder, schema, vopts, sopts, chunk, fault)
                .map_err(stream_err)?;
        let suffix = finish_guarded_run(opts, &report)?;
        let mut out = PipeOut::new();
        let mut invalid = 0usize;
        for (line_no, verdict) in &verdicts {
            match verdict {
                LineVerdict::Valid => {}
                LineVerdict::Invalid => {
                    invalid += 1;
                    out.line(&format!("doc {line_no}: invalid"))?;
                }
                LineVerdict::Malformed(e) => {
                    return Err(CliError::data(format!("line {}: {e}", line_no + 1)))
                }
            }
        }
        out.finish()?;
        eprintln!(
            "» {}/{} documents valid (streaming csv){suffix}",
            verdicts.len() - invalid,
            verdicts.len()
        );
        if invalid > 0 {
            return Err(CliError::data(format!("{invalid} invalid documents")));
        }
        return Ok(());
    }
    if let Some(ChunkCli { input, chunk }) = chunked {
        // Chunk-dispatched path. The corpus may never be materialised,
        // so invalid documents report line numbers only (re-run
        // in-memory for full interpreter diagnostics).
        let fault = fault.unwrap_or_default();
        let sopts = StreamingOptions::with_workers(workers);
        let fast = fast_parse_enabled(opts);
        let (verdicts, report) = if let Some((journal, resume)) = &checkpoint {
            let input = input.as_deref().expect("checkpoint_cli verified --input");
            let ctrl = journal_control(std::path::Path::new(journal), *resume);
            validate_streaming_journaled(
                std::path::Path::new(input),
                schema,
                vopts,
                sopts,
                chunk,
                fault,
                fast,
                schema_tag,
                &ctrl,
            )
            .map_err(stream_err)?
        } else {
            let mut storage = String::new();
            let source = open_source(input.as_deref(), opts.file.as_deref(), &mut storage)?;
            validate_streaming_source(source, schema, vopts, sopts, chunk, fault, fast)
                .map_err(stream_err)?
        };
        let suffix = finish_guarded_run(opts, &report)?;
        let mut out = PipeOut::new();
        let mut invalid = 0usize;
        for (line_no, verdict) in &verdicts {
            match verdict {
                LineVerdict::Valid => {}
                LineVerdict::Invalid => {
                    invalid += 1;
                    out.line(&format!("doc {line_no}: invalid"))?;
                }
                LineVerdict::Malformed(e) => {
                    return Err(CliError::data(format!("line {}: {e}", line_no + 1)))
                }
            }
        }
        out.finish()?;
        eprintln!(
            "» {}/{} documents valid (streaming){suffix}",
            verdicts.len() - invalid,
            verdicts.len()
        );
        if invalid > 0 {
            return Err(CliError::data(format!("{invalid} invalid documents")));
        }
        return Ok(());
    }
    let text = read_text(opts.file.as_deref())?;
    let sopts = StreamingOptions::with_workers(workers);
    let fast = fast_parse_enabled(opts);
    let (verdicts, suffix) = if let Some(fault) = fault {
        let (verdicts, report) = if fast {
            validate_streaming_guarded_fast(&text, schema, vopts, sopts, fault)
        } else {
            validate_streaming_guarded(&text, schema, vopts, sopts, fault)
        }
        .map_err(stream_err)?;
        let suffix = finish_guarded_run(opts, &report)?;
        (verdicts, suffix)
    } else {
        let verdicts = if fast {
            validate_streaming_parallel_fast(&text, schema, vopts, sopts)
        } else {
            validate_streaming_parallel(&text, schema, vopts, sopts)
        };
        (verdicts, String::new())
    };
    let lines: Vec<&str> = text.lines().collect();
    let mut out = PipeOut::new();
    let mut invalid = 0usize;
    for (line_no, verdict) in &verdicts {
        match verdict {
            LineVerdict::Valid => {}
            LineVerdict::Invalid => {
                invalid += 1;
                let doc = parse(lines[*line_no]).expect("fail-fast path parsed this line");
                if let Err(errors) = schema.validate_with(&doc, vopts) {
                    for e in errors {
                        out.line(&format!("doc {line_no}: {e}"))?;
                    }
                }
            }
            LineVerdict::Malformed(e) => {
                return Err(CliError::data(format!("line {}: {e}", line_no + 1)))
            }
        }
    }
    out.finish()?;
    eprintln!(
        "» {}/{} documents valid (streaming){suffix}",
        verdicts.len() - invalid,
        verdicts.len()
    );
    if invalid > 0 {
        return Err(CliError::data(format!("{invalid} invalid documents")));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// profile / skeleton / project
// ---------------------------------------------------------------------------

fn cmd_profile(opts: &Opts) -> Result<(), CliError> {
    let docs = read_collection(opts.file.as_deref())?;
    let mut profiler = MongoProfiler::default();
    for d in &docs {
        profiler.observe(d);
    }
    let mut out = PipeOut::new();
    for line in profiler.report().lines() {
        if !out.line(line)? {
            break;
        }
    }
    out.finish()?;
    eprintln!("» {} documents, {} paths", docs.len(), profiler.size());
    Ok(())
}

fn cmd_skeleton(opts: &Opts) -> Result<(), CliError> {
    let coverage: f64 = parse_flag(opts, "coverage")?.unwrap_or(0.9);
    let docs = read_collection(opts.file.as_deref())?;
    let sk = Skeleton::mine(&docs, coverage);
    let mut out = PipeOut::new();
    for (tree, count) in &sk.structures {
        if !out.line(&format!("{count:>8}  {tree}"))? {
            break;
        }
    }
    out.finish()?;
    let stats = sk.stats();
    eprintln!(
        "» {} structures, {:.1}% coverage, {} queryable paths",
        stats.structures,
        stats.coverage * 100.0,
        stats.paths
    );
    Ok(())
}

fn cmd_project(opts: &Opts) -> Result<(), CliError> {
    let fields_arg = opts
        .get("fields")
        .ok_or_else(|| CliError::usage("project needs --fields a,b.c"))?;
    let fields: Vec<&str> = fields_arg.split(',').collect();
    let parser = ProjectedParser::new(&fields).map_err(|e| e.to_string())?;
    let docs_text = read_text(opts.file.as_deref())?;
    let mut out = PipeOut::new();
    for line in docs_text.lines().filter(|l| !l.trim().is_empty()) {
        let projected = parser.parse(line.as_bytes()).map_err(|e| {
            let prefix: String = line.chars().take(60).collect();
            format!("{e} in document starting {prefix}...")
        })?;
        if !out.line(&to_string(&Value::Obj(projected)))? {
            break;
        }
    }
    out.finish()
}

// ---------------------------------------------------------------------------
// convert / translate / cat
// ---------------------------------------------------------------------------

fn cmd_convert(opts: &Opts) -> Result<(), CliError> {
    let target = opts
        .get("to")
        .ok_or_else(|| CliError::usage("convert needs --to avro|columnar|relational"))?;
    let sink = OutputSink::for_target(target, opts.get("out")).map_err(CliError::Usage)?;
    let docs = read_collection(opts.file.as_deref())?;
    convert_collection(&sink, &docs)
}

/// Schema-driven translation with a streaming columnar path.
///
/// `--streaming` (or `--workers`) shreds newline-bounded shards into
/// per-worker columnar batches concatenated in shard order — the type is
/// inferred from the same text by the streaming typer, so no DOM for the
/// whole collection ever exists. `--format csv` swaps the record decoder
/// for the CSV front-end on the same engine; `--out FILE` persists the
/// batch as binary `.jxc`. Other targets fall back to the DOM path
/// shared with `convert`.
fn cmd_translate(opts: &Opts) -> Result<(), CliError> {
    let target = opts.get("to").unwrap_or("columnar");
    let sink = OutputSink::for_target(target, opts.get("out")).map_err(CliError::Usage)?;
    let workers: Option<usize> = parse_flag(opts, "workers")?;
    let fault = fault_options(opts)?;
    let chunked = chunk_cli(opts)?;
    let csv = csv_requested(opts)?;
    let checkpoint = checkpoint_cli(opts, &chunked, csv)?;
    let streaming = opts.streaming_requested();
    if streaming && !sink.wants_batch() {
        return Err(CliError::usage(format!(
            "--streaming supports only columnar, not '{target}'"
        )));
    }
    if !streaming {
        let docs = read_collection(opts.file.as_deref())?;
        return convert_collection(&sink, &docs);
    }
    let sopts = StreamingOptions::with_workers(workers.unwrap_or(0));
    if csv {
        // CSV translation is two decoded passes (type, then shred) over
        // the same source; `--input -` can't be rewound for the second.
        let (input, chunk) = match chunked {
            Some(c) => (c.input, c.chunk),
            None => (None, ChunkOptions::default()),
        };
        if input.as_deref() == Some("-") {
            return Err(CliError::usage(
                "translate needs two passes over the corpus; --input - (stdin) cannot be \
                 re-read — pass a regular file",
            ));
        }
        let fault = fault.unwrap_or_default();
        let mut storage = String::new();
        let source = open_source(input.as_deref(), opts.file.as_deref(), &mut storage)?;
        let (header, source) = peel_csv_header(source)?;
        let decoder = csv_decoder(&header, &fault)?;
        let (ty, _) = infer_streaming_decoded(
            source,
            decoder.clone(),
            Equivalence::Kind,
            sopts,
            chunk,
            fault,
        )
        .map_err(stream_err)?;
        let shredder = Shredder::from_type(&ty);
        let source = match input.as_deref() {
            Some(path) => StreamSource::Reader(open_input(path)?),
            None => StreamSource::Slice(&storage),
        };
        let (_, source) = peel_csv_header(source)?;
        let (batch, report) =
            translate_streaming_decoded(source, decoder, &shredder, sopts, chunk, fault)
                .map_err(stream_err)?;
        let suffix = finish_guarded_run(opts, &report)?;
        let out = sink.consume_batch(&batch)?;
        println!("{}", out.body);
        eprintln!("» {} (streaming csv){suffix}", out.summary);
        return Ok(());
    }
    if let Some(ChunkCli { input, chunk }) = chunked {
        // Translation is two passes over the corpus (type, then shred);
        // out-of-core mode re-opens `--input` so neither pass
        // materialises it. Stdin can't be rewound for the second pass.
        if input.as_deref() == Some("-") {
            return Err(CliError::usage(
                "translate needs two passes over the corpus; --input - (stdin) cannot be \
                 re-read — pass a regular file",
            ));
        }
        if let Some((journal, resume)) = &checkpoint {
            // Journaled translation: both passes commit into one journal
            // (the inferred type is sealed between them), so a resume
            // lands in whichever phase the run died in.
            let input = input.as_deref().expect("checkpoint_cli verified --input");
            let fault = fault.unwrap_or_default();
            let ctrl = journal_control(std::path::Path::new(journal), *resume);
            let (_ty, batch, report) = translate_streaming_journaled(
                std::path::Path::new(input),
                Equivalence::Kind,
                sopts,
                chunk,
                fault,
                fast_parse_enabled(opts),
                &ctrl,
            )
            .map_err(stream_err)?;
            let suffix = finish_guarded_run(opts, &report)?;
            let out = sink.consume_batch(&batch)?;
            println!("{}", out.body);
            eprintln!("» {} (streaming){suffix}", out.summary);
            return Ok(());
        }
        let fault = fault.unwrap_or_default();
        let mut storage = String::new();
        let source = open_source(input.as_deref(), opts.file.as_deref(), &mut storage)?;
        let (ty, _) = infer_streaming_source(source, Equivalence::Kind, sopts, chunk, fault)
            .map_err(stream_err)?;
        let shredder = Shredder::from_type(&ty);
        let source = match input.as_deref() {
            Some(path) => StreamSource::Reader(open_input(path)?),
            None => StreamSource::Slice(&storage),
        };
        let (batch, report) = translate_streaming_source(
            source,
            &shredder,
            sopts,
            chunk,
            fault,
            fast_parse_enabled(opts),
        )
        .map_err(stream_err)?;
        let suffix = finish_guarded_run(opts, &report)?;
        let out = sink.consume_batch(&batch)?;
        println!("{}", out.body);
        eprintln!("» {} (streaming){suffix}", out.summary);
        return Ok(());
    }
    let text = read_text(opts.file.as_deref())?;
    if let Some(fault) = fault {
        // Both passes run under the same policy: a record the typer
        // rejected is rejected again (and quarantined) by the shredding
        // pass, so the sidecar reflects what the batch actually dropped.
        let (ty, _) =
            infer_streaming_guarded(&text, Equivalence::Kind, sopts, fault).map_err(stream_err)?;
        let shredder = Shredder::from_type(&ty);
        let (batch, report) = if fast_parse_enabled(opts) {
            translate_streaming_guarded_fast(&text, &shredder, sopts, fault)
        } else {
            translate_streaming_guarded(&text, &shredder, sopts, fault)
        }
        .map_err(stream_err)?;
        let suffix = finish_guarded_run(opts, &report)?;
        let out = sink.consume_batch(&batch)?;
        println!("{}", out.body);
        eprintln!("» {} (streaming){suffix}", out.summary);
        return Ok(());
    }
    let ty = infer_streaming_parallel(&text, Equivalence::Kind, sopts)
        .map_err(|(line, e)| format!("line {}: {e}", line + 1))?;
    let shredder = Shredder::from_type(&ty);
    let batch = if fast_parse_enabled(opts) {
        translate_streaming_parallel_fast(&text, &shredder, sopts)
    } else {
        translate_streaming_parallel(&text, &shredder, sopts)
    }
    .map_err(|(line, e)| format!("line {}: {e}", line + 1))?;
    let out = sink.consume_batch(&batch)?;
    println!("{}", out.body);
    eprintln!("» {} (streaming)", out.summary);
    Ok(())
}

/// The DOM translation path shared by `convert` and non-streaming
/// `translate`: infer, hand the collection to the sink, print its report.
fn convert_collection(sink: &OutputSink, docs: &[Value]) -> Result<(), CliError> {
    let ty = infer_collection(docs, Equivalence::Kind);
    let report = sink.consume(&ty, docs)?;
    if !report.body.is_empty() {
        println!("{}", report.body);
    }
    if !report.summary.is_empty() {
        eprintln!("» {}", report.summary);
    }
    Ok(())
}

/// `jsonx cat FILE.jxc`: schema and rows on stdout, per-column encoding
/// summary on stderr. `--flatten` cross-joins list columns into flat
/// rows; `--head N` bounds the rows shown.
fn cmd_cat(opts: &Opts) -> Result<(), CliError> {
    use jsonx::translate::JxcError;
    let path = opts
        .file
        .as_deref()
        .ok_or_else(|| CliError::usage("cat needs a FILE.jxc argument"))?;
    let head: usize = parse_flag(opts, "head")?.unwrap_or(10);
    let file = read_jxc_file(std::path::Path::new(path)).map_err(|e| match e {
        JxcError::Io(_) => CliError::io(e.to_string()),
        _ => CliError::data(e.to_string()),
    })?;
    let mut out = PipeOut::new();
    out.line(&file.batch.schema_string())?;
    let rows = if opts.has("flatten") {
        flatten_rows(&file, head)
    } else {
        rows_as_values(&file.batch, head)
    };
    for row in &rows {
        if !out.line(&to_string(row))? {
            break;
        }
    }
    out.finish()?;
    for info in &file.columns {
        let detail = match (info.dict_len, info.list_items) {
            (Some(d), Some(items)) => format!(" ({items} items, dict {d})"),
            (Some(d), None) => format!(" (dict {d})"),
            (None, Some(items)) => format!(" ({items} items)"),
            (None, None) => String::new(),
        };
        eprintln!(
            "» {}: {} {}{detail}, {}/{} valid, {} bytes",
            info.path,
            info.type_name,
            info.encoding.label(),
            info.valid_count,
            file.batch.rows,
            info.block_bytes
        );
    }
    eprintln!(
        "» {} columns x {} rows, showing {}",
        file.columns.len(),
        file.batch.rows,
        rows.len()
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------------

fn cmd_serve(opts: &Opts) -> Result<(), CliError> {
    use jsonx::serve::{ServeConfig, Server};
    if opts.file.is_some() {
        return Err(CliError::usage(
            "serve takes no FILE argument (payloads arrive over the socket)",
        ));
    }
    let mut limits = ParseLimits::new();
    if let Some(depth) = parse_flag(opts, "max-depth")? {
        limits = limits.with_max_depth(depth);
    }
    if let Some(bytes) = parse_flag(opts, "max-line-bytes")? {
        limits = limits.with_max_input_bytes(bytes);
    }
    let mut config = ServeConfig {
        listen: opts.get("listen").unwrap_or("127.0.0.1:7077").to_string(),
        schema_path: opts.get("schema").map(std::path::PathBuf::from),
        limits,
        debug_faults: opts.has("debug-faults"),
        ..ServeConfig::default()
    };
    if let Some(depth) = parse_flag(opts, "queue-depth")? {
        config.queue_depth = depth;
    }
    if let Some(ms) = parse_flag::<u64>(opts, "deadline-ms")? {
        config.deadline = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(n) = parse_flag(opts, "max-conns")? {
        config.max_conns = n;
    }
    if let Some(n) = parse_flag(opts, "workers")? {
        config.workers = n;
    }
    if let Some(ms) = parse_flag::<u64>(opts, "frame-budget-ms")? {
        config.frame_budget = std::time::Duration::from_millis(ms);
    }
    let server = Server::bind(config).map_err(|e| CliError::io(e.to_string()))?;
    let addr = server
        .local_addr()
        .ok_or_else(|| CliError::io("could not determine listen address"))?;
    // The harness and the CI gate scrape this line, so flush it past any
    // pipe buffering before blocking in the accept loop.
    println!("listening on {addr}");
    let _ = std::io::stdout().flush();
    let report = server.run();
    eprintln!("{}", report.to_json_line());
    if report.reconciled() {
        Ok(())
    } else {
        Err(CliError::data("final report failed reconciliation"))
    }
}

// ---------------------------------------------------------------------------
// query
// ---------------------------------------------------------------------------

fn cmd_query(opts: &Opts) -> Result<(), CliError> {
    use jsonx::jaql::{expr, infer_output_type, Pipeline};
    let mut q = Pipeline::new();
    if let Some(path) = opts.get("where-exists") {
        q = q.filter(expr::exists(expr::path(path)));
    }
    if let Some(path) = opts.get("expand") {
        q = q.expand(expr::path(path));
    }
    if let Some(projection) = opts.get("project") {
        let fields: Vec<(&str, jsonx::jaql::Expr)> = projection
            .split(',')
            .map(|p| {
                let name = p.rsplit('.').next().unwrap_or(p);
                (name, expr::path(p))
            })
            .collect();
        q = q.transform(expr::record(fields));
    }
    if let Some(n) = parse_flag::<usize>(opts, "top")? {
        q = q.top(n);
    }
    let docs = read_collection(opts.file.as_deref())?;
    // Static output schema first — the Jaql §4.1 feature.
    let input_ty = infer_collection(&docs, Equivalence::Kind);
    let output_ty = infer_output_type(&q, &input_ty);
    eprintln!("» pipeline: {q}");
    eprintln!(
        "» inferred output type: {}",
        print_type(&output_ty, PrintOptions::plain())
    );
    let mut out = PipeOut::new();
    for row in q.eval(&docs) {
        if !out.line(&to_string(&row))? {
            break;
        }
    }
    out.finish()
}
