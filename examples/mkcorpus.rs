//! Emits a seeded GitHub-events-like corpus as NDJSON on stdout — handy
//! for feeding the `jsonx` CLI:
//!
//! ```sh
//! cargo run --release --example mkcorpus > /tmp/github.ndjson
//! jsonx infer /tmp/github.ndjson
//! ```

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let docs = jsonx::gen::Corpus::Github.generate(n);
    print!("{}", jsonx::syntax::write_ndjson(&docs));
}
