//! Jaql-style querying with static output-schema inference (§4.1, [13]):
//! "systems like Jaql exploit schema information for inferring the output
//! schema of a query". Runs analytics pipelines over the GitHub-events
//! corpus and shows the output schema computed *before* execution, then
//! checks it against the actual output.
//!
//! ```sh
//! cargo run --example query_typing
//! ```

use jsonx::core::{infer_collection, print_type, Equivalence, PrintOptions};
use jsonx::gen::Corpus;
use jsonx::jaql::{expr, infer_output_type, Pipeline};

fn main() {
    let docs = Corpus::Github.generate(1_000);
    let input_ty = infer_collection(&docs, Equivalence::Kind);
    println!(
        "input: {} GitHub events\ninferred input type:\n  {:.120}...\n",
        docs.len(),
        print_type(&input_ty, PrintOptions::plain())
    );

    let queries = vec![
        (
            "push summary",
            Pipeline::new()
                .filter(expr::path("type").eq(expr::lit("PushEvent")))
                .transform(expr::record([
                    ("who", expr::path("actor.login")),
                    ("repo", expr::path("repo.name")),
                    ("commits", expr::path("payload.size")),
                ])),
        ),
        (
            "all commit shas",
            Pipeline::new()
                .expand(expr::path("payload.commits"))
                .transform(expr::path("sha")),
        ),
        (
            "engagement score",
            Pipeline::new().transform(expr::record([
                ("id", expr::path("id")),
                ("busy", expr::path("payload.size").ge(expr::lit(2))),
            ])),
        ),
    ];

    for (name, q) in queries {
        let out_ty = infer_output_type(&q, &input_ty);
        let rows = q.eval(&docs);
        let all_admitted = rows.iter().all(|r| out_ty.admits(r));
        println!("query: {name}\n  {q}");
        println!(
            "  static output type: {}",
            print_type(&out_ty, PrintOptions::plain())
        );
        println!(
            "  executed: {} rows, sample: {}",
            rows.len(),
            rows.first().map(ToString::to_string).unwrap_or_default()
        );
        println!("  every row admitted by the static type: {all_admitted}\n");
        assert!(all_admitted);
    }
}
