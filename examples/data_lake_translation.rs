//! Schema-driven data-lake ingestion (§5 "Schema-Based Data Translation"):
//! infer a schema for a heterogeneous JSON feed, then translate it into
//! columnar batches, Avro-style binary rows, and normalized relations.
//!
//! ```sh
//! cargo run --example data_lake_translation
//! ```

use jsonx::core::{infer_collection, Equivalence};
use jsonx::gen::Corpus;
use jsonx::syntax::to_string;
use jsonx::translate::{normalize, AvroCodec, AvroSchema, Shredder};

fn main() {
    let docs = Corpus::Twitter.generate(1_000);
    let json_bytes: usize = docs.iter().map(|d| to_string(d).len()).sum();
    println!(
        "feed: {} tweets, {} KiB as JSON text\n",
        docs.len(),
        json_bytes / 1024
    );

    // One inference pass drives every translation target.
    let ty = infer_collection(&docs, Equivalence::Kind);

    // -- columnar (Arrow/Parquet-flavoured) -------------------------------
    let batch = Shredder::from_type(&ty).shred(&docs).unwrap();
    println!(
        "columnar: {} columns x {} rows",
        batch.columns.len(),
        batch.rows
    );
    for col in batch.columns.iter().take(6) {
        let valid = col.validity.iter().filter(|v| **v).count();
        println!("  {:<28} {:>4}/{} valid", col.path, valid, batch.rows);
    }
    println!("  ...\n");

    // -- Avro-flavoured binary rows ----------------------------------------
    let codec = AvroCodec::new(AvroSchema::from_type(&ty));
    let binary_bytes: usize = docs
        .iter()
        .map(|d| codec.encode(d).expect("conforming document").len())
        .sum();
    println!(
        "avro-like rows: {} KiB ({}% of the JSON text)\n",
        binary_bytes / 1024,
        binary_bytes * 100 / json_bytes
    );

    // -- relational normalization ------------------------------------------
    let relations = normalize("tweets", &docs);
    println!("relational schema ({} relations):", relations.len());
    for rel in &relations {
        println!(
            "  {:<28} {:>5} rows x {:>2} columns",
            rel.name,
            rel.rows.len(),
            rel.columns.len()
        );
    }
}
