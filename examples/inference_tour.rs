//! A tour of the schema-inference landscape the tutorial surveys (§4.1):
//! parametric K/L inference side by side with the Spark-style,
//! Studio3T-naive, mongodb-schema-style and Skinfer-style baselines, on a
//! GitHub-events-like corpus.
//!
//! ```sh
//! cargo run --example inference_tour
//! ```

use jsonx::baselines::{infer_naive, infer_spark, spark_type_size, MongoProfiler};
use jsonx::core::{infer_collection, measure, print_type, Equivalence, PrintOptions};
use jsonx::gen::Corpus;

fn main() {
    let docs = Corpus::Github.generate(500);
    println!(
        "corpus: {} documents of {}\n",
        docs.len(),
        Corpus::Github.name()
    );

    // -- parametric inference (the tutorial authors' line of work) -------
    for equiv in [Equivalence::Kind, Equivalence::Label] {
        let ty = infer_collection(&docs, equiv);
        let m = measure(&ty);
        println!(
            "parametric [{}]: size={} nodes, max union width={}, optional fields={}/{}",
            equiv.name(),
            m.size,
            m.max_union_width,
            m.optional_fields,
            m.total_fields
        );
    }
    let l_type = infer_collection(&docs, Equivalence::Label);
    println!(
        "\nL-inferred payload variants (per event type):\n{}\n",
        indent(&print_type(
            &field_of(&l_type, "payload"),
            PrintOptions::plain()
        ))
    );

    // -- Spark-style -------------------------------------------------------
    let spark = infer_spark(&docs);
    println!(
        "spark-style: size={} nodes (no unions; conflicts widen to string)",
        spark_type_size(&spark)
    );

    // -- Studio3T-naive (no merging) ---------------------------------------
    let naive = infer_naive(&docs);
    println!(
        "naive (no merge): {} distinct document types, total size {} nodes",
        naive.variant_count(),
        naive.size()
    );

    // -- mongodb-schema-style streaming profile ----------------------------
    let mut profiler = MongoProfiler::default();
    for d in &docs {
        profiler.observe(d);
    }
    println!(
        "mongodb-schema-style: {} profiled paths; sample:",
        profiler.size()
    );
    for line in profiler.report().lines().take(8) {
        println!("  {line}");
    }
    println!("  ...");

    // -- skinfer-style ------------------------------------------------------
    let skinfer = jsonx::baselines::infer_skinfer(&docs);
    let rendered = jsonx::syntax::to_string(&skinfer);
    println!(
        "\nskinfer-style JSON Schema: {} bytes{}",
        rendered.len(),
        if rendered.contains(r#""payload":{"type":"object""#) {
            " (payload merged as one record — unions unavailable)"
        } else {
            ""
        }
    );
}

/// Extracts a field's type from a union of records (for display).
fn field_of(ty: &jsonx::core::JType, name: &str) -> jsonx::core::JType {
    use jsonx::core::JType;
    let mut members = Vec::new();
    for m in ty.members() {
        if let JType::Record(r) = m {
            if let Some(f) = r.field(name) {
                members.extend(f.ty.members().iter().cloned());
            }
        }
    }
    match members.len() {
        0 => JType::Bottom,
        1 => members.pop().expect("len checked"),
        _ => JType::Union(members),
    }
}

fn indent(s: &str) -> String {
    s.replace(" + ", "\n  + ")
}
