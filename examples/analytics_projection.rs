//! Mison-style analytics: run a field-projecting scan over a large
//! NDJSON collection and compare full parsing, projected parsing, and
//! speculative decoding (§4.2).
//!
//! ```sh
//! cargo run --release --example analytics_projection
//! ```

use jsonx::gen::Corpus;
use jsonx::mison::{ProjectedParser, SpeculativeDecoder};
use jsonx::syntax::{parse, write_ndjson};
use std::time::Instant;

fn main() {
    let n = 5_000;
    let docs = Corpus::Nytimes.generate(n);
    let ndjson = write_ndjson(&docs);
    let lines: Vec<&str> = ndjson.lines().collect();
    println!(
        "workload: {} wide articles, {:.1} MiB of JSON text\n",
        n,
        ndjson.len() as f64 / (1024.0 * 1024.0)
    );

    // The analytics task: average word count per section — 2 of ~15 fields.
    let fields = ["section_name", "word_count"];

    // 1. Conventional eager parsing.
    let t = Instant::now();
    let mut sum = 0i64;
    let mut count = 0i64;
    for line in &lines {
        let doc = parse(line).unwrap();
        if doc.get("section_name").and_then(|v| v.as_str()) == Some("Science") {
            sum += doc.get("word_count").and_then(|v| v.as_i64()).unwrap_or(0);
            count += 1;
        }
    }
    let full_time = t.elapsed();
    println!(
        "full parse:        {:>8.2?}  (avg Science words: {})",
        full_time,
        if count > 0 { sum / count } else { 0 }
    );

    // 2. Mison-style projection pushdown.
    let parser = ProjectedParser::new(&fields).unwrap();
    let t = Instant::now();
    let mut psum = 0i64;
    let mut pcount = 0i64;
    for line in &lines {
        let projected = parser.parse(line.as_bytes()).unwrap();
        if projected.get("section_name").and_then(|v| v.as_str()) == Some("Science") {
            psum += projected
                .get("word_count")
                .and_then(|v| v.as_i64())
                .unwrap_or(0);
            pcount += 1;
        }
    }
    let projected_time = t.elapsed();
    assert_eq!((sum, count), (psum, pcount), "projection must agree");
    println!(
        "projected parse:   {:>8.2?}  ({:.2}x speedup)",
        projected_time,
        full_time.as_secs_f64() / projected_time.as_secs_f64()
    );

    // 3. Fad.js-style speculative decoding (stable field layout).
    let decoder = SpeculativeDecoder::new();
    let t = Instant::now();
    let mut ssum = 0i64;
    let mut scount = 0i64;
    for line in &lines {
        let section = decoder.get_field(line.as_bytes(), "section_name");
        if section.as_ref().and_then(|v| v.as_str()) == Some("Science") {
            ssum += decoder
                .get_field(line.as_bytes(), "word_count")
                .and_then(|v| v.as_i64())
                .unwrap_or(0);
            scount += 1;
        }
    }
    let speculative_time = t.elapsed();
    assert_eq!((sum, count), (ssum, scount), "speculation must agree");
    println!(
        "speculative:       {:>8.2?}  ({:.2}x speedup, {:.1}% pattern hits)",
        speculative_time,
        full_time.as_secs_f64() / speculative_time.as_secs_f64(),
        decoder.stats().hit_rate() * 100.0
    );
}
