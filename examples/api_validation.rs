//! Validating API payloads with all three schema languages (§2) and
//! decoding them with language-style types (§3).
//!
//! ```sh
//! cargo run --example api_validation
//! ```

use jsonx::joi::{joi, When};
use jsonx::json;
use jsonx::jsound::JSoundSchema;
use jsonx::schema::{CompiledSchema, ValidatorOptions};
use jsonx::typelang::{decode, narrow_by_discriminant, ty};

fn main() {
    let payment = json!({
        "amount": 120.50,
        "currency": "EUR",
        "method": "card",
        "card_number": "4000123412341234",
        "billing_address": "Av. da Liberdade 1, Lisboa",
        "captured_at": "2019-03-26T14:30:00Z"
    });
    let broken = json!({
        "amount": -3,
        "currency": "euros",
        "method": "card"
    });

    // -- JSON Schema: declarative, with formats enforced --------------------
    let schema = CompiledSchema::compile(&json!({
        "type": "object",
        "required": ["amount", "currency", "method"],
        "properties": {
            "amount": {"type": "number", "exclusiveMinimum": 0},
            "currency": {"type": "string", "pattern": "^[A-Z]{3}$"},
            "method": {"enum": ["card", "cash", "transfer"]},
            "card_number": {"type": "string", "pattern": "^\\d{16}$"},
            "billing_address": {"type": "string", "minLength": 5},
            "captured_at": {"type": "string", "format": "date-time"}
        },
        "dependencies": {"card_number": ["billing_address"]},
        "additionalProperties": false
    }))
    .unwrap();
    let opts = ValidatorOptions {
        enforce_formats: true,
    };
    println!("JSON Schema:");
    println!(
        "  good payload valid: {}",
        schema.validate_with(&payment, opts).is_ok()
    );
    for e in schema.validate_with(&broken, opts).unwrap_err() {
        println!("  ✗ {e}");
    }

    // -- Joi: the same policy as fluent combinators -------------------------
    let joi_schema = joi::object()
        .key("amount", joi::number().min(f64::MIN_POSITIVE).required())
        .key("currency", joi::string().pattern("^[A-Z]{3}$").required())
        .key(
            "method",
            joi::string().valid(["card", "cash", "transfer"]).required(),
        )
        .key(
            "card_number",
            joi::string().pattern(r"^\d{16}$").when(When::is(
                "method",
                joi::any().valid(["card"]),
                joi::string().required(),
            )),
        )
        .key("billing_address", joi::string().min_len(5))
        .key("captured_at", joi::string())
        .with("card_number", ["billing_address"])
        .build();
    println!("\nJoi:");
    println!("  good payload valid: {}", joi_schema.is_valid(&payment));
    for e in joi_schema.validate(&broken).unwrap_err() {
        println!("  ✗ {e}");
    }

    // -- JSound: the restrictive schema-by-example view ----------------------
    let jsound = JSoundSchema::compile(&json!({
        "!amount": "decimal",
        "!currency": "string",
        "!method": "string",
        "card_number": "string",
        "billing_address": "string",
        "captured_at": "dateTime"
    }))
    .unwrap();
    println!("\nJSound:");
    println!("  good payload valid: {}", jsound.is_valid(&payment));
    println!(
        "  (note: JSound cannot express the ranges, patterns or\n   co-occurrence rules above — §2's restrictiveness point)"
    );

    // -- typed decoding, TS/Swift style --------------------------------------
    let payment_ty = ty::record([
        ("amount", ty::number()),
        ("currency", ty::string()),
        (
            "method",
            ty::union([
                ty::literal("card"),
                ty::literal("cash"),
                ty::literal("transfer"),
            ]),
        ),
    ])
    .with_optional("card_number", ty::string())
    .with_optional("billing_address", ty::string())
    .with_optional("captured_at", ty::string());
    println!("\ntypelang decode:");
    println!("  payment: {:?}", decode(&payment_ty, &payment).is_ok());
    if let Err(e) = decode(&payment_ty, &json!({"amount": "x"})) {
        println!("  ✗ {e}");
    }

    // Discriminated-union narrowing, the TS idiom.
    let card = ty::record([
        ("method", ty::literal("card")),
        ("card_number", ty::string()),
    ]);
    let cash = ty::record([("method", ty::literal("cash"))]);
    let request = ty::union([card, cash]);
    let narrowed = narrow_by_discriminant(&request, "method", &json!("card"));
    println!("  narrowed by method=card: {narrowed}");
}
