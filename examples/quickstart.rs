//! Quickstart: parse a JSON collection, infer its schema, validate new
//! documents against it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use jsonx::core::{infer_collection, print_type, to_json_schema, Equivalence, PrintOptions};
use jsonx::schema::CompiledSchema;
use jsonx::syntax::{parse_ndjson, to_string_pretty};

fn main() {
    // A small schemaless collection, as it would arrive over the wire.
    let ndjson = r#"
{"id": 1, "name": "ada", "langs": ["rust", "ml"], "geo": null}
{"id": 2, "name": "grace", "langs": []}
{"id": "u3", "langs": ["cobol"], "geo": {"lat": 38.72, "lon": -9.13}}
"#;
    let docs = parse_ndjson(ndjson).expect("valid NDJSON");
    println!("parsed {} documents\n", docs.len());

    // 1. Infer a type, under both equivalences of parametric inference.
    for equiv in [Equivalence::Kind, Equivalence::Label] {
        let ty = infer_collection(&docs, equiv);
        println!(
            "{} equivalence:\n  {}\n",
            equiv.name(),
            print_type(&ty, PrintOptions::plain())
        );
    }

    // 2. Counting types: the same inference doubles as a profile.
    let ty = infer_collection(&docs, Equivalence::Kind);
    println!(
        "counting annotations:\n  {}\n",
        print_type(&ty, PrintOptions::with_counts())
    );

    // 3. Export to JSON Schema and validate new documents.
    let schema_doc = to_json_schema(&ty);
    println!("exported JSON Schema:\n{}\n", to_string_pretty(&schema_doc));
    let schema = CompiledSchema::compile(&schema_doc).expect("exported schema compiles");

    let good = jsonx::json!({"id": 4, "name": "lin", "langs": ["sql"]});
    let bad = jsonx::json!({"id": 5, "langs": "not-an-array"});
    println!("validate {good}: {}", schema.is_valid(&good));
    match schema.validate(&bad) {
        Ok(()) => unreachable!(),
        Err(errors) => {
            println!("validate {bad}:");
            for e in errors {
                println!("  ✗ {e}");
            }
        }
    }
}
