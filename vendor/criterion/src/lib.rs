//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! A minimal wall-clock benchmarking harness with the API shape the
//! workspace's `e*` benches use: benchmark groups, per-benchmark
//! throughput, `black_box`, and `iter`-style measurement. Reports mean and
//! median per-iteration times (and throughput when configured) to stdout.
//! No statistical regression machinery — the workspace benches print their
//! own experiment tables and use this for the timing numbers.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Measurement settings and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(800),
            warm_up_time: Duration::from_millis(200),
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up window per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies command-line arguments (`<filter>` substring supported).
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        // `cargo bench -- <substring>`: run only matching benchmarks.
        self.filter = args.into_iter().find(|a| !a.starts_with('-'));
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F>(&mut self, name: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.into_id();
        run_benchmark(self, &id, None, &mut f);
        self
    }

    /// Prints the closing summary (results are already reported per
    /// benchmark as they run, so there is nothing left to emit).
    pub fn final_summary(&mut self) {}
}

/// A set of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Benchmarks a closure under `group/name`.
    pub fn bench_function<F>(&mut self, name: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name.into_id());
        run_benchmark(self.criterion, &id, self.throughput, &mut f);
        self
    }

    /// Benchmarks a closure with an input under `group/name`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        name: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, name.into_id());
        run_benchmark(self.criterion, &id, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (reports are printed as benchmarks run).
    pub fn finish(self) {}
}

/// Passed to benchmark closures to time the measured routine.
pub struct Bencher {
    /// Iterations to run in the current sample.
    iters: u64,
    /// Wall-clock time the sample took.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    config: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    if let Some(filter) = &config.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    // Warm-up: run single iterations until the warm-up window elapses,
    // and estimate the per-iteration cost.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let mut per_iter = Duration::ZERO;
    while warm_start.elapsed() < config.warm_up_time || warm_iters == 0 {
        f(&mut bencher);
        per_iter = bencher.elapsed;
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }
    // Size each sample so the whole measurement fits the configured window.
    let per_sample = config.measurement_time.as_secs_f64() / config.sample_size as f64;
    let est = per_iter.as_secs_f64().max(1e-9);
    let iters_per_sample = (per_sample / est).clamp(1.0, 1e9) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        bencher.iters = iters_per_sample;
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Bytes(bytes) => format!("  thrpt: {}/s", human_bytes(bytes as f64 / median)),
        Throughput::Elements(n) => format!("  thrpt: {:.0} elem/s", n as f64 / median),
    });
    println!(
        "{:<44} time: [median {}  mean {}]{}",
        id,
        human_time(median),
        human_time(mean),
        rate.unwrap_or_default()
    );
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn human_bytes(bytes_per_sec: f64) -> String {
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MIB: f64 = 1024.0 * 1024.0;
    const KIB: f64 = 1024.0;
    if bytes_per_sec >= GIB {
        format!("{:.2} GiB", bytes_per_sec / GIB)
    } else if bytes_per_sec >= MIB {
        format!("{:.2} MiB", bytes_per_sec / MIB)
    } else if bytes_per_sec >= KIB {
        format!("{:.2} KiB", bytes_per_sec / KIB)
    } else {
        format!("{bytes_per_sec:.0} B")
    }
}

/// Compatibility macro: bundles benchmark functions into a runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Compatibility macro: the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Bytes(1024));
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran += 1;
        });
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("match-me".to_string()),
            ..Criterion::default()
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            b.iter(|| 1);
            ran = true;
        });
        assert!(!ran);
        c.bench_function("match-me-please", |b| {
            b.iter(|| 1);
            ran = true;
        });
        assert!(ran);
    }
}
