//! Offline stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns the guard directly, and a poisoned lock (a panic while
//! holding it) is transparently recovered, matching parking_lot semantics.

use std::sync::PoisonError;

/// A mutual-exclusion lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard for shared access.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for exclusive access.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
