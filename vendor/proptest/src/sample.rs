//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy picking uniformly from a fixed set of values.
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

/// Picks uniformly from `items` (must be non-empty).
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select() needs at least one item");
    Select { items }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_each_item() {
        let mut rng = TestRng::from_seed(41);
        let strat = select(b"abc".to_vec());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
