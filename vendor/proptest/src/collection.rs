//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Anything convertible to inclusive size bounds for a collection.
pub trait SizeRange {
    /// Returns `(min, max)` inclusive.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

/// Generates vectors whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::from_seed(31);
        let strat = vec(0u8..=9, 2usize..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x <= 9));
        }
        let fixed = vec(0u8..=1, 3usize);
        assert_eq!(fixed.generate(&mut rng).len(), 3);
    }
}
