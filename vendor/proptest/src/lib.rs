//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the strategy-combinator and macro subset this workspace's
//! property suites use. Differences from real proptest, chosen for zero
//! dependencies and full offline builds:
//!
//! - **No shrinking.** A failing case panics with its inputs' `Debug`
//!   representation; the RNG is seeded from the test's fully qualified name,
//!   so re-running the test replays the same cases.
//! - **String strategies** support the regex subset the suites use
//!   (character classes, `\PC`, literals, `{m,n}`/`*`/`+`/`?`).
//! - **Strategies are plain generators** — `generate(&mut TestRng)` instead
//!   of value trees.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace mirror of real proptest's `prop::` module tree.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each function body runs for `cases` random
/// inputs drawn from the `arg in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // The closure gives `$body` a scope where `?` and early
                // `return Err(..)` produce a `TestCaseResult`.
                #[allow(clippy::redundant_closure_call)]
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        Ok(())
                    })();
                if let Err(err) = result {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
    )*};
}

/// Uniform choice between strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts inside a property body (panics without shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn bindings_and_asserts(x in 0i64..100, s in "[ab]{1,3}", flip in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert!(!s.is_empty() && s.len() <= 3);
            let _ = flip;
        }

        #[test]
        fn early_return_ok_paths_work(n in 0usize..10) {
            if n > 4 {
                return Ok(());
            }
            prop_assert!(n <= 4);
        }
    }

    proptest! {
        #[test]
        fn default_config_and_oneof(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0usize..6)) {
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }
}
