//! Test execution support: deterministic RNG, configuration, case errors.

/// A fast deterministic RNG (xorshift64*), seeded per test from the test's
/// fully qualified name so failures reproduce across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a raw value.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed | 1, // xorshift state must be non-zero
        }
    }

    /// Seeds deterministically from a test name (FNV-1a).
    pub fn for_test(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(hash)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Widening-multiply range reduction (Lemire).
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Per-suite configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case failed (carried by `prop_assert!` in real proptest; here
/// produced by explicit `Err`/`return` in test bodies).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl<T: Into<String>> From<T> for TestCaseError {
    fn from(msg: T) -> Self {
        TestCaseError(msg.into())
    }
}

/// Result type of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
