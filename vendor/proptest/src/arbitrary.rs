//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for the full domain of a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! any_ints {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}

any_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any(std::marker::PhantomData)
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced values spanning many magnitudes; properties
        // over NaN/infinity are not exercised by this workspace.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(61) as i32 - 30;
        mantissa * (2.0f64).powi(exp)
    }
}

impl Arbitrary for f64 {
    type Strategy = Any<f64>;
    fn arbitrary() -> Any<f64> {
        Any(std::marker::PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_cover_their_domains() {
        let mut rng = TestRng::from_seed(21);
        let mut bools = std::collections::HashSet::new();
        let mut bytes = std::collections::HashSet::new();
        for _ in 0..512 {
            bools.insert(any::<bool>().generate(&mut rng));
            bytes.insert(any::<u8>().generate(&mut rng));
            let x = any::<i64>().generate(&mut rng);
            let f = any::<f64>().generate(&mut rng);
            assert!(f.is_finite());
            let _ = x;
        }
        assert_eq!(bools.len(), 2);
        assert!(bytes.len() > 100, "u8 generation looks degenerate");
    }
}
