//! The [`Strategy`] trait and core combinators.
//!
//! Unlike real proptest, strategies here are plain generators: no shrink
//! trees. `generate` draws one value from the deterministic [`TestRng`].

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds recursive structures: `self` is the leaf strategy, and
    /// `recurse` wraps an inner strategy one level deeper. `depth` bounds
    /// the nesting; the hint parameters of real proptest are accepted and
    /// ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            // At each level: half leaves, half one-level-deeper structures.
            strat = OneOf::new(vec![self.clone().boxed(), deeper]).boxed();
        }
        strat
    }
}

/// A cheaply cloneable, type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies (`prop_oneof!`).
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Builds a choice over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<V> Clone for OneOf<V> {
    fn clone(&self) -> Self {
        OneOf {
            options: self.options.clone(),
        }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_just() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let x = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&x));
            let y = (-2i64..3).generate(&mut rng);
            assert!((-2..3).contains(&y));
            let z = (0u8..=2).generate(&mut rng);
            assert!(z <= 2);
            let f = (-1.0f64..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
        assert_eq!(Just(9).generate(&mut rng), 9);
    }

    #[test]
    fn map_and_oneof_and_tuple() {
        let mut rng = TestRng::from_seed(2);
        let s = (0i64..10).prop_map(|i| i * 2);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
        let o = OneOf::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(o.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
        let t = (Just(1u8), 0i64..5).generate(&mut rng);
        assert_eq!(t.0, 1);
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::from_seed(5);
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, Tree::Node(_));
        }
        assert!(saw_node, "recursion never produced a node");
    }
}
