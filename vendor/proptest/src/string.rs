//! String strategies from regex-like patterns.
//!
//! Real proptest compiles full regexes; this stand-in supports the pattern
//! subset the workspace's suites use: sequences of atoms, where an atom is
//! a character class `[a-z...]`, the printable-character escape `\PC`, or a
//! literal character, optionally quantified by `{m}`, `{m,n}`, `*`, `+` or
//! `?`. Unsupported syntax panics with a clear message so a new test that
//! needs more immediately says so.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Characters `\PC` draws from: printable ASCII plus a few multi-byte code
/// points so UTF-8 handling gets exercised.
const PRINTABLE_EXTRA: &[char] = &['é', 'ü', 'Ж', '中', '→', 'π', '😀', '\u{2028}'];

#[derive(Debug, Clone)]
enum Atom {
    /// Inclusive character ranges (singletons are `(c, c)`).
    Class(Vec<(char, char)>),
    /// `\PC`: any printable character.
    Printable,
    /// One literal character.
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32, // inclusive
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut items = Vec::new();
                loop {
                    let Some(c) = chars.next() else {
                        panic!("unterminated character class in pattern {pattern:?}");
                    };
                    match c {
                        ']' => break,
                        '^' => panic!("negated classes unsupported in pattern {pattern:?}"),
                        lo => {
                            if chars.peek() == Some(&'-') {
                                chars.next();
                                let Some(hi) = chars.next() else {
                                    panic!("dangling '-' in pattern {pattern:?}");
                                };
                                if hi == ']' {
                                    items.push((lo, lo));
                                    items.push(('-', '-'));
                                    break;
                                }
                                assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                                items.push((lo, hi));
                            } else {
                                items.push((lo, lo));
                            }
                        }
                    }
                }
                assert!(!items.is_empty(), "empty character class in {pattern:?}");
                Atom::Class(items)
            }
            '\\' => match chars.next() {
                Some('P') => {
                    // Only the complement-category form \PC is supported.
                    match chars.next() {
                        Some('C') => Atom::Printable,
                        other => panic!("unsupported escape \\P{other:?} in {pattern:?}"),
                    }
                }
                Some(lit @ ('\\' | '.' | '[' | ']' | '{' | '}' | '*' | '+' | '?' | '|')) => {
                    Atom::Literal(lit)
                }
                Some('n') => Atom::Literal('\n'),
                Some('t') => Atom::Literal('\t'),
                other => panic!("unsupported escape \\{other:?} in {pattern:?}"),
            },
            '.' | '(' | ')' | '|' => panic!("unsupported regex syntax {c:?} in {pattern:?}"),
            lit => Atom::Literal(lit),
        };
        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut digits = String::new();
                let mut min = None;
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(',') => {
                            min = Some(digits.parse::<u32>().unwrap_or_else(|_| {
                                panic!("bad quantifier in pattern {pattern:?}")
                            }));
                            digits.clear();
                        }
                        Some(d) if d.is_ascii_digit() => digits.push(d),
                        other => panic!("bad quantifier {other:?} in pattern {pattern:?}"),
                    }
                }
                let last = digits
                    .parse::<u32>()
                    .unwrap_or_else(|_| panic!("bad quantifier in pattern {pattern:?}"));
                match min {
                    Some(m) => (m, last),
                    None => (last, last),
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(items) => {
            let idx = rng.below(items.len() as u64) as usize;
            let (lo, hi) = items[idx];
            let span = (hi as u32) - (lo as u32) + 1;
            // Classes used in practice never straddle the surrogate gap.
            char::from_u32(lo as u32 + rng.below(u64::from(span)) as u32)
                .expect("class range avoids surrogates")
        }
        Atom::Printable => {
            // 7/8 printable ASCII, 1/8 multi-byte.
            if rng.below(8) < 7 {
                char::from_u32(0x20 + rng.below(0x7F - 0x20) as u32).expect("ASCII")
            } else {
                PRINTABLE_EXTRA[rng.below(PRINTABLE_EXTRA.len() as u64) as usize]
            }
        }
    }
}

/// `&str` patterns are string strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let n = piece.min + rng.below(u64::from(piece.max - piece.min + 1)) as u32;
            for _ in 0..n {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_quantifier() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..300 {
            let s = "[a-c]{0,4}".generate(&mut rng);
            assert!(s.len() <= 4);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn bare_class_is_one_char() {
        let mut rng = TestRng::from_seed(12);
        for _ in 0..100 {
            let s = "[ab]".generate(&mut rng);
            assert_eq!(s.chars().count(), 1);
        }
    }

    #[test]
    fn printable_escape() {
        let mut rng = TestRng::from_seed(13);
        let mut saw_multibyte = false;
        for _ in 0..300 {
            let s = "\\PC{0,12}".generate(&mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            saw_multibyte |= s.chars().any(|c| c.len_utf8() > 1);
        }
        assert!(saw_multibyte, "\\PC should exercise multi-byte UTF-8");
    }

    #[test]
    fn literals_and_star() {
        let mut rng = TestRng::from_seed(14);
        let s = "ab".generate(&mut rng);
        assert_eq!(s, "ab");
        for _ in 0..50 {
            let s = "a*".generate(&mut rng);
            assert!(s.chars().all(|c| c == 'a') && s.len() <= 8);
        }
    }
}
