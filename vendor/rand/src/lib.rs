//! Offline stand-in for `rand` (see `vendor/README.md`).
//!
//! Implements the subset the generators use: a seedable small RNG
//! (xoroshiro128++), `Rng::{gen, gen_range, gen_bool}` over the integer,
//! float and range types that appear in this workspace.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types `gen_range` can sample uniformly. The blanket [`SampleRange`]
/// impls below are generic over this trait (a single impl per range shape,
/// like real rand) so integer-literal ranges infer their type from context.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        f64::sample_exclusive(lo, hi, rng)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// True with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "gen_ratio denominator must be non-zero");
        // Widening-multiply range reduction avoids modulo bias.
        let scaled = ((u128::from(self.next_u64()) * u128::from(denominator)) >> 64) as u32;
        scaled < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable RNG (xoroshiro128++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s0: u64,
        s1: u64,
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let s0 = splitmix64(&mut sm);
            let mut s1 = splitmix64(&mut sm);
            if s0 == 0 && s1 == 0 {
                s1 = 1; // xoroshiro must not start at the all-zero state
            }
            SmallRng { s0, s1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let (s0, mut s1) = (self.s0, self.s1);
            let result = s0.wrapping_add(s1).rotate_left(17).wrapping_add(s0);
            s1 ^= s0;
            self.s0 = s0.rotate_left(49) ^ s1 ^ (s1 << 21);
            self.s1 = s1.rotate_left(28);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z: usize = rng.gen_range(2..=4);
            assert!((2..=4).contains(&z));
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn bool_and_ints_vary() {
        let mut rng = SmallRng::seed_from_u64(9);
        let bools: Vec<bool> = (0..64).map(|_| rng.gen()).collect();
        assert!(bools.iter().any(|b| *b) && bools.iter().any(|b| !*b));
    }
}
