//! Offline stand-in for `bytes` (see `vendor/README.md`).
//!
//! Provides the subset the workspace's binary codecs use: an immutable
//! [`Bytes`] buffer, a growable [`BytesMut`] builder, and little-endian
//! read/write helpers via the [`Buf`]/[`BufMut`] traits.

use std::ops::{Deref, DerefMut};

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes(std::sync::Arc<[u8]>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes(std::sync::Arc::from(&[][..]))
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(std::sync::Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{:?}", &self.0[..])
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(std::sync::Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

/// A growable byte buffer for building encodings.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Clears the contents, keeping capacity.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// Read-side cursor operations over a shrinking byte slice.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        f64::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write-side append operations.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_read_round_trip() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_f64_le(1.5);
        b.put_slice(b"xy");
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 11);
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.chunk(), b"xy");
        r.advance(2);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_equality_and_clone() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, b"abc".to_vec());
    }
}
