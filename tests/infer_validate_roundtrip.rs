//! Cross-crate integration: inference → JSON Schema export → validation.
//!
//! The central soundness contract of the workspace: for any collection,
//! the schema exported from an inferred type must *validate every document
//! the type was inferred from* — under both K and L equivalences, on every
//! corpus, through the real validator (not the type's own `admits`).

use jsonx::core::{infer_collection, to_json_schema, Equivalence};
use jsonx::gen::Corpus;
use jsonx::schema::CompiledSchema;

fn assert_roundtrip(corpus: Corpus, n: usize) {
    let docs = corpus.generate(n);
    for equiv in [Equivalence::Kind, Equivalence::Label] {
        let ty = infer_collection(&docs, equiv);
        let schema_doc = to_json_schema(&ty);
        let compiled = CompiledSchema::compile(&schema_doc).unwrap_or_else(|e| {
            panic!(
                "{}/{}: exported schema does not compile: {e}",
                corpus.name(),
                equiv.name()
            )
        });
        for (i, doc) in docs.iter().enumerate() {
            if let Err(errs) = compiled.validate(doc) {
                panic!(
                    "{}/{}: document {i} rejected by its own inferred schema:\n  doc: {doc}\n  errors: {}",
                    corpus.name(),
                    equiv.name(),
                    errs.iter().map(ToString::to_string).collect::<Vec<_>>().join("; ")
                );
            }
        }
    }
}

#[test]
fn twitter_corpus_roundtrips() {
    assert_roundtrip(Corpus::Twitter, 150);
}

#[test]
fn github_corpus_roundtrips() {
    assert_roundtrip(Corpus::Github, 150);
}

#[test]
fn nytimes_corpus_roundtrips() {
    assert_roundtrip(Corpus::Nytimes, 150);
}

#[test]
fn heterogeneous_corpora_roundtrip() {
    for noise in [0, 25, 50, 100] {
        assert_roundtrip(Corpus::Heterogeneous(noise), 100);
    }
}

#[test]
fn exported_schema_rejects_structural_violations() {
    use jsonx::json;
    let docs = vec![json!({"id": 1, "name": "a"}), json!({"id": 2})];
    let ty = infer_collection(&docs, Equivalence::Kind);
    let compiled = CompiledSchema::compile(&to_json_schema(&ty)).unwrap();
    // Wrong type for a seen field.
    assert!(!compiled.is_valid(&json!({"id": "three"})));
    // Missing mandatory field.
    assert!(!compiled.is_valid(&json!({"name": "x"})));
    // Unknown field (inference saw a closed field set).
    assert!(!compiled.is_valid(&json!({"id": 3, "zzz": 1})));
    // Conforming new document passes.
    assert!(compiled.is_valid(&json!({"id": 3, "name": "new"})));
}

#[test]
fn type_text_roundtrip_survives_export() {
    use jsonx::core::{parse_type, print_type, PrintOptions};
    let docs = Corpus::Github.generate(80);
    let ty = infer_collection(&docs, Equivalence::Label);
    let text = print_type(&ty, PrintOptions::with_counts());
    let reparsed = parse_type(&text).expect("printed type must reparse");
    assert_eq!(reparsed, ty);
    // And the reparsed type exports the same schema.
    assert_eq!(to_json_schema(&reparsed), to_json_schema(&ty));
}
