//! Cross-layer property tests for the chunked work-stealing dispatch:
//! at every worker count × chunk size — including chunks far smaller
//! than a record — the stealing engine must be **outcome-identical** to
//! static sharding and to the sequential reference, for verdicts,
//! inferred types, columnar batches, reports and quarantine order, on
//! clean and dirty corpora, from both in-memory slices and out-of-core
//! readers.

use jsonx::core::Equivalence;
use jsonx::schema::{CompiledSchema, ValidatorOptions};
use jsonx::syntax::parse;
use jsonx::translate::Shredder;
use jsonx::{
    infer_streaming_source, translate_streaming_source, validate_streaming_source, ChunkOptions,
    ErrorPolicy, FaultOptions, RunReport, StreamSource, StreamingOptions,
};
use jsonx_pipeline::{run_lines_static_caught, run_lines_stealing, PipelineOptions, ShardFold};
use proptest::prelude::*;
use std::io::Cursor;

const WORKERS: [usize; 4] = [1, 2, 3, 8];
const CHUNK_SIZES: [usize; 3] = [64, 4096, 1 << 20];

/// One corpus line: mostly small records, a tail of records longer than
/// the 64-byte chunk target (so byte-chunking must keep them whole),
/// plus blanks; `dirty` mixes in malformed lines.
fn clean_line() -> BoxedStrategy<String> {
    prop_oneof![
        (0i64..100, "[a-z]{0,6}")
            .prop_map(|(id, tag)| format!("{{\"id\": {id}, \"tag\": \"{tag}\"}}")),
        (0i64..100, 40usize..120).prop_map(|(id, n)| format!(
            "{{\"id\": {id}, \"tag\": \"t\", \"payload\": \"{}\"}}",
            "x".repeat(n)
        )),
        Just(String::new()),
    ]
    .boxed()
}

fn arb_line(dirty: bool) -> BoxedStrategy<String> {
    if dirty {
        prop_oneof![
            clean_line(),
            clean_line(),
            clean_line(),
            prop_oneof![
                Just("{\"id\":".to_string()),
                Just("[1, 2".to_string()),
                Just("not json".to_string()),
                Just("{\"id\": 1, \"tag\": \"dup\"".to_string()),
            ],
        ]
        .boxed()
    } else {
        clean_line()
    }
}

/// A corpus that always ends with one record whose bytes outspan the
/// smallest chunk target, exercising the chunk boundary that would
/// split a record.
fn arb_corpus(dirty: bool) -> impl Strategy<Value = String> {
    prop::collection::vec(arb_line(dirty), 0..40).prop_map(|lines| {
        let mut out = lines.join("\n");
        out.push_str("\n{\"id\": 7, \"tag\": \"t\", \"payload\": \"");
        out.push_str(&"y".repeat(200));
        out.push_str("\"}\n");
        out
    })
}

/// Forces parallel dispatch even on tiny proptest corpora.
fn opts(workers: usize) -> StreamingOptions {
    StreamingOptions {
        workers,
        min_shard_bytes: 1,
    }
}

fn collect_fault() -> FaultOptions {
    FaultOptions {
        policy: ErrorPolicy::Collect { max_errors: 1000 },
        keep_rejects: true,
        ..FaultOptions::default()
    }
}

/// Drops the dispatch-dependent fields (`shards` counts work units,
/// `timings` is empty on untimed runs anyway) so reports from different
/// chunkings compare on outcome alone.
fn normalize(mut r: RunReport) -> RunReport {
    r.shards = 0;
    r.timings.clear();
    r
}

fn tag_schema() -> CompiledSchema {
    let doc = parse(r#"{"type": "object", "required": ["tag"]}"#).unwrap();
    CompiledSchema::compile(&doc).unwrap()
}

/// An order-sensitive fold for the engine-level comparison: shard
/// results concatenate, so any mis-ordered or double-counted chunk
/// changes the output.
struct IndexLines;

impl ShardFold<str> for IndexLines {
    type State = Vec<(usize, String)>;
    type Out = Vec<(usize, String)>;

    fn init(&self) -> Self::State {
        Vec::new()
    }

    fn feed(&self, state: &mut Self::State, item: &str, index: usize) {
        if !item.trim().is_empty() {
            state.push((index, item.to_string()));
        }
    }

    fn finish(&self, state: Self::State) -> Self::Out {
        state
    }

    fn merge(&self, mut left: Self::Out, right: Self::Out) -> Self::Out {
        left.extend(right);
        left
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine layer: work-stealing ≡ static sharding for an
    /// order-sensitive fold, at every worker count × chunk size.
    #[test]
    fn stealing_matches_static_sharding(ndjson in arb_corpus(true)) {
        for &w in &WORKERS {
            let popts = PipelineOptions { workers: w, min_shard_bytes: 1 };
            let fixed = run_lines_static_caught(&ndjson, &IndexLines, popts);
            for &cb in &CHUNK_SIZES {
                let stolen = run_lines_stealing(
                    &ndjson,
                    &IndexLines,
                    popts,
                    ChunkOptions::with_chunk_bytes(cb),
                );
                prop_assert_eq!(&stolen.out, &fixed.out);
                prop_assert!(stolen.poisoned.is_empty());
            }
        }
    }

    /// Validation verdicts, reports and quarantine order are invariant
    /// across dispatch configurations, and the out-of-core reader path
    /// agrees with the in-memory slice.
    #[test]
    fn validation_is_dispatch_invariant(ndjson in arb_corpus(true)) {
        let schema = tag_schema();
        let vopts = ValidatorOptions::default();
        let fault = collect_fault();
        let (ref_verdicts, ref_report) = validate_streaming_source(
            StreamSource::slice(&ndjson),
            &schema,
            vopts,
            opts(1),
            ChunkOptions::default(),
            fault,
            true,
        )
        .expect("collect policy under the cap cannot fail");
        // Quarantine order: diagnostics arrive in record order.
        prop_assert!(ref_report
            .errors
            .rejects
            .windows(2)
            .all(|w| w[0].record < w[1].record));
        for &w in &WORKERS[1..] {
            for &cb in &CHUNK_SIZES {
                let (v, r) = validate_streaming_source(
                    StreamSource::slice(&ndjson),
                    &schema,
                    vopts,
                    opts(w),
                    ChunkOptions::with_chunk_bytes(cb),
                    fault,
                    true,
                )
                .unwrap();
                prop_assert_eq!(&v, &ref_verdicts);
                prop_assert_eq!(normalize(r), normalize(ref_report.clone()));
            }
        }
        let (v, r) = validate_streaming_source(
            StreamSource::Reader(Cursor::new(ndjson.clone())),
            &schema,
            vopts,
            opts(3),
            ChunkOptions::with_chunk_bytes(64),
            fault,
            true,
        )
        .unwrap();
        prop_assert_eq!(&v, &ref_verdicts);
        prop_assert_eq!(normalize(r), normalize(ref_report));
    }

    /// Fail-fast runs agree on the *first* error across dispatch
    /// configurations (or on the inferred type when the corpus is
    /// clean).
    #[test]
    fn failfast_first_error_is_dispatch_invariant(ndjson in arb_corpus(true)) {
        let fault = FaultOptions::default();
        let reference = infer_streaming_source(
            StreamSource::slice(&ndjson),
            Equivalence::Kind,
            opts(1),
            ChunkOptions::default(),
            fault,
        );
        for &w in &WORKERS[1..] {
            for &cb in &CHUNK_SIZES {
                let got = infer_streaming_source(
                    StreamSource::slice(&ndjson),
                    Equivalence::Kind,
                    opts(w),
                    ChunkOptions::with_chunk_bytes(cb),
                    fault,
                );
                match (&reference, &got) {
                    (Ok((ty_a, ra)), Ok((ty_b, rb))) => {
                        prop_assert_eq!(ty_a, ty_b);
                        prop_assert_eq!(normalize(ra.clone()), normalize(rb.clone()));
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a, b),
                    _ => prop_assert!(
                        false,
                        "dispatch configs disagree on success: workers {} chunk {}",
                        w,
                        cb
                    ),
                }
            }
        }
    }

    /// Columnar translation produces byte-identical batches across
    /// dispatch configurations, including from an out-of-core reader.
    #[test]
    fn translation_batches_are_dispatch_invariant(ndjson in arb_corpus(false)) {
        let fault = FaultOptions {
            policy: ErrorPolicy::Skip { max_errors: None },
            ..FaultOptions::default()
        };
        let (ty, _) = infer_streaming_source(
            StreamSource::slice(&ndjson),
            Equivalence::Kind,
            opts(1),
            ChunkOptions::default(),
            fault,
        )
        .unwrap();
        let shredder = Shredder::from_type(&ty);
        let (ref_batch, ref_report) = translate_streaming_source(
            StreamSource::slice(&ndjson),
            &shredder,
            opts(1),
            ChunkOptions::default(),
            fault,
            true,
        )
        .unwrap();
        for &w in &WORKERS[1..] {
            for &cb in &CHUNK_SIZES {
                let (b, r) = translate_streaming_source(
                    StreamSource::slice(&ndjson),
                    &shredder,
                    opts(w),
                    ChunkOptions::with_chunk_bytes(cb),
                    fault,
                    true,
                )
                .unwrap();
                prop_assert_eq!(&b, &ref_batch);
                prop_assert_eq!(normalize(r), normalize(ref_report.clone()));
            }
        }
        let (b, r) = translate_streaming_source(
            StreamSource::Reader(Cursor::new(ndjson.clone())),
            &shredder,
            opts(8),
            ChunkOptions::with_chunk_bytes(64),
            fault,
            false,
        )
        .unwrap();
        prop_assert_eq!(&b, &ref_batch);
        prop_assert_eq!(normalize(r), normalize(ref_report));
    }
}

/// A chunk target smaller than every record: each record becomes its
/// own chunk, none is ever split mid-bytes.
#[test]
fn record_longer_than_chunk_stays_whole() {
    let ndjson =
        "{\"tag\": \"a\"}\n{\"tag\": \"bbbbbbbbbbbbbbbbbbbbbbbbbbbbbb\"}\n{\"tag\": \"c\"}\n";
    let schema = tag_schema();
    let (verdicts, report) = validate_streaming_source(
        StreamSource::slice(ndjson),
        &schema,
        ValidatorOptions::default(),
        opts(2),
        ChunkOptions::with_chunk_bytes(8),
        collect_fault(),
        true,
    )
    .unwrap();
    assert_eq!(verdicts.len(), 3);
    assert!(verdicts
        .iter()
        .all(|(_, v)| matches!(v, jsonx::LineVerdict::Valid)));
    assert_eq!(report.records, 3);
    assert!(report.shards >= 3, "each record should get its own chunk");
}
