//! Cross-language agreement: the same constraints expressed in JSON
//! Schema, Joi, and JSound must classify the same instances identically —
//! the "compare their capabilities in a few scenarios" exercise of §2.

use jsonx::joi::{joi, When};
use jsonx::json;
use jsonx::jsound::JSoundSchema;
use jsonx::schema::CompiledSchema;
use jsonx::Value;

/// A user-profile constraint set expressible in all three languages.
struct Scenario {
    json_schema: CompiledSchema,
    joi_schema: jsonx::joi::JoiSchema,
    jsound_schema: JSoundSchema,
}

fn profile_scenario() -> Scenario {
    let json_schema = CompiledSchema::compile(&json!({
        "type": "object",
        "properties": {
            "id": {"type": "integer"},
            "name": {"type": "string"},
            "tags": {"type": "array", "items": {"type": "string"}}
        },
        "required": ["id"],
        "additionalProperties": false
    }))
    .unwrap();
    let joi_schema = joi::object()
        .key("id", joi::integer().required())
        .key("name", joi::string())
        .key("tags", joi::array().items(joi::string()))
        .build();
    let jsound_schema = JSoundSchema::compile(&json!({
        "!id": "integer",
        "name": "string",
        "tags": ["string"]
    }))
    .unwrap();
    Scenario {
        json_schema,
        joi_schema,
        jsound_schema,
    }
}

#[test]
fn all_three_languages_agree_on_profiles() {
    let s = profile_scenario();
    let cases: Vec<(Value, bool)> = vec![
        (json!({"id": 1, "name": "a", "tags": ["x"]}), true),
        (json!({"id": 1}), true),
        (json!({"name": "a"}), false),          // id required
        (json!({"id": "1"}), false),            // wrong type
        (json!({"id": 1, "tags": [2]}), false), // item type
        (json!({"id": 1, "zzz": true}), false), // closed object
        (json!([1]), false),                    // not an object
    ];
    for (instance, expected) in cases {
        assert_eq!(
            s.json_schema.is_valid(&instance),
            expected,
            "JSON Schema on {instance}"
        );
        assert_eq!(
            s.joi_schema.is_valid(&instance),
            expected,
            "Joi on {instance}"
        );
        assert_eq!(
            s.jsound_schema.is_valid(&instance),
            expected,
            "JSound on {instance}"
        );
    }
}

#[test]
fn jsound_compiles_into_equivalent_json_schema() {
    let s = profile_scenario();
    let compiled = CompiledSchema::compile(&s.jsound_schema.compile_to_json_schema()).unwrap();
    for instance in [
        json!({"id": 1, "name": "a", "tags": ["x", "y"]}),
        json!({"id": 1}),
        json!({"name": "a"}),
        json!({"id": 1.5}),
        json!({"id": 1, "tags": "not array"}),
        json!({"id": 1, "other": 0}),
        json!(42),
    ] {
        assert_eq!(
            s.jsound_schema.is_valid(&instance),
            compiled.is_valid(&instance),
            "JSound and its JSON Schema translation disagree on {instance}"
        );
    }
}

#[test]
fn joi_expresses_what_json_schema_needs_dependencies_for() {
    // Co-occurrence: card payments need a billing address.
    let joi_schema = joi::object()
        .key("card", joi::string())
        .key("cash", joi::boolean())
        .key("billing_address", joi::string())
        .xor(["card", "cash"])
        .with("card", ["billing_address"])
        .build();
    let json_schema = CompiledSchema::compile(&json!({
        "type": "object",
        "properties": {
            "card": {"type": "string"},
            "cash": {"type": "boolean"},
            "billing_address": {"type": "string"}
        },
        "additionalProperties": false,
        "oneOf": [
            {"required": ["card"], "not": {"required": ["cash"]}},
            {"required": ["cash"], "not": {"required": ["card"]}}
        ],
        "dependencies": {"card": ["billing_address"]}
    }))
    .unwrap();
    for (instance, expected) in [
        (json!({"card": "41", "billing_address": "x"}), true),
        (json!({"cash": true}), true),
        (json!({"card": "41"}), false),
        (
            json!({"card": "41", "cash": true, "billing_address": "x"}),
            false,
        ),
        (json!({}), false),
    ] {
        assert_eq!(
            joi_schema.is_valid(&instance),
            expected,
            "joi on {instance}"
        );
        assert_eq!(
            json_schema.is_valid(&instance),
            expected,
            "json-schema on {instance}"
        );
    }
}

#[test]
fn value_dependent_types_match_schema_conditionals() {
    // Joi `when` vs JSON Schema anyOf-encoded conditional.
    let joi_schema = joi::object()
        .key("kind", joi::string().valid(["point", "named"]).required())
        .key(
            "payload",
            joi::any().when(
                When::is(
                    "kind",
                    joi::any().valid(["point"]),
                    joi::array()
                        .items(joi::number())
                        .min_items(2)
                        .max_items(2)
                        .required(),
                )
                .otherwise(joi::string().required()),
            ),
        )
        .build();
    let json_schema = CompiledSchema::compile(&json!({
        "type": "object",
        "required": ["kind"],
        "properties": {"kind": {"enum": ["point", "named"]}},
        "additionalProperties": true,
        "anyOf": [
            {
                "properties": {
                    "kind": {"const": "point"},
                    "payload": {"type": "array", "items": {"type": "number"},
                                 "minItems": 2, "maxItems": 2}
                },
                "required": ["payload"]
            },
            {
                "properties": {
                    "kind": {"const": "named"},
                    "payload": {"type": "string"}
                },
                "required": ["payload"]
            }
        ]
    }))
    .unwrap();
    for (instance, expected) in [
        (json!({"kind": "point", "payload": [1.0, 2.0]}), true),
        (json!({"kind": "named", "payload": "lisbon"}), true),
        (json!({"kind": "point", "payload": "lisbon"}), false),
        (json!({"kind": "named", "payload": [1.0, 2.0]}), false),
        (json!({"kind": "point", "payload": [1.0]}), false),
    ] {
        assert_eq!(
            joi_schema.is_valid(&instance),
            expected,
            "joi on {instance}"
        );
        assert_eq!(
            json_schema.is_valid(&instance),
            expected,
            "json-schema on {instance}"
        );
    }
}
