//! Fault-injection harness for the resident schema service.
//!
//! Every test drives a live daemon (bound to port 0, run on a background
//! thread) with deliberately misbehaving clients from
//! [`jsonx::gen::fault_client`] and asserts the robustness contract:
//! the daemon never panics or deadlocks, every accepted well-formed
//! request gets a verdict identical to the batch pipeline's, overload is
//! shed with structured `busy` responses, and the final report's books
//! balance.

use jsonx::gen::fault_client::{abandon_mid_frame, pipeline, send_raw, slow_loris, LineClient};
use jsonx::schema::{CompiledSchema, ValidatorOptions};
use jsonx::serve::{FinalReport, ServeConfig, Server};
use jsonx::syntax::parse;
use jsonx::{
    validate_streaming_guarded, ErrorPolicy, FaultOptions, ParseLimits, StreamingOptions, Value,
};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

const SCHEMA: &str =
    r#"{"type": "object", "properties": {"id": {"type": "integer"}}, "required": ["id"]}"#;
const STRICT_SCHEMA: &str = r#"{"type": "object", "properties": {"id": {"type": "integer"}, "name": {"type": "string"}}, "required": ["id", "name"]}"#;

/// Writes a schema file unique to this test.
fn schema_file(name: &str, body: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("jsonx-serve-{}-{name}.json", std::process::id()));
    std::fs::write(&path, body).unwrap();
    path
}

/// Binds and runs a daemon on a background thread.
fn start(config: ServeConfig) -> (SocketAddr, std::thread::JoinHandle<FinalReport>) {
    let server = Server::bind(config).unwrap();
    let addr = server.local_addr().unwrap();
    (addr, std::thread::spawn(move || server.run()))
}

/// Sends `SHUTDOWN` and returns the drained final report.
fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<FinalReport>) -> FinalReport {
    let mut client = LineClient::connect(addr).unwrap();
    let ack = client.request("SHUTDOWN").unwrap().unwrap();
    assert!(ack.contains("\"draining\":true"), "{ack}");
    let report = handle.join().expect("server thread survived");
    assert!(report.reconciled(), "books must balance: {report:?}");
    report
}

fn response_json(line: &str) -> Value {
    parse(line).unwrap_or_else(|e| panic!("unparseable response {line:?}: {e}"))
}

fn field<'v>(doc: &'v Value, key: &str) -> &'v Value {
    doc.get(key)
        .unwrap_or_else(|| panic!("missing {key:?} in {doc:?}"))
}

#[test]
fn verdicts_match_the_batch_pipeline() {
    let limits = ParseLimits::new()
        .with_max_depth(4)
        .with_max_input_bytes(256);
    let corpus: Vec<String> = vec![
        r#"{"id": 1}"#.to_string(),
        r#"{"id": "not an int"}"#.to_string(),
        r#"{"id": 2, "extra": [1, {"a": null}]}"#.to_string(),
        r#"{"id""#.to_string(),
        "[1, 2, 3]".to_string(),
        "nonsense".to_string(),
        r#"{"deep": [[[[[[1]]]]]]}"#.to_string(),
        format!("{{\"id\": 3, \"pad\": \"{}\"}}", "x".repeat(300)),
    ];
    // Ground truth: the guarded batch path over the same records with the
    // same schema and limits.
    let ndjson: String = corpus.iter().map(|l| format!("{l}\n")).collect();
    let schema = CompiledSchema::compile(&parse(SCHEMA).unwrap()).unwrap();
    let (batch_verdicts, batch_report) = validate_streaming_guarded(
        &ndjson,
        &schema,
        ValidatorOptions::default(),
        StreamingOptions::with_workers(1),
        FaultOptions {
            policy: ErrorPolicy::Skip { max_errors: None },
            keep_rejects: false,
            limits,
        },
    )
    .unwrap();

    // The guarded face splits outcomes: parsed records land in the verdict
    // vector, malformed ones in the report's diagnostics. Re-key both by
    // record index so every corpus line has exactly one expected outcome.
    let mut expected: BTreeMap<usize, Result<bool, &'static str>> = BTreeMap::new();
    for (idx, verdict) in &batch_verdicts {
        expected.insert(*idx, Ok(verdict.is_valid()));
    }
    for diag in &batch_report.errors.rejects {
        expected.insert(diag.record, Err(diag.kind));
    }
    assert_eq!(expected.len(), corpus.len(), "every line has one outcome");

    let (addr, handle) = start(ServeConfig {
        schema_path: Some(schema_file("parity", SCHEMA)),
        limits,
        ..ServeConfig::default()
    });
    let mut client = LineClient::connect(addr).unwrap();
    for (idx, line) in corpus.iter().enumerate() {
        let resp = client
            .request(&format!("VALIDATE {line}"))
            .unwrap()
            .unwrap();
        let doc = response_json(&resp);
        match expected[&idx] {
            Ok(true) => {
                assert_eq!(
                    field(&doc, "verdict").as_str(),
                    Some("valid"),
                    "{line}: {resp}"
                );
            }
            Ok(false) => {
                assert_eq!(
                    field(&doc, "verdict").as_str(),
                    Some("invalid"),
                    "{line}: {resp}"
                );
            }
            Err(kind) => {
                assert_eq!(field(&doc, "ok").as_bool(), Some(false), "{line}: {resp}");
                assert_eq!(field(&doc, "kind").as_str(), Some(kind), "{line}: {resp}");
            }
        }
    }
    let report = shutdown(addr, handle);
    // The service's per-kind error account equals the batch run's.
    assert_eq!(report.report.errors.by_kind, batch_report.errors.by_kind);
    assert_eq!(report.report.records, corpus.len());
}

#[test]
fn infer_and_translate_match_the_batch_primitives() {
    use jsonx::core::{infer_collection, print_type, Equivalence, PrintOptions};
    use jsonx::translate::Shredder;
    let docs = [
        r#"{"a": 1, "b": "x"}"#,
        r#"{"a": [1, 2], "nested": {"k": true}}"#,
        r#"{"a": null}"#,
    ];
    let (addr, handle) = start(ServeConfig::default());
    let mut client = LineClient::connect(addr).unwrap();
    for line in docs {
        let value = parse(line).unwrap();
        let ty = infer_collection(std::slice::from_ref(&value), Equivalence::Kind);
        let expected_ty = print_type(&ty, PrintOptions::plain());
        let resp = client.request(&format!("INFER {line}")).unwrap().unwrap();
        let doc = response_json(&resp);
        assert_eq!(field(&doc, "type").as_str(), Some(expected_ty.as_str()));

        let mut shredder = Shredder::from_type(&ty);
        let batch = shredder.shred(std::slice::from_ref(&value)).unwrap();
        let resp = client
            .request(&format!("TRANSLATE {line}"))
            .unwrap()
            .unwrap();
        let doc = response_json(&resp);
        assert_eq!(
            field(&doc, "schema").as_str(),
            Some(batch.schema_string().as_str())
        );
        assert_eq!(
            field(&doc, "columns").as_i64(),
            Some(batch.columns.len() as i64)
        );
    }
    shutdown(addr, handle);
}

#[test]
fn malformed_frames_answer_and_keep_the_connection() {
    let (addr, handle) = start(ServeConfig::default());
    let mut client = LineClient::connect(addr).unwrap();
    // Unknown verbs, missing payloads, and empty frames each get a
    // structured error on the SAME connection — no reconnect needed.
    for (frame, kind) in [
        ("FROBNICATE {}", "unknown-verb"),
        ("VALIDATE", "bad-frame"),
        ("", "bad-frame"),
        ("BOOM", "unknown-verb"), // debug verb hidden without --debug-faults
    ] {
        let resp = client.request(frame).unwrap().unwrap();
        let doc = response_json(&resp);
        assert_eq!(field(&doc, "kind").as_str(), Some(kind), "{frame}: {resp}");
    }
    // ...and the connection still serves real requests afterwards.
    let resp = client.request(r#"INFER {"a": 1}"#).unwrap().unwrap();
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let report = shutdown(addr, handle);
    assert_eq!(report.malformed_requests, 4);
    assert!(report.report.poisoned.is_empty());
}

#[test]
fn non_utf8_frames_close_the_connection_cleanly() {
    let (addr, handle) = start(ServeConfig::default());
    let resp = send_raw(addr, b"VALIDATE {\"a\": \xff\xfe}").unwrap();
    if let Some(resp) = resp {
        assert!(resp.contains("bad-frame"), "{resp}");
    }
    // The daemon survives to serve the next client.
    let mut client = LineClient::connect(addr).unwrap();
    assert!(client
        .request("PING")
        .unwrap()
        .unwrap()
        .contains("\"ok\":true"));
    let report = shutdown(addr, handle);
    assert_eq!(report.bad_frames, 1);
}

#[test]
fn oversized_payloads_reject_with_the_batch_label() {
    let limits = ParseLimits::new().with_max_input_bytes(128);
    let (addr, handle) = start(ServeConfig {
        schema_path: Some(schema_file("oversize", SCHEMA)),
        limits,
        ..ServeConfig::default()
    });
    // Over the record limit but under the frame cap: a structured reject,
    // connection stays open.
    let mut client = LineClient::connect(addr).unwrap();
    let payload = format!("{{\"id\": 1, \"pad\": \"{}\"}}", "x".repeat(200));
    let resp = client
        .request(&format!("VALIDATE {payload}"))
        .unwrap()
        .unwrap();
    let doc = response_json(&resp);
    assert_eq!(
        field(&doc, "kind").as_str(),
        Some("limit-exceeded-input-bytes"),
        "{resp}"
    );
    assert!(client
        .request("PING")
        .unwrap()
        .unwrap()
        .contains("\"ok\":true"));
    // Over the frame cap (limit + slack): the framer cuts the connection
    // before buffering the whole thing.
    let monster = format!("VALIDATE {{\"pad\": \"{}\"}}", "y".repeat(64 * 1024));
    let resp = send_raw(addr, monster.as_bytes()).unwrap();
    if let Some(resp) = resp {
        assert!(resp.contains("limit-exceeded-input-bytes"), "{resp}");
    }
    let report = shutdown(addr, handle);
    assert_eq!(report.oversized_frames, 1);
    assert_eq!(
        report.report.errors.by_kind["limit-exceeded-input-bytes"],
        1
    );
}

#[test]
fn slow_loris_writers_are_cut_off() {
    let (addr, handle) = start(ServeConfig {
        frame_budget: Duration::from_millis(150),
        ..ServeConfig::default()
    });
    // 20 bytes at 50ms/byte can never finish inside a 150ms budget.
    let resp = slow_loris(addr, "VALIDATE {\"id\": 1}\n", Duration::from_millis(50)).unwrap();
    if let Some(resp) = resp {
        assert!(resp.contains("slow-frame"), "{resp}");
    }
    // The worker pool never saw the frame; the daemon is healthy.
    let mut client = LineClient::connect(addr).unwrap();
    assert!(client
        .request("PING")
        .unwrap()
        .unwrap()
        .contains("\"ok\":true"));
    let report = shutdown(addr, handle);
    assert_eq!(report.slow_frames, 1);
    assert_eq!(report.report.records, 0);
}

#[test]
fn mid_request_disconnects_are_absorbed() {
    let (addr, handle) = start(ServeConfig::default());
    for _ in 0..3 {
        abandon_mid_frame(addr, "VALIDATE {\"id\": ").unwrap();
    }
    // Give the handlers a beat to observe the EOFs.
    std::thread::sleep(Duration::from_millis(100));
    let mut client = LineClient::connect(addr).unwrap();
    assert!(client
        .request("PING")
        .unwrap()
        .unwrap()
        .contains("\"ok\":true"));
    let report = shutdown(addr, handle);
    assert_eq!(report.disconnects, 3);
    assert_eq!(report.report.records, 0);
}

#[test]
fn queue_overflow_sheds_with_structured_busy() {
    let (addr, handle) = start(ServeConfig {
        queue_depth: 1,
        workers: 1,
        debug_faults: true,
        ..ServeConfig::default()
    });
    // Occupy the single worker...
    let mut sleeper = LineClient::connect(addr).unwrap();
    sleeper.send("SLEEP 600").unwrap();
    std::thread::sleep(Duration::from_millis(100));
    // ...then storm from concurrent connections while it holds the queue
    // at depth 1.
    let storm = 8;
    let handles: Vec<_> = (0..storm)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = LineClient::connect(addr).unwrap();
                client
                    .request(&format!("INFER {{\"n\": {i}}}"))
                    .unwrap()
                    .unwrap()
            })
        })
        .collect();
    let responses: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(sleeper
        .read_response()
        .unwrap()
        .unwrap()
        .contains("\"ok\":true"));
    let ok = responses
        .iter()
        .filter(|r| r.contains("\"ok\":true"))
        .count();
    let busy = responses.iter().filter(|r| r.contains("\"busy\"")).count();
    assert_eq!(ok + busy, storm, "{responses:?}");
    assert!(
        busy >= 1,
        "storm must overflow a depth-1 queue: {responses:?}"
    );
    let report = shutdown(addr, handle);
    assert_eq!(report.shed, busy);
    // Every admitted request produced exactly one verdict.
    assert_eq!(report.report.records, ok + 1, "{report:?}"); // + the sleeper
}

#[test]
fn queued_requests_past_the_deadline_expire() {
    let (addr, handle) = start(ServeConfig {
        workers: 1,
        queue_depth: 4,
        deadline: Some(Duration::from_millis(100)),
        debug_faults: true,
        ..ServeConfig::default()
    });
    let mut sleeper = LineClient::connect(addr).unwrap();
    sleeper.send("SLEEP 500").unwrap();
    std::thread::sleep(Duration::from_millis(50));
    // This request waits ~450ms in the queue — far past its 100ms
    // deadline — and must be answered, not silently dropped.
    let mut client = LineClient::connect(addr).unwrap();
    let resp = client.request(r#"INFER {"a": 1}"#).unwrap().unwrap();
    let doc = response_json(&resp);
    assert_eq!(
        field(&doc, "kind").as_str(),
        Some("deadline-exceeded"),
        "{resp}"
    );
    assert!(sleeper
        .read_response()
        .unwrap()
        .unwrap()
        .contains("\"ok\":true"));
    let report = shutdown(addr, handle);
    assert_eq!(report.expired, 1);
}

#[test]
fn reload_swaps_epochs_without_interrupting_traffic() {
    let path = schema_file("reload", SCHEMA);
    let (addr, handle) = start(ServeConfig {
        schema_path: Some(path.clone()),
        ..ServeConfig::default()
    });
    let doc = r#"{"id": 7}"#;
    let mut client = LineClient::connect(addr).unwrap();
    let resp = client.request(&format!("VALIDATE {doc}")).unwrap().unwrap();
    assert!(
        resp.contains("\"valid\"") && resp.contains("\"epoch\":1"),
        "{resp}"
    );

    // Concurrent traffic while epochs swap: every response must be a
    // coherent verdict from epoch 1 or 2, never an error.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let traffic: Vec<_> = (0..4)
        .map(|_| {
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = LineClient::connect(addr).unwrap();
                let mut seen = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let resp = client
                        .request(r#"VALIDATE {"id": 7}"#)
                        .unwrap()
                        .expect("connection stays open across reloads");
                    assert!(resp.contains("\"ok\":true"), "{resp}");
                    seen.push(resp);
                }
                seen
            })
        })
        .collect();
    // The stricter schema flips the verdict for the same document.
    std::fs::write(&path, STRICT_SCHEMA).unwrap();
    let resp = client.request("RELOAD").unwrap().unwrap();
    assert!(resp.contains("\"epoch\":2"), "{resp}");
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let all: Vec<String> = traffic
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    for resp in &all {
        let doc = response_json(resp);
        match field(&doc, "epoch").as_i64() {
            Some(1) => assert_eq!(field(&doc, "verdict").as_str(), Some("valid"), "{resp}"),
            Some(2) => assert_eq!(field(&doc, "verdict").as_str(), Some("invalid"), "{resp}"),
            other => panic!("unexpected epoch {other:?} in {resp}"),
        }
    }
    let resp = client.request(&format!("VALIDATE {doc}")).unwrap().unwrap();
    assert!(
        resp.contains("\"invalid\"") && resp.contains("\"epoch\":2"),
        "{resp}"
    );

    // A broken reload keeps the old epoch serving.
    std::fs::write(&path, "{\"type\": [not json").unwrap();
    let resp = client.request("RELOAD").unwrap().unwrap();
    assert!(resp.contains("reload-failed"), "{resp}");
    let resp = client.request(&format!("VALIDATE {doc}")).unwrap().unwrap();
    assert!(
        resp.contains("\"invalid\"") && resp.contains("\"epoch\":2"),
        "{resp}"
    );

    let report = shutdown(addr, handle);
    assert_eq!(report.reloads, 1);
    assert_eq!(report.reload_failures, 1);
    assert_eq!(report.epoch, 2);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_poisoned_request_kills_one_connection_not_the_daemon() {
    let (addr, handle) = start(ServeConfig {
        debug_faults: true,
        ..ServeConfig::default()
    });
    let mut victim = LineClient::connect(addr).unwrap();
    let mut bystander = LineClient::connect(addr).unwrap();
    let resp = victim.request("BOOM").unwrap().unwrap();
    assert!(resp.contains("\"panic\""), "{resp}");
    // The poisoned connection is closed...
    assert!(victim.is_closed());
    // ...the bystander's is not, and the daemon keeps serving.
    assert!(bystander
        .request(r#"INFER {"a": 1}"#)
        .unwrap()
        .unwrap()
        .contains("\"ok\":true"));
    let report = shutdown(addr, handle);
    assert_eq!(report.report.poisoned.len(), 1);
    assert!(report.report.poisoned[0].message.contains("BOOM"));
}

#[test]
fn pipelined_bursts_get_every_response_in_order() {
    let (addr, handle) = start(ServeConfig {
        schema_path: Some(schema_file("burst", SCHEMA)),
        ..ServeConfig::default()
    });
    let frames: Vec<String> = (0..32)
        .map(|i| {
            if i % 3 == 0 {
                format!("VALIDATE {{\"id\": {i}}}")
            } else if i % 3 == 1 {
                format!("VALIDATE {{\"id\": \"s{i}\"}}")
            } else {
                format!("INFER {{\"n\": {i}}}")
            }
        })
        .collect();
    let responses = pipeline(addr, &frames).unwrap();
    assert_eq!(responses.len(), frames.len());
    for (frame, resp) in frames.iter().zip(&responses) {
        let doc = response_json(resp);
        if frame.starts_with("VALIDATE {\"id\": \"") {
            assert_eq!(
                field(&doc, "verdict").as_str(),
                Some("invalid"),
                "{frame}: {resp}"
            );
        } else if frame.starts_with("VALIDATE") {
            assert_eq!(
                field(&doc, "verdict").as_str(),
                Some("valid"),
                "{frame}: {resp}"
            );
        } else {
            assert_eq!(field(&doc, "op").as_str(), Some("infer"), "{frame}: {resp}");
        }
    }
    let report = shutdown(addr, handle);
    assert_eq!(report.report.records, frames.len());
    assert_eq!(report.valid, 11);
    assert_eq!(report.invalid, 11);
}

#[test]
fn connection_cap_refuses_with_busy() {
    let (addr, handle) = start(ServeConfig {
        max_conns: 2,
        ..ServeConfig::default()
    });
    let mut a = LineClient::connect(addr).unwrap();
    let mut b = LineClient::connect(addr).unwrap();
    assert!(a.request("PING").unwrap().unwrap().contains("\"ok\":true"));
    assert!(b.request("PING").unwrap().unwrap().contains("\"ok\":true"));
    let mut c = LineClient::connect(addr).unwrap();
    let resp = c.read_response().unwrap().unwrap();
    assert!(resp.contains("\"busy\""), "{resp}");
    // Free the two slots (the shutdown connection is subject to the same
    // cap) and give the handlers a beat to observe the EOFs.
    drop(a);
    drop(b);
    std::thread::sleep(Duration::from_millis(150));
    let report = shutdown(addr, handle);
    assert_eq!(report.refused, 1);
}
