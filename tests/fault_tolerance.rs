//! Cross-crate fault-tolerance properties, pinned over the dirty-corpus
//! generator's ground truth.
//!
//! The central identity: a `Skip`-policy run over a dirty corpus must be
//! observationally identical to a fail-fast run over the same corpus with
//! the corrupt lines blanked — same inferred type, same validation
//! verdicts (on the same original line numbers), same columnar batch —
//! for every worker count. Rejected-record indices must equal the
//! generator's `bad_lines` exactly, and the bounded policies must trip
//! deterministically regardless of sharding.

use jsonx::core::{Equivalence, JType};
use jsonx::gen::{dirty_ndjson, DirtyConfig};
use jsonx::schema::{CompiledSchema, ValidatorOptions};
use jsonx::translate::Shredder;
use jsonx::{
    infer_streaming, infer_streaming_guarded, translate_streaming, translate_streaming_guarded,
    validate_streaming_guarded, validate_streaming_parallel, ErrorPolicy, FaultOptions,
    ParseLimits, RunReport, StreamError, StreamingOptions,
};
use jsonx_data::json;
use proptest::prelude::*;

const WORKERS: [usize; 4] = [1, 2, 3, 8];

fn opts(workers: usize) -> StreamingOptions {
    StreamingOptions {
        workers,
        min_shard_bytes: 128,
    }
}

fn skip_all() -> FaultOptions {
    FaultOptions {
        policy: ErrorPolicy::Skip { max_errors: None },
        keep_rejects: true,
        limits: ParseLimits::default(),
    }
}

fn arb_config() -> impl Strategy<Value = DirtyConfig> {
    (any::<u64>(), 40..160usize, 0.05..0.35f64).prop_map(|(seed, docs, corruption_rate)| {
        DirtyConfig {
            seed,
            docs,
            corruption_rate,
            ..DirtyConfig::default()
        }
    })
}

/// The report's reject indices must be exactly the generator's bad lines,
/// in order.
fn assert_rejects_match(report: &RunReport, bad_lines: &[usize]) {
    let rejected: Vec<usize> = report.errors.rejects.iter().map(|d| d.record).collect();
    assert_eq!(rejected, bad_lines, "reject indices != ground truth");
    assert_eq!(report.errors.total, bad_lines.len());
    assert_eq!(report.errors.dropped, 0);
    let by_kind_total: usize = report.errors.by_kind.values().sum();
    assert_eq!(by_kind_total, report.errors.total);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn skip_inference_equals_prefiltered_failfast(config in arb_config()) {
        let corpus = dirty_ndjson(&config);
        let reference = infer_streaming(&corpus.clean_text, Equivalence::Kind).unwrap();
        for workers in WORKERS {
            let (ty, report) = infer_streaming_guarded(
                &corpus.text,
                Equivalence::Kind,
                opts(workers),
                skip_all(),
            )
            .unwrap();
            prop_assert_eq!(&ty, &reference, "workers={}", workers);
            assert_rejects_match(&report, &corpus.bad_lines);
        }
    }

    #[test]
    fn skip_validation_equals_prefiltered_failfast(config in arb_config()) {
        let corpus = dirty_ndjson(&config);
        let schema = CompiledSchema::compile(
            &json!({"type": "object", "required": ["id", "name"]}),
        )
        .unwrap();
        let vopts = ValidatorOptions::default();
        // The clean twin has no malformed lines, so the legacy fail-fast
        // verdicts over it are the reference — on original line numbers.
        let reference = validate_streaming_parallel(
            &corpus.clean_text,
            &schema,
            vopts,
            opts(1),
        );
        for workers in WORKERS {
            let (verdicts, report) = validate_streaming_guarded(
                &corpus.text,
                &schema,
                vopts,
                opts(workers),
                skip_all(),
            )
            .unwrap();
            prop_assert_eq!(&verdicts, &reference, "workers={}", workers);
            assert_rejects_match(&report, &corpus.bad_lines);
        }
    }

    #[test]
    fn skip_translation_equals_prefiltered_failfast(config in arb_config()) {
        let corpus = dirty_ndjson(&config);
        let ty = infer_streaming(&corpus.clean_text, Equivalence::Kind).unwrap();
        if matches!(ty, JType::Bottom) {
            return Ok(()); // every record was corrupted; nothing to shred
        }
        let shredder = Shredder::from_type(&ty);
        let reference = translate_streaming(&corpus.clean_text, &shredder).unwrap();
        for workers in WORKERS {
            let (batch, report) = translate_streaming_guarded(
                &corpus.text,
                &shredder,
                opts(workers),
                skip_all(),
            )
            .unwrap();
            prop_assert_eq!(&batch, &reference, "workers={}", workers);
            assert_rejects_match(&report, &corpus.bad_lines);
        }
    }

    #[test]
    fn error_bound_trips_identically_across_worker_counts(config in arb_config()) {
        let corpus = dirty_ndjson(&config);
        let bad = corpus.bad_lines.len();
        if bad == 0 {
            return Ok(());
        }
        // One error of headroom succeeds; one short of the count fails —
        // at every worker count, because the bound is checked on the
        // merged total, not per shard.
        for workers in WORKERS {
            let ok = infer_streaming_guarded(
                &corpus.text,
                Equivalence::Kind,
                opts(workers),
                FaultOptions {
                    policy: ErrorPolicy::Skip { max_errors: Some(bad) },
                    ..skip_all()
                },
            );
            prop_assert!(ok.is_ok(), "workers={} bound={} should pass", workers, bad);
            let err = infer_streaming_guarded(
                &corpus.text,
                Equivalence::Kind,
                opts(workers),
                FaultOptions {
                    policy: ErrorPolicy::Skip { max_errors: Some(bad - 1) },
                    ..skip_all()
                },
            )
            .unwrap_err();
            prop_assert!(
                matches!(err, StreamError::TooManyErrors { .. }),
                "workers={} got {:?}",
                workers,
                err
            );
        }
    }

    #[test]
    fn collect_policy_keeps_every_diagnostic(config in arb_config()) {
        let corpus = dirty_ndjson(&config);
        let (_, report) = infer_streaming_guarded(
            &corpus.text,
            Equivalence::Kind,
            opts(3),
            FaultOptions {
                policy: ErrorPolicy::Collect {
                    max_errors: config.docs,
                },
                keep_rejects: false,
                limits: ParseLimits::default(),
            },
        )
        .unwrap();
        assert_rejects_match(&report, &corpus.bad_lines);
        // Collect without keep_rejects retains diagnostics but not raw lines.
        prop_assert!(report.errors.rejects.iter().all(|d| d.raw.is_none()));
    }
}

#[test]
fn failfast_on_dirty_reports_first_bad_line_at_any_worker_count() {
    let corpus = dirty_ndjson(&DirtyConfig {
        seed: 9,
        docs: 200,
        corruption_rate: 0.1,
        ..DirtyConfig::default()
    });
    let first_bad = corpus.bad_lines[0];
    for workers in WORKERS {
        let err = infer_streaming_guarded(
            &corpus.text,
            Equivalence::Kind,
            opts(workers),
            FaultOptions::default(),
        )
        .unwrap_err();
        match err {
            StreamError::Record { record, .. } => {
                assert_eq!(record, first_bad, "workers={workers}")
            }
            other => panic!("expected record fault, got {other:?}"),
        }
    }
}

#[test]
fn oversize_guard_rejects_padded_lines() {
    let corpus = dirty_ndjson(&DirtyConfig {
        seed: 3,
        docs: 300,
        corruption_rate: 0.15,
        oversize_bytes: Some(512),
        ..DirtyConfig::default()
    });
    let fault = FaultOptions {
        limits: ParseLimits::new().with_max_input_bytes(512),
        ..skip_all()
    };
    let (_, report) =
        infer_streaming_guarded(&corpus.text, Equivalence::Kind, opts(2), fault).unwrap();
    assert_rejects_match(&report, &corpus.bad_lines);
    // The generator produced at least one of each configured corruption
    // kind at this seed, including the byte-limit one.
    assert!(report
        .errors
        .by_kind
        .contains_key("limit-exceeded-input-bytes"));
    assert!(report.errors.by_kind.contains_key("too-deep"));
}
