//! End-to-end CSV ingestion through the decoder seam: the CSV front-end
//! must get inference, validation, translation, error policies and
//! quarantine diagnostics from the shared engine — and every stage must
//! be shard/worker-transparent (workers {1, 2, 3, 8} agree with the
//! single-worker reference, chunk boundaries included).

use jsonx::core::Equivalence;
use jsonx::schema::{CompiledSchema, ValidatorOptions};
use jsonx::syntax::parse;
use jsonx::translate::Shredder;
use jsonx::{
    infer_streaming_decoded, infer_validate_streaming_decoded, translate_streaming_decoded,
    validate_streaming_decoded, ChunkOptions, CsvDecoder, ErrorPolicy, FaultOptions, LineVerdict,
    StreamSource, StreamingOptions,
};

const WORKER_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// A heterogeneous CSV corpus: typed scalars, quoted fields (with
/// embedded delimiters and escaped quotes), empty cells, short rows.
fn corpus() -> String {
    let mut text = String::from("id,name,score,active,note\n");
    for i in 0..240 {
        match i % 6 {
            0 => text.push_str(&format!("{i},alpha,{}.5,true,plain\n", i % 10)),
            1 => text.push_str(&format!(
                "{i},\"beta, quoted\",{},false,\"he said \"\"hi\"\"\"\n",
                i % 7
            )),
            2 => text.push_str(&format!("{i},gamma,,true,\n")),
            3 => text.push_str(&format!("{i},delta,{}\n", i % 5)),
            4 => text.push_str(&format!("{i},\"epsilon\",1,false,multi? no\n")),
            _ => text.push_str(&format!("{i},zeta,-{}.25,true,ok\n", i % 3)),
        }
    }
    text
}

/// Strips the header and builds the decoder the way the CLI does.
fn peel(text: &str) -> (CsvDecoder, &str) {
    let (header, rest) = text.split_once('\n').unwrap();
    (CsvDecoder::from_header(header).unwrap(), rest)
}

/// Small chunks so multi-worker runs genuinely cross chunk boundaries.
fn small_chunks() -> ChunkOptions {
    ChunkOptions {
        chunk_bytes: 256,
        ..ChunkOptions::default()
    }
}

#[test]
fn csv_inference_is_worker_transparent() {
    let text = corpus();
    let (decoder, rest) = peel(&text);
    let reference = infer_streaming_decoded(
        StreamSource::slice(rest),
        decoder.clone(),
        Equivalence::Kind,
        StreamingOptions::with_workers(1),
        small_chunks(),
        FaultOptions::default(),
    )
    .unwrap();
    assert_eq!(reference.1.records, 240);
    assert!(reference.1.is_clean());
    for workers in WORKER_COUNTS {
        let (ty, report) = infer_streaming_decoded(
            StreamSource::slice(rest),
            decoder.clone(),
            Equivalence::Kind,
            StreamingOptions::with_workers(workers),
            small_chunks(),
            FaultOptions::default(),
        )
        .unwrap();
        assert_eq!(ty, reference.0, "inference diverged at {workers} workers");
        assert_eq!(report.records, reference.1.records);
    }
}

#[test]
fn csv_validation_is_worker_transparent() {
    let text = corpus();
    let (decoder, rest) = peel(&text);
    // `score` is sometimes absent/null, so only `id` and `name` are
    // required; `active` must be boolean when present.
    let schema_doc = parse(
        r#"{"type": "object", "required": ["id", "name"],
            "properties": {"active": {"type": "boolean"}, "id": {"type": "integer"}}}"#,
    )
    .unwrap();
    let schema = CompiledSchema::compile(&schema_doc).unwrap();
    let mut reference: Option<Vec<(usize, LineVerdict)>> = None;
    for workers in WORKER_COUNTS {
        let (verdicts, report) = validate_streaming_decoded(
            StreamSource::slice(rest),
            decoder.clone(),
            &schema,
            ValidatorOptions::default(),
            StreamingOptions::with_workers(workers),
            small_chunks(),
            FaultOptions::default(),
        )
        .unwrap();
        assert_eq!(report.records, 240);
        assert!(
            verdicts
                .iter()
                .all(|(_, v)| matches!(v, LineVerdict::Valid)),
            "synthesised CSV records should satisfy the schema"
        );
        match &reference {
            None => reference = Some(verdicts),
            Some(r) => assert_eq!(&verdicts, r, "verdicts diverged at {workers} workers"),
        }
    }
}

#[test]
fn csv_combined_infer_validate_matches_separate_passes() {
    let text = corpus();
    let (decoder, rest) = peel(&text);
    let schema_doc = parse(r#"{"type": "object", "required": ["id"]}"#).unwrap();
    let schema = CompiledSchema::compile(&schema_doc).unwrap();
    let (ty_alone, _) = infer_streaming_decoded(
        StreamSource::slice(rest),
        decoder.clone(),
        Equivalence::Kind,
        StreamingOptions::with_workers(2),
        small_chunks(),
        FaultOptions::default(),
    )
    .unwrap();
    for workers in WORKER_COUNTS {
        let ((ty, verdicts), _) = infer_validate_streaming_decoded(
            StreamSource::slice(rest),
            decoder.clone(),
            Equivalence::Kind,
            &schema,
            ValidatorOptions::default(),
            StreamingOptions::with_workers(workers),
            small_chunks(),
            FaultOptions::default(),
        )
        .unwrap();
        assert_eq!(
            ty, ty_alone,
            "combined-pass type diverged at {workers} workers"
        );
        assert!(verdicts
            .iter()
            .all(|(_, v)| matches!(v, LineVerdict::Valid)));
    }
}

#[test]
fn csv_translation_is_worker_transparent() {
    let text = corpus();
    let (decoder, rest) = peel(&text);
    let (ty, _) = infer_streaming_decoded(
        StreamSource::slice(rest),
        decoder.clone(),
        Equivalence::Kind,
        StreamingOptions::with_workers(1),
        small_chunks(),
        FaultOptions::default(),
    )
    .unwrap();
    let shredder = Shredder::from_type(&ty);
    let mut reference = None;
    for workers in WORKER_COUNTS {
        let (batch, report) = translate_streaming_decoded(
            StreamSource::slice(rest),
            decoder.clone(),
            &shredder,
            StreamingOptions::with_workers(workers),
            small_chunks(),
            FaultOptions::default(),
        )
        .unwrap();
        assert_eq!(batch.rows, 240);
        assert_eq!(report.records, 240);
        match &reference {
            None => reference = Some(batch),
            Some(r) => assert_eq!(&batch, r, "batch diverged at {workers} workers"),
        }
    }
}

/// Rows with trailing extra cells are malformed under the header-driven
/// dialect; the shared error policies must treat them like any other
/// rejected record, quarantine diagnostics included.
#[test]
fn csv_error_policies_and_quarantine_diagnostics() {
    let mut text = String::from("id,name\n");
    for i in 0..30 {
        if i % 10 == 3 {
            text.push_str(&format!("{i},x,EXTRA,CELLS\n"));
        } else {
            text.push_str(&format!("{i},x\n"));
        }
    }
    let (decoder, rest) = peel(&text);
    // Fail-fast: the first extra-cell row kills the run.
    let failed = infer_streaming_decoded(
        StreamSource::slice(rest),
        decoder.clone(),
        Equivalence::Kind,
        StreamingOptions::with_workers(2),
        small_chunks(),
        FaultOptions::default(),
    );
    assert!(failed.is_err(), "extra cells must reject under fail-fast");
    // Collect: the run survives, counts the three bad rows, and retains
    // quarantine-ready diagnostics with the raw line and a stable kind.
    let fault = FaultOptions {
        policy: ErrorPolicy::Collect { max_errors: 100 },
        keep_rejects: true,
        ..FaultOptions::default()
    };
    for workers in WORKER_COUNTS {
        let (ty, report) = infer_streaming_decoded(
            StreamSource::slice(rest),
            decoder.clone(),
            Equivalence::Kind,
            StreamingOptions::with_workers(workers),
            small_chunks(),
            fault,
        )
        .unwrap();
        assert_eq!(report.records, 30);
        assert_eq!(report.errors.total, 3, "at {workers} workers");
        let rejected: Vec<usize> = report.errors.rejects.iter().map(|d| d.record).collect();
        assert_eq!(rejected, vec![3, 13, 23], "at {workers} workers");
        assert!(report
            .errors
            .rejects
            .iter()
            .all(|d| d.kind == "trailing-data" && d.raw.as_deref().is_some()));
        // The surviving type only saw the clean rows.
        assert!(jsonx::core::type_size(&ty) > 0);
    }
}
