//! Differential property tests for the fused SWAR fast path.
//!
//! Two layers, matching the two claims the fast path makes:
//!
//! 1. **Structural index ≡ lexer.** The word-parallel bitmaps of
//!    `jsonx_syntax::structural` must agree with the recursive-descent
//!    lexer about where every structural character sits — on serialized
//!    arbitrary documents (escapes, multi-byte UTF-8, strings *containing*
//!    `{`/`:`/`,`/quotes) exactly, and on corrupted inputs for every token
//!    the lexer still produces before its first error.
//!
//! 2. **Fast path ≡ slow path.** `validate_streaming_*_fast` and
//!    `translate_streaming_*_fast` must be result-identical to their slow
//!    twins at every worker count: verdict vectors (including `Malformed`
//!    entries with exact error offsets), columnar batches, `RunReport`s
//!    and `StreamError`s, on clean and dirty corpora under every error
//!    policy. The fast path may *decline* records (verified fallback),
//!    never decide them differently.

use jsonx::gen::{dirty_ndjson, DirtyConfig};
use jsonx::schema::{CompiledSchema, ValidatorOptions};
use jsonx::syntax::{to_string, Bitmaps, Lexer, RawToken};
use jsonx::translate::Shredder;
use jsonx::{
    translate_streaming_guarded, translate_streaming_guarded_fast, translate_streaming_parallel,
    translate_streaming_parallel_fast, validate_streaming_guarded, validate_streaming_guarded_fast,
    validate_streaming_parallel, validate_streaming_parallel_fast, ErrorPolicy, FaultOptions,
    StreamingOptions,
};
use jsonx_data::{json, Number, Object, Value};
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn sharded(workers: usize) -> StreamingOptions {
    StreamingOptions {
        workers,
        min_shard_bytes: 64,
    }
}

// ---------------------------------------------------------------------------
// Layer 1: structural index vs lexer token positions
// ---------------------------------------------------------------------------

/// Structural positions according to the lexer: scan tokens, recording
/// the byte offset each one starts at (strings also record their closing
/// quote). Stops at the first lexer error, so on invalid input the result
/// covers exactly the well-formed prefix.
#[derive(Debug, Default, PartialEq)]
struct LexerStructurals {
    colon: Vec<usize>,
    comma: Vec<usize>,
    lbrace: Vec<usize>,
    rbrace: Vec<usize>,
    lbracket: Vec<usize>,
    rbracket: Vec<usize>,
    quote: Vec<usize>,
}

fn lexer_structurals(bytes: &[u8]) -> LexerStructurals {
    let mut lx = Lexer::new(bytes);
    let mut out = LexerStructurals::default();
    loop {
        lx.skip_ws();
        let at = lx.offset();
        match lx.next_token_raw() {
            Ok(RawToken::Eof) | Err(_) => return out,
            Ok(RawToken::Colon) => out.colon.push(at),
            Ok(RawToken::Comma) => out.comma.push(at),
            Ok(RawToken::LBrace) => out.lbrace.push(at),
            Ok(RawToken::RBrace) => out.rbrace.push(at),
            Ok(RawToken::LBracket) => out.lbracket.push(at),
            Ok(RawToken::RBracket) => out.rbracket.push(at),
            Ok(RawToken::Str(_)) => {
                // The token spans `at..lx.offset()`; both delimiting quotes
                // are unescaped by construction.
                out.quote.push(at);
                out.quote.push(lx.offset() - 1);
            }
            Ok(_) => {}
        }
    }
}

fn bitmap_structurals(bytes: &[u8]) -> LexerStructurals {
    let bits = jsonx::syntax::structural::build(bytes);
    LexerStructurals {
        colon: Bitmaps::positions(&bits.colon).collect(),
        comma: Bitmaps::positions(&bits.comma).collect(),
        lbrace: Bitmaps::positions(&bits.lbrace).collect(),
        rbrace: Bitmaps::positions(&bits.rbrace).collect(),
        lbracket: Bitmaps::positions(&bits.lbracket).collect(),
        rbracket: Bitmaps::positions(&bits.rbracket).collect(),
        quote: Bitmaps::positions(&bits.quote).collect(),
    }
}

/// Documents whose serialized form is hostile to a structural scanner:
/// strings full of braces, colons, commas, quotes-to-be-escaped,
/// backslashes and multi-byte UTF-8.
fn arb_doc() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-100_000i64..100_000).prop_map(|i| Value::Num(Number::Int(i))),
        (-1000.0f64..1000.0).prop_map(|f| Value::Num(Number::from_f64(f).unwrap())),
        "\\PC{0,12}".prop_map(Value::Str),
        "[{}:,\u{4e16}\u{e9}a-c]{0,10}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Arr),
            prop::collection::vec(("\\PC{0,6}", inner), 0..4)
                .prop_map(|pairs| Value::Obj(pairs.into_iter().collect::<Object>())),
        ]
    })
}

proptest! {
    /// On valid JSON the bitmap and the lexer must agree exactly, for
    /// every structural category and both string delimiters.
    #[test]
    fn structural_bitmaps_match_lexer_on_valid_json(doc in arb_doc()) {
        let text = to_string(&doc);
        let bytes = text.as_bytes();
        prop_assert_eq!(bitmap_structurals(bytes), lexer_structurals(bytes), "doc {}", text);
    }

    /// On corrupted input every token the lexer produces before its first
    /// error must still be present in the bitmaps: the lexer and the
    /// scanner read the same prefix the same way.
    #[test]
    fn structural_bitmaps_cover_lexer_prefix_on_corrupted_json(
        doc in arb_doc(),
        cut in 0usize..512,
        junk in "[@\\{\\}:,\"a-z ]{1,4}",
    ) {
        let mut text = to_string(&doc);
        // Corrupt: truncate at an arbitrary char boundary and append junk.
        while !text.is_char_boundary(cut.min(text.len())) {
            text.pop();
        }
        text.truncate(cut.min(text.len()));
        text.push_str(&junk);
        let bytes = text.as_bytes();
        let from_lexer = lexer_structurals(bytes);
        let from_bits = bitmap_structurals(bytes);
        for (name, lexer, bits) in [
            ("colon", &from_lexer.colon, &from_bits.colon),
            ("comma", &from_lexer.comma, &from_bits.comma),
            ("lbrace", &from_lexer.lbrace, &from_bits.lbrace),
            ("rbrace", &from_lexer.rbrace, &from_bits.rbrace),
            ("lbracket", &from_lexer.lbracket, &from_bits.lbracket),
            ("rbracket", &from_lexer.rbracket, &from_bits.rbracket),
            ("quote", &from_lexer.quote, &from_bits.quote),
        ] {
            for pos in lexer {
                prop_assert!(
                    bits.contains(pos),
                    "{} at {} seen by lexer but not bitmap in {:?}",
                    name, pos, text
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Layer 2: fast path vs slow path, clean corpora
// ---------------------------------------------------------------------------

/// A schema pool straddling the projectability boundary: some members
/// project (fast path active), some do not (fast path derivation yields
/// `None`, behavior must still be identical).
fn schema_pool() -> Vec<Value> {
    vec![
        json!({
            "type": "object",
            "properties": {"a": {"type": "integer"}, "b": {"type": "string"}},
            "required": ["a"]
        }),
        json!({"properties": {"a": {"minimum": 0}, "geo": {"properties": {"lat": {"type": "number"}}}}}),
        json!(true),
        json!({"type": "object"}),
        // Non-projectable: the verdict can depend on skipped fields.
        json!({"type": "object", "additionalProperties": {"type": "string"}}),
        json!({"allOf": [{"required": ["a"]}]}),
        json!({"type": "object", "minProperties": 2}),
    ]
}

/// Record-shaped documents over a small key pool that includes dotted
/// keys (exercising the translation plan's dotted-skip guard) and the
/// schema pool's property names.
fn arb_record() -> impl Strategy<Value = Value> {
    let key = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("geo".to_string()),
        Just("geo.lat".to_string()),
        "[a-d.]{1,4}",
    ];
    let scalar = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-100i64..100).prop_map(|i| Value::Num(Number::Int(i))),
        "\\PC{0,8}".prop_map(Value::Str),
    ];
    let value = scalar.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(Value::Arr),
            prop::collection::vec(("[a-d]{1,3}", inner), 0..3)
                .prop_map(|pairs| Value::Obj(pairs.into_iter().collect::<Object>())),
        ]
    });
    prop::collection::vec((key, value), 0..5)
        .prop_map(|pairs| Value::Obj(pairs.into_iter().collect::<Object>()))
}

fn to_ndjson(docs: &[Value]) -> String {
    let mut out = String::new();
    for d in docs {
        out.push_str(&to_string(d));
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fast and slow validation verdicts are identical for projectable
    /// and non-projectable schemas alike, at every worker count.
    #[test]
    fn fast_validation_verdicts_equal_slow(
        docs in prop::collection::vec(arb_record(), 1..30),
        schema_idx in 0usize..7,
    ) {
        let ndjson = to_ndjson(&docs);
        let schema = CompiledSchema::compile(&schema_pool()[schema_idx]).unwrap();
        let vopts = ValidatorOptions::default();
        for workers in WORKER_COUNTS {
            let slow = validate_streaming_parallel(&ndjson, &schema, vopts, sharded(workers));
            let fast = validate_streaming_parallel_fast(&ndjson, &schema, vopts, sharded(workers));
            prop_assert_eq!(&fast, &slow, "workers {}", workers);
        }
    }

    /// Fast and slow translation batches are row-identical at every
    /// worker count — including corpora with literal dotted root keys,
    /// which the fast path must route to the full parser rather than
    /// let them alias nested column paths.
    #[test]
    fn fast_translation_batches_equal_slow(
        docs in prop::collection::vec(arb_record(), 1..30),
    ) {
        let ndjson = to_ndjson(&docs);
        let ty = jsonx::core::infer_collection(&docs, jsonx::core::Equivalence::Kind);
        let shredder = Shredder::from_type(&ty);
        for workers in WORKER_COUNTS {
            let slow = translate_streaming_parallel(&ndjson, &shredder, sharded(workers));
            let fast = translate_streaming_parallel_fast(&ndjson, &shredder, sharded(workers));
            prop_assert_eq!(&fast, &slow, "workers {}", workers);
        }
    }
}

// ---------------------------------------------------------------------------
// Layer 2: fast path vs slow path, dirty corpora under every policy
// ---------------------------------------------------------------------------

fn policies() -> Vec<ErrorPolicy> {
    vec![
        ErrorPolicy::FailFast,
        ErrorPolicy::Skip { max_errors: None },
        ErrorPolicy::Skip {
            max_errors: Some(10),
        },
        ErrorPolicy::Collect { max_errors: 1000 },
    ]
}

fn dirty_corpus() -> jsonx::gen::DirtyNdjson {
    dirty_ndjson(&DirtyConfig {
        seed: 0xFA57,
        docs: 600,
        corruption_rate: 0.08,
        blank_rate: 0.02,
        ..DirtyConfig::default()
    })
}

/// On a dirty corpus the legacy parallel face records malformed lines as
/// inline verdicts: fast and slow must agree on every entry, error kinds
/// and offsets included (the declined record's diagnostics come from the
/// same full parser on both paths).
#[test]
fn fast_validation_matches_slow_on_dirty_corpus() {
    let corpus = dirty_corpus();
    let schema = CompiledSchema::compile(&schema_pool()[0]).unwrap();
    let vopts = ValidatorOptions::default();
    for workers in WORKER_COUNTS {
        let slow = validate_streaming_parallel(&corpus.text, &schema, vopts, sharded(workers));
        let fast = validate_streaming_parallel_fast(&corpus.text, &schema, vopts, sharded(workers));
        assert_eq!(fast, slow, "workers {workers}");
    }
}

/// Guarded validation: verdicts, RunReports and StreamErrors must be
/// identical under every policy at every worker count.
#[test]
fn fast_guarded_validation_matches_slow_on_dirty_corpus() {
    let corpus = dirty_corpus();
    let schema = CompiledSchema::compile(&schema_pool()[0]).unwrap();
    let vopts = ValidatorOptions::default();
    for policy in policies() {
        for keep_rejects in [false, true] {
            let fault = FaultOptions {
                policy,
                keep_rejects,
                ..FaultOptions::default()
            };
            for workers in WORKER_COUNTS {
                let slow = validate_streaming_guarded(
                    &corpus.text,
                    &schema,
                    vopts,
                    sharded(workers),
                    fault,
                );
                let fast = validate_streaming_guarded_fast(
                    &corpus.text,
                    &schema,
                    vopts,
                    sharded(workers),
                    fault,
                );
                assert_eq!(fast, slow, "workers {workers} policy {policy:?}");
            }
        }
    }
}

/// Guarded translation: batches, RunReports and StreamErrors must be
/// identical under every policy at every worker count.
#[test]
fn fast_guarded_translation_matches_slow_on_dirty_corpus() {
    let corpus = dirty_corpus();
    // Plan the layout from the clean twin so the shredder has a real
    // record type to project to.
    let docs = jsonx::syntax::parse_ndjson(&corpus.clean_text).unwrap();
    let ty = jsonx::core::infer_collection(&docs, jsonx::core::Equivalence::Kind);
    let shredder = Shredder::from_type(&ty);
    for policy in policies() {
        let fault = FaultOptions {
            policy,
            ..FaultOptions::default()
        };
        for workers in WORKER_COUNTS {
            let slow =
                translate_streaming_guarded(&corpus.text, &shredder, sharded(workers), fault);
            let fast =
                translate_streaming_guarded_fast(&corpus.text, &shredder, sharded(workers), fault);
            assert_eq!(fast, slow, "workers {workers} policy {policy:?}");
        }
    }
}

/// Fail-fast translation on a dirty corpus must report the same first
/// error (line and kind) with and without the fast path.
#[test]
fn fast_translation_first_error_matches_slow_on_dirty_corpus() {
    let corpus = dirty_corpus();
    let docs = jsonx::syntax::parse_ndjson(&corpus.clean_text).unwrap();
    let ty = jsonx::core::infer_collection(&docs, jsonx::core::Equivalence::Kind);
    let shredder = Shredder::from_type(&ty);
    for workers in WORKER_COUNTS {
        let slow = translate_streaming_parallel(&corpus.text, &shredder, sharded(workers));
        let fast = translate_streaming_parallel_fast(&corpus.text, &shredder, sharded(workers));
        assert_eq!(fast, slow, "workers {workers}");
        assert!(
            fast.is_err(),
            "dirty corpus must fail fail-fast translation"
        );
    }
}
