//! Cross-crate property tests: the zero-copy streaming inference path
//! (facade `streaming` module, driven by `jsonx-syntax` raw events) must be
//! observationally identical to the DOM pipeline
//! (`jsonx_syntax::parse_ndjson` + `jsonx_core::infer_collection`) — for
//! both equivalences, any worker count, and arbitrary document mixes.

use jsonx::core::{infer_collection, Equivalence};
use jsonx::syntax::{parse_ndjson, to_string};
use jsonx::{infer_streaming, infer_streaming_parallel, StreamingOptions};
use jsonx_data::{Number, Object, Value};
use proptest::prelude::*;

/// Strategy producing arbitrary JSON documents of bounded size.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(|i| Value::Num(Number::Int(i))),
        (-1e9f64..1e9f64).prop_map(|f| Value::Num(Number::from_f64(f).unwrap())),
        // \PC includes multibyte chars; strings with escapes exercise the
        // owned fallback of the Cow event layer.
        "\\PC{0,12}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 32, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::Arr),
            prop::collection::vec(("[a-z]{0,6}", inner), 0..5)
                .prop_map(|pairs| { Value::Obj(pairs.into_iter().collect::<Object>()) }),
        ]
    })
}

fn arb_collection() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(arb_value(), 0..24)
}

fn to_ndjson(docs: &[Value]) -> String {
    let mut out = String::new();
    for d in docs {
        out.push_str(&to_string(d));
        out.push('\n');
    }
    out
}

proptest! {
    #[test]
    fn streaming_equals_dom_inference(docs in arb_collection()) {
        let ndjson = to_ndjson(&docs);
        // The serialized collection parses back to the same documents, so
        // DOM inference over the reparse is the reference result.
        let reparsed = parse_ndjson(&ndjson).unwrap();
        prop_assert_eq!(&reparsed, &docs);
        for equiv in [Equivalence::Kind, Equivalence::Label] {
            let dom = infer_collection(&docs, equiv);
            let streamed = infer_streaming(&ndjson, equiv).unwrap();
            prop_assert_eq!(&streamed, &dom, "equiv {:?}", equiv);
        }
    }

    #[test]
    fn parallel_sharding_is_transparent(
        docs in arb_collection(),
        workers in 1usize..6,
    ) {
        let ndjson = to_ndjson(&docs);
        for equiv in [Equivalence::Kind, Equivalence::Label] {
            let dom = infer_collection(&docs, equiv);
            let opts = StreamingOptions { workers, min_shard_bytes: 16 };
            let par = infer_streaming_parallel(&ndjson, equiv, opts).unwrap();
            prop_assert_eq!(&par, &dom, "equiv {:?} workers {}", equiv, workers);
        }
    }
}
