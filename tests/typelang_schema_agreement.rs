//! Property test: typed decoding (jsonx-typelang) and JSON Schema
//! validation (jsonx-schema) agree on every value, for the schema
//! exported from a type — the §2/§3 comparison made machine-checkable.

use jsonx::schema::CompiledSchema;
use jsonx::typelang::{decode, to_schema, ty, Ty};
use jsonx::{Number, Object, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-100i64..100).prop_map(|i| Value::Num(Number::Int(i))),
        (-5.0f64..5.0).prop_map(|f| Value::Num(Number::from_f64(f).unwrap())),
        "[ab]{0,3}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(Value::Arr),
            prop::collection::vec(("[ab]", inner), 0..3)
                .prop_map(|pairs| Value::Obj(pairs.into_iter().collect::<Object>())),
        ]
    })
}

fn arb_ty() -> impl Strategy<Value = Ty> {
    let leaf = prop_oneof![
        Just(ty::any()),
        Just(ty::null()),
        Just(ty::boolean()),
        Just(ty::number()),
        Just(ty::string()),
        Just(ty::literal("a")),
        Just(ty::literal(1)),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(ty::array),
            prop::collection::vec(inner.clone(), 0..3).prop_map(ty::tuple),
            prop::collection::vec(("[ab]", inner.clone(), any::<bool>()), 0..3).prop_map(
                |fields| {
                    let mut t = ty::record([]);
                    let mut seen = std::collections::HashSet::new();
                    for (name, fty, optional) in fields {
                        if !seen.insert(name.clone()) {
                            continue;
                        }
                        t = if optional {
                            t.with_optional(name, fty)
                        } else {
                            t.with_field(name, fty)
                        };
                    }
                    t
                }
            ),
            prop::collection::vec(inner, 1..3).prop_map(ty::union),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn decode_agrees_with_exported_schema(t in arb_ty(), v in arb_value()) {
        let schema_doc = to_schema(&t);
        let schema = CompiledSchema::compile(&schema_doc)
            .unwrap_or_else(|e| panic!("schema for {t} failed to compile: {e}"));
        let decoded = decode(&t, &v).is_ok();
        let validated = schema.is_valid(&v);
        prop_assert_eq!(
            decoded, validated,
            "type {} and schema {} disagree on {}", t, schema_doc, v
        );
    }
}
