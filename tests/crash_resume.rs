//! Kill-and-resume fault harness for the chunk-commit journal.
//!
//! The contract under test: a run killed at *any* commit boundary —
//! abort (SIGKILL stand-in), graceful stop, torn journal tail — resumes
//! with `--resume` to output **byte-identical** to an uninterrupted run.
//! Kill points are injected deterministically through the
//! `JSONX_CRASHPOINT` environment variable (`commits:N` aborts the
//! process after the Nth journal commit, `stop:N` trips the graceful
//! stop latch), driven across the matrix the design calls for: kill
//! after the first chunk, mid-run, and at the last chunk, each under
//! 1, 2 and 8 workers.

use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_jsonx");

/// Exit codes the CLI documents (README "Exit codes").
const EXIT_INTERRUPTED: i32 = 4;
const EXIT_USAGE: i32 = 2;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "jsonx-crash-{tag}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A corpus with enough variety that the inferred type, the verdict
/// stream and the columnar batch all depend on record order and content.
fn write_corpus(path: &Path, records: usize) {
    let mut text = String::new();
    for i in 0..records {
        text.push_str(&format!(
            "{{\"id\":{i},\"name\":\"user{i}\",\"tags\":[{},{}],\"active\":{}{}}}\n",
            i % 3,
            i % 7,
            i % 2 == 0,
            if i % 5 == 0 {
                format!(",\"extra\":{{\"depth\":{}}}", i % 11)
            } else {
                String::new()
            },
        ));
    }
    std::fs::write(path, text).expect("write corpus");
}

struct RunOutput {
    stdout: Vec<u8>,
    code: Option<i32>,
}

fn run(args: &[&str], crashpoint: Option<&str>) -> RunOutput {
    let mut cmd = Command::new(BIN);
    cmd.args(args);
    match crashpoint {
        Some(spec) => cmd.env("JSONX_CRASHPOINT", spec),
        None => cmd.env_remove("JSONX_CRASHPOINT"),
    };
    let out = cmd.output().expect("spawn jsonx");
    RunOutput {
        stdout: out.stdout,
        code: out.status.code(),
    }
}

fn run_owned(args: &[String], crashpoint: Option<&str>) -> RunOutput {
    let borrowed: Vec<&str> = args.iter().map(String::as_str).collect();
    run(&borrowed, crashpoint)
}

/// How many chunks an uninterrupted journaled run commits (counted from
/// the journal: total records minus the header line).
fn committed_chunks(journal: &Path) -> usize {
    let text = std::fs::read_to_string(journal).expect("read journal");
    text.lines().count().saturating_sub(1)
}

fn infer_args<'a>(
    corpus: &'a str,
    workers: &'a str,
    journal: Option<&'a str>,
    resume: bool,
) -> Vec<&'a str> {
    let mut args = vec![
        "infer",
        "--input",
        corpus,
        "--chunk-bytes",
        "2048",
        "--workers",
        workers,
    ];
    if let Some(journal) = journal {
        args.extend(["--checkpoint", journal]);
    }
    if resume {
        args.push("--resume");
    }
    args
}

/// The full kill matrix on infer: abort after {1 chunk, mid-run, last
/// chunk} × workers {1, 2, 8}, resumed output byte-identical to the
/// uninterrupted reference.
#[test]
fn aborted_infer_resumes_byte_identical_across_kill_matrix() {
    let dir = TempDir::new("matrix");
    let corpus = dir.path("corpus.ndjson");
    write_corpus(&corpus, 4000);
    let corpus = corpus.to_str().unwrap();

    let reference = run(&infer_args(corpus, "2", None, false), None);
    assert_eq!(reference.code, Some(0));

    // One complete journaled run tells us the total commit count, so the
    // matrix can aim at the first, middle and last commit exactly.
    let probe = dir.path("probe.journal");
    let complete = run(
        &infer_args(corpus, "2", Some(probe.to_str().unwrap()), false),
        None,
    );
    assert_eq!(complete.code, Some(0));
    assert_eq!(complete.stdout, reference.stdout);
    let total = committed_chunks(&probe);
    assert!(total > 3, "matrix needs several chunks, got {total}");

    for workers in ["1", "2", "8"] {
        for kill_at in [1, total / 2, total] {
            let journal = dir.path(&format!("w{workers}-k{kill_at}.journal"));
            let journal = journal.to_str().unwrap();
            let spec = format!("commits:{kill_at}");
            let killed = run(
                &infer_args(corpus, workers, Some(journal), false),
                Some(&spec),
            );
            assert_ne!(
                killed.code,
                Some(0),
                "workers={workers} kill_at={kill_at}: abort expected"
            );
            let resumed = run(&infer_args(corpus, workers, Some(journal), true), None);
            assert_eq!(
                resumed.code,
                Some(0),
                "workers={workers} kill_at={kill_at}: resume failed"
            );
            assert_eq!(
                resumed.stdout, reference.stdout,
                "workers={workers} kill_at={kill_at}: resumed output differs"
            );
        }
    }
}

/// Graceful stop (the signal path, exercised via the stop crashpoint):
/// exit code 4, then a resume that completes with identical output.
#[test]
fn graceful_stop_exits_resumable_then_resumes() {
    let dir = TempDir::new("stop");
    let corpus = dir.path("corpus.ndjson");
    write_corpus(&corpus, 3000);
    let corpus = corpus.to_str().unwrap();
    let journal = dir.path("run.journal");
    let journal = journal.to_str().unwrap();

    let reference = run(&infer_args(corpus, "2", None, false), None);
    assert_eq!(reference.code, Some(0));

    let stopped = run(
        &infer_args(corpus, "2", Some(journal), false),
        Some("stop:2"),
    );
    assert_eq!(
        stopped.code,
        Some(EXIT_INTERRUPTED),
        "graceful stop must exit with the interrupted-resumable code"
    );

    let resumed = run(&infer_args(corpus, "2", Some(journal), true), None);
    assert_eq!(resumed.code, Some(0));
    assert_eq!(resumed.stdout, reference.stdout);
}

/// A journal whose tail record was torn mid-append (the disk state a
/// power cut leaves) resumes from the last *valid* record.
#[test]
fn corrupted_journal_tail_resumes_from_last_valid_record() {
    use std::io::Write as _;

    let dir = TempDir::new("torn");
    let corpus = dir.path("corpus.ndjson");
    write_corpus(&corpus, 3000);
    let corpus = corpus.to_str().unwrap();
    let journal = dir.path("run.journal");

    let reference = run(&infer_args(corpus, "2", None, false), None);

    let stopped = run(
        &infer_args(corpus, "2", Some(journal.to_str().unwrap()), false),
        Some("stop:3"),
    );
    assert_eq!(stopped.code, Some(EXIT_INTERRUPTED));

    // Tear the tail: an incomplete frame with no trailing newline, as if
    // the process died mid-write.
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&journal)
        .expect("open journal");
    file.write_all(b"00000000 {\"kind\":\"chunk\",\"torn")
        .expect("append torn tail");
    drop(file);

    let resumed = run(
        &infer_args(corpus, "2", Some(journal.to_str().unwrap()), true),
        None,
    );
    assert_eq!(resumed.code, Some(0), "torn tail must not block resume");
    assert_eq!(resumed.stdout, reference.stdout);
}

/// Translate journals *two* phases (infer, then shred) into one journal;
/// a kill in either phase resumes to a byte-identical `.jxc`.
#[test]
fn aborted_translate_resumes_to_identical_jxc() {
    let dir = TempDir::new("translate");
    let corpus = dir.path("corpus.ndjson");
    write_corpus(&corpus, 4000);
    let corpus = corpus.to_str().unwrap();

    let translate = |journal: Option<&str>, resume: bool, out: &str| -> Vec<String> {
        let mut args: Vec<String> = [
            "translate",
            "--streaming",
            "--input",
            corpus,
            "--chunk-bytes",
            "2048",
            "--workers",
            "2",
            "--out",
            out,
        ]
        .map(String::from)
        .to_vec();
        if let Some(journal) = journal {
            args.push("--checkpoint".into());
            args.push(journal.into());
        }
        if resume {
            args.push("--resume".into());
        }
        args
    };

    let ref_jxc = dir.path("ref.jxc");
    let reference = run_owned(&translate(None, false, ref_jxc.to_str().unwrap()), None);
    assert_eq!(reference.code, Some(0));
    let ref_bytes = std::fs::read(&ref_jxc).expect("reference .jxc");

    // Kill early (phase 1: infer) and late (phase 2: shred) — the commit
    // counter spans both phases.
    for kill_at in [2, 40] {
        let journal = dir.path(&format!("k{kill_at}.journal"));
        let journal = journal.to_str().unwrap();
        let out = dir.path(&format!("k{kill_at}.jxc"));
        let out = out.to_str().unwrap();
        let spec = format!("commits:{kill_at}");
        let killed = run_owned(&translate(Some(journal), false, out), Some(&spec));
        assert_ne!(killed.code, Some(0), "kill_at={kill_at}: abort expected");
        let resumed = run_owned(&translate(Some(journal), true, out), None);
        assert_eq!(resumed.code, Some(0), "kill_at={kill_at}: resume failed");
        let got = std::fs::read(out).expect("resumed .jxc");
        assert_eq!(
            got, ref_bytes,
            "kill_at={kill_at}: resumed .jxc differs from uninterrupted reference"
        );
    }
}

/// Validate journals verdicts; an interrupted run resumes to the same
/// verdict stream and summary as an uninterrupted one.
#[test]
fn interrupted_validate_resumes_identical_verdicts() {
    let dir = TempDir::new("validate");
    let corpus = dir.path("corpus.ndjson");
    write_corpus(&corpus, 3000);
    let corpus = corpus.to_str().unwrap();
    // A schema roughly half the corpus fails (ids must be < 1500).
    let schema = dir.path("schema.json");
    std::fs::write(
        &schema,
        r#"{"type":"object","properties":{"id":{"type":"integer","maximum":1499}}}"#,
    )
    .expect("write schema");
    let schema = schema.to_str().unwrap();
    let journal = dir.path("run.journal");
    let journal = journal.to_str().unwrap();

    let validate = |journal: Option<&str>, resume: bool| -> Vec<String> {
        let mut args: Vec<String> = [
            "validate",
            "--schema",
            schema,
            "--input",
            corpus,
            "--chunk-bytes",
            "2048",
            "--workers",
            "2",
        ]
        .map(String::from)
        .to_vec();
        if let Some(journal) = journal {
            args.push("--checkpoint".into());
            args.push(journal.into());
        }
        if resume {
            args.push("--resume".into());
        }
        args
    };

    let reference = run_owned(&validate(None, false), None);
    assert_eq!(reference.code, Some(1), "invalid corpus exits 1");

    let stopped = run_owned(&validate(Some(journal), false), Some("stop:2"));
    assert_eq!(stopped.code, Some(EXIT_INTERRUPTED));
    let resumed = run_owned(&validate(Some(journal), true), None);
    assert_eq!(resumed.code, reference.code);
    assert_eq!(
        resumed.stdout, reference.stdout,
        "resumed verdict stream differs"
    );
}

/// The flag-validation surface: every misuse is a usage error (exit 2),
/// reported before any work starts.
#[test]
fn checkpoint_misuse_is_a_usage_error() {
    let dir = TempDir::new("usage");
    let corpus = dir.path("corpus.ndjson");
    write_corpus(&corpus, 10);
    let corpus = corpus.to_str().unwrap();
    let journal = dir.path("run.journal");
    let journal = journal.to_str().unwrap();

    // --resume without --checkpoint.
    let out = run(&["infer", "--input", corpus, "--resume"], None);
    assert_eq!(out.code, Some(EXIT_USAGE));
    // --checkpoint without --input.
    let out = run(&["infer", "--checkpoint", journal, corpus], None);
    assert_eq!(out.code, Some(EXIT_USAGE));
    // --checkpoint with stdin input.
    let out = run(&["infer", "--input", "-", "--checkpoint", journal], None);
    assert_eq!(out.code, Some(EXIT_USAGE));
    // --checkpoint with the CSV front-end.
    let out = run(
        &[
            "infer",
            "--input",
            corpus,
            "--format",
            "csv",
            "--checkpoint",
            journal,
        ],
        None,
    );
    assert_eq!(out.code, Some(EXIT_USAGE));
    // --checkpoint with the combined infer --validate pass.
    let schema = dir.path("schema.json");
    std::fs::write(&schema, r#"{"type":"object"}"#).expect("write schema");
    let out = run(
        &[
            "infer",
            "--input",
            corpus,
            "--validate",
            schema.to_str().unwrap(),
            "--checkpoint",
            journal,
        ],
        None,
    );
    assert_eq!(out.code, Some(EXIT_USAGE));
}

/// `jsonx cat FILE.jxc | head` must exit 0 when the reader closes the
/// pipe early (the classic EPIPE trap).
#[cfg(unix)]
#[test]
fn cat_into_closed_pipe_exits_zero() {
    use std::io::Read as _;
    use std::process::Stdio;

    let dir = TempDir::new("epipe");
    let corpus = dir.path("corpus.ndjson");
    write_corpus(&corpus, 5000);
    let jxc = dir.path("corpus.jxc");
    let made = run(
        &[
            "translate",
            "--streaming",
            corpus.to_str().unwrap(),
            "--out",
            jxc.to_str().unwrap(),
        ],
        None,
    );
    assert_eq!(made.code, Some(0));

    // Spawn `jsonx cat --head 100000`, read a little, then drop the pipe.
    let mut child = Command::new(BIN)
        .args(["cat", jxc.to_str().unwrap(), "--head", "100000"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn jsonx cat");
    let mut stdout = child.stdout.take().expect("stdout piped");
    let mut buf = [0u8; 512];
    let _ = stdout.read(&mut buf).expect("read some output");
    drop(stdout); // close the read end — further writes hit EPIPE
    let status = child.wait().expect("wait");
    assert_eq!(
        status.code(),
        Some(0),
        "cat must exit 0 when its reader goes away"
    );
}
