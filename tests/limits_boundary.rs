//! Boundary-value tests for [`ParseLimits`]: every limit must accept a
//! record sitting *exactly at* the configured bound and reject one
//! sitting one past it, with the stable error label — and the fused SWAR
//! fast path must agree with the full parser on both sides of every
//! boundary.

use jsonx::schema::{CompiledSchema, ValidatorOptions};
use jsonx::syntax::parse;
use jsonx::{
    validate_streaming_guarded, validate_streaming_guarded_fast, ErrorPolicy, FaultOptions,
    ParseLimits, RunReport, StreamingOptions,
};

/// Runs one NDJSON corpus through BOTH guarded validators (full parser
/// and SWAR fast path) under `limits`, asserting identical verdict
/// vectors and error accounts before returning the shared outcome.
fn both_paths(ndjson: &str, limits: ParseLimits) -> (Vec<(usize, bool)>, RunReport) {
    let schema = CompiledSchema::compile(&parse("{}").unwrap()).unwrap();
    let fault = FaultOptions {
        policy: ErrorPolicy::Skip { max_errors: None },
        keep_rejects: false,
        limits,
    };
    let run = |fast: bool| {
        let f = if fast {
            validate_streaming_guarded_fast
        } else {
            validate_streaming_guarded
        };
        f(
            ndjson,
            &schema,
            ValidatorOptions::default(),
            StreamingOptions::with_workers(1),
            fault,
        )
        .unwrap()
    };
    let (full_verdicts, full_report) = run(false);
    let (fast_verdicts, fast_report) = run(true);
    let full: Vec<(usize, bool)> = full_verdicts
        .iter()
        .map(|(i, v)| (*i, v.is_valid()))
        .collect();
    let fast: Vec<(usize, bool)> = fast_verdicts
        .iter()
        .map(|(i, v)| (*i, v.is_valid()))
        .collect();
    assert_eq!(full, fast, "fast path diverged on verdicts");
    assert_eq!(
        full_report.errors.by_kind, fast_report.errors.by_kind,
        "fast path diverged on error kinds"
    );
    assert_eq!(full_report.errors.total, fast_report.errors.total);
    (full, full_report)
}

/// A document whose nesting depth is exactly `depth` (arrays all the way
/// down around a scalar).
fn nested(depth: usize) -> String {
    format!("{}1{}", "[".repeat(depth), "]".repeat(depth))
}

#[test]
fn depth_exactly_at_limit_is_accepted_one_over_rejected() {
    let limits = ParseLimits::new().with_max_depth(8);
    let ndjson = format!("{}\n{}\n", nested(8), nested(9));
    let (verdicts, report) = both_paths(&ndjson, limits);
    assert_eq!(verdicts, vec![(0, true)], "at-limit record must parse");
    assert_eq!(report.errors.total, 1);
    assert_eq!(report.errors.by_kind["too-deep"], 1);
    assert_eq!(report.errors.rejects[0].record, 1);
}

#[test]
fn depth_boundary_counts_objects_and_arrays_alike() {
    // Mixed nesting: {"a": [{"b": [1]}]} is depth 4.
    let limits = ParseLimits::new().with_max_depth(4);
    let at = r#"{"a": [{"b": [1]}]}"#;
    let over = r#"{"a": [{"b": [[1]]}]}"#;
    let ndjson = format!("{at}\n{over}\n");
    let (verdicts, report) = both_paths(&ndjson, limits);
    assert_eq!(verdicts, vec![(0, true)]);
    assert_eq!(report.errors.by_kind["too-deep"], 1);
}

#[test]
fn input_bytes_exactly_at_limit_is_accepted_one_over_rejected() {
    // Pad a record to land exactly on the byte limit, then add one byte.
    let base = r#"{"pad": ""#;
    let close = r#""}"#;
    let limit = 64usize;
    let at = format!(
        "{base}{}{close}",
        "x".repeat(limit - base.len() - close.len())
    );
    assert_eq!(at.len(), limit);
    let over = format!(
        "{base}{}{close}",
        "x".repeat(limit + 1 - base.len() - close.len())
    );
    assert_eq!(over.len(), limit + 1);
    let limits = ParseLimits::new().with_max_input_bytes(limit);
    let ndjson = format!("{at}\n{over}\n");
    let (verdicts, report) = both_paths(&ndjson, limits);
    assert_eq!(verdicts, vec![(0, true)], "at-limit record must parse");
    assert_eq!(report.errors.total, 1);
    assert_eq!(report.errors.by_kind["limit-exceeded-input-bytes"], 1);
    assert_eq!(report.errors.rejects[0].record, 1);
}

#[test]
fn string_bytes_exactly_at_limit_is_accepted_one_over_rejected() {
    let limit = 16usize;
    let at = format!("{{\"s\": \"{}\"}}", "a".repeat(limit));
    let over = format!("{{\"s\": \"{}\"}}", "a".repeat(limit + 1));
    let limits = ParseLimits::new().with_max_string_bytes(limit);
    let ndjson = format!("{at}\n{over}\n");
    let (verdicts, report) = both_paths(&ndjson, limits);
    assert_eq!(verdicts, vec![(0, true)], "at-limit string must parse");
    assert_eq!(report.errors.total, 1);
    assert_eq!(report.errors.by_kind["limit-exceeded-string-bytes"], 1);
}

#[test]
fn all_limits_at_their_boundaries_in_one_corpus() {
    // One record sits exactly at every bound simultaneously; three
    // siblings each violate exactly one bound by one unit.
    let depth = 2usize; // {"s": ["..."]} is depth 2: object + array
    let strlen = 8usize;
    let at_depth_and_string = format!("{{\"s\": [\"{}\"]}}", "a".repeat(strlen));
    let line_limit = at_depth_and_string.len();
    let over_depth = format!("{{\"s\": [[\"{}\"]]}}", "a".repeat(strlen - 2)); // same length, one deeper
    assert_eq!(over_depth.len(), line_limit);
    let over_string = format!("{{\"s\":[\"{}\"]}}", "a".repeat(strlen + 1)); // same length, longer string
    assert_eq!(over_string.len(), line_limit);
    let over_line = format!("{{\"s\": [\"{}\" ]}}", "a".repeat(strlen)); // one byte longer, same depth/string
    assert_eq!(over_line.len(), line_limit + 1);
    let limits = ParseLimits::new()
        .with_max_depth(depth)
        .with_max_input_bytes(line_limit)
        .with_max_string_bytes(strlen);
    let ndjson = format!("{at_depth_and_string}\n{over_depth}\n{over_string}\n{over_line}\n");
    let (verdicts, report) = both_paths(&ndjson, limits);
    assert_eq!(
        verdicts,
        vec![(0, true)],
        "the all-at-limit record must parse"
    );
    assert_eq!(report.errors.total, 3);
    assert_eq!(report.errors.by_kind["too-deep"], 1);
    assert_eq!(report.errors.by_kind["limit-exceeded-string-bytes"], 1);
    assert_eq!(report.errors.by_kind["limit-exceeded-input-bytes"], 1);
}
