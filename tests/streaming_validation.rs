//! Cross-crate property tests: sharded streaming validation (facade
//! `streaming` module, driven by the compiled fail-fast IR) must be
//! **verdict-identical** to sequential DOM validation
//! (`jsonx_syntax::parse_ndjson` + `CompiledSchema::validate`) at every
//! worker count, with per-line results in input order and malformed lines
//! reported at their exact indices.

use jsonx::schema::{CompiledSchema, ValidatorOptions};
use jsonx::syntax::{parse_ndjson, to_string};
use jsonx::{validate_streaming, validate_streaming_parallel, LineVerdict, StreamingOptions};
use jsonx_data::{json, Number, Object, Value};
use proptest::prelude::*;

/// Arbitrary JSON documents whose shapes overlap the schema strategy's
/// keywords (keys "a"/"b"/"c", small ints, short strings).
fn arb_doc() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-20i64..20).prop_map(|i| Value::Num(Number::Int(i))),
        (-20.0f64..20.0).prop_map(|f| Value::Num(Number::from_f64(f).unwrap())),
        "[a-c]{0,5}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(2, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Arr),
            prop::collection::vec(("[a-c]", inner), 0..4)
                .prop_map(|pairs| Value::Obj(pairs.into_iter().collect::<Object>())),
        ]
    })
}

/// Schemas exercising types, bounds, patterns, combinators and `$ref`.
fn arb_schema() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(json!(true)),
        Just(json!({"type": "object"})),
        Just(json!({"type": ["integer", "string"]})),
        (-10i64..10).prop_map(|n| json!({ "minimum": n })),
        (0i64..4).prop_map(|n| json!({ "minLength": n })),
        Just(json!({"pattern": "^[ab]+$"})),
        Just(json!({"required": ["a"]})),
        Just(json!({"$ref": "#/definitions/d0"})),
    ];
    leaf.prop_recursive(2, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|s| json!({ "items": s })),
            inner.clone().prop_map(|s| json!({"properties": {"a": s}})),
            inner
                .clone()
                .prop_map(|s| json!({ "additionalProperties": s })),
            prop::collection::vec(inner.clone(), 1..3).prop_map(|ss| json!({ "anyOf": ss })),
            prop::collection::vec(inner.clone(), 1..3).prop_map(|ss| json!({ "oneOf": ss })),
            inner.clone().prop_map(|s| json!({ "not": s })),
        ]
    })
    .prop_map(|root| match root {
        Value::Obj(mut obj) => {
            obj.insert(
                "definitions",
                json!({"d0": {"type": "integer", "minimum": 0}}),
            );
            Value::Obj(obj)
        }
        other => other,
    })
}

fn to_ndjson(docs: &[Value]) -> String {
    let mut out = String::new();
    for d in docs {
        out.push_str(&to_string(d));
        out.push('\n');
    }
    out
}

/// The reference result: parse every line into a DOM and run the
/// error-collecting interpreter sequentially.
fn dom_verdicts(ndjson: &str, schema: &CompiledSchema, opts: ValidatorOptions) -> Vec<bool> {
    parse_ndjson(ndjson)
        .unwrap()
        .iter()
        .map(|doc| schema.validate_with(doc, opts).is_ok())
        .collect()
}

proptest! {
    #[test]
    fn streaming_validation_equals_dom_at_every_worker_count(
        schema_doc in arb_schema(),
        docs in prop::collection::vec(arb_doc(), 0..24),
    ) {
        let schema = CompiledSchema::compile(&schema_doc).unwrap();
        let ndjson = to_ndjson(&docs);
        let opts = ValidatorOptions::default();
        let reference = dom_verdicts(&ndjson, &schema, opts);

        let seq = validate_streaming(&ndjson, &schema, opts);
        prop_assert_eq!(seq.len(), reference.len());
        for ((line, verdict), expected) in seq.iter().zip(&reference) {
            prop_assert_eq!(
                verdict.is_valid(),
                *expected,
                "line {} schema {} doc {}",
                line,
                schema_doc,
                docs[*line]
            );
        }

        for workers in 1..=6usize {
            let par = validate_streaming_parallel(
                &ndjson,
                &schema,
                opts,
                StreamingOptions { workers, min_shard_bytes: 16 },
            );
            prop_assert_eq!(&par, &seq, "workers={}", workers);
        }
    }

    #[test]
    fn line_indices_match_input_order(docs in prop::collection::vec(arb_doc(), 1..16)) {
        let schema = CompiledSchema::compile(&json!({"type": "object"})).unwrap();
        let ndjson = to_ndjson(&docs);
        let verdicts = validate_streaming_parallel(
            &ndjson,
            &schema,
            ValidatorOptions::default(),
            StreamingOptions { workers: 4, min_shard_bytes: 8 },
        );
        let lines: Vec<usize> = verdicts.iter().map(|(l, _)| *l).collect();
        prop_assert_eq!(lines, (0..docs.len()).collect::<Vec<_>>());
    }
}

#[test]
fn malformed_lines_are_flagged_in_place() {
    let schema = CompiledSchema::compile(&json!({"type": "object"})).unwrap();
    let ndjson = "{\"a\": 1}\n{oops\n\n[1, 2]\n{\"b\": 2}\n";
    for workers in [1, 2, 4] {
        let verdicts = validate_streaming_parallel(
            ndjson,
            &schema,
            ValidatorOptions::default(),
            StreamingOptions {
                workers,
                min_shard_bytes: 4,
            },
        );
        // Blank line 2 is skipped; indices are original line numbers.
        assert_eq!(verdicts.len(), 4, "workers={workers}");
        assert_eq!(verdicts[0].0, 0);
        assert!(verdicts[0].1.is_valid());
        assert_eq!(verdicts[1].0, 1);
        assert!(matches!(verdicts[1].1, LineVerdict::Malformed(_)));
        assert_eq!(verdicts[2].0, 3);
        assert_eq!(verdicts[2].1, LineVerdict::Invalid);
        assert_eq!(verdicts[3].0, 4);
        assert!(verdicts[3].1.is_valid());
    }
}

#[test]
fn formats_option_threads_through_streaming() {
    let schema = CompiledSchema::compile(&json!({"format": "date"})).unwrap();
    let ndjson = "\"2019-03-26\"\n\"not a date\"\n";
    let strict = ValidatorOptions {
        enforce_formats: true,
    };
    let lax = ValidatorOptions::default();
    let with = validate_streaming(ndjson, &schema, strict);
    assert!(with[0].1.is_valid());
    assert_eq!(with[1].1, LineVerdict::Invalid);
    let without = validate_streaming(ndjson, &schema, lax);
    assert!(without[0].1.is_valid() && without[1].1.is_valid());
}

#[test]
fn ref_heavy_schema_agrees_across_workers() {
    // A recursive schema (tree of nodes) stressing pre-resolved ref slots
    // and cycle guards on the parallel path.
    let schema_doc = json!({
        "$ref": "#/definitions/node",
        "definitions": {
            "node": {
                "type": "object",
                "properties": {
                    "v": {"type": "integer"},
                    "kids": {"items": {"$ref": "#/definitions/node"}}
                },
                "required": ["v"]
            }
        }
    });
    let schema = CompiledSchema::compile(&schema_doc).unwrap();
    let mut ndjson = String::new();
    for i in 0..200i64 {
        let doc = if i % 3 == 0 {
            json!({"v": i, "kids": [{"v": 1}, {"v": 2, "kids": []}]})
        } else if i % 3 == 1 {
            json!({"v": i})
        } else {
            json!({"kids": [{"v": "bad"}]})
        };
        ndjson.push_str(&to_string(&doc));
        ndjson.push('\n');
    }
    let opts = ValidatorOptions::default();
    let seq = validate_streaming(&ndjson, &schema, opts);
    let reference = dom_verdicts(&ndjson, &schema, opts);
    assert_eq!(seq.len(), reference.len());
    for ((_, v), expected) in seq.iter().zip(&reference) {
        assert_eq!(v.is_valid(), *expected);
    }
    for workers in [2, 3, 8] {
        let par = validate_streaming_parallel(
            &ndjson,
            &schema,
            opts,
            StreamingOptions {
                workers,
                min_shard_bytes: 64,
            },
        );
        assert_eq!(par, seq, "workers={workers}");
    }
}
