//! End-to-end tests of the `jsonx` CLI binary.

use std::io::Write;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_jsonx");

fn run(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(BIN)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn jsonx");
    // A command that errors out before reading stdin closes the pipe;
    // that's fine — ignore the resulting BrokenPipe.
    let _ = child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes());
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

const SAMPLE: &str = r#"{"id":1,"name":"a","tags":["x"]}
{"id":2,"geo":{"lat":3.5}}
{"id":"s3","name":"b"}
"#;

#[test]
fn infer_plain_and_counts() {
    let (out, err, ok) = run(&["infer", "-"], SAMPLE);
    assert!(ok, "stderr: {err}");
    assert_eq!(
        out.trim(),
        "{geo?: {lat: Num}, id: (Int + Str), name?: Str, tags?: [Str]}"
    );
    assert!(err.contains("3 documents"));

    let (out, _, ok) = run(&["infer", "--equiv", "L", "--counts", "-"], SAMPLE);
    assert!(ok);
    assert!(
        out.contains("(1/1)"),
        "counting annotations expected: {out}"
    );
}

#[test]
fn infer_streaming_matches_dom() {
    let (dom_out, _, ok) = run(&["infer", "-"], SAMPLE);
    assert!(ok);
    let (stream_out, err, ok) = run(&["infer", "--streaming", "-"], SAMPLE);
    assert!(ok, "stderr: {err}");
    assert_eq!(stream_out, dom_out);
    assert!(err.contains("3 documents (streaming)"), "{err}");

    // --workers implies --streaming and still agrees with the DOM path.
    let (par_out, err, ok) = run(&["infer", "--workers", "4", "-"], SAMPLE);
    assert!(ok, "stderr: {err}");
    assert_eq!(par_out, dom_out);

    // Streaming errors carry the 1-based line number like the DOM path.
    let (_, err, ok) = run(&["infer", "--streaming", "-"], "{\"a\":1}\n{broken\n");
    assert!(!ok);
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn infer_schema_then_validate_roundtrip() {
    let (schema, _, ok) = run(&["infer", "--schema", "-"], SAMPLE);
    assert!(ok);
    let dir = std::env::temp_dir().join("jsonx-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let schema_path = dir.join("schema.json");
    std::fs::write(&schema_path, &schema).unwrap();

    let (_, err, ok) = run(
        &["validate", "--schema", schema_path.to_str().unwrap(), "-"],
        SAMPLE,
    );
    assert!(ok, "validation should pass: {err}");
    assert!(err.contains("3/3 documents valid"));

    // A violating document fails with a nonzero exit.
    let (out, _, ok) = run(
        &["validate", "--schema", schema_path.to_str().unwrap(), "-"],
        "{\"id\": true}\n",
    );
    assert!(!ok);
    assert!(out.contains("doc 0"));
}

#[test]
fn profile_and_skeleton() {
    let (out, _, ok) = run(&["profile", "-"], SAMPLE);
    assert!(ok);
    assert!(out.contains("id p=1.00"));
    assert!(out.contains("geo.lat p=0.33"));

    let (out, err, ok) = run(&["skeleton", "--coverage", "1.0", "-"], SAMPLE);
    assert!(ok);
    assert!(out.contains("{id:·,name:·}"), "skeleton output: {out}");
    assert!(err.contains("3 structures"));
}

#[test]
fn project_fields() {
    let (out, _, ok) = run(&["project", "--fields", "id,geo.lat", "-"], SAMPLE);
    assert!(ok);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines[0], r#"{"id":1}"#);
    assert_eq!(lines[1], r#"{"id":2,"geo":{"lat":3.5}}"#);
    assert_eq!(lines[2], r#"{"id":"s3"}"#);
}

#[test]
fn convert_targets() {
    let (out, _, ok) = run(&["convert", "--to", "columnar", "-"], SAMPLE);
    assert!(ok);
    assert!(out.contains("id:json") || out.contains("id:int64"), "{out}");
    let (out, _, ok) = run(&["convert", "--to", "relational", "-"], SAMPLE);
    assert!(ok);
    assert!(out.contains("root("));
    let (_, err, ok) = run(&["convert", "--to", "avro", "-"], SAMPLE);
    assert!(ok);
    assert!(err.contains("3 documents encoded"));
}

#[test]
fn translate_streaming_matches_convert() {
    let (dom_out, _, ok) = run(&["convert", "--to", "columnar", "-"], SAMPLE);
    assert!(ok);
    // `translate` defaults to columnar and agrees with `convert` on the
    // DOM path...
    let (out, _, ok) = run(&["translate", "-"], SAMPLE);
    assert!(ok);
    assert_eq!(out, dom_out);
    // ...and on the streaming path, at any worker count.
    let (out, err, ok) = run(&["translate", "--streaming", "-"], SAMPLE);
    assert!(ok, "stderr: {err}");
    assert_eq!(out, dom_out);
    assert!(err.contains("3 rows (streaming)"), "{err}");
    let (out, _, ok) = run(&["translate", "--workers", "4", "-"], SAMPLE);
    assert!(ok);
    assert_eq!(out, dom_out);

    // Streaming is columnar-only; errors carry 1-based line numbers.
    let (_, err, ok) = run(&["translate", "--streaming", "--to", "avro", "-"], SAMPLE);
    assert!(!ok);
    assert!(err.contains("columnar"), "{err}");
    let (_, err, ok) = run(&["translate", "--streaming", "-"], "{\"a\":1}\n[2]\n");
    assert!(!ok);
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn infer_validate_combined_pass() {
    let (schema, _, ok) = run(&["infer", "--schema", "-"], SAMPLE);
    assert!(ok);
    let dir = std::env::temp_dir().join("jsonx-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let schema_path = dir.join("combined-schema.json");
    std::fs::write(&schema_path, &schema).unwrap();

    let (dom_out, _, ok) = run(&["infer", "-"], SAMPLE);
    assert!(ok);
    let (out, err, ok) = run(
        &["infer", "--validate", schema_path.to_str().unwrap(), "-"],
        SAMPLE,
    );
    assert!(ok, "stderr: {err}");
    assert_eq!(out, dom_out);
    assert!(err.contains("3/3 documents valid (combined pass)"), "{err}");

    // Invalid documents get interpreter diagnostics but the type still
    // prints and the run still succeeds — inference is the primary output.
    let mut mixed = SAMPLE.to_string();
    mixed.push_str("{\"id\": true}\n");
    let (out, err, ok) = run(
        &[
            "infer",
            "--validate",
            schema_path.to_str().unwrap(),
            "--workers",
            "2",
            "-",
        ],
        &mixed,
    );
    assert!(ok, "stderr: {err}");
    assert!(out.contains("doc 3"), "{out}");
    assert!(err.contains("3/4 documents valid (combined pass)"), "{err}");
}

#[test]
fn errors_are_reported() {
    let (_, err, ok) = run(&["nonsense"], "");
    assert!(!ok);
    assert!(err.contains("unknown command"));
    let (_, err, ok) = run(&["infer", "-"], "{broken\n");
    assert!(!ok);
    assert!(err.contains("line 1"));
    let (_, err, ok) = run(&["convert", "-"], "{}\n");
    assert!(!ok);
    assert!(err.contains("--to"));
}

#[test]
fn query_pipeline_with_static_typing() {
    let (out, err, ok) = run(
        &["query", "--project", "id,geo.lat", "--top", "2", "-"],
        SAMPLE,
    );
    assert!(ok, "stderr: {err}");
    assert!(err.contains("inferred output type"), "{err}");
    assert!(err.contains("lat: (Null + Num)"), "{err}");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2);
    assert_eq!(lines[0], r#"{"id":1,"lat":null}"#);
    assert_eq!(lines[1], r#"{"id":2,"lat":3.5}"#);

    // expand + where-exists
    let (out, _, ok) = run(
        &["query", "--where-exists", "tags", "--expand", "tags", "-"],
        SAMPLE,
    );
    assert!(ok);
    assert_eq!(out.trim(), r#""x""#);

    // bad --top
    let (_, err, ok) = run(&["query", "--top", "many", "-"], SAMPLE);
    assert!(!ok);
    assert!(err.contains("bad --top"));
}

/// The dirty fixture shipped in `examples/`, and its fail-fast reference:
/// the same lines with the three corrupt ones blanked.
const DIRTY_FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/dirty.ndjson");

fn dirty_fixture_cleaned() -> String {
    let text = std::fs::read_to_string(DIRTY_FIXTURE).expect("read examples/dirty.ndjson");
    text.lines()
        .map(|l| {
            if jsonx::syntax::parse(l).is_ok() {
                l
            } else {
                ""
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

#[test]
fn infer_skip_policy_quarantines_and_matches_prefiltered_type() {
    let quarantine = std::env::temp_dir().join("jsonx_cli_test_quarantine.ndjson");
    let q = quarantine.to_str().unwrap();
    // Fail-fast on the dirty fixture names its first bad line.
    let (_, err, ok) = run(&["infer", "--streaming", DIRTY_FIXTURE], "");
    assert!(!ok);
    assert!(err.contains("line 3"), "{err}");
    // Skip + quarantine succeeds and reports the rejects.
    let (out, err, ok) = run(
        &[
            "infer",
            "--streaming",
            "--on-error",
            "skip",
            "--quarantine",
            q,
            DIRTY_FIXTURE,
        ],
        "",
    );
    assert!(ok, "stderr: {err}");
    assert!(err.contains("5 documents (streaming)"), "{err}");
    assert!(err.contains("3 rejected"), "{err}");
    // The inferred type equals fail-fast inference over the fixture with
    // the bad lines removed.
    let (ref_out, ref_err, ok) = run(&["infer", "--streaming", "-"], &dirty_fixture_cleaned());
    assert!(ok, "stderr: {ref_err}");
    assert_eq!(out, ref_out);
    // One diagnostic per rejected line, each with the raw line retained.
    let qtext = std::fs::read_to_string(&quarantine).expect("quarantine written");
    let _ = std::fs::remove_file(&quarantine);
    let diags = jsonx::syntax::parse_ndjson(&qtext).expect("quarantine is valid NDJSON");
    assert_eq!(diags.len(), 3);
    let lines: Vec<i64> = diags
        .iter()
        .map(|d| d.get("line").unwrap().as_i64().unwrap())
        .collect();
    assert_eq!(lines, vec![3, 6, 8]);
    assert!(diags
        .iter()
        .all(|d| d.get("raw").unwrap().as_str().is_some()));
    assert!(diags
        .iter()
        .all(|d| d.get("kind").unwrap().as_str().is_some()));
}

#[test]
fn validate_and_translate_honour_error_policies() {
    let text = std::fs::read_to_string(DIRTY_FIXTURE).unwrap();
    // Tolerant validation: every surviving record is an object, so the
    // run passes and reports the rejects.
    let (_, err, ok) = run(
        &[
            "validate",
            "--schema",
            "/dev/stdin",
            "--streaming",
            "--on-error",
            "skip",
            DIRTY_FIXTURE,
        ],
        "{\"type\": \"object\"}",
    );
    // /dev/stdin may be unavailable; fall back to a temp schema file.
    let (err, ok) = if ok {
        (err, ok)
    } else {
        let schema = std::env::temp_dir().join("jsonx_cli_test_schema.json");
        std::fs::write(&schema, "{\"type\": \"object\"}").unwrap();
        let (_, err, ok) = run(
            &[
                "validate",
                "--schema",
                schema.to_str().unwrap(),
                "--on-error",
                "skip",
                DIRTY_FIXTURE,
            ],
            "",
        );
        let _ = std::fs::remove_file(&schema);
        (err, ok)
    };
    assert!(ok, "stderr: {err}");
    assert!(err.contains("3 rejected"), "{err}");
    // Tolerant translation drops the same records from the batch.
    let (out, err, ok) = run(&["translate", "--on-error", "skip", DIRTY_FIXTURE], "");
    assert!(ok, "stderr: {err}");
    assert!(err.contains("3 rejected"), "{err}");
    assert!(out.contains("id"), "{out}");
    // A strict error bound turns the same run into a failure.
    let (_, err, ok) = run(
        &[
            "infer",
            "--on-error",
            "skip",
            "--max-errors",
            "2",
            DIRTY_FIXTURE,
        ],
        "",
    );
    assert!(!ok);
    assert!(err.contains("too many"), "{err}");
    let _ = text;
}

#[test]
fn resource_guard_flags_reject_pathological_lines() {
    let deep = format!("{}1{}", "[".repeat(40), "]".repeat(40));
    let input = format!("{{\"a\": 1}}\n{deep}\n{{\"a\": 2}}\n");
    // Fail-fast: the depth guard kills the run.
    let (_, err, ok) = run(&["infer", "--max-depth", "8", "-"], &input);
    assert!(!ok);
    assert!(err.contains("line 2"), "{err}");
    // Skip: the run survives and rejects exactly the bomb.
    let (_, err, ok) = run(
        &["infer", "--max-depth", "8", "--on-error", "skip", "-"],
        &input,
    );
    assert!(ok, "stderr: {err}");
    assert!(err.contains("2 documents (streaming)"), "{err}");
    assert!(err.contains("1 rejected"), "{err}");
    // Byte guard.
    let (_, err, ok) = run(
        &["infer", "--max-line-bytes", "10", "--on-error", "skip", "-"],
        "{\"a\": 1}\n{\"a\": \"0123456789abcdef\"}\n",
    );
    assert!(ok, "stderr: {err}");
    assert!(err.contains("1 rejected"), "{err}");
}

const CSV_SAMPLE: &str = "id,name,score\n1,ada,9.5\n2,\"bob, jr\",-0.5\n3,ada,7\n";

#[test]
fn csv_format_flag_routes_through_the_typed_pipeline() {
    let (out, err, ok) = run(&["infer", "--format", "csv", "-"], CSV_SAMPLE);
    assert!(ok, "stderr: {err}");
    assert_eq!(out.trim(), "{id: Int, name: Str, score: (Int + Num)}");
    assert!(err.contains("3 documents (streaming csv)"), "{err}");

    // Worker counts don't change the inferred type.
    let (par_out, err, ok) = run(
        &["infer", "--format", "csv", "--workers", "3", "-"],
        CSV_SAMPLE,
    );
    assert!(ok, "stderr: {err}");
    assert_eq!(par_out, out);

    // Validation sees the synthesised records.
    let dir = std::env::temp_dir().join("jsonx-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let schema_path = dir.join("csv-schema.json");
    std::fs::write(
        &schema_path,
        r#"{"type": "object", "required": ["id", "name"]}"#,
    )
    .unwrap();
    let (_, err, ok) = run(
        &[
            "validate",
            "--schema",
            schema_path.to_str().unwrap(),
            "--format",
            "csv",
            "-",
        ],
        CSV_SAMPLE,
    );
    assert!(ok, "stderr: {err}");
    assert!(err.contains("3/3 documents valid (streaming csv)"), "{err}");

    // Translation shreds the same rows into typed columns.
    let (out, err, ok) = run(&["translate", "--format", "csv", "-"], CSV_SAMPLE);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("id:int64"), "{out}");
    assert!(out.contains("score:float64"), "{out}");
    assert!(err.contains("3 rows (streaming csv)"), "{err}");

    // Unknown formats are rejected up front.
    let (_, err, ok) = run(&["infer", "--format", "tsv", "-"], CSV_SAMPLE);
    assert!(!ok);
    assert!(err.contains("--format"), "{err}");
}

#[test]
fn translate_out_persists_jxc_and_cat_inspects_it() {
    let dir = std::env::temp_dir().join("jsonx-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let jxc = dir.join("sample.jxc");
    let jxc_path = jxc.to_str().unwrap();

    let (out, err, ok) = run(
        &["translate", "--streaming", "--out", jxc_path, "-"],
        SAMPLE,
    );
    assert!(ok, "stderr: {err}");
    assert!(out.contains("id:"), "{out}");
    assert!(err.contains(&format!("bytes -> {jxc_path}")), "{err}");

    // cat: schema line, rows, per-column encoding summary.
    let (out, err, ok) = run(&["cat", jxc_path], "");
    assert!(ok, "stderr: {err}");
    assert!(out.contains("tags:json"), "{out}");
    assert!(out.contains("\"id\":1"), "{out}");
    assert!(
        err.contains("3 columns x 3 rows") || err.contains("4 columns x 3 rows"),
        "{err}"
    );
    // The tags column stores ["x"] as a nested string list.
    assert!(err.contains("list-str"), "{err}");

    // --flatten cross-joins the list column; --head bounds the output.
    let (flat, err, ok) = run(&["cat", jxc_path, "--flatten", "--head", "2"], "");
    assert!(ok, "stderr: {err}");
    assert!(flat.contains("\"tags\":\"x\""), "{flat}");
    assert_eq!(flat.lines().count(), 3, "schema line + 2 rows: {flat}");

    // --out is columnar-only; cat rejects non-.jxc bytes.
    let (_, err, ok) = run(
        &["translate", "--to", "avro", "--out", jxc_path, "-"],
        SAMPLE,
    );
    assert!(!ok);
    assert!(err.contains("--out"), "{err}");
    let junk = dir.join("junk.jxc");
    std::fs::write(&junk, b"not a jxc file at all").unwrap();
    let (_, err, ok) = run(&["cat", junk.to_str().unwrap()], "");
    assert!(!ok);
    assert!(err.contains(".jxc"), "{err}");
    let _ = std::fs::remove_file(&junk);
    let _ = std::fs::remove_file(&jxc);
}
