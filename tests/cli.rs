//! End-to-end tests of the `jsonx` CLI binary.

use std::io::Write;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_jsonx");

fn run(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(BIN)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn jsonx");
    // A command that errors out before reading stdin closes the pipe;
    // that's fine — ignore the resulting BrokenPipe.
    let _ = child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes());
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

const SAMPLE: &str = r#"{"id":1,"name":"a","tags":["x"]}
{"id":2,"geo":{"lat":3.5}}
{"id":"s3","name":"b"}
"#;

#[test]
fn infer_plain_and_counts() {
    let (out, err, ok) = run(&["infer", "-"], SAMPLE);
    assert!(ok, "stderr: {err}");
    assert_eq!(
        out.trim(),
        "{geo?: {lat: Num}, id: (Int + Str), name?: Str, tags?: [Str]}"
    );
    assert!(err.contains("3 documents"));

    let (out, _, ok) = run(&["infer", "--equiv", "L", "--counts", "-"], SAMPLE);
    assert!(ok);
    assert!(
        out.contains("(1/1)"),
        "counting annotations expected: {out}"
    );
}

#[test]
fn infer_streaming_matches_dom() {
    let (dom_out, _, ok) = run(&["infer", "-"], SAMPLE);
    assert!(ok);
    let (stream_out, err, ok) = run(&["infer", "--streaming", "-"], SAMPLE);
    assert!(ok, "stderr: {err}");
    assert_eq!(stream_out, dom_out);
    assert!(err.contains("3 documents (streaming)"), "{err}");

    // --workers implies --streaming and still agrees with the DOM path.
    let (par_out, err, ok) = run(&["infer", "--workers", "4", "-"], SAMPLE);
    assert!(ok, "stderr: {err}");
    assert_eq!(par_out, dom_out);

    // Streaming errors carry the 1-based line number like the DOM path.
    let (_, err, ok) = run(&["infer", "--streaming", "-"], "{\"a\":1}\n{broken\n");
    assert!(!ok);
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn infer_schema_then_validate_roundtrip() {
    let (schema, _, ok) = run(&["infer", "--schema", "-"], SAMPLE);
    assert!(ok);
    let dir = std::env::temp_dir().join("jsonx-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let schema_path = dir.join("schema.json");
    std::fs::write(&schema_path, &schema).unwrap();

    let (_, err, ok) = run(
        &["validate", "--schema", schema_path.to_str().unwrap(), "-"],
        SAMPLE,
    );
    assert!(ok, "validation should pass: {err}");
    assert!(err.contains("3/3 documents valid"));

    // A violating document fails with a nonzero exit.
    let (out, _, ok) = run(
        &["validate", "--schema", schema_path.to_str().unwrap(), "-"],
        "{\"id\": true}\n",
    );
    assert!(!ok);
    assert!(out.contains("doc 0"));
}

#[test]
fn profile_and_skeleton() {
    let (out, _, ok) = run(&["profile", "-"], SAMPLE);
    assert!(ok);
    assert!(out.contains("id p=1.00"));
    assert!(out.contains("geo.lat p=0.33"));

    let (out, err, ok) = run(&["skeleton", "--coverage", "1.0", "-"], SAMPLE);
    assert!(ok);
    assert!(out.contains("{id:·,name:·}"), "skeleton output: {out}");
    assert!(err.contains("3 structures"));
}

#[test]
fn project_fields() {
    let (out, _, ok) = run(&["project", "--fields", "id,geo.lat", "-"], SAMPLE);
    assert!(ok);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines[0], r#"{"id":1}"#);
    assert_eq!(lines[1], r#"{"id":2,"geo":{"lat":3.5}}"#);
    assert_eq!(lines[2], r#"{"id":"s3"}"#);
}

#[test]
fn convert_targets() {
    let (out, _, ok) = run(&["convert", "--to", "columnar", "-"], SAMPLE);
    assert!(ok);
    assert!(out.contains("id:json") || out.contains("id:int64"), "{out}");
    let (out, _, ok) = run(&["convert", "--to", "relational", "-"], SAMPLE);
    assert!(ok);
    assert!(out.contains("root("));
    let (_, err, ok) = run(&["convert", "--to", "avro", "-"], SAMPLE);
    assert!(ok);
    assert!(err.contains("3 documents encoded"));
}

#[test]
fn translate_streaming_matches_convert() {
    let (dom_out, _, ok) = run(&["convert", "--to", "columnar", "-"], SAMPLE);
    assert!(ok);
    // `translate` defaults to columnar and agrees with `convert` on the
    // DOM path...
    let (out, _, ok) = run(&["translate", "-"], SAMPLE);
    assert!(ok);
    assert_eq!(out, dom_out);
    // ...and on the streaming path, at any worker count.
    let (out, err, ok) = run(&["translate", "--streaming", "-"], SAMPLE);
    assert!(ok, "stderr: {err}");
    assert_eq!(out, dom_out);
    assert!(err.contains("3 rows (streaming)"), "{err}");
    let (out, _, ok) = run(&["translate", "--workers", "4", "-"], SAMPLE);
    assert!(ok);
    assert_eq!(out, dom_out);

    // Streaming is columnar-only; errors carry 1-based line numbers.
    let (_, err, ok) = run(&["translate", "--streaming", "--to", "avro", "-"], SAMPLE);
    assert!(!ok);
    assert!(err.contains("columnar"), "{err}");
    let (_, err, ok) = run(&["translate", "--streaming", "-"], "{\"a\":1}\n[2]\n");
    assert!(!ok);
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn infer_validate_combined_pass() {
    let (schema, _, ok) = run(&["infer", "--schema", "-"], SAMPLE);
    assert!(ok);
    let dir = std::env::temp_dir().join("jsonx-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let schema_path = dir.join("combined-schema.json");
    std::fs::write(&schema_path, &schema).unwrap();

    let (dom_out, _, ok) = run(&["infer", "-"], SAMPLE);
    assert!(ok);
    let (out, err, ok) = run(
        &["infer", "--validate", schema_path.to_str().unwrap(), "-"],
        SAMPLE,
    );
    assert!(ok, "stderr: {err}");
    assert_eq!(out, dom_out);
    assert!(err.contains("3/3 documents valid (combined pass)"), "{err}");

    // Invalid documents get interpreter diagnostics but the type still
    // prints and the run still succeeds — inference is the primary output.
    let mut mixed = SAMPLE.to_string();
    mixed.push_str("{\"id\": true}\n");
    let (out, err, ok) = run(
        &[
            "infer",
            "--validate",
            schema_path.to_str().unwrap(),
            "--workers",
            "2",
            "-",
        ],
        &mixed,
    );
    assert!(ok, "stderr: {err}");
    assert!(out.contains("doc 3"), "{out}");
    assert!(err.contains("3/4 documents valid (combined pass)"), "{err}");
}

#[test]
fn errors_are_reported() {
    let (_, err, ok) = run(&["nonsense"], "");
    assert!(!ok);
    assert!(err.contains("unknown command"));
    let (_, err, ok) = run(&["infer", "-"], "{broken\n");
    assert!(!ok);
    assert!(err.contains("line 1"));
    let (_, err, ok) = run(&["convert", "-"], "{}\n");
    assert!(!ok);
    assert!(err.contains("--to"));
}

#[test]
fn query_pipeline_with_static_typing() {
    let (out, err, ok) = run(
        &["query", "--project", "id,geo.lat", "--top", "2", "-"],
        SAMPLE,
    );
    assert!(ok, "stderr: {err}");
    assert!(err.contains("inferred output type"), "{err}");
    assert!(err.contains("lat: (Null + Num)"), "{err}");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2);
    assert_eq!(lines[0], r#"{"id":1,"lat":null}"#);
    assert_eq!(lines[1], r#"{"id":2,"lat":3.5}"#);

    // expand + where-exists
    let (out, _, ok) = run(
        &["query", "--where-exists", "tags", "--expand", "tags", "-"],
        SAMPLE,
    );
    assert!(ok);
    assert_eq!(out.trim(), r#""x""#);

    // bad --top
    let (_, err, ok) = run(&["query", "--top", "many", "-"], SAMPLE);
    assert!(!ok);
    assert!(err.contains("bad --top"));
}
