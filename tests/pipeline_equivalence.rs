//! Cross-crate property tests for the two new pipeline stages: the
//! combined single-pass infer+validate must equal running the inference
//! and validation stages back to back, and streaming schema-driven
//! translation must build the exact batch the DOM shredder builds — for
//! any worker count and arbitrary document mixes, including blank lines
//! and missing trailing newlines at shard boundaries.

use jsonx::core::{infer_collection, Equivalence};
use jsonx::schema::{CompiledSchema, ValidatorOptions};
use jsonx::syntax::{parse_ndjson, to_string};
use jsonx::translate::Shredder;
use jsonx::{
    infer_streaming, infer_validate_streaming, infer_validate_streaming_parallel,
    translate_streaming, translate_streaming_parallel, validate_streaming, StreamingOptions,
};
use jsonx_data::{json, Number, Object, Value};
use proptest::prelude::*;

/// Strategy producing arbitrary JSON documents of bounded size.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(|i| Value::Num(Number::Int(i))),
        (-1e9f64..1e9f64).prop_map(|f| Value::Num(Number::from_f64(f).unwrap())),
        "\\PC{0,12}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 32, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::Arr),
            prop::collection::vec(("[a-z]{0,6}", inner), 0..5)
                .prop_map(|pairs| Value::Obj(pairs.into_iter().collect::<Object>())),
        ]
    })
}

/// Strategy producing flat-ish records only — what the columnar shredder
/// accepts as rows.
fn arb_record() -> impl Strategy<Value = Value> {
    let field = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(|i| Value::Num(Number::Int(i))),
        "\\PC{0,8}".prop_map(Value::Str),
        prop::collection::vec(any::<i64>().prop_map(|i| Value::Num(Number::Int(i))), 0..4)
            .prop_map(Value::Arr),
        prop::collection::vec(("[a-z]{1,4}", any::<bool>().prop_map(Value::Bool)), 0..3)
            .prop_map(|pairs| Value::Obj(pairs.into_iter().collect::<Object>())),
    ];
    prop::collection::vec(("[a-z]{1,5}", field), 0..6)
        .prop_map(|pairs| Value::Obj(pairs.into_iter().collect::<Object>()))
}

/// Serializes docs one per line, optionally inserting blank lines (which
/// every stage must skip) and optionally dropping the final newline.
fn to_ndjson(docs: &[Value], blank_every: usize, trailing_newline: bool) -> String {
    let mut out = String::new();
    for (i, d) in docs.iter().enumerate() {
        if blank_every > 0 && i % blank_every == 0 {
            out.push('\n');
        }
        out.push_str(&to_string(d));
        out.push('\n');
    }
    if !trailing_newline && out.ends_with('\n') {
        out.pop();
    }
    out
}

fn test_schema() -> CompiledSchema {
    CompiledSchema::compile(&json!({
        "type": "object",
        "properties": {
            "a": {"type": "integer"},
            "b": {"type": "string", "minLength": 1}
        },
        "required": ["a"]
    }))
    .unwrap()
}

proptest! {
    #[test]
    fn combined_pass_equals_infer_then_validate(
        docs in prop::collection::vec(arb_value(), 0..24),
        workers in prop::sample::select(vec![1usize, 2, 3, 8]),
        blank_every in 0usize..4,
        trailing_newline in any::<bool>(),
    ) {
        let ndjson = to_ndjson(&docs, blank_every, trailing_newline);
        let schema = test_schema();
        let vopts = ValidatorOptions::default();
        let ty = infer_streaming(&ndjson, Equivalence::Kind).unwrap();
        let verdicts = validate_streaming(&ndjson, &schema, vopts);
        let combined = infer_validate_streaming_parallel(
            &ndjson,
            Equivalence::Kind,
            &schema,
            vopts,
            StreamingOptions { workers, min_shard_bytes: 16 },
        );
        prop_assert_eq!(combined.ty.as_ref().unwrap(), &ty, "workers {}", workers);
        prop_assert_eq!(&combined.verdicts, &verdicts, "workers {}", workers);
    }

    #[test]
    fn streaming_translation_equals_dom_shred(
        docs in prop::collection::vec(arb_record(), 0..24),
        workers in prop::sample::select(vec![1usize, 2, 3, 8]),
        blank_every in 0usize..4,
        trailing_newline in any::<bool>(),
    ) {
        let ndjson = to_ndjson(&docs, blank_every, trailing_newline);
        // Serialization round-trips, so the DOM shred over the reparse is
        // the reference batch.
        prop_assert_eq!(&parse_ndjson(&ndjson).unwrap(), &docs);
        let ty = infer_collection(&docs, Equivalence::Kind);
        let shredder = Shredder::from_type(&ty);
        let dom = shredder.clone().shred(&docs).unwrap();
        let seq = translate_streaming(&ndjson, &shredder).unwrap();
        prop_assert_eq!(&seq, &dom);
        let par = translate_streaming_parallel(
            &ndjson,
            &shredder,
            StreamingOptions { workers, min_shard_bytes: 16 },
        )
        .unwrap();
        prop_assert_eq!(&par, &dom, "workers {}", workers);
    }
}

#[test]
fn tiny_inputs_fall_back_to_sequential_in_both_stages() {
    // Smaller than any min_shard_bytes threshold: the engine must take the
    // sequential path and still agree with the explicit sequential calls.
    let ndjson = "{\"a\": 1}\n";
    let schema = test_schema();
    let vopts = ValidatorOptions::default();
    let opts = StreamingOptions::default();
    let combined =
        infer_validate_streaming_parallel(ndjson, Equivalence::Kind, &schema, vopts, opts);
    let seq = infer_validate_streaming(ndjson, Equivalence::Kind, &schema, vopts);
    assert_eq!(combined.ty.unwrap(), seq.ty.unwrap());
    assert_eq!(combined.verdicts, seq.verdicts);

    let docs = parse_ndjson(ndjson).unwrap();
    let ty = infer_collection(&docs, Equivalence::Kind);
    let shredder = Shredder::from_type(&ty);
    let dom = shredder.clone().shred(&docs).unwrap();
    assert_eq!(
        translate_streaming_parallel(ndjson, &shredder, opts).unwrap(),
        dom
    );
}

#[test]
fn empty_input_yields_empty_outputs() {
    let schema = test_schema();
    let outcome =
        infer_validate_streaming("", Equivalence::Kind, &schema, ValidatorOptions::default());
    assert_eq!(outcome.ty.unwrap(), jsonx::core::JType::Bottom);
    assert!(outcome.verdicts.is_empty());

    let shredder = Shredder::from_type(&jsonx::core::JType::Bottom);
    let batch = translate_streaming("", &shredder).unwrap();
    assert_eq!(batch.rows, 0);
}
