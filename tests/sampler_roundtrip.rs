//! Generative loop: corpora → inferred type → exported schema → sampled
//! witnesses → validated and re-inferred. Closes the circle between the
//! §4.1 inference tools and §2 schema semantics in both directions.

use jsonx::core::{infer_collection, to_json_schema, Equivalence};
use jsonx::gen::Corpus;
use jsonx::schema::CompiledSchema;

#[test]
fn samples_from_inferred_schemas_validate() {
    for corpus in [Corpus::Github, Corpus::Heterogeneous(30)] {
        let docs = corpus.generate(100);
        for equiv in [Equivalence::Kind, Equivalence::Label] {
            let ty = infer_collection(&docs, equiv);
            let schema = CompiledSchema::compile(&to_json_schema(&ty)).unwrap();
            let mut produced = 0;
            for seed in 0..30 {
                if let Some(witness) = schema.sample(seed) {
                    produced += 1;
                    assert!(
                        schema.is_valid(&witness),
                        "{}/{}: witness {witness} violates its own schema",
                        corpus.name(),
                        equiv.name()
                    );
                }
            }
            assert!(
                produced > 0,
                "{}/{}: sampler produced nothing",
                corpus.name(),
                equiv.name()
            );
        }
    }
}

#[test]
fn sampled_collections_reinfer_to_admissible_types() {
    // Sample a synthetic collection from a hand-written schema, infer a
    // type from it, and check the inferred type admits every sample.
    let schema = CompiledSchema::compile(&jsonx::json!({
        "type": "object",
        "required": ["id", "kind"],
        "properties": {
            "id": {"type": "integer", "minimum": 0},
            "kind": {"enum": ["a", "b"]},
            "score": {"type": "number", "minimum": 0, "maximum": 1},
            "tags": {"type": "array", "items": {"type": "string", "pattern": "^[a-z]+$"}}
        }
    }))
    .unwrap();
    let docs: Vec<jsonx::Value> = (0..60).filter_map(|seed| schema.sample(seed)).collect();
    assert!(docs.len() >= 30, "sampler should succeed most of the time");
    let ty = infer_collection(&docs, Equivalence::Kind);
    for d in &docs {
        assert!(ty.admits(d));
    }
}
