//! Cross-crate integration of the parsing and translation pipelines:
//! generator → NDJSON → (full | projected | speculative) parsing →
//! inference → columnar/Avro translation.

use jsonx::baselines::infer_spark;
use jsonx::core::{infer_collection, Equivalence};
use jsonx::gen::Corpus;
use jsonx::mison::{ProjectedParser, SpeculativeDecoder};
use jsonx::syntax::{parse_ndjson, to_string, write_ndjson};
use jsonx::translate::{AvroCodec, AvroSchema, Shredder};

#[test]
fn ndjson_round_trip_on_all_corpora() {
    for corpus in Corpus::FIXED {
        let docs = corpus.generate(60);
        let text = write_ndjson(&docs);
        let back = parse_ndjson(&text).unwrap();
        assert_eq!(back, docs, "corpus {}", corpus.name());
    }
}

#[test]
fn projected_parsing_feeds_inference() {
    // Parse only what the analysis needs, then infer on the projection —
    // the Mison use case end to end.
    let docs = Corpus::Twitter.generate(120);
    let text = write_ndjson(&docs);
    let parser = ProjectedParser::new(&["id", "user.screen_name"]).unwrap();
    let projected: Vec<jsonx::Value> = text
        .lines()
        .map(|line| jsonx::Value::Obj(parser.parse(line.as_bytes()).unwrap()))
        .collect();
    let ty = infer_collection(&projected, Equivalence::Kind);
    let rendered = jsonx::core::print_type(&ty, jsonx::core::PrintOptions::plain());
    assert_eq!(rendered, "{id: Int, user: {screen_name: Str}}");
}

#[test]
fn speculative_decoding_agrees_with_full_parse_on_github() {
    let docs = Corpus::Github.generate(200);
    let decoder = SpeculativeDecoder::new();
    for doc in &docs {
        let text = to_string(doc);
        assert_eq!(
            decoder.get_field(text.as_bytes(), "type"),
            doc.get("type").cloned()
        );
    }
    // The event envelope is stable: "type" is always the 2nd field.
    assert!(decoder.stats().hit_rate() > 0.95);
}

#[test]
fn columnar_translation_of_nytimes() {
    let docs = Corpus::Nytimes.generate(100);
    let ty = infer_collection(&docs, Equivalence::Kind);
    let batch = Shredder::from_type(&ty).shred(&docs).unwrap();
    assert_eq!(batch.rows, 100);
    // Flat wide records: plenty of typed columns.
    let word_count = batch.column("word_count").unwrap();
    assert!(matches!(
        word_count.data,
        jsonx::translate::ColumnData::Ints(_)
    ));
    assert!(word_count.validity.iter().all(|v| *v));
    // headline.kicker is a string|null union → string column with nulls.
    let kicker = batch.column("headline.kicker").unwrap();
    assert!(kicker.validity.iter().any(|v| !*v));
    assert!(kicker.validity.iter().any(|v| *v));
}

#[test]
fn avro_round_trip_on_github_events() {
    let docs = Corpus::Github.generate(80);
    let ty = infer_collection(&docs, Equivalence::Kind);
    let codec = AvroCodec::new(AvroSchema::from_type(&ty));
    let mut total_binary = 0usize;
    let mut total_text = 0usize;
    for doc in &docs {
        let bytes = codec
            .encode(doc)
            .unwrap_or_else(|e| panic!("encode {doc}: {e}"));
        total_binary += bytes.len();
        total_text += to_string(doc).len();
        assert_eq!(&codec.decode(&bytes).unwrap(), doc);
    }
    // Binary rows must beat the JSON text they replace.
    assert!(
        total_binary < total_text,
        "binary {total_binary} vs text {total_text}"
    );
}

#[test]
fn spark_baseline_collapses_where_parametric_inference_does_not() {
    // The headline E5 contrast, checked end to end on a drifting corpus:
    // tweets carry `text` XOR `full_text`, and coordinates are null|object.
    let docs = Corpus::Twitter.generate(150);
    let spark = infer_spark(&docs);
    let ours = infer_collection(&docs, Equivalence::Kind);

    // Spark keeps a struct but cannot express the null|object union for
    // coordinates except by nulling; our type keeps the union.
    let spark_text = spark.to_string();
    assert!(spark_text.contains("coordinates:struct<"));
    let jsonx::core::JType::Record(r) = &ours else {
        panic!()
    };
    let coord = &r.field("coordinates").unwrap().ty;
    assert!(
        matches!(coord, jsonx::core::JType::Union(_)),
        "expected union, got {coord:?}"
    );
}
