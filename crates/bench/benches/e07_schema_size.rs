//! E7 — Schema size vs data size (§4.1, [19, 22]).
//!
//! Claim operationalised: tools that do not merge types (Studio 3T-style)
//! produce schemas whose size grows with the input — "comparable to that
//! of the input data" — while merging inferrers (parametric K/L,
//! mongodb-schema-style) converge to a constant-size schema. Prints the
//! growth series and benches the no-merge vs merging inference.

use criterion::{black_box, Criterion};
use jsonx_baselines::{infer_naive, MongoProfiler};
use jsonx_bench::{banner, criterion};
use jsonx_core::{infer_collection, type_size, Equivalence};
use jsonx_data::text_size;
use jsonx_data::Value;
use jsonx_gen::{DialedGenerator, GeneratorConfig};

/// A corpus with genuine shape diversity — enough optional fields and
/// type variants that no-merge schemas keep growing, but a *bounded*
/// shape vocabulary so the merging inferrers can converge: 2 optional
/// fields (4 label sets), 5% type drift, flat records.
fn corpus(n: usize) -> Vec<Value> {
    let config = GeneratorConfig {
        seed: 13,
        record_width: 6,
        optional_rate: 0.5,
        optional_fraction: 0.33,
        type_noise: 0.05,
        nesting_depth: 0,
        array_len: (0, 3),
        ..Default::default()
    };
    DialedGenerator::new(config).generate(n)
}

fn main() {
    banner(
        "E7",
        "no-merge schemas grow with the data; merging schemas converge",
    );
    println!(
        "{:>8} {:>12} {:>14} {:>10} {:>10} {:>12}",
        "docs", "data bytes", "naive nodes", "K nodes", "L nodes", "mongo paths"
    );
    for n in [10usize, 100, 1_000, 5_000, 20_000] {
        let docs = corpus(n);
        let data_bytes: usize = docs.iter().map(text_size).sum();
        let naive = infer_naive(&docs);
        let k = type_size(&infer_collection(&docs, Equivalence::Kind));
        let l = type_size(&infer_collection(&docs, Equivalence::Label));
        let mut mongo = MongoProfiler::default();
        for d in &docs {
            mongo.observe(d);
        }
        println!(
            "{:>8} {:>12} {:>14} {:>10} {:>10} {:>12}",
            n,
            data_bytes,
            naive.size(),
            k,
            l,
            mongo.size()
        );
    }
    println!("\n(naive grows with the collection; K converges immediately; L converges\n once every shape has been seen; mongo paths are bounded by the path set)");

    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e07_schema_size");
    let docs = corpus(2_000);
    group.bench_function("naive_no_merge", |b| {
        b.iter(|| infer_naive(black_box(&docs)).size())
    });
    group.bench_function("parametric_k", |b| {
        b.iter(|| type_size(&infer_collection(black_box(&docs), Equivalence::Kind)))
    });
    group.bench_function("mongo_profile", |b| {
        b.iter(|| {
            let mut p = MongoProfiler::default();
            for d in &docs {
                p.observe(black_box(d));
            }
            p.size()
        })
    });
    group.finish();
    c.final_summary();
}
