//! E12 — Merging under arrays: Skinfer's limitation (§4.1, [23]).
//!
//! Claim operationalised: Skinfer's record-only merge "cannot be
//! recursively applied to objects nested inside arrays" — when array
//! element records drift, it drops the items constraint entirely, while
//! parametric fusion keeps a precise item type at any depth. Prints the
//! information-retention comparison as nesting deepens and benches both
//! merges.

use criterion::{black_box, Criterion};
use jsonx_baselines::infer_skinfer;
use jsonx_bench::{banner, criterion};
use jsonx_core::{false_acceptance_rate, infer_collection, Equivalence};
use jsonx_data::{json, Value};

/// Documents with drifting records at `depth` levels under arrays.
fn nested_corpus(depth: usize, n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| {
            let mut leaf = if i % 2 == 0 {
                json!({"a": (i as i64)})
            } else {
                json!({"a": (i as i64), "b": "extra"})
            };
            for _ in 0..depth {
                leaf = json!([leaf]);
            }
            json!({"xs": leaf})
        })
        .collect()
}

/// Bad probes: wrong element type inside the nested arrays.
fn bad_probes(depth: usize, n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| {
            let mut leaf = json!({"a": format!("not-an-int-{i}")});
            for _ in 0..depth {
                leaf = json!([leaf]);
            }
            json!({"xs": leaf})
        })
        .collect()
}

/// Does the skinfer schema still constrain array items at the `xs` field?
fn skinfer_retains_items(schema: &Value, depth: usize) -> bool {
    let mut node = match schema.get("properties").and_then(|p| p.get("xs")) {
        Some(n) => n,
        None => return false,
    };
    for _ in 0..depth {
        match node.get("items") {
            Some(items) => node = items,
            None => return false,
        }
    }
    node.get("properties").is_some() || node.get("type").is_some()
}

fn main() {
    banner(
        "E12",
        "merge-under-arrays: Skinfer drops item constraints, fusion keeps them",
    );
    println!(
        "{:>6} {:>18} {:>16} {:>14} {:>14}",
        "depth", "skinfer items?", "skinfer FAR", "K FAR", "L FAR"
    );
    for depth in [0usize, 1, 2, 3] {
        let docs = nested_corpus(depth, 500);
        let probes = bad_probes(depth, 200);
        let skinfer = infer_skinfer(&docs);
        let retains = skinfer_retains_items(&skinfer, depth);
        // Skinfer FAR via jsonx-schema validation of its output schema.
        let compiled = jsonx_schema::CompiledSchema::compile(&skinfer).unwrap();
        let skinfer_far =
            probes.iter().filter(|p| compiled.is_valid(p)).count() as f64 / probes.len() as f64;
        let k = infer_collection(&docs, Equivalence::Kind);
        let l = infer_collection(&docs, Equivalence::Label);
        println!(
            "{:>6} {:>18} {:>15.1}% {:>13.1}% {:>13.1}%",
            depth,
            if depth == 0 {
                "n/a (no array)"
            } else if retains {
                "kept"
            } else {
                "dropped"
            },
            skinfer_far * 100.0,
            false_acceptance_rate(&k, &probes) * 100.0,
            false_acceptance_rate(&l, &probes) * 100.0
        );
        // Fusion soundness at every depth.
        for d in &docs {
            assert!(k.admits(d) && l.admits(d));
        }
    }
    println!("\n(at depth >= 1 the drifting element records make Skinfer drop `items`,\n admitting every malformed probe; parametric fusion keeps FAR at 0)");

    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e12_merge");
    let docs = nested_corpus(2, 500);
    group.bench_function("skinfer_merge", |b| {
        b.iter(|| infer_skinfer(black_box(&docs)))
    });
    group.bench_function("parametric_fusion_k", |b| {
        b.iter(|| infer_collection(black_box(&docs), Equivalence::Kind))
    });
    group.finish();
    c.final_summary();
}
