//! E19 — Out-of-core chunk streaming and work-stealing dispatch (§4.1,
//! massive collections).
//!
//! Claim operationalised: on a corpus with skewed record lengths (a
//! cheap majority and an expensive tail), static newline sharding hands
//! some worker a disproportionately costly shard and the run waits for
//! it; sequence-numbered chunk claiming ("work stealing") keeps every
//! worker busy until the queue drains, with bit-identical merged
//! results. Out-of-core, the same dispatch runs from a bounded ring of
//! reusable chunk buffers, so corpora far larger than the ring budget
//! stream through without ever being materialised.
//!
//! Prints measured wall-clock sweeps (static vs stealing at 1/2/4/8
//! workers), a per-chunk-cost greedy list-scheduling makespan model at
//! 8 workers (the honest scaling signal on a single-core container —
//! see E14), an out-of-core reader run, and writes
//! `BENCH_scaling.json`.

use criterion::{black_box, BenchmarkId, Criterion};
use jsonx::core::{fuse, type_size, Equivalence, JType};
use jsonx::pipeline::{
    chunk_lines, run_lines_static_caught, run_lines_stealing, run_reader_caught, shard_lines,
    ChunkOptions, PipelineOptions, ShardFold,
};
use jsonx::{StreamTyper, StreamingOptions};
use jsonx_bench::{banner, criterion};
use jsonx_data::{json, Value};
use jsonx_syntax::to_string_pretty;
use std::io::BufReader;
use std::time::{Duration, Instant};

/// The inference fold, re-stated at the engine layer so both dispatch
/// strategies run the exact same per-record work: one event-stream
/// typing per line, fused per worker, fused again across shards.
struct TypeFold {
    equiv: Equivalence,
}

impl ShardFold<str> for TypeFold {
    type State = (StreamTyper, JType);
    type Out = JType;

    fn init(&self) -> Self::State {
        (StreamTyper::new(self.equiv), JType::Bottom)
    }

    fn feed(&self, state: &mut Self::State, line: &str, _index: usize) {
        if line.trim().is_empty() {
            return;
        }
        let ty = state
            .0
            .type_document(line.as_bytes())
            .expect("valid NDJSON");
        let acc = std::mem::replace(&mut state.1, JType::Bottom);
        state.1 = fuse(acc, ty, self.equiv);
    }

    fn finish(&self, state: Self::State) -> Self::Out {
        state.1
    }

    fn merge(&self, left: Self::Out, right: Self::Out) -> Self::Out {
        fuse(left, right, self.equiv)
    }

    fn take(&self, state: &mut Self::State) -> Self::Out {
        std::mem::replace(&mut state.1, JType::Bottom)
    }
}

/// Skewed NDJSON where byte-balanced sharding is cost-unbalanced: every
/// record is ~1.5 KiB, but ~85% are cheap (the bytes are one long flat
/// string — almost no structure to type) while the last ~15% are
/// expensive (the same byte budget spent on dense nested objects, an
/// order of magnitude more events per byte). The expensive records are
/// clustered at the end of the file — schema drift, the shape §4.1's
/// massive-collection corpora actually exhibit — so one static shard
/// inherits most of the cost and becomes the straggler.
fn skewed_ndjson(docs: usize) -> String {
    let tail_start = docs - docs * 15 / 100;
    let blob = "x".repeat(1400);
    let mut out = String::with_capacity(docs * 1500);
    for i in 0..docs {
        if i >= tail_start {
            out.push_str("{\"kind\": \"tail\", \"items\": [");
            for j in 0..56 {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"s\": {j}, \"f\": [true, null]}}"));
            }
            out.push_str("]}\n");
        } else {
            out.push_str(&format!("{{\"id\": {i}, \"blob\": \"{blob}\"}}\n"));
        }
    }
    out
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    banner(
        "E19",
        "out-of-core chunk streaming + work-stealing vs static sharding on skewed records",
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("hardware parallelism available: {cores} core(s)");
    if cores == 1 {
        println!("NOTE: single-core substrate (as in E14/E16) — measured wall-clock");
        println!("cannot show parallel speedup here. The dispatch-quality signal is");
        println!("the makespan model below: per-chunk costs are *measured*, then");
        println!("static assignment and greedy stealing are scheduled on 8 modeled");
        println!("workers. Multi-core hardware realises those makespans directly.\n");
    }

    let ndjson = skewed_ndjson(60_000);
    let fold = TypeFold {
        equiv: Equivalence::Kind,
    };
    println!(
        "corpus: 60000 records ({:.1} MiB); equal record sizes, but the last ~15%",
        mib(ndjson.len())
    );
    println!("are dense nested records (~10x typing cost per byte) — clustered drift\n");

    // Reference result + measured wall-clock sweep.
    let reference = run_lines_static_caught(
        &ndjson,
        &fold,
        PipelineOptions {
            workers: 1,
            ..PipelineOptions::default()
        },
    );
    println!(
        "{:>16} {:>12} {:>12} {:>10}",
        "dispatch", "static", "stealing", "identical"
    );
    let mut wall = jsonx_data::Object::new();
    for workers in [1usize, 2, 4, 8] {
        let opts = PipelineOptions {
            workers,
            ..PipelineOptions::default()
        };
        let t = Instant::now();
        let fixed = run_lines_static_caught(&ndjson, &fold, opts);
        let static_time = t.elapsed();
        let t = Instant::now();
        let stolen = run_lines_stealing(&ndjson, &fold, opts, ChunkOptions::default());
        let steal_time = t.elapsed();
        assert_eq!(stolen.out, reference.out, "stealing must merge identically");
        assert_eq!(fixed.out, reference.out, "static must merge identically");
        println!(
            "{:>16} {:>12.2?} {:>12.2?} {:>10}",
            format!("workers={workers}"),
            static_time,
            steal_time,
            stolen.out == fixed.out
        );
        wall.insert(
            format!("workers_{workers}"),
            json!({
                "static_ms": (static_time.as_secs_f64() * 1000.0),
                "stealing_ms": (steal_time.as_secs_f64() * 1000.0)
            }),
        );
    }

    // Makespan model: measure every chunk's cost once, then schedule.
    // Static = each of 8 workers gets one contiguous byte-balanced
    // shard; its makespan is the costliest shard. Stealing = chunks are
    // claimed in sequence by the earliest-free worker (greedy list
    // scheduling); its makespan is the last worker's finish time.
    let chunk_target = 64 * 1024;
    let chunks = chunk_lines(&ndjson, chunk_target);
    let costs: Vec<Duration> = chunks
        .iter()
        .map(|c| {
            let mut state = fold.init();
            let t = Instant::now();
            for (i, line) in c.text.lines().enumerate() {
                fold.feed(&mut state, line, c.first_line + i);
            }
            t.elapsed()
        })
        .collect();
    let total: Duration = costs.iter().sum();

    let model_workers = 8usize;
    let shards = shard_lines(&ndjson, model_workers);
    let static_makespan = shards
        .iter()
        .map(|s| {
            let mut state = fold.init();
            let t = Instant::now();
            for (i, line) in s.text.lines().enumerate() {
                fold.feed(&mut state, line, s.first_line + i);
            }
            t.elapsed()
        })
        .max()
        .unwrap_or_default();
    let mut finish = vec![Duration::ZERO; model_workers];
    for cost in &costs {
        let earliest = finish
            .iter_mut()
            .min()
            .expect("at least one modeled worker");
        *earliest += *cost;
    }
    let stealing_makespan = finish.into_iter().max().unwrap_or_default();
    let speedup = static_makespan.as_secs_f64() / stealing_makespan.as_secs_f64();
    println!("\nmakespan model at {model_workers} modeled workers (measured per-chunk costs):");
    println!(
        "  {} chunks of ~{} KiB, total work {:.2?}",
        costs.len(),
        chunk_target / 1024,
        total
    );
    println!("  static sharding makespan (costliest shard): {static_makespan:.2?}");
    println!("  work-stealing makespan (greedy schedule):   {stealing_makespan:.2?}");
    println!("  stealing beats static by {speedup:.2}x on this skew");
    assert!(
        speedup > 1.0,
        "stealing must beat static sharding on the skewed corpus"
    );

    // Out-of-core: the same fold from a file through the bounded chunk
    // ring. The ring budget is workers x chunk_bytes (plus recycled
    // spares), orders of magnitude below the corpus size.
    let path = std::env::temp_dir().join("jsonx_e19_corpus.ndjson");
    std::fs::write(&path, &ndjson).expect("write corpus file");
    let chunk = ChunkOptions {
        chunk_bytes: 256 * 1024,
        ring: 2,
        timing: true,
    };
    let opts = PipelineOptions {
        workers: 2,
        ..PipelineOptions::default()
    };
    let file = std::fs::File::open(&path).expect("reopen corpus file");
    let t = Instant::now();
    let outcome = run_reader_caught(BufReader::new(file), &fold, opts, chunk)
        .expect("out-of-core run cannot fail on a clean corpus");
    let ooc_time = t.elapsed();
    assert_eq!(
        outcome.out, reference.out,
        "out-of-core must merge identically"
    );
    let ring_budget = 2 * chunk.chunk_bytes;
    println!("\nout-of-core reader run (2 workers, 256 KiB chunks, ring of 2):");
    println!(
        "  {:.1} MiB corpus through a {:.1} MiB chunk-ring budget: {} chunks in {:.2?}, identical type ({} nodes)",
        mib(ndjson.len()),
        mib(ring_budget),
        outcome.shards,
        ooc_time,
        type_size(&outcome.out)
    );
    for timing in &outcome.timings {
        println!(
            "  worker {}: {} chunks ({} stolen), {} records, {:.1} MiB",
            timing.worker,
            timing.chunks,
            timing.steals,
            timing.records,
            mib(timing.bytes)
        );
    }
    let _ = std::fs::remove_file(&path);

    let report = json!({
        "experiment": "E19",
        "documents": 60000i64,
        "ndjson_mib": mib(ndjson.len()),
        "skew": "equal record bytes; last ~15% of records are dense nested drift at ~10x typing cost per byte",
        "measured_wall_clock_ms": Value::Obj(wall),
        "makespan_model_8_workers": {
            "chunks": (costs.len() as i64),
            "chunk_target_kib": ((chunk_target / 1024) as i64),
            "static_makespan_ms": (static_makespan.as_secs_f64() * 1000.0),
            "stealing_makespan_ms": (stealing_makespan.as_secs_f64() * 1000.0),
            "stealing_speedup": speedup
        },
        "out_of_core": {
            "corpus_mib": mib(ndjson.len()),
            "chunk_bytes": (chunk.chunk_bytes as i64),
            "ring_budget_mib": mib(ring_budget),
            "chunks": (outcome.shards as i64),
            "wall_clock_ms": (ooc_time.as_secs_f64() * 1000.0),
            "identical_to_in_memory": true
        },
        "single_core_note": if cores == 1 {
            "wall-clock measured on a single-core container; the makespan model uses measured per-chunk costs on 8 modeled workers"
        } else {
            "multi-core substrate; wall-clock sweeps realise the makespan model directly"
        }
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    std::fs::write(path, to_string_pretty(&report) + "\n").expect("write BENCH_scaling.json");
    println!("\nwrote {path}");

    // Criterion: both dispatches on a small slice of the same skew.
    let small = skewed_ndjson(6_000);
    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e19_scaling");
    for workers in [2usize, 8] {
        let opts = PipelineOptions {
            workers,
            min_shard_bytes: 4 * 1024,
        };
        group.bench_with_input(BenchmarkId::new("static", workers), &opts, |b, &opts| {
            b.iter(|| run_lines_static_caught(black_box(&small), &fold, opts))
        });
        group.bench_with_input(BenchmarkId::new("stealing", workers), &opts, |b, &opts| {
            b.iter(|| {
                run_lines_stealing(
                    black_box(&small),
                    &fold,
                    opts,
                    ChunkOptions::with_chunk_bytes(16 * 1024),
                )
            })
        });
    }
    group.finish();
    c.final_summary();

    // Keep the facade import honest: the CLI path above the engine uses
    // StreamingOptions = PipelineOptions.
    let _: StreamingOptions = PipelineOptions::default();
}
