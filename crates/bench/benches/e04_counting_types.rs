//! E4 — Counting types (§4.1, [11] DBPL 2017).
//!
//! Claim operationalised: counting annotations (value counts, field
//! presence counts, array populations) come with the inference at marginal
//! cost, and the annotated type doubles as a statistical profile of the
//! collection. Prints the counting profile of a drifting Twitter corpus
//! and benches inference against the cost of the pure map step (the floor
//! any inference pays).

use criterion::{black_box, Criterion};
use jsonx_bench::{banner, criterion};
use jsonx_core::{
    fuse, infer_collection, infer_value, print_type, Equivalence, JType, PrintOptions,
};
use jsonx_gen::{twitter, Corpus};

fn main() {
    banner(
        "E4",
        "counting types: the inferred schema is also a statistical profile",
    );
    let config = twitter::TwitterConfig {
        extended_rate: 0.3,
        geo_rate: 0.2,
        ..Default::default()
    };
    let docs = twitter::tweets(&config, 2_000);
    let ty = infer_collection(&docs, Equivalence::Kind);
    let JType::Record(root) = &ty else { panic!() };
    println!(
        "{:<22} {:>10} {:>10} {:>9}",
        "field", "presence", "of", "optional"
    );
    for (name, field) in &root.fields {
        println!(
            "{:<22} {:>10} {:>10} {:>9}",
            name,
            field.presence,
            root.count,
            if field.presence < root.count {
                "yes"
            } else {
                ""
            }
        );
    }
    // The headline drift statistic: classic vs extended tweets.
    let text_p = root.field("text").map_or(0, |f| f.presence);
    let full_p = root.field("full_text").map_or(0, |f| f.presence);
    println!(
        "\nAPI drift visible in counters: text={text_p}, full_text={full_p} (sum = {})",
        text_p + full_p
    );
    assert_eq!(text_p + full_p, root.count);

    // Array population counters.
    if let Some(entities) = root.field("entities") {
        if let JType::Record(er) = &entities.ty {
            if let Some(hashtags) = er.field("hashtags") {
                if let JType::Array(at) = &hashtags.ty {
                    println!(
                        "hashtags arrays: {} arrays holding {} tags (avg {:.2}/tweet)",
                        at.count,
                        at.total_items,
                        at.total_items as f64 / at.count as f64
                    );
                }
            }
        }
    }
    println!(
        "\ncounting rendering (truncated):\n  {:.120}...",
        print_type(&ty, PrintOptions::with_counts())
    );

    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e04_counting_overhead");
    let sample = Corpus::Twitter.generate(1_000);
    // The floor: map every document to its per-document type, no fusion.
    group.bench_function("map_only", |b| {
        b.iter(|| {
            sample
                .iter()
                .map(|d| infer_value(black_box(d), Equivalence::Kind))
                .fold(0usize, |acc, t| {
                    acc + usize::from(!matches!(t, JType::Bottom))
                })
        })
    });
    // Full counting inference = map + counting fusion.
    group.bench_function("map_plus_counting_fusion", |b| {
        b.iter(|| {
            sample
                .iter()
                .map(|d| infer_value(black_box(d), Equivalence::Kind))
                .fold(JType::Bottom, |acc, t| fuse(acc, t, Equivalence::Kind))
        })
    });
    group.finish();
    c.final_summary();
}
