//! A1 — Ablations of the workspace's own design knobs.
//!
//! Three dials that DESIGN.md singles out, each swept to show the
//! trade-off it buys:
//!
//! 1. **Union-width bounding** (`bound_union_width` k): the "top-k + rest"
//!    abstraction between L (precise) and K (succinct).
//! 2. **Pattern-tree capacity** (`PatternTree::new(max_alternatives)`):
//!    how many remembered positions speculation needs under layout churn.
//! 3. **Structural-index depth** (`StructuralIndex::build(max_level)`):
//!    what bounding the index to the query depth saves.

use criterion::{black_box, BenchmarkId, Criterion};
use jsonx_bench::{banner, criterion};
use jsonx_core::{
    bound_union_width, false_acceptance_rate, infer_collection, type_size, Equivalence,
};
use jsonx_data::Value;
use jsonx_gen::{Corpus, DialedGenerator, GeneratorConfig};
use jsonx_mison::bitmap;
use jsonx_mison::{PatternTree, StructuralIndex};
use jsonx_syntax::to_string;

fn union_width_ablation() {
    println!("\n-- union-width bounding (L type of a 12-shape corpus) --");
    let config = GeneratorConfig {
        seed: 3,
        shape_variants: 12,
        shape_skew: 1.2,
        record_width: 5,
        ..Default::default()
    };
    let docs = DialedGenerator::new(config).generate(3_000);
    let l = infer_collection(&docs, Equivalence::Label);
    // Probes that mix fields of two *different* shapes: no single shape
    // ever carried this label set, so precise label unions reject them,
    // while merged (K-like) records with optional fields admit them.
    let probes: Vec<Value> = {
        let mut out = Vec::new();
        'outer: for a in &docs {
            for b in &docs {
                let (ka, kb) = (a.as_object().unwrap(), b.as_object().unwrap());
                let label = |o: &jsonx_data::Object| {
                    o.keys()
                        .find(|k| *k != "id" && *k != "items")
                        .map(str::to_string)
                };
                if label(ka) != label(kb) {
                    let mut mixed = ka.clone();
                    for (k, v) in kb.iter() {
                        if !mixed.contains_key(k) {
                            mixed.insert(k.to_string(), v.clone());
                        }
                    }
                    out.push(Value::Obj(mixed));
                    if out.len() >= 300 {
                        break 'outer;
                    }
                }
            }
        }
        out
    };
    println!("{:>6} {:>10} {:>8} {:>10}", "k", "nodes", "FAR", "sound");
    for k in [usize::MAX, 8, 4, 2, 1] {
        let bounded = if k == usize::MAX {
            l.clone()
        } else {
            bound_union_width(l.clone(), k)
        };
        let sound = docs.iter().all(|d| bounded.admits(d));
        println!(
            "{:>6} {:>10} {:>7.1}% {:>10}",
            if k == usize::MAX {
                "∞(L)".to_string()
            } else {
                k.to_string()
            },
            type_size(&bounded),
            false_acceptance_rate(&bounded, &probes) * 100.0,
            sound
        );
        assert!(sound, "bounding must stay sound");
    }
    println!("(size falls, FAR rises — k interpolates between L and K)");
}

fn pattern_capacity_ablation() {
    println!("\n-- pattern-tree capacity under layout churn --");
    // Documents cycling through 3 layouts.
    let keys_sets: [&[&str]; 3] = [
        &["a", "b", "target", "c"],
        &["target", "a", "b", "c"],
        &["a", "target", "b", "c"],
    ];
    println!("{:>14} {:>10}", "capacity", "hit rate");
    for cap in [1usize, 2, 3, 4] {
        let mut tree = PatternTree::new(cap);
        for i in 0..3_000 {
            let keys = keys_sets[i % 3];
            tree.probe("target", keys);
        }
        println!("{:>14} {:>9.1}%", cap, tree.stats().hit_rate() * 100.0);
    }
    println!("(hit rate saturates once capacity covers the distinct layouts: 3)");
}

fn index_depth_ablation(c: &mut Criterion) {
    println!("\n-- structural-index depth bound --");
    let docs = Corpus::Twitter.generate(1_500);
    let lines: Vec<String> = docs.iter().map(to_string).collect();
    let mut group = c.benchmark_group("a01_index_depth");
    for depth in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("levels", depth), &depth, |b, &d| {
            b.iter(|| {
                for line in &lines {
                    black_box(StructuralIndex::build(line.as_bytes(), d));
                }
            })
        });
    }
    group.finish();
    println!("(shallower bounds skip bucketing deeper colons — E9's pushdown saving)");
}

fn bitmap_construction_ablation(c: &mut Criterion) {
    println!("\n-- bitmap construction: word-parallel (SWAR) vs scalar --");
    let docs = Corpus::Nytimes.generate(1_500);
    let lines: Vec<String> = docs.iter().map(to_string).collect();
    let mut group = c.benchmark_group("a01_bitmap_build");
    group.bench_function("word_parallel", |b| {
        b.iter(|| {
            for line in &lines {
                black_box(bitmap::build(line.as_bytes()));
            }
        })
    });
    group.bench_function("scalar_reference", |b| {
        b.iter(|| {
            for line in &lines {
                black_box(bitmap::build_scalar(line.as_bytes()));
            }
        })
    });
    group.finish();
    println!("(the 64-lane construction is the paper's SIMD contribution in portable form)");
}

fn streaming_inference_ablation(c: &mut Criterion) {
    println!("\n-- inference input path: DOM vs streaming events --");
    let docs = Corpus::Github.generate(2_000);
    let ndjson = jsonx_syntax::write_ndjson(&docs);
    // Equivalence check once, outside measurement.
    let dom = {
        let parsed = jsonx_syntax::parse_ndjson(&ndjson).unwrap();
        infer_collection(&parsed, Equivalence::Kind)
    };
    assert_eq!(
        jsonx::streaming::infer_streaming(&ndjson, Equivalence::Kind).unwrap(),
        dom
    );
    let mut group = c.benchmark_group("a01_inference_path");
    group.bench_function("parse_dom_then_infer", |b| {
        b.iter(|| {
            let parsed = jsonx_syntax::parse_ndjson(black_box(&ndjson)).unwrap();
            infer_collection(&parsed, Equivalence::Kind)
        })
    });
    group.bench_function("streaming_events", |b| {
        b.iter(|| jsonx::streaming::infer_streaming(black_box(&ndjson), Equivalence::Kind).unwrap())
    });
    group.finish();
    println!("(identical results; streaming skips the DOM allocation entirely)");
}

fn main() {
    banner(
        "A1",
        "ablations: union bounding, speculation capacity, index depth",
    );
    union_width_ablation();
    pattern_capacity_ablation();
    let mut c: Criterion = criterion();
    index_depth_ablation(&mut c);
    bitmap_construction_ablation(&mut c);
    streaming_inference_ablation(&mut c);
    c.final_summary();
}
