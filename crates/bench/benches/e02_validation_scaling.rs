//! E2 — Validation cost scaling (§2, Pezoa et al.).
//!
//! Claim operationalised: JSON Schema validation runs in time proportional
//! to schema size × document size, including under the boolean combinators
//! (negation and unions do not blow up — no exponential behaviour). The
//! printed series shows per-document validation time growing linearly as
//! the schema deepens, and Criterion measures selected points.

use criterion::{black_box, BenchmarkId, Criterion};
use jsonx_bench::{banner, criterion};
use jsonx_data::{json, Object, Value};
use jsonx_schema::CompiledSchema;
use std::time::Instant;

/// Builds a schema of `depth` nested levels, each with `width` properties,
/// a pattern, a union and a negation — exercising every combinator class.
fn deep_schema(depth: usize, width: usize) -> Value {
    let mut properties = Object::new();
    for i in 0..width {
        properties.insert(
            format!("s{i}"),
            json!({"type": "string", "pattern": "^[a-z0-9_]*$"}),
        );
    }
    properties.insert(
        "v",
        json!({
            "anyOf": [{"type": "integer"}, {"type": "string"}],
            "not": {"type": "boolean"}
        }),
    );
    if depth > 0 {
        properties.insert("child", deep_schema(depth - 1, width));
    }
    let mut node = Object::new();
    node.insert("type", Value::from("object"));
    node.insert("properties", Value::Obj(properties));
    node.insert("required", json!(["v"]));
    Value::Obj(node)
}

/// A document matching `deep_schema(depth, width)`.
fn deep_doc(depth: usize, width: usize) -> Value {
    let mut obj = Object::new();
    for i in 0..width {
        obj.insert(format!("s{i}"), Value::Str(format!("value_{i}")));
    }
    obj.insert("v", Value::from(42));
    if depth > 0 {
        obj.insert("child", deep_doc(depth - 1, width));
    }
    Value::Obj(obj)
}

fn main() {
    banner(
        "E2",
        "validation time scales with schema size x document size (Pezoa et al.)",
    );
    println!(
        "{:>6} {:>12} {:>14} {:>16}",
        "depth", "schema nodes", "doc nodes", "us/validation"
    );
    let mut series = Vec::new();
    for depth in [1usize, 2, 4, 8, 16] {
        let schema_doc = deep_schema(depth, 6);
        let schema = CompiledSchema::compile(&schema_doc).unwrap();
        let doc = deep_doc(depth, 6);
        let schema_nodes = jsonx_data::node_count(&schema_doc);
        let doc_nodes = jsonx_data::node_count(&doc);
        assert!(schema.is_valid(&doc));
        let iterations = 2_000;
        let t = Instant::now();
        for _ in 0..iterations {
            assert!(schema.is_valid(black_box(&doc)));
        }
        let us = t.elapsed().as_micros() as f64 / f64::from(iterations);
        println!("{depth:>6} {schema_nodes:>12} {doc_nodes:>14} {us:>16.2}");
        series.push((schema_nodes * doc_nodes, us));
    }
    // Shape check: time should grow roughly with schema x doc product,
    // i.e. the time ratio between the largest and smallest configuration
    // stays within ~4x of the size ratio (no exponential blow-up).
    let (s0, t0) = series[0];
    let (s4, t4) = series[series.len() - 1];
    let size_ratio = s4 as f64 / s0 as f64;
    let time_ratio = t4 / t0;
    println!(
        "\nsize ratio {size_ratio:.0}x -> time ratio {time_ratio:.0}x ({})",
        if time_ratio < size_ratio * 4.0 {
            "polynomial, as the formal semantics predicts"
        } else {
            "WARNING: superlinear beyond expectation"
        }
    );

    // Adversarial negation nesting: not(not(...)) towers stay linear.
    let mut tower = json!({"type": "integer"});
    for _ in 0..64 {
        let mut o = Object::new();
        o.insert("not", tower);
        tower = Value::Obj(o);
    }
    let tower_schema = CompiledSchema::compile(&tower).unwrap();
    let t = Instant::now();
    for _ in 0..2_000 {
        black_box(tower_schema.is_valid(black_box(&json!(3))));
    }
    println!(
        "64-deep negation tower: {:.2} us/validation (linear in tower height)",
        t.elapsed().as_micros() as f64 / 2000.0
    );

    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e02_validation");
    for depth in [2usize, 8] {
        let schema = CompiledSchema::compile(&deep_schema(depth, 6)).unwrap();
        let doc = deep_doc(depth, 6);
        group.bench_with_input(BenchmarkId::new("depth", depth), &depth, |b, _| {
            b.iter(|| schema.is_valid(black_box(&doc)))
        });
    }
    group.finish();
    c.final_summary();
}
