//! E10 — Speculative decoding under stable vs shifting layouts (§4.2,
//! [14] Fad.js).
//!
//! Claim operationalised: access-pattern speculation wins when the
//! collection's physical field layout is stable (hit rates near 100%) and
//! deoptimises gracefully when layouts shift. Prints hit rates and decode
//! times for three layout regimes and benches the stable case against an
//! unspeculated index scan.

use criterion::{black_box, Criterion};
use jsonx_bench::{banner, criterion};
use jsonx_gen::Corpus;
use jsonx_mison::{ProjectedParser, SpeculativeDecoder, SpeculativeEncoder};
use jsonx_syntax::to_string;
use std::time::Instant;

/// Builds layout-shifted variants of the documents by rotating key order.
fn rotate_layout(doc: &jsonx_data::Value, by: usize) -> String {
    let obj = doc.as_object().unwrap();
    let entries: Vec<(&str, &jsonx_data::Value)> = obj.iter().collect();
    let n = entries.len();
    let mut rotated = jsonx_data::Object::with_capacity(n);
    for i in 0..n {
        let (k, v) = entries[(i + by) % n];
        rotated.insert(k.to_string(), v.clone());
    }
    to_string(&jsonx_data::Value::Obj(rotated))
}

fn run_regime(name: &str, lines: &[String], field: &str) -> (f64, std::time::Duration) {
    let decoder = SpeculativeDecoder::new();
    let t = Instant::now();
    for line in lines {
        black_box(decoder.get_field(line.as_bytes(), field));
    }
    let elapsed = t.elapsed();
    let rate = decoder.stats().hit_rate();
    println!("{:<22} {:>10.1}% {:>12.2?}", name, rate * 100.0, elapsed);
    (rate, elapsed)
}

fn main() {
    banner(
        "E10",
        "speculation hit rate and cost: stable vs shifting layouts (Fad.js)",
    );
    let docs = Corpus::Nytimes.generate(3_000);
    let stable: Vec<String> = docs.iter().map(to_string).collect();
    // Two alternating layouts (a schema migration in flight).
    let bistable: Vec<String> = docs
        .iter()
        .enumerate()
        .map(|(i, d)| rotate_layout(d, (i % 2) * 3))
        .collect();
    // Adversarial: every document shifts the layout.
    let shifting: Vec<String> = docs
        .iter()
        .enumerate()
        .map(|(i, d)| rotate_layout(d, i % 7))
        .collect();

    println!("{:<22} {:>11} {:>12}", "layout regime", "hit rate", "time");
    let (stable_rate, _) = run_regime("stable", &stable, "word_count");
    let (bi_rate, _) = run_regime("two alternating", &bistable, "word_count");
    let (shift_rate, _) = run_regime("rotating every doc", &shifting, "word_count");
    assert!(stable_rate > bi_rate || bi_rate > 0.9);
    assert!(bi_rate >= shift_rate);
    println!("\n(speculation caches up to 4 positions per field: one or two layouts\n hit after warmup; constant rotation deoptimises to scanning)");

    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e10_decode");
    let field_parser = ProjectedParser::new(&["word_count"]).unwrap();
    group.bench_function("speculative_stable", |b| {
        let decoder = SpeculativeDecoder::new();
        b.iter(|| {
            for line in &stable {
                black_box(decoder.get_field(line.as_bytes(), "word_count"));
            }
        })
    });
    group.bench_function("index_scan_no_speculation", |b| {
        b.iter(|| {
            for line in &stable {
                black_box(field_parser.parse(line.as_bytes()).unwrap());
            }
        })
    });
    // Fad.js speculates on encoding too: template-stitched output vs the
    // general serializer, byte-identical results.
    let sample: Vec<jsonx_data::Value> = docs.iter().take(1_500).cloned().collect();
    group.bench_function("encode_speculative", |b| {
        let enc = SpeculativeEncoder::new();
        b.iter(|| {
            let mut total = 0usize;
            for d in &sample {
                total += enc.encode(black_box(d)).len();
            }
            total
        })
    });
    group.bench_function("encode_generic", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for d in &sample {
                total += to_string(black_box(d)).len();
            }
            total
        })
    });
    group.finish();
    c.final_summary();
}
