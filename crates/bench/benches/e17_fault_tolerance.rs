//! E17 — Fault tolerance: error-policy overhead and dirty-corpus
//! throughput.
//!
//! Two claims operationalised on the guarded streaming pipeline:
//!
//! 1. Fault tolerance is close to free on clean data: routing streaming
//!    inference through the guarded engine (per-record policy checks,
//!    per-shard error summaries, `catch_unwind` isolation) costs only a
//!    small constant factor over the legacy fail-fast path, for both the
//!    `FailFast` and `Skip` policies.
//! 2. Dirty corpora degrade gracefully instead of dying: with 1% of
//!    records corrupted, `Skip` streams the surviving 99% at a rate
//!    comparable to clean-corpus throughput, infers exactly the type a
//!    fail-fast run infers over the prefiltered twin, and accounts for
//!    every rejected record — while fail-fast aborts on the first bad
//!    line, timing how quickly the error surfaces.
//!
//! Prints timing tables over 100k GitHub-style events, writes
//! `BENCH_fault_tolerance.json`, and benches the policy paths under
//! Criterion.

use criterion::{black_box, Criterion, Throughput};
use jsonx::core::Equivalence;
use jsonx::syntax::{to_string, to_string_pretty};
use jsonx::{
    infer_streaming_guarded, infer_streaming_parallel, ErrorPolicy, FaultOptions, ParseLimits,
    StreamingOptions,
};
use jsonx_bench::{banner, criterion};
use jsonx_data::{json, Value};
use jsonx_gen::{dirty_ndjson, Corpus, DirtyConfig};
use std::time::Instant;

fn to_ndjson(docs: &[Value]) -> String {
    let mut out = String::new();
    for d in docs {
        out.push_str(&to_string(d));
        out.push('\n');
    }
    out
}

fn docs_per_sec(n: usize, elapsed: std::time::Duration) -> f64 {
    n as f64 / elapsed.as_secs_f64()
}

fn skip_policy() -> FaultOptions {
    FaultOptions {
        policy: ErrorPolicy::Skip { max_errors: None },
        keep_rejects: false,
        limits: ParseLimits::default(),
    }
}

fn main() {
    banner(
        "E17",
        "fault tolerance: error-policy overhead, dirty-corpus throughput",
    );
    let opts = StreamingOptions {
        workers: 1,
        min_shard_bytes: 4 * 1024,
    };

    // ---- Part 1: policy overhead on a clean corpus --------------------
    let docs = Corpus::Github.generate(100_000);
    let ndjson = to_ndjson(&docs);
    println!(
        "clean collection: {} documents, {:.1} MiB of NDJSON\n",
        docs.len(),
        ndjson.len() as f64 / (1024.0 * 1024.0)
    );

    // Warm up both paths before timing anything: the first pass over a
    // ~40 MiB corpus pays page faults and cache population that have
    // nothing to do with the policy layer, and charging them to whichever
    // variant happens to run first inflated its "overhead" by ~20 points.
    black_box(infer_streaming_parallel(&ndjson, Equivalence::Kind, opts).expect("clean"));
    black_box(
        infer_streaming_guarded(&ndjson, Equivalence::Kind, opts, FaultOptions::default())
            .expect("clean"),
    );

    let t = Instant::now();
    let legacy_ty = infer_streaming_parallel(&ndjson, Equivalence::Kind, opts).expect("clean");
    let legacy_time = t.elapsed();
    let legacy_rate = docs_per_sec(docs.len(), legacy_time);

    println!(
        "{:>24} {:>12} {:>14} {:>10}",
        "clean-corpus path", "time", "docs/sec", "overhead"
    );
    println!(
        "{:>24} {:>12.2?} {:>14.0} {:>10}",
        "legacy fail-fast", legacy_time, legacy_rate, "--"
    );
    let mut clean_rates = vec![("legacy_failfast", legacy_rate)];
    for (label, key, fault) in [
        (
            "guarded fail-fast",
            "guarded_failfast",
            FaultOptions::default(),
        ),
        ("guarded skip", "guarded_skip", skip_policy()),
    ] {
        let t = Instant::now();
        let (ty, report) =
            infer_streaming_guarded(&ndjson, Equivalence::Kind, opts, fault).expect("clean");
        let elapsed = t.elapsed();
        assert_eq!(ty, legacy_ty, "guarded type must equal legacy type");
        assert_eq!(report.errors.total, 0, "clean corpus rejects nothing");
        let rate = docs_per_sec(docs.len(), elapsed);
        println!(
            "{:>24} {:>12.2?} {:>14.0} {:>9.1}%",
            label,
            elapsed,
            rate,
            (legacy_rate / rate - 1.0) * 100.0
        );
        clean_rates.push((key, rate));
    }

    // ---- Part 2: throughput on a 1%-corrupted corpus ------------------
    let dirty = dirty_ndjson(&DirtyConfig {
        seed: 17,
        docs: 100_000,
        corruption_rate: 0.01,
        blank_rate: 0.0,
        ..DirtyConfig::default()
    });
    let bad = dirty.bad_lines.len();
    println!(
        "\ndirty collection: 100000 records ({:.1} MiB — smaller records than\nthe GitHub corpus, so rates are not comparable across the two tables),\n{bad} corrupted ({:.2}%)\n",
        dirty.text.len() as f64 / (1024.0 * 1024.0),
        bad as f64 / 1000.0
    );

    let t = Instant::now();
    let failfast_err = infer_streaming_guarded(
        &dirty.text,
        Equivalence::Kind,
        opts,
        FaultOptions::default(),
    )
    .expect_err("dirty corpus must fail fast");
    let abort_time = t.elapsed();

    let t = Instant::now();
    let (skip_ty, report) =
        infer_streaming_guarded(&dirty.text, Equivalence::Kind, opts, skip_policy())
            .expect("skip survives");
    let skip_time = t.elapsed();
    let reference = jsonx::infer_streaming(&dirty.clean_text, Equivalence::Kind).expect("clean");
    assert_eq!(
        skip_ty, reference,
        "skip type == prefiltered fail-fast type"
    );
    assert_eq!(report.errors.total, bad, "every corrupt record accounted");
    let skip_rate = docs_per_sec(100_000, skip_time);

    println!(
        "{:>24} {:>12} {:>14}",
        "dirty-corpus path", "time", "docs/sec"
    );
    println!(
        "{:>24} {:>12.2?} {:>14}   (error: {:.40}...)",
        "fail-fast abort",
        abort_time,
        "--",
        failfast_err.to_string()
    );
    println!(
        "{:>24} {:>12.2?} {:>14.0}   ({} rejected, type == prefiltered)",
        "skip", skip_time, skip_rate, bad
    );

    let mut clean_obj = jsonx_data::Object::new();
    for (key, rate) in &clean_rates {
        clean_obj.insert((*key).to_string(), json!(*rate as i64));
    }
    let report_doc = json!({
        "experiment": "E17",
        "documents": 100_000,
        "clean_docs_per_sec": Value::Obj(clean_obj),
        "guarded_failfast_overhead_pct":
            ((legacy_rate / clean_rates[1].1 - 1.0) * 100.0),
        "guarded_skip_overhead_pct":
            ((legacy_rate / clean_rates[2].1 - 1.0) * 100.0),
        "dirty_corrupted_records": (bad as i64),
        "dirty_skip_docs_per_sec": (skip_rate as i64)
    });
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_fault_tolerance.json"
    );
    std::fs::write(path, to_string_pretty(&report_doc) + "\n")
        .expect("write BENCH_fault_tolerance.json");
    println!("\nwrote {path}");

    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e17_fault_tolerance");
    let small = to_ndjson(&Corpus::Github.generate(8_000));
    let small_dirty = dirty_ndjson(&DirtyConfig {
        seed: 17,
        docs: 8_000,
        corruption_rate: 0.01,
        blank_rate: 0.0,
        ..DirtyConfig::default()
    });
    group.throughput(Throughput::Elements(8_000));
    group.bench_function("legacy_failfast_clean", |b| {
        b.iter(|| infer_streaming_parallel(black_box(&small), Equivalence::Kind, opts))
    });
    group.bench_function("guarded_failfast_clean", |b| {
        b.iter(|| {
            infer_streaming_guarded(
                black_box(&small),
                Equivalence::Kind,
                opts,
                FaultOptions::default(),
            )
        })
    });
    group.bench_function("guarded_skip_clean", |b| {
        b.iter(|| {
            infer_streaming_guarded(black_box(&small), Equivalence::Kind, opts, skip_policy())
        })
    });
    group.bench_function("guarded_skip_dirty_1pct", |b| {
        b.iter(|| {
            infer_streaming_guarded(
                black_box(&small_dirty.text),
                Equivalence::Kind,
                opts,
                skip_policy(),
            )
        })
    });
    group.finish();
    c.final_summary();
}
