//! E14 — Sharded zero-copy streaming inference (§4.1 massive collections).
//!
//! Claim operationalised: typing NDJSON straight off the event stream —
//! no DOM per document, `Cow`-borrowed strings, interned field names —
//! beats the parse-then-infer pipeline on the same input, and newline
//! sharding distributes it across workers with bit-identical results.
//! Prints a scaling table over 100k documents and benches the DOM
//! pipeline against streaming at 1/2/4/8 workers.

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use jsonx::{infer_streaming, infer_streaming_parallel, StreamingOptions};
use jsonx_bench::{banner, criterion};
use jsonx_core::{infer_collection, Equivalence};
use jsonx_gen::Corpus;
use jsonx_syntax::{parse_ndjson, to_string};
use std::time::Instant;

fn to_ndjson(docs: &[jsonx_data::Value]) -> String {
    let mut out = String::new();
    for d in docs {
        out.push_str(&to_string(d));
        out.push('\n');
    }
    out
}

fn main() {
    banner(
        "E14",
        "streaming inference: DOM-free typing, newline sharding, identical results",
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("hardware parallelism available: {cores} core(s)");
    if cores == 1 {
        println!("NOTE: single-core substrate — shard-transparency (identical results");
        println!("at every worker count) is the measurable claim here; wall-clock");
        println!("speedup from sharding requires multi-core hardware.\n");
    }
    let docs = Corpus::Github.generate(100_000);
    let ndjson = to_ndjson(&docs);
    println!(
        "collection: {} documents, {:.1} MiB of NDJSON\n",
        docs.len(),
        ndjson.len() as f64 / (1024.0 * 1024.0)
    );

    // Reference: the DOM pipeline over the same bytes (parse + infer).
    let _ = infer_streaming(&ndjson[..ndjson.len() / 16], Equivalence::Kind);
    let t = Instant::now();
    let dom_docs = parse_ndjson(&ndjson).expect("valid NDJSON");
    let dom = infer_collection(&dom_docs, Equivalence::Kind);
    let dom_time = t.elapsed();
    drop(dom_docs);

    let t = Instant::now();
    let streamed = infer_streaming(&ndjson, Equivalence::Kind).expect("valid NDJSON");
    let stream_time = t.elapsed();
    assert_eq!(streamed, dom, "streaming must match the DOM pipeline");

    println!(
        "{:>12} {:>12} {:>14} {:>10}",
        "path", "time", "vs DOM", "identical"
    );
    println!(
        "{:>12} {:>12.2?} {:>13.2}x {:>10}",
        "dom", dom_time, 1.0, "-"
    );
    println!(
        "{:>12} {:>12.2?} {:>13.2}x {:>10}",
        "stream seq",
        stream_time,
        dom_time.as_secs_f64() / stream_time.as_secs_f64(),
        streamed == dom
    );
    for workers in [1usize, 2, 4, 8] {
        let opts = StreamingOptions {
            workers,
            min_shard_bytes: 4 * 1024,
        };
        let t = Instant::now();
        let par = infer_streaming_parallel(&ndjson, Equivalence::Kind, opts).expect("valid NDJSON");
        let elapsed = t.elapsed();
        println!(
            "{:>12} {:>12.2?} {:>13.2}x {:>10}",
            format!("workers={workers}"),
            elapsed,
            dom_time.as_secs_f64() / elapsed.as_secs_f64(),
            par == dom
        );
        assert_eq!(par, dom, "sharded result must be identical");
    }

    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e14_streaming");
    let small = to_ndjson(&Corpus::Github.generate(8_000));
    group.throughput(Throughput::Bytes(small.len() as u64));
    group.bench_function("dom_pipeline", |b| {
        b.iter(|| {
            let docs = parse_ndjson(black_box(&small)).unwrap();
            infer_collection(&docs, Equivalence::Kind)
        })
    });
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("stream_workers", workers),
            &workers,
            |b, &w| {
                let opts = StreamingOptions {
                    workers: w,
                    min_shard_bytes: 4 * 1024,
                };
                b.iter(|| infer_streaming_parallel(black_box(&small), Equivalence::Kind, opts))
            },
        );
    }
    group.finish();
    c.final_summary();
}
