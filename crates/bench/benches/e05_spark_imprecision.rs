//! E5 — Spark-style inference "resorts to Str on strongly heterogeneous
//! collections" (§4.1, [7]).
//!
//! Claim operationalised: when a field's values mix two kinds (integers
//! that are sometimes strings — the classic drifting-`id` case), the
//! Spark-style inferrer widens the field to `string`, losing the kind
//! set entirely: values of *never-observed* kinds (booleans, floats) now
//! pass. K/L parametric inference keeps the exact `(Int + Str)` union and
//! rejects them. The sweep raises the fraction of drifting fields; the
//! false-acceptance rate (FAR) is measured on probes carrying the unseen
//! kinds.

use criterion::{black_box, Criterion};
use jsonx_baselines::{infer_spark, spark_type_size, SparkType};
use jsonx_bench::{banner, criterion};
use jsonx_core::{false_acceptance_rate, infer_collection, type_size, Equivalence};
use jsonx_data::{Number, Object, Value};
use rand_like::Lcg;

/// A tiny deterministic generator (keeps the bench self-contained).
mod rand_like {
    pub struct Lcg(pub u64);
    impl Lcg {
        pub fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
        pub fn chance(&mut self, percent: u8) -> bool {
            (self.next() % 100) < u64::from(percent)
        }
    }
}

const WIDTH: usize = 8;

/// Records whose fields are integers, except that a field *drifts* to a
/// string representation with probability `noise`% — two kinds per field,
/// never more.
fn corpus(noise: u8, n: usize) -> Vec<Value> {
    let mut rng = Lcg(42);
    (0..n)
        .map(|i| {
            let mut obj = Object::with_capacity(WIDTH);
            for f in 0..WIDTH {
                let v = (i * WIDTH + f) as i64;
                let value = if rng.chance(noise) {
                    Value::Str(format!("{v}"))
                } else {
                    Value::Num(Number::Int(v))
                };
                obj.insert(format!("f{f}"), value);
            }
            Value::Obj(obj)
        })
        .collect()
}

/// Probes carrying kinds *no* document ever had at these fields:
/// booleans and floats.
fn probes(n: usize) -> Vec<Value> {
    let mut rng = Lcg(7);
    (0..n)
        .map(|i| {
            let mut obj = Object::with_capacity(WIDTH);
            for f in 0..WIDTH {
                let value = if rng.chance(50) {
                    Value::Bool(i % 2 == 0)
                } else {
                    Value::Num(Number::Float(0.5 + f as f64))
                };
                obj.insert(format!("f{f}"), value);
            }
            Value::Obj(obj)
        })
        .collect()
}

fn string_fallbacks(spark: &SparkType) -> usize {
    let SparkType::Struct(fields) = spark else {
        return 0;
    };
    fields
        .iter()
        .filter(|(_, t)| *t == SparkType::String)
        .count()
}

fn main() {
    banner(
        "E5",
        "Spark-style inference collapses to Str under heterogeneity; K/L keep unions",
    );
    println!(
        "{:>12} {:>15} {:>12} {:>10} {:>10} {:>12} {:>9}",
        "drift rate", "str-fallbacks", "FAR spark", "FAR K", "FAR L", "spark size", "K size"
    );
    let probe_docs = probes(400);
    for noise in [0u8, 5, 10, 25, 50, 75, 100] {
        let docs = corpus(noise, 1_000);
        let spark = infer_spark(&docs);
        let far_spark =
            probe_docs.iter().filter(|p| spark.admits(p)).count() as f64 / probe_docs.len() as f64;
        let k = infer_collection(&docs, Equivalence::Kind);
        let l = infer_collection(&docs, Equivalence::Label);
        for d in &docs {
            assert!(k.admits(d) && l.admits(d), "inference must stay sound");
        }
        println!(
            "{:>11}% {:>12}/{:<2} {:>11.1}% {:>9.1}% {:>9.1}% {:>12} {:>9}",
            noise,
            string_fallbacks(&spark),
            WIDTH,
            far_spark * 100.0,
            false_acceptance_rate(&k, &probe_docs) * 100.0,
            false_acceptance_rate(&l, &probe_docs) * 100.0,
            spark_type_size(&spark),
            type_size(&k)
        );
    }
    println!("\n(the crossover: any drift collapses Spark's fields to string, which\n admits the never-seen kinds; K/L keep exact (Int + Str) unions, FAR 0)");

    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e05_inference_cost");
    let docs = corpus(50, 1_000);
    group.bench_function("spark_style", |b| b.iter(|| infer_spark(black_box(&docs))));
    group.bench_function("parametric_k", |b| {
        b.iter(|| infer_collection(black_box(&docs), Equivalence::Kind))
    });
    group.finish();
    c.final_summary();
}
