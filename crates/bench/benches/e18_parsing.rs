//! E18 — Fused SWAR fast path: structural skip-scanning + projection
//! pushdown vs the full-parser streaming pipeline.
//!
//! Two corpora, two consumers:
//!
//! * **standard** — 100k GitHub-style events. Validation projects to the
//!   envelope fields the schema actually reads (`id`, `type`, `public`),
//!   so the scanner skips the payload bulk; translation shreds the *full*
//!   inferred layout, so every root field is projected and the fast path
//!   pays its worst case (scan + per-span re-parse with nothing skipped).
//! * **wide** — synthetic wide records (~14 root fields, chunky string
//!   payloads) where both consumers only read `id` and `name`, so the
//!   scanner skip-scans well over half the bytes. This is the corpus the
//!   1.5× acceptance floor is pinned on, for validation *and*
//!   translation.
//!
//! Every timed pair first asserts result equality (verdicts / batches),
//! prints a table, writes `BENCH_parsing.json`, and benches the wide
//! variants under Criterion at 8k docs.

use criterion::{black_box, Criterion, Throughput};
use jsonx::schema::{CompiledSchema, ValidatorOptions};
use jsonx::syntax::structural::{FieldSet, ScanOptions, StructuralScanner};
use jsonx::syntax::{to_string, to_string_pretty};
use jsonx::translate::Shredder;
use jsonx::{
    translate_streaming_parallel, translate_streaming_parallel_fast, validate_streaming_parallel,
    validate_streaming_parallel_fast, StreamingOptions,
};
use jsonx_bench::{banner, criterion};
use jsonx_data::{json, Object, Value};
use jsonx_gen::Corpus;
use std::time::Instant;

fn to_ndjson(docs: &[Value]) -> String {
    let mut out = String::new();
    for d in docs {
        out.push_str(&to_string(d));
        out.push('\n');
    }
    out
}

fn docs_per_sec(n: usize, elapsed: std::time::Duration) -> f64 {
    n as f64 / elapsed.as_secs_f64()
}

/// Wide records: two fields anyone reads, a dozen nobody does.
fn wide_docs(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| {
            let i = i as i64;
            let mut obj = Object::new();
            obj.insert("id", json!(i));
            obj.insert("name", Value::Str(format!("user{i}")));
            for k in 0..10i64 {
                obj.insert(
                    format!("field{k:02}"),
                    Value::Str(format!("{}-{}", i * 31 + k, "x".repeat(40))),
                );
            }
            obj.insert("metrics", json!([i, i * 2, i * 3, i % 7, i % 11]));
            obj.insert(
                "nested",
                json!({"a": (i % 100), "b": format!("deep{}", i % 13), "c": [true, false]}),
            );
            Value::Obj(obj)
        })
        .collect()
}

/// Fraction of record bytes the projection does NOT materialise, measured
/// with the actual scanner: everything outside the projected key/value
/// spans is skip-scanned (bitmap pass only, no tokens, no DOM).
fn skipped_byte_fraction(ndjson: &str, set: &FieldSet) -> f64 {
    let opts = ScanOptions::default();
    let mut sc = StructuralScanner::new();
    let (mut total, mut projected) = (0usize, 0usize);
    for line in ndjson.lines().filter(|l| !l.trim().is_empty()) {
        assert!(
            sc.scan(line.as_bytes(), set, &opts),
            "corpus line must scan"
        );
        total += line.len();
        for f in sc.fields() {
            projected += (f.key.end - f.key.start) + (f.value.end - f.value.start);
        }
    }
    1.0 - projected as f64 / total as f64
}

struct Timed {
    slow_rate: f64,
    fast_rate: f64,
}

impl Timed {
    fn speedup(&self) -> f64 {
        self.fast_rate / self.slow_rate
    }
}

fn report_row(label: &str, n: usize, t: &Timed) {
    println!(
        "{label:>22} {:>14.0} {:>14.0} {:>9.2}x",
        t.slow_rate,
        t.fast_rate,
        t.speedup()
    );
    let _ = n;
}

fn time_validate(ndjson: &str, n: usize, schema: &CompiledSchema, opts: StreamingOptions) -> Timed {
    let vopts = ValidatorOptions::default();
    // Warm both paths before timing (page faults, cache population).
    let slow = validate_streaming_parallel(ndjson, schema, vopts, opts);
    let fast = validate_streaming_parallel_fast(ndjson, schema, vopts, opts);
    assert_eq!(fast, slow, "fast verdicts must equal slow verdicts");

    let t = Instant::now();
    black_box(validate_streaming_parallel(ndjson, schema, vopts, opts));
    let slow_rate = docs_per_sec(n, t.elapsed());
    let t = Instant::now();
    black_box(validate_streaming_parallel_fast(
        ndjson, schema, vopts, opts,
    ));
    let fast_rate = docs_per_sec(n, t.elapsed());
    Timed {
        slow_rate,
        fast_rate,
    }
}

fn time_translate(ndjson: &str, n: usize, shredder: &Shredder, opts: StreamingOptions) -> Timed {
    let slow = translate_streaming_parallel(ndjson, shredder, opts).expect("clean corpus");
    let fast = translate_streaming_parallel_fast(ndjson, shredder, opts).expect("clean corpus");
    assert_eq!(fast, slow, "fast batch must equal slow batch");

    let t = Instant::now();
    black_box(translate_streaming_parallel(ndjson, shredder, opts).expect("clean corpus"));
    let slow_rate = docs_per_sec(n, t.elapsed());
    let t = Instant::now();
    black_box(translate_streaming_parallel_fast(ndjson, shredder, opts).expect("clean corpus"));
    let fast_rate = docs_per_sec(n, t.elapsed());
    Timed {
        slow_rate,
        fast_rate,
    }
}

fn main() {
    banner(
        "E18",
        "SWAR structural fast path + projection pushdown vs full parsing",
    );
    let opts = StreamingOptions {
        workers: 1,
        min_shard_bytes: 4 * 1024,
    };
    const N: usize = 100_000;

    // ---- standard corpus: GitHub-style events -------------------------
    let docs = Corpus::Github.generate(N);
    let ndjson = to_ndjson(&docs);
    let envelope_schema = CompiledSchema::compile(&json!({
        "type": "object",
        "properties": {
            "id": {"type": "string"},
            "type": {"type": "string"},
            "public": {"type": "boolean"}
        },
        "required": ["id", "type"]
    }))
    .expect("schema compiles");
    let full_ty = jsonx::core::infer_collection(&docs, jsonx::core::Equivalence::Kind);
    let full_shredder = Shredder::from_type(&full_ty);
    println!(
        "standard corpus: {} documents, {:.1} MiB (validation projects 3 of 7\nroot fields; translation shreds the full layout — nothing skipped)\n",
        N,
        ndjson.len() as f64 / (1024.0 * 1024.0)
    );

    // ---- wide corpus: projection skips most bytes ---------------------
    let wide = wide_docs(N);
    let wide_ndjson = to_ndjson(&wide);
    let wide_schema = CompiledSchema::compile(&json!({
        "type": "object",
        "properties": {"id": {"type": "integer"}, "name": {"type": "string"}},
        "required": ["id", "name"]
    }))
    .expect("schema compiles");
    let narrow: Vec<Value> = wide
        .iter()
        .map(
            |d| json!({"id": d.get("id").unwrap().clone(), "name": d.get("name").unwrap().clone()}),
        )
        .collect();
    let narrow_ty = jsonx::core::infer_collection(&narrow, jsonx::core::Equivalence::Kind);
    let narrow_shredder = Shredder::from_type(&narrow_ty);

    let skip_frac = skipped_byte_fraction(
        &wide_ndjson,
        &FieldSet::new(["id".to_string(), "name".to_string()]),
    );
    println!(
        "wide corpus: {} documents, {:.1} MiB, projection skips {:.1}% of bytes",
        N,
        wide_ndjson.len() as f64 / (1024.0 * 1024.0),
        skip_frac * 100.0
    );
    assert!(
        skip_frac >= 0.5,
        "wide corpus must skip at least half its bytes, got {skip_frac:.2}"
    );

    println!(
        "\n{:>22} {:>14} {:>14} {:>10}",
        "pipeline / corpus", "slow docs/s", "fast docs/s", "speedup"
    );
    let val_std = time_validate(&ndjson, N, &envelope_schema, opts);
    report_row("validate / standard", N, &val_std);
    let tr_std = time_translate(&ndjson, N, &full_shredder, opts);
    report_row("translate / standard", N, &tr_std);
    let val_wide = time_validate(&wide_ndjson, N, &wide_schema, opts);
    report_row("validate / wide", N, &val_wide);
    let tr_wide = time_translate(&wide_ndjson, N, &narrow_shredder, opts);
    report_row("translate / wide", N, &tr_wide);

    // The acceptance floor: on the wide corpus the fast path must beat
    // the full parser by at least 1.5x for both consumers.
    assert!(
        val_wide.speedup() >= 1.5,
        "wide validation speedup {:.2} below the 1.5x floor",
        val_wide.speedup()
    );
    assert!(
        tr_wide.speedup() >= 1.5,
        "wide translation speedup {:.2} below the 1.5x floor",
        tr_wide.speedup()
    );

    let report_doc = json!({
        "experiment": "E18",
        "documents": (N as i64),
        "wide_skipped_byte_pct": ((skip_frac * 1000.0).round() / 10.0),
        "validate_standard": {
            "slow_docs_per_sec": (val_std.slow_rate as i64),
            "fast_docs_per_sec": (val_std.fast_rate as i64),
            "speedup": ((val_std.speedup() * 100.0).round() / 100.0)
        },
        "translate_standard": {
            "slow_docs_per_sec": (tr_std.slow_rate as i64),
            "fast_docs_per_sec": (tr_std.fast_rate as i64),
            "speedup": ((tr_std.speedup() * 100.0).round() / 100.0)
        },
        "validate_wide": {
            "slow_docs_per_sec": (val_wide.slow_rate as i64),
            "fast_docs_per_sec": (val_wide.fast_rate as i64),
            "speedup": ((val_wide.speedup() * 100.0).round() / 100.0)
        },
        "translate_wide": {
            "slow_docs_per_sec": (tr_wide.slow_rate as i64),
            "fast_docs_per_sec": (tr_wide.fast_rate as i64),
            "speedup": ((tr_wide.speedup() * 100.0).round() / 100.0)
        }
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parsing.json");
    std::fs::write(path, to_string_pretty(&report_doc) + "\n").expect("write BENCH_parsing.json");
    println!("\nwrote {path}");

    // ---- Criterion: the wide variants at 8k docs ----------------------
    let small_wide = to_ndjson(&wide_docs(8_000));
    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e18_parsing");
    group.throughput(Throughput::Elements(8_000));
    group.bench_function("validate_wide_slow", |b| {
        b.iter(|| {
            validate_streaming_parallel(
                black_box(&small_wide),
                &wide_schema,
                ValidatorOptions::default(),
                opts,
            )
        })
    });
    group.bench_function("validate_wide_fast", |b| {
        b.iter(|| {
            validate_streaming_parallel_fast(
                black_box(&small_wide),
                &wide_schema,
                ValidatorOptions::default(),
                opts,
            )
        })
    });
    group.bench_function("translate_wide_slow", |b| {
        b.iter(|| translate_streaming_parallel(black_box(&small_wide), &narrow_shredder, opts))
    });
    group.bench_function("translate_wide_fast", |b| {
        b.iter(|| translate_streaming_parallel_fast(black_box(&small_wide), &narrow_shredder, opts))
    });
    group.finish();
    c.final_summary();
}
