//! E6 — Distributed/parallel inference scaling (§4.1, [10–12]).
//!
//! Claim operationalised: because fusion is a commutative monoid, the
//! reduce distributes — inference throughput scales with workers, and the
//! result is bit-identical to the sequential fold. Prints the scaling
//! series and benches 1/2/4/8 workers.

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use jsonx_bench::{banner, criterion};
use jsonx_core::{infer_collection, infer_collection_parallel, Equivalence, ParallelOptions};
use jsonx_data::text_size;
use jsonx_gen::Corpus;
use std::time::Instant;

fn main() {
    banner(
        "E6",
        "parallel inference: speedup over workers, identical results (map/reduce)",
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("hardware parallelism available: {cores} core(s)");
    if cores == 1 {
        println!("NOTE: single-core substrate — the distributed-correctness property");
        println!("(identical results at every worker count) is the measurable claim here;");
        println!("wall-clock speedup requires multi-core hardware.\n");
    }
    let docs = Corpus::Github.generate(40_000);
    let bytes: usize = docs.iter().map(text_size).sum();
    println!(
        "collection: {} documents, {:.1} MiB\n",
        docs.len(),
        bytes as f64 / (1024.0 * 1024.0)
    );
    // Warm up caches/allocator before the reference measurement.
    let _ = infer_collection(&docs[..2_000], Equivalence::Kind);
    let t = Instant::now();
    let sequential = infer_collection(&docs, Equivalence::Kind);
    let seq_time = t.elapsed();
    println!(
        "{:>8} {:>12} {:>9} {:>10}",
        "workers", "time", "speedup", "identical"
    );
    println!("{:>8} {:>12.2?} {:>8.2}x {:>10}", "seq", seq_time, 1.0, "-");
    for workers in [1usize, 2, 4, 8] {
        let opts = ParallelOptions {
            workers,
            min_chunk: 64,
        };
        let t = Instant::now();
        let parallel = infer_collection_parallel(&docs, Equivalence::Kind, opts);
        let elapsed = t.elapsed();
        println!(
            "{:>8} {:>12.2?} {:>8.2}x {:>10}",
            workers,
            elapsed,
            seq_time.as_secs_f64() / elapsed.as_secs_f64(),
            parallel == sequential
        );
        assert_eq!(parallel, sequential, "parallel result must be identical");
    }

    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e06_parallel");
    let small = Corpus::Github.generate(8_000);
    let small_bytes: usize = small.iter().map(text_size).sum();
    group.throughput(Throughput::Bytes(small_bytes as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            let opts = ParallelOptions {
                workers: w,
                min_chunk: 64,
            };
            b.iter(|| infer_collection_parallel(black_box(&small), Equivalence::Kind, opts))
        });
    }
    group.finish();
    c.final_summary();
}
