//! E3 — Parametric inference: precision vs succinctness (§4.1, [10–12]).
//!
//! Claim operationalised: K-equivalence yields compact schemas (one record
//! with optional fields), L-equivalence yields precise ones (one union
//! member per record shape); both stay far smaller than the data while
//! admitting every input document. Prints the K/L table per corpus and
//! benches inference throughput.

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use jsonx_bench::{banner, criterion};
use jsonx_core::{false_acceptance_rate, infer_collection, measure, Equivalence};
use jsonx_data::{text_size, Value};
use jsonx_gen::{Corpus, DialedGenerator, GeneratorConfig};

/// Probe documents for the precision metric: structurally perturbed
/// variants never present in the corpus.
fn perturbations(docs: &[Value], seed_shift: u64) -> Vec<Value> {
    let config = GeneratorConfig {
        seed: 999 + seed_shift,
        type_noise: 1.0,
        shape_variants: 4,
        ..Default::default()
    };
    let mut probes = DialedGenerator::new(config).generate(docs.len().min(200));
    // Also take real documents and break one field's kind: an object
    // is never admissible at these scalar positions.
    for d in docs.iter().take(100) {
        if let Some(obj) = d.as_object() {
            let mut broken = obj.clone();
            if let Some(key) = obj.keys().next().map(str::to_string) {
                broken.insert(key, jsonx_data::json!({"__corrupt": true}));
                probes.push(Value::Obj(broken));
            }
        }
    }
    probes
}

fn main() {
    banner(
        "E3",
        "K vs L: schema size, union width, precision per corpus (Baazizi et al.)",
    );
    println!(
        "{:<12} {:>6} {:>11} {:>11} {:>11} {:>12} {:>10}",
        "corpus", "equiv", "type nodes", "max union", "opt fields", "data bytes", "FAR"
    );
    for corpus in [
        Corpus::Twitter,
        Corpus::Github,
        Corpus::Nytimes,
        Corpus::Heterogeneous(40),
    ] {
        let docs = corpus.generate(1_000);
        let data_bytes: usize = docs.iter().map(text_size).sum();
        let probes = perturbations(&docs, corpus.name().len() as u64);
        for equiv in [Equivalence::Kind, Equivalence::Label] {
            let ty = infer_collection(&docs, equiv);
            for d in &docs {
                assert!(ty.admits(d), "soundness violated on {}", corpus.name());
            }
            let m = measure(&ty);
            let far = false_acceptance_rate(&ty, &probes);
            println!(
                "{:<12} {:>6} {:>11} {:>11} {:>11} {:>12} {:>9.1}%",
                corpus.name(),
                equiv.name(),
                m.size,
                m.max_union_width,
                m.optional_fields,
                data_bytes,
                far * 100.0
            );
        }
    }
    println!("\n(L never admits more than K; both stay orders of magnitude smaller than the data)");

    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e03_inference");
    let docs = Corpus::Github.generate(2_000);
    let bytes: usize = docs.iter().map(text_size).sum();
    group.throughput(Throughput::Bytes(bytes as u64));
    for equiv in [Equivalence::Kind, Equivalence::Label] {
        group.bench_with_input(
            BenchmarkId::new("github_2k", equiv.name()),
            &equiv,
            |b, &e| b.iter(|| infer_collection(black_box(&docs), e)),
        );
    }
    group.finish();
    c.final_summary();
}
