//! E13 — Output-schema inference for queries (§4.1, [13] Jaql).
//!
//! Claim operationalised: Jaql "exploit[s] schema information for
//! inferring the output schema of a query, but still require[s] an
//! externally supplied schema for input data, and perform[s] output schema
//! inference only locally". Two measurements:
//!
//! 1. static output typing costs microseconds and is **independent of
//!    collection size** (it runs on the schema), while query execution
//!    scales linearly with the data;
//! 2. the "externally supplied schema" requirement disappears here —
//!    the input schema comes from the same workspace's inference, whose
//!    (amortisable) cost is shown alongside.

use criterion::{black_box, Criterion};
use jsonx_bench::{banner, criterion};
use jsonx_core::{infer_collection, print_type, type_size, Equivalence, PrintOptions};
use jsonx_gen::Corpus;
use jsonx_jaql::{expr, infer_output_type, Pipeline};
use std::time::Instant;

fn query() -> Pipeline {
    Pipeline::new()
        .filter(expr::path("type").eq(expr::lit("PushEvent")))
        .expand(expr::path("payload.commits"))
        .transform(expr::record([
            ("sha", expr::path("sha")),
            ("flag", expr::path("distinct")),
        ]))
}

fn main() {
    banner(
        "E13",
        "static query output typing is data-size independent (Jaql)",
    );
    let q = query();
    println!("pipeline: {q}\n");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>10}",
        "docs", "infer input", "type query", "run query", "rows"
    );
    for n in [1_000usize, 10_000, 50_000] {
        let docs = Corpus::Github.generate(n);
        let t = Instant::now();
        let input_ty = infer_collection(&docs, Equivalence::Kind);
        let infer_time = t.elapsed();
        let t = Instant::now();
        let output_ty = infer_output_type(&q, &input_ty);
        let typing_time = t.elapsed();
        let t = Instant::now();
        let rows = q.eval(&docs);
        let eval_time = t.elapsed();
        for row in &rows {
            assert!(output_ty.admits(row), "typing must stay sound");
        }
        println!(
            "{:>8} {:>14.2?} {:>14.2?} {:>14.2?} {:>10}",
            n,
            infer_time,
            typing_time,
            eval_time,
            rows.len()
        );
    }
    let docs = Corpus::Github.generate(1_000);
    let input_ty = infer_collection(&docs, Equivalence::Kind);
    let out = infer_output_type(&q, &input_ty);
    println!(
        "\noutput type ({} nodes): {}",
        type_size(&out),
        print_type(&out, PrintOptions::plain())
    );
    println!("(typing cost is flat across collection sizes; execution is linear)");

    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e13_query");
    group.bench_function("static_output_typing", |b| {
        b.iter(|| infer_output_type(black_box(&q), black_box(&input_ty)))
    });
    group.bench_function("execute_1k", |b| {
        b.iter(|| query().eval(black_box(&docs)).len())
    });
    group.finish();
    c.final_summary();
}
