//! E9 — Mison projection pushdown (§4.2, [20] Li et al.).
//!
//! Claim operationalised: when an analytics task touches only a few fields
//! of wide records, structural-index parsing with projection beats eager
//! full parsing, and the advantage shrinks as the projected fraction grows
//! (the paper's crossover). Prints the projection-ratio sweep on the
//! NYTimes-like corpus, then benches full vs projected parsing.

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use jsonx_bench::{banner, criterion};
use jsonx_gen::Corpus;
use jsonx_mison::ProjectedParser;
use jsonx_syntax::{parse_bytes, write_ndjson};
use std::time::Instant;

fn main() {
    banner(
        "E9",
        "projection pushdown: speedup vs number of projected fields (Mison)",
    );
    let docs = Corpus::Nytimes.generate(4_000);
    let ndjson = write_ndjson(&docs);
    let lines: Vec<&[u8]> = ndjson.lines().map(str::as_bytes).collect();
    let total_fields = docs[0].as_object().unwrap().len();
    let all_fields: Vec<String> = docs[0]
        .as_object()
        .unwrap()
        .keys()
        .map(str::to_string)
        .collect();
    println!(
        "corpus: {} articles x {} top-level fields, {:.1} MiB\n",
        docs.len(),
        total_fields,
        ndjson.len() as f64 / (1024.0 * 1024.0)
    );

    // Baseline: full parse.
    let t = Instant::now();
    for line in &lines {
        black_box(parse_bytes(line).unwrap());
    }
    let full = t.elapsed();
    println!("{:>10} {:>12} {:>9}", "fields", "time", "speedup");
    println!("{:>10} {:>12.2?} {:>8.2}x", "all(full)", full, 1.0);

    for k in [1usize, 2, 4, 8, total_fields] {
        let projected: Vec<&str> = all_fields.iter().take(k).map(String::as_str).collect();
        let parser = ProjectedParser::new(&projected).unwrap();
        let t = Instant::now();
        for line in &lines {
            black_box(parser.parse(line).unwrap());
        }
        let elapsed = t.elapsed();
        println!(
            "{:>10} {:>12.2?} {:>8.2}x",
            k,
            elapsed,
            full.as_secs_f64() / elapsed.as_secs_f64()
        );
    }
    println!("\n(speedup is largest at 1-2 fields and decays toward ~1x at full width —\n the Mison crossover; absolute factors differ from the paper's AVX testbed)");

    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e09_parsing");
    group.throughput(Throughput::Bytes(ndjson.len() as u64));
    group.bench_function("full_parse", |b| {
        b.iter(|| {
            for line in &lines {
                black_box(parse_bytes(line).unwrap());
            }
        })
    });
    for k in [1usize, 4] {
        let projected: Vec<&str> = all_fields.iter().take(k).map(String::as_str).collect();
        let parser = ProjectedParser::new(&projected).unwrap();
        group.bench_with_input(BenchmarkId::new("projected", k), &k, |b, _| {
            b.iter(|| {
                for line in &lines {
                    black_box(parser.parse(line).unwrap());
                }
            })
        });
    }
    group.finish();
    c.final_summary();
}
