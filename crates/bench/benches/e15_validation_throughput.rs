//! E15 — Compiled fail-fast validation (§2 validation at collection scale).
//!
//! Claim operationalised: lowering a compiled schema into a flat IR —
//! `$ref` targets pre-resolved to arena indices, sorted property tables,
//! kind bitmasks, reusable regex scratch — makes the boolean verdict
//! (`is_valid`) several times faster than the error-collecting
//! interpreter on a ref-heavy schema, and newline sharding distributes
//! whole-pipeline (parse + probe) validation across workers with
//! positionally identical verdicts. Prints a docs/sec table over 100k
//! GitHub-style events, writes `BENCH_validation.json`, and benches the
//! three paths under Criterion.

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use jsonx::schema::{CompiledSchema, ValidatorOptions};
use jsonx::syntax::{parse_ndjson, to_string, to_string_pretty};
use jsonx::{validate_streaming_parallel, StreamingOptions};
use jsonx_bench::{banner, criterion};
use jsonx_data::{json, Value};
use jsonx_gen::Corpus;
use std::time::Instant;

/// A reference-heavy schema for the GitHub events corpus: every envelope
/// field routes through `definitions`, the payload is an `anyOf` of four
/// `$ref` branches (one per event type), and commits recurse through a
/// shared `$ref`. Patterns guard ids, shas, urls and timestamps.
fn github_schema() -> Value {
    json!({
        "$ref": "#/definitions/event",
        "definitions": {
            "event": {
                "type": "object",
                "required": ["id", "type", "actor", "repo", "payload", "public", "created_at"],
                "properties": {
                    "id": {"type": "string", "pattern": "^[0-9]+$"},
                    "type": {"enum": ["PushEvent", "IssuesEvent", "WatchEvent", "ForkEvent"]},
                    "actor": {"$ref": "#/definitions/actor"},
                    "repo": {"$ref": "#/definitions/repo"},
                    "payload": {"anyOf": [
                        {"$ref": "#/definitions/push_payload"},
                        {"$ref": "#/definitions/issues_payload"},
                        {"$ref": "#/definitions/watch_payload"},
                        {"$ref": "#/definitions/fork_payload"}
                    ]},
                    "public": {"type": "boolean"},
                    "created_at": {
                        "type": "string",
                        "pattern": "^[0-9]{4}-[0-9]{2}-[0-9]{2}T[0-9]{2}:[0-9]{2}:[0-9]{2}Z$"
                    }
                }
            },
            "actor": {
                "type": "object",
                "required": ["id", "login"],
                "properties": {
                    "id": {"type": "integer", "minimum": 1},
                    "login": {"type": "string", "minLength": 1},
                    "gravatar_id": {"type": "string"}
                }
            },
            "repo": {
                "type": "object",
                "required": ["id", "name", "url"],
                "properties": {
                    "id": {"type": "integer", "minimum": 1},
                    "name": {"type": "string", "pattern": "^[a-z0-9]+/"},
                    "url": {"type": "string", "pattern": "^https://"}
                }
            },
            "commit": {
                "type": "object",
                "required": ["sha", "message"],
                "properties": {
                    "sha": {"type": "string", "pattern": "^[0-9a-f]{40}$"},
                    "message": {"type": "string"},
                    "distinct": {"type": "boolean"}
                }
            },
            "push_payload": {
                "type": "object",
                "required": ["push_id", "commits"],
                "properties": {
                    "push_id": {"type": "integer", "minimum": 1},
                    "size": {"type": "integer", "minimum": 0},
                    "ref": {"type": "string"},
                    "commits": {
                        "type": "array",
                        "items": {"$ref": "#/definitions/commit"},
                        "minItems": 1
                    }
                }
            },
            "issues_payload": {
                "type": "object",
                "required": ["action", "issue"],
                "properties": {
                    "action": {"enum": ["opened", "closed"]},
                    "issue": {
                        "type": "object",
                        "required": ["number"],
                        "properties": {
                            "number": {"type": "integer", "minimum": 1},
                            "title": {"type": "string"},
                            "labels": {"items": {"type": "object"}},
                            "assignee": {"anyOf": [
                                {"type": "null"},
                                {"type": "object", "required": ["login"]}
                            ]}
                        }
                    }
                }
            },
            "watch_payload": {
                "type": "object",
                "required": ["action"],
                "properties": {"action": {"const": "started"}}
            },
            "fork_payload": {
                "type": "object",
                "required": ["forkee"],
                "properties": {
                    "forkee": {
                        "type": "object",
                        "required": ["id", "full_name"],
                        "properties": {
                            "id": {"type": "integer"},
                            "full_name": {"type": "string"},
                            "private": {"type": "boolean"}
                        }
                    }
                }
            }
        }
    })
}

fn to_ndjson(docs: &[Value]) -> String {
    let mut out = String::new();
    for d in docs {
        out.push_str(&to_string(d));
        out.push('\n');
    }
    out
}

fn docs_per_sec(n: usize, elapsed: std::time::Duration) -> f64 {
    n as f64 / elapsed.as_secs_f64()
}

fn main() {
    banner(
        "E15",
        "compiled fail-fast validation: IR probe vs interpreter, sharded NDJSON",
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("hardware parallelism available: {cores} core(s)");
    if cores == 1 {
        println!("NOTE: single-core substrate — shard-transparency (identical verdicts");
        println!("at every worker count) is the measurable claim for the parallel rows;");
        println!("wall-clock speedup from sharding requires multi-core hardware.\n");
    }

    let schema = CompiledSchema::compile(&github_schema()).expect("schema compiles");
    let vopts = ValidatorOptions::default();
    let docs = Corpus::Github.generate(100_000);
    let ndjson = to_ndjson(&docs);
    println!(
        "collection: {} documents, {:.1} MiB of NDJSON\n",
        docs.len(),
        ndjson.len() as f64 / (1024.0 * 1024.0)
    );

    // Warm both paths, then time validation over pre-parsed DOMs so the
    // interpreter-vs-IR comparison isolates validation cost.
    let warm = docs.len() / 16;
    for d in &docs[..warm] {
        let _ = schema.validate_with(d, vopts);
        let _ = black_box(schema.is_valid(d));
    }

    let t = Instant::now();
    let slow_valid: usize = docs
        .iter()
        .filter(|d| schema.validate_with(d, vopts).is_ok())
        .count();
    let interp_time = t.elapsed();

    let mut fast = schema.fast_validator_with(vopts);
    let t = Instant::now();
    let fast_valid: usize = docs.iter().filter(|d| fast.is_valid(d)).count();
    let compiled_time = t.elapsed();

    assert_eq!(
        fast_valid, slow_valid,
        "fail-fast and interpreter verdicts must agree"
    );
    assert_eq!(slow_valid, docs.len(), "generated corpus should validate");

    let speedup = interp_time.as_secs_f64() / compiled_time.as_secs_f64();
    println!(
        "{:>16} {:>12} {:>14} {:>14}",
        "path", "time", "docs/sec", "vs interp"
    );
    println!(
        "{:>16} {:>12.2?} {:>14.0} {:>13.2}x",
        "interpreter",
        interp_time,
        docs_per_sec(docs.len(), interp_time),
        1.0
    );
    println!(
        "{:>16} {:>12.2?} {:>14.0} {:>13.2}x",
        "compiled IR",
        compiled_time,
        docs_per_sec(docs.len(), compiled_time),
        speedup
    );

    // Whole-pipeline rows: parse + probe per line, sharded across workers.
    let reference: Vec<bool> = {
        let dom = parse_ndjson(&ndjson).expect("valid NDJSON");
        dom.iter()
            .map(|d| schema.validate_with(d, vopts).is_ok())
            .collect()
    };
    let mut parallel_rates = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let opts = StreamingOptions {
            workers,
            min_shard_bytes: 4 * 1024,
        };
        let t = Instant::now();
        let verdicts = validate_streaming_parallel(&ndjson, &schema, vopts, opts);
        let elapsed = t.elapsed();
        assert_eq!(verdicts.len(), reference.len());
        for ((line, v), expected) in verdicts.iter().zip(&reference) {
            assert_eq!(v.is_valid(), *expected, "line {line}");
        }
        println!(
            "{:>16} {:>12.2?} {:>14.0} {:>13.2}x  (parse+probe)",
            format!("workers={workers}"),
            elapsed,
            docs_per_sec(docs.len(), elapsed),
            interp_time.as_secs_f64() / elapsed.as_secs_f64(),
        );
        parallel_rates.push((workers, docs_per_sec(docs.len(), elapsed)));
    }

    assert!(
        speedup >= 3.0,
        "acceptance: compiled fail-fast must be >= 3x interpreter (got {speedup:.2}x)"
    );

    let mut parallel = jsonx_data::Object::new();
    for (workers, rate) in &parallel_rates {
        parallel.insert(format!("workers_{workers}"), json!(*rate as i64));
    }
    let report = json!({
        "experiment": "E15",
        "documents": (docs.len() as i64),
        "ndjson_mib": (ndjson.len() as f64 / (1024.0 * 1024.0)),
        "interpreter_docs_per_sec": (docs_per_sec(docs.len(), interp_time) as i64),
        "compiled_docs_per_sec": (docs_per_sec(docs.len(), compiled_time) as i64),
        "compiled_speedup": speedup,
        "parallel_parse_probe_docs_per_sec": Value::Obj(parallel)
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_validation.json");
    std::fs::write(path, to_string_pretty(&report) + "\n").expect("write BENCH_validation.json");
    println!("\nwrote {path}");

    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e15_validation");
    let small_docs = Corpus::Github.generate(8_000);
    let small = to_ndjson(&small_docs);
    group.throughput(Throughput::Elements(small_docs.len() as u64));
    group.bench_function("interpreter", |b| {
        b.iter(|| {
            small_docs
                .iter()
                .filter(|d| schema.validate_with(black_box(d), vopts).is_ok())
                .count()
        })
    });
    group.bench_function("compiled_is_valid", |b| {
        let mut fv = schema.fast_validator_with(vopts);
        b.iter(|| {
            small_docs
                .iter()
                .filter(|d| fv.is_valid(black_box(d)))
                .count()
        })
    });
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("stream_workers", workers),
            &workers,
            |b, &w| {
                let opts = StreamingOptions {
                    workers: w,
                    min_shard_bytes: 4 * 1024,
                };
                b.iter(|| validate_streaming_parallel(black_box(&small), &schema, vopts, opts))
            },
        );
    }
    group.finish();
    c.final_summary();
}
