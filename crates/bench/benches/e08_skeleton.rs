//! E8 — Skeleton coverage/size trade-off (§2, [24] Wang et al.).
//!
//! Claim operationalised: a skeleton mined at coverage θ keeps only the
//! frequent structures — its size shrinks as θ drops, and paths unique to
//! rare structures become unanswerable ("the skeleton may totally miss
//! information about paths"). Prints the coverage sweep on the
//! GitHub-events corpus (whose payload shapes have a skewed distribution)
//! and benches mining.

use criterion::{black_box, BenchmarkId, Criterion};
use jsonx_bench::{banner, criterion};
use jsonx_gen::Corpus;
use jsonx_skeleton::Skeleton;

fn main() {
    banner(
        "E8",
        "skeleton size and path recall vs coverage threshold (Wang et al.)",
    );
    let docs = Corpus::Github.generate(5_000);
    // Ground truth: every path in the full skeleton.
    let full = Skeleton::mine(&docs, 1.0);
    let all_paths: Vec<String> = full.paths().map(|p| p.display()).collect();
    println!(
        "corpus: {} events, {} distinct paths at full coverage\n",
        docs.len(),
        all_paths.len()
    );
    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>12} {:>14}",
        "coverage", "structures", "nodes", "paths", "recall", "rare visible"
    );
    for theta in [1.0f64, 0.95, 0.9, 0.8, 0.6, 0.4] {
        let sk = Skeleton::mine(&docs, theta);
        let stats = sk.stats();
        let recalled = all_paths.iter().filter(|p| sk.contains_path(p)).count();
        println!(
            "{:>10.2} {:>12} {:>10} {:>10} {:>11.1}% {:>14}",
            theta,
            stats.structures,
            stats.size,
            stats.paths,
            recalled as f64 * 100.0 / all_paths.len() as f64,
            if sk.contains_path("payload.forkee") {
                "yes"
            } else {
                "no (dropped)"
            }
        );
    }
    println!("\n(payload.forkee belongs to the rarest event type and disappears first)");

    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e08_skeleton_mining");
    for &theta in &[1.0f64, 0.8] {
        group.bench_with_input(
            BenchmarkId::new("coverage", format!("{theta:.1}")),
            &theta,
            |b, &t| b.iter(|| Skeleton::mine(black_box(&docs), t)),
        );
    }
    group.finish();
    c.final_summary();
}
