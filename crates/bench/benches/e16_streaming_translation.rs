//! E16 — Pipeline-engine stages: streaming translation and the combined
//! single-pass infer+validate (§4.1 map/reduce meets §5 translation).
//!
//! Two claims operationalised on the shared sharded engine:
//!
//! 1. Schema-driven translation can stream: shredding newline-bounded
//!    shards into per-worker columnar batches and concatenating them in
//!    shard order builds a batch row-identical to the DOM path
//!    (`Shredder::shred` over the parsed collection) at every worker
//!    count — without ever materialising the whole collection as DOMs.
//! 2. Fusing inference and validation into one pass halves tokenisation:
//!    `StreamTyper::type_and_build` feeds one raw-event walk to both the
//!    type fold and the compiled fail-fast validator, so the combined
//!    stage beats running the two streaming passes back to back while
//!    producing bit-identical type and verdicts.
//!
//! Prints timing tables over 100k GitHub-style events, writes
//! `BENCH_translation.json`, and benches both stages under Criterion.

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use jsonx::core::{infer_collection, Equivalence};
use jsonx::schema::{CompiledSchema, ValidatorOptions};
use jsonx::syntax::{parse_ndjson, to_string, to_string_pretty};
use jsonx::translate::Shredder;
use jsonx::{
    infer_streaming, infer_validate_streaming_parallel, translate_streaming_parallel,
    validate_streaming, StreamingOptions,
};
use jsonx_bench::{banner, criterion};
use jsonx_data::{json, Value};
use jsonx_gen::Corpus;
use std::time::Instant;

/// A lean envelope schema for the GitHub events corpus — enough keywords
/// that the validator does real work per document without dominating the
/// tokenisation cost the combined pass is designed to halve.
fn envelope_schema() -> Value {
    json!({
        "type": "object",
        "required": ["id", "type", "actor", "repo", "public", "created_at"],
        "properties": {
            "id": {"type": "string", "pattern": "^[0-9]+$"},
            "type": {"enum": ["PushEvent", "IssuesEvent", "WatchEvent", "ForkEvent"]},
            "actor": {
                "type": "object",
                "required": ["id", "login"],
                "properties": {
                    "id": {"type": "integer", "minimum": 1},
                    "login": {"type": "string", "minLength": 1}
                }
            },
            "repo": {
                "type": "object",
                "required": ["id", "name"],
                "properties": {"id": {"type": "integer", "minimum": 1}}
            },
            "public": {"type": "boolean"},
            "created_at": {"type": "string", "minLength": 20}
        }
    })
}

fn to_ndjson(docs: &[Value]) -> String {
    let mut out = String::new();
    for d in docs {
        out.push_str(&to_string(d));
        out.push('\n');
    }
    out
}

fn docs_per_sec(n: usize, elapsed: std::time::Duration) -> f64 {
    n as f64 / elapsed.as_secs_f64()
}

fn main() {
    banner(
        "E16",
        "pipeline stages: streaming translation, combined single-pass infer+validate",
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("hardware parallelism available: {cores} core(s)");
    if cores == 1 {
        println!("NOTE: single-core substrate — shard-transparency (identical batches");
        println!("and verdicts at every worker count) is the measurable claim for the");
        println!("parallel rows; wall-clock speedup needs multi-core hardware.\n");
    }

    let docs = Corpus::Github.generate(100_000);
    let ndjson = to_ndjson(&docs);
    println!(
        "collection: {} documents, {:.1} MiB of NDJSON\n",
        docs.len(),
        ndjson.len() as f64 / (1024.0 * 1024.0)
    );

    // ---- Part 1: streaming vs DOM translation -------------------------
    let t = Instant::now();
    let dom_docs = parse_ndjson(&ndjson).expect("valid NDJSON");
    let ty = infer_collection(&dom_docs, Equivalence::Kind);
    let shredder = Shredder::from_type(&ty);
    let dom_batch = shredder.clone().shred(&dom_docs).expect("records shred");
    let dom_time = t.elapsed();

    println!(
        "{:>20} {:>12} {:>14} {:>12}",
        "translation path", "time", "docs/sec", "vs DOM"
    );
    println!(
        "{:>20} {:>12.2?} {:>14.0} {:>11.2}x  (parse+infer+shred)",
        "DOM",
        dom_time,
        docs_per_sec(docs.len(), dom_time),
        1.0
    );
    let mut translate_rates = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let opts = StreamingOptions {
            workers,
            min_shard_bytes: 4 * 1024,
        };
        let t = Instant::now();
        let sty = jsonx::infer_streaming_parallel(&ndjson, Equivalence::Kind, opts)
            .expect("well-formed NDJSON");
        let sh = Shredder::from_type(&sty);
        let batch = translate_streaming_parallel(&ndjson, &sh, opts).expect("records shred");
        let elapsed = t.elapsed();
        assert_eq!(sty, ty, "streaming type must equal DOM type");
        assert_eq!(
            batch, dom_batch,
            "streaming batch must equal DOM batch (workers={workers})"
        );
        println!(
            "{:>20} {:>12.2?} {:>14.0} {:>11.2}x  (infer+shred, no DOM collection)",
            format!("streaming w={workers}"),
            elapsed,
            docs_per_sec(docs.len(), elapsed),
            dom_time.as_secs_f64() / elapsed.as_secs_f64(),
        );
        translate_rates.push((workers, docs_per_sec(docs.len(), elapsed)));
    }

    // ---- Part 2: combined single pass vs two streaming passes ---------
    let schema = CompiledSchema::compile(&envelope_schema()).expect("schema compiles");
    let vopts = ValidatorOptions::default();

    let t = Instant::now();
    let two_pass_ty = infer_streaming(&ndjson, Equivalence::Kind).expect("well-formed");
    let two_pass_verdicts = validate_streaming(&ndjson, &schema, vopts);
    let two_pass_time = t.elapsed();
    let valid = two_pass_verdicts
        .iter()
        .filter(|(_, v)| v.is_valid())
        .count();
    println!(
        "\n{:>20} {:>12} {:>14} {:>12}   ({valid}/{} valid)",
        "infer+validate path",
        "time",
        "docs/sec",
        "vs 2-pass",
        docs.len()
    );
    println!(
        "{:>20} {:>12.2?} {:>14.0} {:>11.2}x  (tokenise twice)",
        "two passes",
        two_pass_time,
        docs_per_sec(docs.len(), two_pass_time),
        1.0
    );
    let mut combined_rates = Vec::new();
    let mut combined_seq_secs = f64::NAN;
    for workers in [1usize, 2, 4, 8] {
        let opts = StreamingOptions {
            workers,
            min_shard_bytes: 4 * 1024,
        };
        let t = Instant::now();
        let outcome =
            infer_validate_streaming_parallel(&ndjson, Equivalence::Kind, &schema, vopts, opts);
        let elapsed = t.elapsed();
        assert_eq!(outcome.ty.as_ref().unwrap(), &two_pass_ty);
        assert_eq!(outcome.verdicts, two_pass_verdicts);
        if workers == 1 {
            combined_seq_secs = elapsed.as_secs_f64();
        }
        println!(
            "{:>20} {:>12.2?} {:>14.0} {:>11.2}x  (tokenise once)",
            format!("combined w={workers}"),
            elapsed,
            docs_per_sec(docs.len(), elapsed),
            two_pass_time.as_secs_f64() / elapsed.as_secs_f64(),
        );
        combined_rates.push((workers, docs_per_sec(docs.len(), elapsed)));
    }
    let combined_speedup = two_pass_time.as_secs_f64() / combined_seq_secs;

    let mut translate = jsonx_data::Object::new();
    for (workers, rate) in &translate_rates {
        translate.insert(format!("workers_{workers}"), json!(*rate as i64));
    }
    let mut combined = jsonx_data::Object::new();
    for (workers, rate) in &combined_rates {
        combined.insert(format!("workers_{workers}"), json!(*rate as i64));
    }
    let report = json!({
        "experiment": "E16",
        "documents": (docs.len() as i64),
        "ndjson_mib": (ndjson.len() as f64 / (1024.0 * 1024.0)),
        "columns": (dom_batch.columns.len() as i64),
        "dom_translation_docs_per_sec": (docs_per_sec(docs.len(), dom_time) as i64),
        "streaming_translation_docs_per_sec": Value::Obj(translate),
        "two_pass_docs_per_sec": (docs_per_sec(docs.len(), two_pass_time) as i64),
        "combined_pass_docs_per_sec": Value::Obj(combined),
        "combined_vs_two_pass_speedup": combined_speedup
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_translation.json");
    std::fs::write(path, to_string_pretty(&report) + "\n").expect("write BENCH_translation.json");
    println!("\nwrote {path}");

    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e16_pipeline_stages");
    let small_docs = Corpus::Github.generate(8_000);
    let small = to_ndjson(&small_docs);
    let small_ty = infer_collection(&small_docs, Equivalence::Kind);
    let small_shredder = Shredder::from_type(&small_ty);
    group.throughput(Throughput::Elements(small_docs.len() as u64));
    group.bench_function("dom_shred", |b| {
        b.iter(|| {
            small_shredder
                .clone()
                .shred(black_box(&small_docs))
                .expect("records")
        })
    });
    for workers in [1usize, 4] {
        let opts = StreamingOptions {
            workers,
            min_shard_bytes: 4 * 1024,
        };
        group.bench_with_input(
            BenchmarkId::new("stream_shred_workers", workers),
            &workers,
            |b, _| {
                b.iter(|| translate_streaming_parallel(black_box(&small), &small_shredder, opts))
            },
        );
    }
    group.bench_function("two_pass_infer_validate", |b| {
        b.iter(|| {
            let ty = infer_streaming(black_box(&small), Equivalence::Kind);
            let verdicts = validate_streaming(black_box(&small), &schema, vopts);
            (ty, verdicts)
        })
    });
    group.bench_function("combined_pass_infer_validate", |b| {
        let opts = StreamingOptions::with_workers(1);
        b.iter(|| {
            infer_validate_streaming_parallel(
                black_box(&small),
                Equivalence::Kind,
                &schema,
                vopts,
                opts,
            )
        })
    });
    group.finish();
    c.final_summary();
}
