//! E11 — Schema-aware vs schema-blind data translation (§5).
//!
//! Claim operationalised: translating heterogeneous JSON into columnar /
//! binary formats is faster and cleaner when driven by an inferred schema:
//! the schema-aware shredder dispatches into a precomputed layout, while
//! the schema-blind one rediscovers and retypes columns while scanning.
//! Prints the comparison and benches shredding, Avro encoding, and
//! relational normalization.

use criterion::{black_box, Criterion, Throughput};
use jsonx_bench::{banner, criterion};
use jsonx_core::{infer_collection, Equivalence};
use jsonx_data::text_size;
use jsonx_gen::Corpus;
use jsonx_translate::{normalize, AvroCodec, AvroSchema, Shredder};
use std::time::Instant;

fn main() {
    banner(
        "E11",
        "schema-aware translation beats schema-blind conversion (§5)",
    );
    let docs = Corpus::Twitter.generate(5_000);
    let json_bytes: usize = docs.iter().map(text_size).sum();
    println!(
        "feed: {} tweets, {:.1} MiB JSON\n",
        docs.len(),
        json_bytes as f64 / (1024.0 * 1024.0)
    );

    // One-off schema inference (amortised across the feed).
    let t = Instant::now();
    let ty = infer_collection(&docs, Equivalence::Kind);
    let infer_time = t.elapsed();

    // Columnar: aware vs blind.
    let t = Instant::now();
    let aware_batch = Shredder::from_type(&ty).shred(&docs).unwrap();
    let aware_time = t.elapsed();
    let t = Instant::now();
    let blind_batch = Shredder::discovering().shred(&docs).unwrap();
    let blind_time = t.elapsed();
    println!(
        "columnar shredding ({} columns):",
        aware_batch.columns.len()
    );
    println!("  schema-aware: {aware_time:>10.2?}  (+ {infer_time:.2?} one-off inference)");
    println!(
        "  schema-blind: {blind_time:>10.2?}  ({:.2}x slower, layout rediscovered per record)",
        blind_time.as_secs_f64() / aware_time.as_secs_f64()
    );
    assert_eq!(aware_batch.rows, blind_batch.rows);

    // Avro-like binary rows: compaction factor.
    let codec = AvroCodec::new(AvroSchema::from_type(&ty));
    let t = Instant::now();
    let binary_bytes: usize = docs
        .iter()
        .map(|d| codec.encode(d).expect("conforming").len())
        .sum();
    let encode_time = t.elapsed();
    println!(
        "\navro-like encoding: {encode_time:.2?}, {} KiB -> {} KiB ({}%)",
        json_bytes / 1024,
        binary_bytes / 1024,
        binary_bytes * 100 / json_bytes
    );

    // Relational normalization.
    let t = Instant::now();
    let relations = normalize("tweets", &docs);
    let norm_time = t.elapsed();
    println!(
        "relational normalization: {norm_time:.2?}, {} relations ({} child, {} dims)",
        relations.len(),
        relations
            .iter()
            .filter(|r| r.columns.first().map(String::as_str) == Some("_parent_id"))
            .count(),
        relations
            .iter()
            .filter(|r| r.name.contains("_dim_"))
            .count()
    );

    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e11_translation");
    let sample = Corpus::Twitter.generate(1_000);
    let sample_bytes: usize = sample.iter().map(text_size).sum();
    let sample_ty = infer_collection(&sample, Equivalence::Kind);
    group.throughput(Throughput::Bytes(sample_bytes as u64));
    group.bench_function("shred_schema_aware", |b| {
        b.iter(|| {
            Shredder::from_type(&sample_ty)
                .shred(black_box(&sample))
                .unwrap()
        })
    });
    group.bench_function("shred_schema_blind", |b| {
        b.iter(|| Shredder::discovering().shred(black_box(&sample)).unwrap())
    });
    let sample_codec = AvroCodec::new(AvroSchema::from_type(&sample_ty));
    group.bench_function("avro_encode", |b| {
        b.iter(|| {
            sample
                .iter()
                .map(|d| sample_codec.encode(black_box(d)).unwrap().len())
                .sum::<usize>()
        })
    });
    group.finish();
    c.final_summary();
}
