//! E1 — Schema-language comparison (§2).
//!
//! Claim operationalised: JSON Schema, Joi and JSound can express the same
//! core record constraints (and agree on classification), but differ in
//! expressiveness and in validation cost. Prints the capability matrix,
//! then benches validation throughput of each language on the same
//! conforming/violating documents.

use criterion::{black_box, Criterion};
use jsonx_bench::{banner, criterion};
use jsonx_data::{json, Value};
use jsonx_gen::Corpus;
use jsonx_joi::{joi, JoiSchema};
use jsonx_jsound::JSoundSchema;
use jsonx_schema::CompiledSchema;

fn tweet_json_schema() -> CompiledSchema {
    CompiledSchema::compile(&json!({
        "type": "object",
        "required": ["id", "created_at", "user"],
        "properties": {
            "id": {"type": "integer", "minimum": 0},
            "created_at": {"type": "string"},
            "text": {"type": "string", "maxLength": 280},
            "full_text": {"type": "string"},
            "display_text_range": {"type": "array", "items": {"type": "integer"}},
            "user": {"type": "object", "required": ["id", "screen_name"],
                      "properties": {
                          "id": {"type": "integer"},
                          "screen_name": {"type": "string"},
                          "verified": {"type": "boolean"},
                          "followers_count": {"type": "integer"},
                          "location": {"type": "string"}}},
            "coordinates": {"anyOf": [{"type": "null"}, {"type": "object"}]},
            "entities": {"type": "object"},
            "retweet_count": {"type": "integer"},
            "favorite_count": {"type": "integer"},
            "retweeted_status": {"type": "object"}
        }
    }))
    .unwrap()
}

fn tweet_joi_schema() -> JoiSchema {
    joi::object()
        .key("id", joi::integer().min(0.0).required())
        .key("created_at", joi::string().required())
        .key("text", joi::string().max_len(280))
        .key("full_text", joi::string())
        .key("display_text_range", joi::array().items(joi::integer()))
        .key(
            "user",
            joi::object()
                .key("id", joi::integer().required())
                .key("screen_name", joi::string().required())
                .key("verified", joi::boolean())
                .key("followers_count", joi::integer())
                .key("location", joi::string())
                .build()
                .required(),
        )
        .key(
            "coordinates",
            joi::alternatives([joi::object().unknown(true).build()]).allow_null(),
        )
        .key("entities", joi::object().unknown(true).build())
        .key("retweet_count", joi::integer())
        .key("favorite_count", joi::integer())
        .key("retweeted_status", joi::object().unknown(true).build())
        .build()
}

fn tweet_jsound_schema() -> JSoundSchema {
    JSoundSchema::compile(&json!({
        "!id": "integer",
        "!created_at": "string",
        "text": "string",
        "full_text": "string",
        "display_text_range": ["integer"],
        "user": "any",
        "coordinates": "any",
        "entities": "any",
        "retweet_count": "integer",
        "favorite_count": "integer",
        "retweeted_status": "any"
    }))
    .unwrap()
}

fn capability_matrix() {
    banner(
        "E1",
        "schema-language capability matrix and validation agreement (§2)",
    );
    let rows: [(&str, [bool; 3]); 7] = [
        ("record types", [true, true, true]),
        ("union types (anyOf)", [true, true, false]),
        ("negation types (not)", [true, false, false]),
        ("regex patterns", [true, true, false]),
        ("co-occurrence (and/with)", [true, true, false]),
        ("mutual exclusion (xor)", [false, true, false]),
        ("value-dependent types (when)", [false, true, false]),
    ];
    println!(
        "{:<32} {:>12} {:>6} {:>8}",
        "capability", "JSON Schema", "Joi", "JSound"
    );
    for (cap, [js, joi_, jsnd]) in rows {
        let m = |b: bool| if b { "yes" } else { "-" };
        println!("{:<32} {:>12} {:>6} {:>8}", cap, m(js), m(joi_), m(jsnd));
    }
    // Note: JSON Schema expresses xor/when indirectly via oneOf/anyOf
    // encodings (see tests/schema_languages_agree.rs); the matrix lists
    // native constructs.
}

fn main() {
    capability_matrix();

    let docs: Vec<Value> = Corpus::Twitter.generate(500);
    let json_schema = tweet_json_schema();
    let joi_schema = tweet_joi_schema();
    let jsound_schema = tweet_jsound_schema();

    let valid_js = docs.iter().filter(|d| json_schema.is_valid(d)).count();
    let valid_joi = docs.iter().filter(|d| joi_schema.is_valid(d)).count();
    let valid_jsnd = docs.iter().filter(|d| jsound_schema.is_valid(d)).count();
    println!("\nacceptance on 500 generated tweets:");
    println!("  JSON Schema: {valid_js}/500   Joi: {valid_joi}/500   JSound: {valid_jsnd}/500");

    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e01_validation_throughput");
    group.bench_function("json_schema", |b| {
        b.iter(|| {
            let mut ok = 0;
            for d in &docs {
                if json_schema.is_valid(black_box(d)) {
                    ok += 1;
                }
            }
            ok
        })
    });
    group.bench_function("joi", |b| {
        b.iter(|| {
            let mut ok = 0;
            for d in &docs {
                if joi_schema.is_valid(black_box(d)) {
                    ok += 1;
                }
            }
            ok
        })
    });
    group.bench_function("jsound", |b| {
        b.iter(|| {
            let mut ok = 0;
            for d in &docs {
                if jsound_schema.is_valid(black_box(d)) {
                    ok += 1;
                }
            }
            ok
        })
    });
    group.finish();
    c.final_summary();
}
