//! E20 — Binary columnar I/O: `.jxc` write/read throughput and the cost
//! of the sink relative to in-memory shredding.
//!
//! §5's endgame is translated data *leaving* the system in a columnar
//! format. This experiment measures that last hop: serialising a
//! shredded [`ColumnarBatch`] to `.jxc` bytes (dictionary encoding,
//! validity bitmaps, nested-list offsets) and reading it back, with the
//! round trip asserted exact. Alongside throughput it reports the
//! compression story — `.jxc` bytes vs the NDJSON the batch came from —
//! since dictionary-encoded string columns are where schema-driven
//! translation pays off on disk.
//!
//! Prints a timing table over 100k GitHub-style events, merges an `e20`
//! section into `BENCH_translation.json` (E16 owns the rest of the
//! file), and benches write/read under Criterion.

use criterion::{black_box, Criterion, Throughput};
use jsonx::core::{infer_collection, Equivalence};
use jsonx::syntax::{parse, to_string, to_string_pretty};
use jsonx::translate::{read_jxc, write_jxc, Shredder};
use jsonx_bench::{banner, criterion};
use jsonx_data::{json, Value};
use jsonx_gen::Corpus;
use std::time::Instant;

fn to_ndjson(docs: &[Value]) -> String {
    let mut out = String::new();
    for d in docs {
        out.push_str(&to_string(d));
        out.push('\n');
    }
    out
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    banner("E20", "binary columnar I/O: .jxc write/read throughput");

    let docs = Corpus::Github.generate(100_000);
    let ndjson = to_ndjson(&docs);
    let ty = infer_collection(&docs, Equivalence::Kind);
    let mut shredder = Shredder::from_type(&ty);
    let t = Instant::now();
    let batch = shredder.shred(&docs).expect("records shred");
    let shred_time = t.elapsed();
    println!(
        "collection: {} documents, {:.1} MiB NDJSON, {} columns x {} rows (shred {:.2?})\n",
        docs.len(),
        mib(ndjson.len()),
        batch.columns.len(),
        batch.rows,
        shred_time
    );

    let t = Instant::now();
    let bytes = write_jxc(&batch);
    let write_time = t.elapsed();
    let t = Instant::now();
    let file = read_jxc(&bytes).expect("written file reads back");
    let read_time = t.elapsed();
    assert_eq!(file.batch, batch, ".jxc round trip must be exact");

    let write_mib_s = mib(bytes.len()) / write_time.as_secs_f64();
    let read_mib_s = mib(bytes.len()) / read_time.as_secs_f64();
    println!(
        "{:>12} {:>12} {:>14} {:>14}",
        "direction", "time", "MiB/sec", "rows/sec"
    );
    println!(
        "{:>12} {:>12.2?} {:>14.0} {:>14.0}",
        "write",
        write_time,
        write_mib_s,
        batch.rows as f64 / write_time.as_secs_f64()
    );
    println!(
        "{:>12} {:>12.2?} {:>14.0} {:>14.0}",
        "read",
        read_time,
        read_mib_s,
        batch.rows as f64 / read_time.as_secs_f64()
    );
    println!(
        "\n.jxc size: {:.1} MiB ({:.1}% of the {:.1} MiB NDJSON source)",
        mib(bytes.len()),
        100.0 * bytes.len() as f64 / ndjson.len() as f64,
        mib(ndjson.len())
    );
    for info in &file.columns {
        println!(
            "  {:<24} {:<8} {:<9} {:>10} bytes{}",
            info.path,
            info.type_name,
            info.encoding.label(),
            info.block_bytes,
            match info.dict_len {
                Some(d) => format!("  (dict {d})"),
                None => String::new(),
            }
        );
    }

    // Merge the e20 section into BENCH_translation.json without
    // disturbing E16's keys.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_translation.json");
    let mut report = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| parse(&text).ok())
        .and_then(|v| match v {
            Value::Obj(o) => Some(o),
            _ => None,
        })
        .unwrap_or_default();
    report.insert(
        "e20_columnar_io".to_string(),
        json!({
            "documents": (docs.len() as i64),
            "columns": (batch.columns.len() as i64),
            "jxc_bytes": (bytes.len() as i64),
            "jxc_vs_ndjson_percent": (100.0 * bytes.len() as f64 / ndjson.len() as f64),
            "write_mib_per_sec": (write_mib_s as i64),
            "read_mib_per_sec": (read_mib_s as i64),
            "write_rows_per_sec": ((batch.rows as f64 / write_time.as_secs_f64()) as i64),
            "read_rows_per_sec": ((batch.rows as f64 / read_time.as_secs_f64()) as i64)
        }),
    );
    std::fs::write(path, to_string_pretty(&Value::Obj(report)) + "\n")
        .expect("write BENCH_translation.json");
    println!("\nmerged e20 section into {path}");

    let mut c: Criterion = criterion();
    let mut group = c.benchmark_group("e20_columnar_io");
    let small_docs = Corpus::Github.generate(8_000);
    let small_ty = infer_collection(&small_docs, Equivalence::Kind);
    let small_batch = Shredder::from_type(&small_ty)
        .shred(&small_docs)
        .expect("records shred");
    let small_bytes = write_jxc(&small_batch);
    group.throughput(Throughput::Bytes(small_bytes.len() as u64));
    group.bench_function("write_jxc", |b| {
        b.iter(|| write_jxc(black_box(&small_batch)))
    });
    group.bench_function("read_jxc", |b| {
        b.iter(|| read_jxc(black_box(&small_bytes)).expect("reads back"))
    });
    group.finish();
    c.final_summary();
}
