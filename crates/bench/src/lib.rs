//! # jsonx-bench
//!
//! The benchmark harness: one Criterion target per experiment in
//! `EXPERIMENTS.md` (E1–E12). Each bench first prints the table or series
//! the corresponding surveyed evaluation reports (so `cargo bench` output
//! is self-contained), then measures the hot operations with Criterion.
//!
//! Run everything with `cargo bench --workspace`, or a single experiment
//! with e.g. `cargo bench -p jsonx-bench --bench e09_mison_projection`.

/// Shared Criterion configuration: short measurement windows so the full
/// 12-experiment suite completes in minutes while staying stable enough
/// for the shape-level comparisons the experiments make.
pub fn criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(300))
        .configure_from_args()
}

/// Prints a table header for the experiment's printed series.
pub fn banner(id: &str, claim: &str) {
    println!("\n================================================================");
    println!("{id}: {claim}");
    println!("================================================================");
}
