//! Value-dependent schemas — Joi's `when(ref, { is, then, otherwise })`.

use crate::schema::JoiSchema;

/// A conditional refinement: look at a *sibling* field of the enclosing
/// object; if it matches `is`, validate this value against `then`,
/// otherwise against `otherwise` (when given).
#[derive(Debug, Clone)]
pub struct When {
    /// The sibling field inspected.
    pub field: String,
    /// Condition on that field's value.
    pub is: Box<JoiSchema>,
    /// Schema applied when the condition holds.
    pub then: Box<JoiSchema>,
    /// Schema applied when it does not (None = no extra constraint).
    pub otherwise: Option<Box<JoiSchema>>,
}

impl When {
    /// Builds a condition with a `then` branch.
    pub fn is(field: impl Into<String>, is: JoiSchema, then: JoiSchema) -> When {
        When {
            field: field.into(),
            is: Box::new(is),
            then: Box::new(then),
            otherwise: None,
        }
    }

    /// Adds the `otherwise` branch.
    pub fn otherwise(mut self, schema: JoiSchema) -> When {
        self.otherwise = Some(Box::new(schema));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::joi;

    #[test]
    fn builder_shape() {
        let w = When::is(
            "type",
            joi::string().valid(["card"]),
            joi::string().required(),
        )
        .otherwise(joi::any());
        assert_eq!(w.field, "type");
        assert!(w.otherwise.is_some());
    }
}
