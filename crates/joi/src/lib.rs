//! # jsonx-joi
//!
//! A Joi-style schema DSL, after Walmart Labs' `joi` library the tutorial
//! surveys in §2: schemas are built *in the host language* with fluent
//! combinators rather than written as JSON documents, and objects support
//! the constraint vocabulary Joi is known for — **co-occurrence** (`and`),
//! **mutual exclusion** (`xor`, `nand`), conditional presence
//! (`with`/`without`), unions (`alternatives`), and **value-dependent
//! types** (`when`).
//!
//! ```
//! use jsonx_data::json;
//! use jsonx_joi::joi;
//!
//! // A payment object: card payments need a billing address, and exactly
//! // one of `card` / `iban` must be present.
//! let schema = joi::object()
//!     .key("amount", joi::number().min(0.0).required())
//!     .key("card", joi::string().pattern(r"^\d{16}$"))
//!     .key("iban", joi::string().min_len(15))
//!     .key("billing_address", joi::string())
//!     .xor(["card", "iban"])
//!     .with("card", ["billing_address"])
//!     .build();
//!
//! assert!(schema.validate(&json!({
//!     "amount": 9.5, "card": "4000123412341234", "billing_address": "x"
//! })).is_ok());
//! assert!(schema.validate(&json!({"amount": 9.5})).is_err());          // xor
//! assert!(schema.validate(&json!({
//!     "amount": 9.5, "card": "4000123412341234"
//! })).is_err());                                                        // with
//! ```

pub mod report;
pub mod schema;
pub mod validate;
pub mod when;

pub use report::{JoiError, JoiErrorKind};
pub use schema::{joi, JoiSchema, Presence};
pub use when::When;
