//! Schema types and fluent builders.

use crate::when::When;
use jsonx_data::Value;
use jsonx_regex::Regex;

/// Presence mode of a schema (Joi's `optional`/`required`/`forbidden`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Presence {
    /// May be absent (the Joi default).
    #[default]
    Optional,
    /// Must be present.
    Required,
    /// Must be absent.
    Forbidden,
}

/// A compiled Joi-style schema.
#[derive(Debug, Clone)]
pub struct JoiSchema {
    /// The base type with its rules.
    pub ty: JoiType,
    /// Presence mode (meaningful for object keys).
    pub presence: Presence,
    /// Whitelist: when set, the value must equal one of these
    /// (Joi's `valid(...)`).
    pub valid: Option<Vec<Value>>,
    /// Accept `null` in addition to the base type (Joi's `allow(null)`).
    pub allow_null: bool,
    /// Value-dependent refinement (Joi's `when`), applied at the enclosing
    /// object.
    pub condition: Option<Box<When>>,
}

/// The base type of a schema.
#[derive(Debug, Clone)]
pub enum JoiType {
    /// Anything (Joi's `any()`).
    Any,
    /// Strings with rules.
    Str(StrRules),
    /// Numbers with rules.
    Num(NumRules),
    /// Booleans.
    Bool,
    /// Objects with keys and cross-field constraints.
    Object(ObjectRules),
    /// Arrays with an item schema and length bounds.
    Array(ArrayRules),
    /// Union: the first matching alternative wins (Joi's `alternatives`).
    Alternatives(Vec<JoiSchema>),
}

/// String rules.
#[derive(Debug, Clone, Default)]
pub struct StrRules {
    pub min_len: Option<usize>,
    pub max_len: Option<usize>,
    pub pattern: Option<Regex>,
    /// Joi's `email()` flag.
    pub email: bool,
}

/// Number rules.
#[derive(Debug, Clone, Default)]
pub struct NumRules {
    pub min: Option<f64>,
    pub max: Option<f64>,
    /// Joi's `integer()` flag.
    pub integer: bool,
}

/// Object rules: keys plus Joi's relational constraints.
#[derive(Debug, Clone, Default)]
pub struct ObjectRules {
    /// Declared keys.
    pub keys: Vec<(String, JoiSchema)>,
    /// Every group: all present or all absent.
    pub and_groups: Vec<Vec<String>>,
    /// Every group: at least one present.
    pub or_groups: Vec<Vec<String>>,
    /// Every group: exactly one present.
    pub xor_groups: Vec<Vec<String>>,
    /// Every group: not all simultaneously present.
    pub nand_groups: Vec<Vec<String>>,
    /// If key present, peers must be present.
    pub with_deps: Vec<(String, Vec<String>)>,
    /// If key present, peers must be absent.
    pub without_deps: Vec<(String, Vec<String>)>,
    /// Permit keys that are not declared (Joi's `unknown(true)`).
    pub allow_unknown: bool,
}

/// Array rules.
#[derive(Debug, Clone)]
pub struct ArrayRules {
    /// Item schema (None = any items).
    pub items: Option<Box<JoiSchema>>,
    pub min_items: Option<usize>,
    pub max_items: Option<usize>,
}

impl JoiSchema {
    fn with_type(ty: JoiType) -> JoiSchema {
        JoiSchema {
            ty,
            presence: Presence::Optional,
            valid: None,
            allow_null: false,
            condition: None,
        }
    }

    /// Marks the schema required.
    pub fn required(mut self) -> Self {
        self.presence = Presence::Required;
        self
    }

    /// Marks the schema forbidden.
    pub fn forbidden(mut self) -> Self {
        self.presence = Presence::Forbidden;
        self
    }

    /// Allows `null` in addition to the base type.
    pub fn allow_null(mut self) -> Self {
        self.allow_null = true;
        self
    }

    /// Restricts the value to a whitelist.
    pub fn valid<I, V>(mut self, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        self.valid = Some(values.into_iter().map(Into::into).collect());
        self
    }

    /// Attaches a `when` condition evaluated against the enclosing object.
    pub fn when(mut self, condition: When) -> Self {
        self.condition = Some(Box::new(condition));
        self
    }

    // ---- string rules --------------------------------------------------
    fn str_rules(&mut self) -> &mut StrRules {
        match &mut self.ty {
            JoiType::Str(r) => r,
            _ => panic!("string rule applied to a non-string schema"),
        }
    }

    /// Minimum string length (characters).
    pub fn min_len(mut self, n: usize) -> Self {
        self.str_rules().min_len = Some(n);
        self
    }

    /// Maximum string length (characters).
    pub fn max_len(mut self, n: usize) -> Self {
        self.str_rules().max_len = Some(n);
        self
    }

    /// Regex constraint (panics on an invalid pattern — schemas are code).
    pub fn pattern(mut self, pattern: &str) -> Self {
        self.str_rules().pattern =
            Some(Regex::compile(pattern).expect("invalid pattern in joi schema"));
        self
    }

    /// Email-shape constraint.
    pub fn email(mut self) -> Self {
        self.str_rules().email = true;
        self
    }

    // ---- number rules ---------------------------------------------------
    fn num_rules(&mut self) -> &mut NumRules {
        match &mut self.ty {
            JoiType::Num(r) => r,
            _ => panic!("number rule applied to a non-number schema"),
        }
    }

    /// Minimum (inclusive).
    pub fn min(mut self, v: f64) -> Self {
        self.num_rules().min = Some(v);
        self
    }

    /// Maximum (inclusive).
    pub fn max(mut self, v: f64) -> Self {
        self.num_rules().max = Some(v);
        self
    }

    // ---- array rules ---------------------------------------------------
    fn array_rules(&mut self) -> &mut ArrayRules {
        match &mut self.ty {
            JoiType::Array(r) => r,
            _ => panic!("array rule applied to a non-array schema"),
        }
    }

    /// Item schema.
    pub fn items(mut self, schema: JoiSchema) -> Self {
        self.array_rules().items = Some(Box::new(schema));
        self
    }

    /// Minimum number of items.
    pub fn min_items(mut self, n: usize) -> Self {
        self.array_rules().min_items = Some(n);
        self
    }

    /// Maximum number of items.
    pub fn max_items(mut self, n: usize) -> Self {
        self.array_rules().max_items = Some(n);
        self
    }
}

/// Builder for object schemas (returned by [`joi::object`]).
#[derive(Debug, Clone, Default)]
pub struct ObjectBuilder {
    rules: ObjectRules,
    presence: Presence,
}

impl ObjectBuilder {
    /// Declares a key.
    pub fn key(mut self, name: impl Into<String>, schema: JoiSchema) -> Self {
        self.rules.keys.push((name.into(), schema));
        self
    }

    /// All-or-none co-occurrence group.
    pub fn and<I: IntoIterator<Item = S>, S: Into<String>>(mut self, keys: I) -> Self {
        self.rules
            .and_groups
            .push(keys.into_iter().map(Into::into).collect());
        self
    }

    /// At-least-one group.
    pub fn or<I: IntoIterator<Item = S>, S: Into<String>>(mut self, keys: I) -> Self {
        self.rules
            .or_groups
            .push(keys.into_iter().map(Into::into).collect());
        self
    }

    /// Exactly-one group (mutual exclusion with obligation).
    pub fn xor<I: IntoIterator<Item = S>, S: Into<String>>(mut self, keys: I) -> Self {
        self.rules
            .xor_groups
            .push(keys.into_iter().map(Into::into).collect());
        self
    }

    /// Not-all group (mutual exclusion without obligation).
    pub fn nand<I: IntoIterator<Item = S>, S: Into<String>>(mut self, keys: I) -> Self {
        self.rules
            .nand_groups
            .push(keys.into_iter().map(Into::into).collect());
        self
    }

    /// If `key` is present, `peers` must all be present.
    pub fn with<I: IntoIterator<Item = S>, S: Into<String>>(
        mut self,
        key: impl Into<String>,
        peers: I,
    ) -> Self {
        self.rules
            .with_deps
            .push((key.into(), peers.into_iter().map(Into::into).collect()));
        self
    }

    /// If `key` is present, `peers` must all be absent.
    pub fn without<I: IntoIterator<Item = S>, S: Into<String>>(
        mut self,
        key: impl Into<String>,
        peers: I,
    ) -> Self {
        self.rules
            .without_deps
            .push((key.into(), peers.into_iter().map(Into::into).collect()));
        self
    }

    /// Permits undeclared keys.
    pub fn unknown(mut self, allow: bool) -> Self {
        self.rules.allow_unknown = allow;
        self
    }

    /// Marks the object itself required (for nesting).
    pub fn required(mut self) -> Self {
        self.presence = Presence::Required;
        self
    }

    /// Finalises the object schema.
    pub fn build(self) -> JoiSchema {
        JoiSchema {
            ty: JoiType::Object(self.rules),
            presence: self.presence,
            valid: None,
            allow_null: false,
            condition: None,
        }
    }
}

/// Entry points, mirroring the `joi.<type>()` API.
pub mod joi {
    use super::*;

    /// `joi.any()`.
    pub fn any() -> JoiSchema {
        JoiSchema::with_type(JoiType::Any)
    }

    /// `joi.string()`.
    pub fn string() -> JoiSchema {
        JoiSchema::with_type(JoiType::Str(StrRules::default()))
    }

    /// `joi.number()`.
    pub fn number() -> JoiSchema {
        JoiSchema::with_type(JoiType::Num(NumRules::default()))
    }

    /// `joi.number().integer()`.
    pub fn integer() -> JoiSchema {
        JoiSchema::with_type(JoiType::Num(NumRules {
            integer: true,
            ..Default::default()
        }))
    }

    /// `joi.boolean()`.
    pub fn boolean() -> JoiSchema {
        JoiSchema::with_type(JoiType::Bool)
    }

    /// `joi.array()`.
    pub fn array() -> JoiSchema {
        JoiSchema::with_type(JoiType::Array(ArrayRules {
            items: None,
            min_items: None,
            max_items: None,
        }))
    }

    /// `joi.object()` — returns the object builder.
    pub fn object() -> ObjectBuilder {
        ObjectBuilder::default()
    }

    /// `joi.alternatives().try(...)`.
    pub fn alternatives<I: IntoIterator<Item = JoiSchema>>(options: I) -> JoiSchema {
        JoiSchema::with_type(JoiType::Alternatives(options.into_iter().collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_rules() {
        let s = joi::string().min_len(2).max_len(5).required();
        let JoiType::Str(rules) = &s.ty else { panic!() };
        assert_eq!(rules.min_len, Some(2));
        assert_eq!(rules.max_len, Some(5));
        assert_eq!(s.presence, Presence::Required);
    }

    #[test]
    #[should_panic(expected = "string rule applied")]
    fn wrong_rule_kind_panics() {
        let _ = joi::number().min_len(3);
    }

    #[test]
    fn object_builder_accumulates_constraints() {
        let s = joi::object()
            .key("a", joi::any())
            .key("b", joi::any())
            .xor(["a", "b"])
            .with("a", ["c"])
            .unknown(true)
            .build();
        let JoiType::Object(rules) = &s.ty else {
            panic!()
        };
        assert_eq!(rules.keys.len(), 2);
        assert_eq!(
            rules.xor_groups,
            vec![vec!["a".to_string(), "b".to_string()]]
        );
        assert!(rules.allow_unknown);
    }

    #[test]
    fn valid_whitelist() {
        let s = joi::string().valid(["red", "green"]);
        assert_eq!(s.valid.as_ref().unwrap().len(), 2);
    }
}
