//! The Joi validator.

use crate::report::{JoiError, JoiErrorKind};
use crate::schema::{ArrayRules, JoiSchema, JoiType, NumRules, ObjectRules, Presence, StrRules};
use jsonx_data::{Pointer, Value};

impl JoiSchema {
    /// Validates a value, returning every violation.
    pub fn validate(&self, value: &Value) -> Result<(), Vec<JoiError>> {
        let mut errors = Vec::new();
        check(self, value, None, &Pointer::root(), &mut errors);
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// True when the value conforms.
    pub fn is_valid(&self, value: &Value) -> bool {
        self.validate(value).is_ok()
    }
}

fn emit(errors: &mut Vec<JoiError>, path: &Pointer, kind: JoiErrorKind, message: String) {
    errors.push(JoiError {
        path: path.clone(),
        kind,
        message,
    });
}

/// Validates `value` against `schema`. `parent` is the enclosing object
/// (needed by `when` conditions).
fn check(
    schema: &JoiSchema,
    value: &Value,
    parent: Option<&Value>,
    path: &Pointer,
    errors: &mut Vec<JoiError>,
) {
    // `when`: resolve the effective schema first.
    if let Some(cond) = &schema.condition {
        if let Some(parent) = parent {
            let sibling = parent.get(&cond.field).cloned().unwrap_or(Value::Null);
            let branch = if cond.is.is_valid(&sibling) {
                Some(&cond.then)
            } else {
                cond.otherwise.as_ref()
            };
            if let Some(branch) = branch {
                check(branch, value, Some(parent), path, errors);
            }
        }
    }

    if schema.allow_null && value.is_null() {
        return;
    }
    if let Some(whitelist) = &schema.valid {
        if !whitelist.iter().any(|w| w == value) {
            emit(
                errors,
                path,
                JoiErrorKind::NotAllowed,
                format!("{value} is not an allowed value"),
            );
        }
        // Joi semantics: `valid` replaces type checks.
        return;
    }

    match &schema.ty {
        JoiType::Any => {}
        JoiType::Bool => {
            if value.as_bool().is_none() {
                emit(
                    errors,
                    path,
                    JoiErrorKind::WrongType {
                        expected: "boolean",
                    },
                    format!("expected a boolean, found {}", value.kind()),
                );
            }
        }
        JoiType::Str(rules) => check_string(rules, value, path, errors),
        JoiType::Num(rules) => check_number(rules, value, path, errors),
        JoiType::Array(rules) => check_array(rules, value, path, errors),
        JoiType::Object(rules) => check_object(rules, value, path, errors),
        JoiType::Alternatives(options) => {
            let matched = options.iter().any(|opt| {
                let mut scratch = Vec::new();
                check(opt, value, parent, path, &mut scratch);
                scratch.is_empty()
            });
            if !matched {
                emit(
                    errors,
                    path,
                    JoiErrorKind::NoAlternative,
                    format!("{} alternatives, none matched", options.len()),
                );
            }
        }
    }
}

fn check_string(rules: &StrRules, value: &Value, path: &Pointer, errors: &mut Vec<JoiError>) {
    let Some(s) = value.as_str() else {
        emit(
            errors,
            path,
            JoiErrorKind::WrongType { expected: "string" },
            format!("expected a string, found {}", value.kind()),
        );
        return;
    };
    let len = s.chars().count();
    if let Some(min) = rules.min_len {
        if len < min {
            emit(
                errors,
                path,
                JoiErrorKind::RuleFailed { rule: "min_len" },
                format!("length {len} < {min}"),
            );
        }
    }
    if let Some(max) = rules.max_len {
        if len > max {
            emit(
                errors,
                path,
                JoiErrorKind::RuleFailed { rule: "max_len" },
                format!("length {len} > {max}"),
            );
        }
    }
    if let Some(pattern) = &rules.pattern {
        if !pattern.is_match(s) {
            emit(
                errors,
                path,
                JoiErrorKind::RuleFailed { rule: "pattern" },
                format!("does not match /{}/", pattern.pattern()),
            );
        }
    }
    if rules.email && !is_email_shaped(s) {
        emit(
            errors,
            path,
            JoiErrorKind::RuleFailed { rule: "email" },
            format!("'{s}' is not an email address"),
        );
    }
}

fn is_email_shaped(s: &str) -> bool {
    match s.split_once('@') {
        Some((local, domain)) => {
            !local.is_empty() && domain.contains('.') && !domain.starts_with('.')
        }
        None => false,
    }
}

fn check_number(rules: &NumRules, value: &Value, path: &Pointer, errors: &mut Vec<JoiError>) {
    let Some(n) = value.as_number() else {
        emit(
            errors,
            path,
            JoiErrorKind::WrongType { expected: "number" },
            format!("expected a number, found {}", value.kind()),
        );
        return;
    };
    if rules.integer && !n.is_integer() {
        emit(
            errors,
            path,
            JoiErrorKind::RuleFailed { rule: "integer" },
            format!("{n} is not an integer"),
        );
    }
    let v = n.as_f64();
    if let Some(min) = rules.min {
        if v < min {
            emit(
                errors,
                path,
                JoiErrorKind::RuleFailed { rule: "min" },
                format!("{v} < {min}"),
            );
        }
    }
    if let Some(max) = rules.max {
        if v > max {
            emit(
                errors,
                path,
                JoiErrorKind::RuleFailed { rule: "max" },
                format!("{v} > {max}"),
            );
        }
    }
}

fn check_array(rules: &ArrayRules, value: &Value, path: &Pointer, errors: &mut Vec<JoiError>) {
    let Some(items) = value.as_array() else {
        emit(
            errors,
            path,
            JoiErrorKind::WrongType { expected: "array" },
            format!("expected an array, found {}", value.kind()),
        );
        return;
    };
    if let Some(min) = rules.min_items {
        if items.len() < min {
            emit(
                errors,
                path,
                JoiErrorKind::RuleFailed { rule: "min_items" },
                format!("{} items < {min}", items.len()),
            );
        }
    }
    if let Some(max) = rules.max_items {
        if items.len() > max {
            emit(
                errors,
                path,
                JoiErrorKind::RuleFailed { rule: "max_items" },
                format!("{} items > {max}", items.len()),
            );
        }
    }
    if let Some(item_schema) = &rules.items {
        for (i, item) in items.iter().enumerate() {
            check(item_schema, item, None, &path.push_index(i), errors);
        }
    }
}

fn check_object(rules: &ObjectRules, value: &Value, path: &Pointer, errors: &mut Vec<JoiError>) {
    let Some(obj) = value.as_object() else {
        emit(
            errors,
            path,
            JoiErrorKind::WrongType { expected: "object" },
            format!("expected an object, found {}", value.kind()),
        );
        return;
    };

    // Keys: presence, then value validation with `value` as parent.
    for (name, key_schema) in &rules.keys {
        // `when` can change presence; resolve the effective schema for
        // presence decisions.
        let effective = effective_presence(key_schema, value);
        match obj.get(name) {
            Some(member) => {
                if effective == Presence::Forbidden {
                    emit(
                        errors,
                        &path.push_key(name),
                        JoiErrorKind::Forbidden { key: name.clone() },
                        format!("'{name}' is forbidden here"),
                    );
                } else {
                    check(
                        key_schema,
                        member,
                        Some(value),
                        &path.push_key(name),
                        errors,
                    );
                }
            }
            None => {
                if effective == Presence::Required {
                    emit(
                        errors,
                        path,
                        JoiErrorKind::Required { key: name.clone() },
                        format!("'{name}' is required"),
                    );
                }
            }
        }
    }
    if !rules.allow_unknown {
        for (key, _) in obj.iter() {
            if !rules.keys.iter().any(|(name, _)| name == key) {
                emit(
                    errors,
                    &path.push_key(key),
                    JoiErrorKind::UnknownKey {
                        key: key.to_string(),
                    },
                    format!("'{key}' is not declared"),
                );
            }
        }
    }

    let present = |k: &String| obj.contains_key(k);
    for group in &rules.and_groups {
        let n = group.iter().filter(|k| present(k)).count();
        if n != 0 && n != group.len() {
            emit(
                errors,
                path,
                JoiErrorKind::AndGroup {
                    group: group.clone(),
                },
                format!("fields {group:?} must appear together"),
            );
        }
    }
    for group in &rules.or_groups {
        if !group.iter().any(present) {
            emit(
                errors,
                path,
                JoiErrorKind::OrGroup {
                    group: group.clone(),
                },
                format!("at least one of {group:?} is required"),
            );
        }
    }
    for group in &rules.xor_groups {
        let n = group.iter().filter(|k| present(k)).count();
        if n != 1 {
            emit(
                errors,
                path,
                JoiErrorKind::XorGroup {
                    group: group.clone(),
                    present: n,
                },
                format!("exactly one of {group:?} is required, found {n}"),
            );
        }
    }
    for group in &rules.nand_groups {
        if group.iter().all(present) {
            emit(
                errors,
                path,
                JoiErrorKind::NandGroup {
                    group: group.clone(),
                },
                format!("fields {group:?} must not all be present"),
            );
        }
    }
    for (key, peers) in &rules.with_deps {
        if present(key) {
            for peer in peers {
                if !present(peer) {
                    emit(
                        errors,
                        path,
                        JoiErrorKind::WithDep {
                            key: key.clone(),
                            missing: peer.clone(),
                        },
                        format!("'{key}' requires '{peer}'"),
                    );
                }
            }
        }
    }
    for (key, peers) in &rules.without_deps {
        if present(key) {
            for peer in peers {
                if present(peer) {
                    emit(
                        errors,
                        path,
                        JoiErrorKind::WithoutDep {
                            key: key.clone(),
                            conflicting: peer.clone(),
                        },
                        format!("'{key}' conflicts with '{peer}'"),
                    );
                }
            }
        }
    }
}

/// Resolves the presence mode a key schema has for this particular object
/// (following its `when` chain).
fn effective_presence(schema: &JoiSchema, parent: &Value) -> Presence {
    if let Some(cond) = &schema.condition {
        let sibling = parent.get(&cond.field).cloned().unwrap_or(Value::Null);
        let branch: Option<&JoiSchema> = if cond.is.is_valid(&sibling) {
            Some(&cond.then)
        } else {
            cond.otherwise.as_deref()
        };
        if let Some(branch) = branch {
            // The branch presence (possibly itself conditional) wins when
            // it says something stronger than Optional.
            let p = effective_presence(branch, parent);
            if p != Presence::Optional {
                return p;
            }
        }
    }
    schema.presence
}

#[cfg(test)]
mod tests {
    use crate::schema::joi;
    use crate::when::When;
    use jsonx_data::json;

    #[test]
    fn scalar_types_and_rules() {
        assert!(joi::boolean().is_valid(&json!(true)));
        assert!(!joi::boolean().is_valid(&json!(1)));
        assert!(joi::integer().is_valid(&json!(3)));
        assert!(!joi::integer().is_valid(&json!(3.5)));
        assert!(joi::number().min(0.0).max(1.0).is_valid(&json!(0.5)));
        assert!(!joi::number().min(0.0).is_valid(&json!(-1)));
        assert!(joi::string().min_len(2).is_valid(&json!("ab")));
        assert!(!joi::string().min_len(2).is_valid(&json!("a")));
        assert!(joi::string().pattern("^[a-z]+$").is_valid(&json!("abc")));
        assert!(!joi::string().pattern("^[a-z]+$").is_valid(&json!("Abc")));
    }

    #[test]
    fn email_rule() {
        assert!(joi::string().email().is_valid(&json!("a@b.com")));
        assert!(!joi::string().email().is_valid(&json!("nope")));
    }

    #[test]
    fn allow_null_and_valid() {
        assert!(joi::string().allow_null().is_valid(&json!(null)));
        assert!(!joi::string().is_valid(&json!(null)));
        let s = joi::any().valid(["red", "green"]);
        assert!(s.is_valid(&json!("red")));
        assert!(!s.is_valid(&json!("blue")));
    }

    #[test]
    fn arrays() {
        let s = joi::array().items(joi::integer()).min_items(1).max_items(3);
        assert!(s.is_valid(&json!([1, 2])));
        assert!(!s.is_valid(&json!([])));
        assert!(!s.is_valid(&json!([1, 2, 3, 4])));
        let errs = s.validate(&json!([1, "x"])).unwrap_err();
        assert_eq!(errs[0].path.to_string(), "/1");
    }

    #[test]
    fn object_keys_and_unknown() {
        let s = joi::object().key("a", joi::integer().required()).build();
        assert!(s.is_valid(&json!({"a": 1})));
        assert!(!s.is_valid(&json!({})));
        assert!(!s.is_valid(&json!({"a": 1, "zz": 2}))); // unknown closed
        let open = joi::object()
            .key("a", joi::integer().required())
            .unknown(true)
            .build();
        assert!(open.is_valid(&json!({"a": 1, "zz": 2})));
    }

    #[test]
    fn and_or_xor_nand() {
        let s = joi::object()
            .key("a", joi::any())
            .key("b", joi::any())
            .key("c", joi::any())
            .and(["a", "b"])
            .unknown(true)
            .build();
        assert!(s.is_valid(&json!({"a": 1, "b": 2})));
        assert!(s.is_valid(&json!({"c": 1})));
        assert!(!s.is_valid(&json!({"a": 1})));

        let s = joi::object()
            .key("x", joi::any())
            .key("y", joi::any())
            .or(["x", "y"])
            .build();
        assert!(s.is_valid(&json!({"x": 1})));
        assert!(!s.is_valid(&json!({})));

        let s = joi::object()
            .key("x", joi::any())
            .key("y", joi::any())
            .xor(["x", "y"])
            .build();
        assert!(s.is_valid(&json!({"x": 1})));
        assert!(!s.is_valid(&json!({"x": 1, "y": 2})));
        assert!(!s.is_valid(&json!({})));

        let s = joi::object()
            .key("x", joi::any())
            .key("y", joi::any())
            .nand(["x", "y"])
            .build();
        assert!(s.is_valid(&json!({"x": 1})));
        assert!(s.is_valid(&json!({})));
        assert!(!s.is_valid(&json!({"x": 1, "y": 2})));
    }

    #[test]
    fn with_and_without() {
        let s = joi::object()
            .key("card", joi::any())
            .key("addr", joi::any())
            .key("cash", joi::any())
            .with("card", ["addr"])
            .without("cash", ["card"])
            .build();
        assert!(s.is_valid(&json!({"card": 1, "addr": 2})));
        assert!(!s.is_valid(&json!({"card": 1})));
        assert!(s.is_valid(&json!({"cash": 1})));
        assert!(!s.is_valid(&json!({"cash": 1, "card": 2, "addr": 3})));
    }

    #[test]
    fn alternatives_union() {
        let s = joi::alternatives([joi::string(), joi::integer()]);
        assert!(s.is_valid(&json!("x")));
        assert!(s.is_valid(&json!(3)));
        assert!(!s.is_valid(&json!(3.5)));
        assert!(!s.is_valid(&json!([])));
    }

    #[test]
    fn when_changes_type_constraints() {
        // `limit` must be a number ≥ 100 for premium accounts, ≤ 100 else.
        let s = joi::object()
            .key("kind", joi::string().valid(["basic", "premium"]).required())
            .key(
                "limit",
                joi::any().when(
                    When::is(
                        "kind",
                        joi::any().valid(["premium"]),
                        joi::number().min(100.0),
                    )
                    .otherwise(joi::number().max(100.0)),
                ),
            )
            .build();
        assert!(s.is_valid(&json!({"kind": "premium", "limit": 500})));
        assert!(!s.is_valid(&json!({"kind": "premium", "limit": 50})));
        assert!(s.is_valid(&json!({"kind": "basic", "limit": 50})));
        assert!(!s.is_valid(&json!({"kind": "basic", "limit": 500})));
    }

    #[test]
    fn when_changes_presence() {
        // `billing_address` becomes required when method == "card".
        let s = joi::object()
            .key("method", joi::string().required())
            .key(
                "billing_address",
                joi::string().when(When::is(
                    "method",
                    joi::any().valid(["card"]),
                    joi::string().required(),
                )),
            )
            .build();
        assert!(!s.is_valid(&json!({"method": "card"})));
        assert!(s.is_valid(&json!({"method": "card", "billing_address": "x"})));
        assert!(s.is_valid(&json!({"method": "cash"})));
    }

    #[test]
    fn nested_objects_report_deep_paths() {
        let s = joi::object()
            .key(
                "user",
                joi::object()
                    .key("name", joi::string().required())
                    .build()
                    .required(),
            )
            .build();
        let errs = s.validate(&json!({"user": {"name": 3}})).unwrap_err();
        assert_eq!(errs[0].path.to_string(), "/user/name");
    }

    #[test]
    fn forbidden_keys() {
        let s = joi::object()
            .key("admin", joi::any().forbidden())
            .key("name", joi::string())
            .build();
        assert!(s.is_valid(&json!({"name": "a"})));
        assert!(!s.is_valid(&json!({"admin": true})));
    }
}
