//! Joi validation errors.

use jsonx_data::Pointer;
use std::fmt;

/// The kind of a Joi validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoiErrorKind {
    /// Value has the wrong base type.
    WrongType { expected: &'static str },
    /// Required key absent.
    Required { key: String },
    /// Forbidden key present.
    Forbidden { key: String },
    /// Undeclared key on a closed object.
    UnknownKey { key: String },
    /// Value not in the `valid` whitelist.
    NotAllowed,
    /// A string/number/array rule failed.
    RuleFailed { rule: &'static str },
    /// No alternative matched.
    NoAlternative,
    /// `and` group partially present.
    AndGroup { group: Vec<String> },
    /// `or` group entirely absent.
    OrGroup { group: Vec<String> },
    /// `xor` group with != 1 present.
    XorGroup { group: Vec<String>, present: usize },
    /// `nand` group entirely present.
    NandGroup { group: Vec<String> },
    /// `with` dependency unmet.
    WithDep { key: String, missing: String },
    /// `without` exclusion violated.
    WithoutDep { key: String, conflicting: String },
}

/// One validation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct JoiError {
    /// Path into the validated value.
    pub path: Pointer,
    /// Failure kind.
    pub kind: JoiErrorKind,
    /// Rendered message.
    pub message: String,
}

impl fmt::Display for JoiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let path = self.path.to_string();
        let shown = if path.is_empty() { "<root>" } else { &path };
        write!(f, "{shown}: {}", self.message)
    }
}

impl std::error::Error for JoiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = JoiError {
            path: Pointer::root().push_key("card"),
            kind: JoiErrorKind::Required { key: "card".into() },
            message: "'card' is required".into(),
        };
        assert_eq!(e.to_string(), "/card: 'card' is required");
    }
}
