//! Parallel inference as a `jsonx-pipeline` adapter.
//!
//! The papers run the map/reduce on Spark; here the same algebra runs on
//! the workspace's generic sharded engine. Each worker folds one
//! contiguous partition of the collection (map + local reduce), then the
//! per-partition types are fused in a final reduce. Because fusion is
//! commutative and associative with `Bottom` as unit, the result equals
//! the sequential fold — a property pinned in the crate's proptest suite.

use crate::equiv::Equivalence;
use crate::fuse::fuse;
use crate::infer::infer_value;
use crate::types::JType;
use jsonx_data::Value;
use jsonx_pipeline::{run_slice, ShardFold};

/// Parallel execution settings — the shared item-sharded options of
/// `jsonx-pipeline`, kept under this crate's historical name.
pub use jsonx_pipeline::SliceOptions as ParallelOptions;

/// The inference fold: map each document to its type, fuse locally, fuse
/// partitions.
struct InferValueFold {
    equiv: Equivalence,
}

impl ShardFold<Value> for InferValueFold {
    type State = JType;
    type Out = JType;

    fn init(&self) -> JType {
        JType::Bottom
    }

    fn feed(&self, acc: &mut JType, doc: &Value, _index: usize) {
        let current = std::mem::replace(acc, JType::Bottom);
        *acc = fuse(current, infer_value(doc, self.equiv), self.equiv);
    }

    fn finish(&self, acc: JType) -> JType {
        acc
    }

    fn merge(&self, left: JType, right: JType) -> JType {
        fuse(left, right, self.equiv)
    }
}

/// Infers the type of `docs` using a pool of scoped worker threads.
pub fn infer_collection_parallel(
    docs: &[Value],
    equiv: Equivalence,
    opts: ParallelOptions,
) -> JType {
    // The inference fold contains no fallible code paths of its own, so a
    // poisoned shard can only mean a bug — surface it loudly rather than
    // returning a silently incomplete type.
    match run_slice(docs, &InferValueFold { equiv }, opts) {
        Ok(ty) => ty,
        Err(panic) => panic!("inference {panic}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer_collection;
    use jsonx_data::json;

    fn corpus(n: usize) -> Vec<Value> {
        (0..n)
            .map(|i| match i % 4 {
                0 => json!({"id": (i as i64), "name": "a"}),
                1 => json!({"id": (i as i64)}),
                2 => json!({"id": format!("s{i}"), "tags": [1, "x"]}),
                _ => json!({"geo": {"lat": 1.5, "lon": -0.5}, "id": (i as i64)}),
            })
            .collect()
    }

    #[test]
    fn parallel_equals_sequential() {
        let docs = corpus(2_000);
        for equiv in [Equivalence::Kind, Equivalence::Label] {
            let seq = infer_collection(&docs, equiv);
            for workers in [1, 2, 3, 8] {
                let par = infer_collection_parallel(
                    &docs,
                    equiv,
                    ParallelOptions {
                        workers,
                        min_chunk: 16,
                    },
                );
                assert_eq!(par, seq, "workers={workers} equiv={equiv:?}");
            }
        }
    }

    #[test]
    fn small_collections_fall_back_to_sequential() {
        let docs = corpus(10);
        let par = infer_collection_parallel(&docs, Equivalence::Kind, ParallelOptions::default());
        assert_eq!(par, infer_collection(&docs, Equivalence::Kind));
    }

    #[test]
    fn empty_collection() {
        assert_eq!(
            infer_collection_parallel(&[], Equivalence::Kind, ParallelOptions::default()),
            JType::Bottom
        );
    }
}
