//! Parallel inference over scoped worker threads.
//!
//! The papers run the map/reduce on Spark; here the same algebra runs on
//! threads. Each worker folds one contiguous partition of the collection
//! (map + local reduce), then the per-partition types are fused in a final
//! reduce. Because fusion is commutative and associative with `Bottom` as
//! unit, the result equals the sequential fold — a property pinned in the
//! crate's proptest suite.

use crate::equiv::Equivalence;
use crate::fuse::{fuse, fuse_all};
use crate::infer::infer_value;
use crate::types::JType;
use jsonx_data::Value;

/// Parallel execution settings.
#[derive(Debug, Clone, Copy)]
pub struct ParallelOptions {
    /// Number of worker threads (0 = number of available CPUs).
    pub workers: usize,
    /// Minimum documents per partition; tiny collections run sequentially.
    pub min_chunk: usize,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            workers: 0,
            min_chunk: 256,
        }
    }
}

impl ParallelOptions {
    /// A fixed worker count (used by the scalability experiment E6).
    pub fn with_workers(workers: usize) -> Self {
        ParallelOptions {
            workers,
            ..Default::default()
        }
    }

    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Infers the type of `docs` using a pool of scoped worker threads.
pub fn infer_collection_parallel(
    docs: &[Value],
    equiv: Equivalence,
    opts: ParallelOptions,
) -> JType {
    let workers = opts.effective_workers().max(1);
    if workers == 1 || docs.len() < opts.min_chunk.max(1) * 2 {
        return crate::infer::infer_collection(docs, equiv);
    }
    let chunk = docs.len().div_ceil(workers).max(opts.min_chunk.max(1));
    let partials: Vec<JType> = std::thread::scope(|scope| {
        let handles: Vec<_> = docs
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    part.iter()
                        .map(|d| infer_value(d, equiv))
                        .fold(JType::Bottom, |acc, t| fuse(acc, t, equiv))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("inference worker panicked"))
            .collect()
    });
    fuse_all(partials, equiv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer_collection;
    use jsonx_data::json;

    fn corpus(n: usize) -> Vec<Value> {
        (0..n)
            .map(|i| match i % 4 {
                0 => json!({"id": (i as i64), "name": "a"}),
                1 => json!({"id": (i as i64)}),
                2 => json!({"id": format!("s{i}"), "tags": [1, "x"]}),
                _ => json!({"geo": {"lat": 1.5, "lon": -0.5}, "id": (i as i64)}),
            })
            .collect()
    }

    #[test]
    fn parallel_equals_sequential() {
        let docs = corpus(2_000);
        for equiv in [Equivalence::Kind, Equivalence::Label] {
            let seq = infer_collection(&docs, equiv);
            for workers in [1, 2, 3, 8] {
                let par = infer_collection_parallel(
                    &docs,
                    equiv,
                    ParallelOptions {
                        workers,
                        min_chunk: 16,
                    },
                );
                assert_eq!(par, seq, "workers={workers} equiv={equiv:?}");
            }
        }
    }

    #[test]
    fn small_collections_fall_back_to_sequential() {
        let docs = corpus(10);
        let par = infer_collection_parallel(&docs, Equivalence::Kind, ParallelOptions::default());
        assert_eq!(par, infer_collection(&docs, Equivalence::Kind));
    }

    #[test]
    fn empty_collection() {
        assert_eq!(
            infer_collection_parallel(&[], Equivalence::Kind, ParallelOptions::default()),
            JType::Bottom
        );
    }
}
