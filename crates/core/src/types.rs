//! The inferred type language.
//!
//! A [`JType`] is the structural abstraction of a set of JSON values:
//! scalar kinds with occurrence counters, record types with per-field
//! presence counters, array types summarising their element population, and
//! union types holding structurally-incompatible alternatives. This is the
//! counting-annotated type language of the parametric-inference papers.

use jsonx_data::Value;

/// A shared, immutable record field name.
///
/// `Arc<str>` (rather than `String`) lets inference workers intern hot
/// keys — every record mentioning a repeated field shares one allocation —
/// and lets record types cross thread boundaries in parallel inference.
/// `"x".into()` still produces one, so construction sites read as before.
pub type FieldName = std::sync::Arc<str>;

/// An inferred type with counting annotations.
#[derive(Debug, Clone, PartialEq)]
pub enum JType {
    /// The type of the empty collection (unit of fusion).
    Bottom,
    /// `null`, seen `count` times.
    Null { count: u64 },
    /// Booleans, seen `count` times.
    Bool { count: u64 },
    /// Integral numbers (JSON numbers with no fractional part).
    Int { count: u64 },
    /// Numbers in general (inferred for non-integral observations; admits
    /// *any* number — `Int` is its refinement, mirroring JSON Schema's
    /// `number`/`integer` and the papers' `Num`/`Int` kinds).
    Float { count: u64 },
    /// Strings.
    Str { count: u64 },
    /// Record (object) types.
    Record(RecordType),
    /// Array types.
    Array(ArrayType),
    /// A union of ≥2 pairwise-incompatible member types.
    ///
    /// Invariant (maintained by fusion): no member is itself a union or
    /// `Bottom`, and no two members are fusable under the equivalence in
    /// force when the union was built.
    Union(Vec<JType>),
}

/// A record type: fields with presence counters.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordType {
    /// Fields sorted by name. A field is *optional* when
    /// `presence < count`.
    pub fields: Vec<(FieldName, FieldType)>,
    /// How many record values were fused into this type.
    pub count: u64,
}

/// The type of one record field.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldType {
    /// Type of the field's values (fused across occurrences).
    pub ty: JType,
    /// In how many of the `count` records the field was present.
    pub presence: u64,
}

/// An array type summarising the element population of all fused arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayType {
    /// Fused type of every element of every fused array
    /// (`Bottom` when all arrays were empty).
    pub item: Box<JType>,
    /// How many array values were fused into this type.
    pub count: u64,
    /// Total number of elements across those arrays.
    pub total_items: u64,
}

impl RecordType {
    /// Field lookup by name.
    pub fn field(&self, name: &str) -> Option<&FieldType> {
        self.fields
            .iter()
            .find(|(n, _)| &**n == name)
            .map(|(_, f)| f)
    }

    /// Field names in sorted order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(n, _)| &**n)
    }

    /// True when both records have exactly the same field-name set —
    /// the **L** (label) equivalence test.
    pub fn same_labels(&self, other: &RecordType) -> bool {
        self.fields.len() == other.fields.len()
            && self
                .fields
                .iter()
                .zip(other.fields.iter())
                .all(|((a, _), (b, _))| a == b)
    }

    /// True when the field may be absent.
    pub fn is_optional(&self, name: &str) -> bool {
        self.field(name).is_some_and(|f| f.presence < self.count)
    }
}

impl JType {
    /// How many values this type abstracts.
    pub fn count(&self) -> u64 {
        match self {
            JType::Bottom => 0,
            JType::Null { count }
            | JType::Bool { count }
            | JType::Int { count }
            | JType::Float { count }
            | JType::Str { count } => *count,
            JType::Record(r) => r.count,
            JType::Array(a) => a.count,
            JType::Union(members) => members.iter().map(JType::count).sum(),
        }
    }

    /// The union members (a non-union type is its own single member).
    pub fn members(&self) -> &[JType] {
        match self {
            JType::Union(ms) => ms,
            other => std::slice::from_ref(other),
        }
    }

    /// A stable rank used to order union members canonically.
    pub(crate) fn rank(&self) -> u8 {
        match self {
            JType::Bottom => 0,
            JType::Null { .. } => 1,
            JType::Bool { .. } => 2,
            JType::Int { .. } => 3,
            JType::Float { .. } => 4,
            JType::Str { .. } => 5,
            JType::Array(_) => 6,
            JType::Record(_) => 7,
            JType::Union(_) => 8,
        }
    }

    /// Structural admission: would `value` have been abstracted into this
    /// type (ignoring the counters)? This is the *soundness* relation the
    /// property tests pin: every document that went into an inference is
    /// admitted by the inferred type.
    pub fn admits(&self, value: &Value) -> bool {
        match (self, value) {
            (JType::Bottom, _) => false,
            (JType::Null { .. }, Value::Null) => true,
            (JType::Bool { .. }, Value::Bool(_)) => true,
            (JType::Int { .. }, Value::Num(n)) => n.is_integer(),
            // `Num` admits every number: widening Int ∪ Num → Num must
            // stay sound (caught by the abstraction property tests).
            (JType::Float { .. }, Value::Num(_)) => true,
            (JType::Str { .. }, Value::Str(_)) => true,
            (JType::Array(at), Value::Arr(items)) => items.iter().all(|item| at.item.admits(item)),
            (JType::Record(rt), Value::Obj(obj)) => {
                // Every present field must be known and admitted; every
                // mandatory field must be present.
                obj.iter()
                    .all(|(k, v)| rt.field(k).is_some_and(|f| f.ty.admits(v)))
                    && rt
                        .fields
                        .iter()
                        .filter(|(_, f)| f.presence == rt.count)
                        .all(|(name, _)| obj.contains_key(name))
            }
            (JType::Union(members), v) => members.iter().any(|m| m.admits(v)),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    fn str_t(count: u64) -> JType {
        JType::Str { count }
    }

    #[test]
    fn counts_aggregate_over_unions() {
        let u = JType::Union(vec![str_t(3), JType::Int { count: 2 }]);
        assert_eq!(u.count(), 5);
        assert_eq!(JType::Bottom.count(), 0);
    }

    #[test]
    fn members_of_non_union_is_self() {
        let t = str_t(1);
        assert_eq!(t.members().len(), 1);
        let u = JType::Union(vec![str_t(1), JType::Null { count: 1 }]);
        assert_eq!(u.members().len(), 2);
    }

    #[test]
    fn label_equivalence_checks_name_sets() {
        let a = RecordType {
            fields: vec![
                (
                    "a".into(),
                    FieldType {
                        ty: str_t(1),
                        presence: 1,
                    },
                ),
                (
                    "b".into(),
                    FieldType {
                        ty: str_t(1),
                        presence: 1,
                    },
                ),
            ],
            count: 1,
        };
        let b = RecordType {
            fields: vec![
                (
                    "a".into(),
                    FieldType {
                        ty: JType::Int { count: 1 },
                        presence: 1,
                    },
                ),
                (
                    "b".into(),
                    FieldType {
                        ty: str_t(1),
                        presence: 1,
                    },
                ),
            ],
            count: 1,
        };
        let c = RecordType {
            fields: vec![(
                "a".into(),
                FieldType {
                    ty: str_t(1),
                    presence: 1,
                },
            )],
            count: 1,
        };
        assert!(a.same_labels(&b)); // types differ, labels agree
        assert!(!a.same_labels(&c));
    }

    #[test]
    fn admits_scalars() {
        assert!(str_t(1).admits(&json!("x")));
        assert!(!str_t(1).admits(&json!(1)));
        assert!(JType::Int { count: 1 }.admits(&json!(3)));
        assert!(JType::Int { count: 1 }.admits(&json!(3.0)));
        assert!(!JType::Int { count: 1 }.admits(&json!(3.5)));
        assert!(JType::Float { count: 1 }.admits(&json!(3.5)));
        assert!(JType::Float { count: 1 }.admits(&json!(3))); // Num ⊇ Int
        assert!(!JType::Bottom.admits(&json!(null)));
    }

    #[test]
    fn admits_records_with_optionality() {
        let rt = JType::Record(RecordType {
            fields: vec![
                (
                    "id".into(),
                    FieldType {
                        ty: JType::Int { count: 2 },
                        presence: 2,
                    },
                ),
                (
                    "name".into(),
                    FieldType {
                        ty: str_t(1),
                        presence: 1,
                    },
                ),
            ],
            count: 2,
        });
        assert!(rt.admits(&json!({"id": 1, "name": "a"})));
        assert!(rt.admits(&json!({"id": 1}))); // name optional
        assert!(!rt.admits(&json!({"name": "a"}))); // id mandatory
        assert!(!rt.admits(&json!({"id": 1, "extra": true}))); // unknown field
    }

    #[test]
    fn admits_arrays() {
        let at = JType::Array(ArrayType {
            item: Box::new(JType::Union(vec![JType::Int { count: 2 }, str_t(1)])),
            count: 1,
            total_items: 3,
        });
        assert!(at.admits(&json!([1, "a", 2])));
        assert!(at.admits(&json!([])));
        assert!(!at.admits(&json!([true])));
    }

    #[test]
    fn optionality_accessor() {
        let rt = RecordType {
            fields: vec![(
                "x".into(),
                FieldType {
                    ty: str_t(1),
                    presence: 1,
                },
            )],
            count: 3,
        };
        assert!(rt.is_optional("x"));
        assert!(!rt.is_optional("missing"));
    }
}
