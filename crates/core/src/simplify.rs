//! Post-inference abstractions: widening and union collapse.
//!
//! The VLDBJ paper frames schema inference as picking a point on a
//! precision/succinctness spectrum. Fusion under **L** sits at the precise
//! end; these operators move an inferred type toward succinctness without
//! re-running inference:
//!
//! * [`widen_numeric`] — collapse `Int + Num` into `Num` (what Spark calls
//!   numeric widening),
//! * [`collapse_record_unions`] — forcibly merge all record members of
//!   every union (turning an L-inferred type into its K abstraction),
//! * [`bound_union_width`] — keep the most populous `k` members of each
//!   union and merge the tail kind-wise, the "top-k + rest" abstraction.

use crate::equiv::Equivalence;
use crate::fuse::fuse_all;
use crate::types::{ArrayType, FieldType, JType, RecordType};

/// Rebuilds a type applying `f` bottom-up to every node.
fn map_type(ty: JType, f: &impl Fn(JType) -> JType) -> JType {
    let rebuilt = match ty {
        JType::Record(rt) => JType::Record(RecordType {
            fields: rt
                .fields
                .into_iter()
                .map(|(name, field)| {
                    (
                        name,
                        FieldType {
                            ty: map_type(field.ty, f),
                            presence: field.presence,
                        },
                    )
                })
                .collect(),
            count: rt.count,
        }),
        JType::Array(at) => JType::Array(ArrayType {
            item: Box::new(map_type(*at.item, f)),
            count: at.count,
            total_items: at.total_items,
        }),
        JType::Union(ms) => JType::Union(ms.into_iter().map(|m| map_type(m, f)).collect()),
        scalar => scalar,
    };
    f(rebuilt)
}

/// Collapses `Int + Num` unions (anywhere in the type) into a single `Num`.
pub fn widen_numeric(ty: JType) -> JType {
    map_type(ty, &|t| match t {
        JType::Union(ms) => {
            let mut int_count = 0;
            let mut float_count = 0;
            let mut has_both = (false, false);
            for m in &ms {
                match m {
                    JType::Int { count } => {
                        int_count = *count;
                        has_both.0 = true;
                    }
                    JType::Float { count } => {
                        float_count = *count;
                        has_both.1 = true;
                    }
                    _ => {}
                }
            }
            if has_both.0 && has_both.1 {
                let mut rest: Vec<JType> = ms
                    .into_iter()
                    .filter(|m| !matches!(m, JType::Int { .. } | JType::Float { .. }))
                    .collect();
                rest.push(JType::Float {
                    count: int_count + float_count,
                });
                if rest.len() == 1 {
                    rest.pop().expect("len checked")
                } else {
                    rest.sort_by_key(|a| a.rank());
                    JType::Union(rest)
                }
            } else {
                JType::Union(ms)
            }
        }
        other => other,
    })
}

/// Merges every group of record members inside each union — the K
/// abstraction of an L-inferred type.
pub fn collapse_record_unions(ty: JType) -> JType {
    map_type(ty, &|t| match t {
        JType::Union(ms) => {
            let (records, mut rest): (Vec<JType>, Vec<JType>) =
                ms.into_iter().partition(|m| matches!(m, JType::Record(_)));
            if records.len() > 1 {
                let merged = fuse_all(records, Equivalence::Kind);
                rest.push(merged);
                if rest.len() == 1 {
                    rest.pop().expect("len checked")
                } else {
                    rest.sort_by_key(|a| a.rank());
                    JType::Union(rest)
                }
            } else {
                rest.extend(records);
                if rest.len() == 1 {
                    rest.pop().expect("len checked")
                } else {
                    rest.sort_by_key(|a| a.rank());
                    JType::Union(rest)
                }
            }
        }
        other => other,
    })
}

/// Applies the K abstraction only *below* `depth` record levels — the
/// depth-bounded L(d) family between L (d = ∞) and K (d = 0): the top
/// `depth` levels keep label-precise unions, deeper structure collapses
/// to single records with optional fields.
pub fn collapse_below_depth(ty: JType, depth: usize) -> JType {
    if depth == 0 {
        return collapse_record_unions(ty);
    }
    match ty {
        JType::Record(rt) => JType::Record(RecordType {
            fields: rt
                .fields
                .into_iter()
                .map(|(name, field)| {
                    (
                        name,
                        FieldType {
                            ty: collapse_below_depth(field.ty, depth - 1),
                            presence: field.presence,
                        },
                    )
                })
                .collect(),
            count: rt.count,
        }),
        JType::Array(at) => JType::Array(ArrayType {
            item: Box::new(collapse_below_depth(*at.item, depth - 1)),
            count: at.count,
            total_items: at.total_items,
        }),
        JType::Union(ms) => {
            let members: Vec<JType> = ms
                .into_iter()
                .map(|m| collapse_below_depth(m, depth))
                .collect();
            JType::Union(members)
        }
        scalar => scalar,
    }
}

/// Bounds every union to at most `k` members: the `k-1` most populous stay
/// as-is, the rest are fused kind-wise into a single "rest" member.
pub fn bound_union_width(ty: JType, k: usize) -> JType {
    assert!(k >= 1, "union width bound must be at least 1");
    map_type(ty, &|t| match t {
        JType::Union(mut ms) if ms.len() > k => {
            // Most populous first.
            ms.sort_by_key(|m| std::cmp::Reverse(m.count()));
            let tail = ms.split_off(k - 1);
            let merged_tail = fuse_all(tail, Equivalence::Kind);
            for m in merged_tail.members() {
                ms.push(m.clone());
            }
            ms.sort_by_key(|a| a.rank());
            if ms.len() == 1 {
                ms.pop().expect("len checked")
            } else {
                JType::Union(ms)
            }
        }
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer_collection;
    use jsonx_data::json;

    #[test]
    fn numeric_widening() {
        let t = infer_collection(&[json!(1), json!(2.5), json!("s")], Equivalence::Kind);
        let w = widen_numeric(t);
        assert_eq!(
            w,
            JType::Union(vec![JType::Float { count: 2 }, JType::Str { count: 1 }])
        );
        // Idempotent and harmless when nothing to widen.
        assert_eq!(widen_numeric(w.clone()), w);
    }

    #[test]
    fn widening_reaches_nested_positions() {
        let t = infer_collection(
            &[json!({"x": [1, 2.5]}), json!({"x": [3]})],
            Equivalence::Kind,
        );
        let w = widen_numeric(t);
        let JType::Record(r) = w else { panic!() };
        let JType::Array(at) = &r.field("x").unwrap().ty else {
            panic!()
        };
        assert_eq!(*at.item.clone(), JType::Float { count: 3 });
    }

    #[test]
    fn l_to_k_collapse() {
        let docs = vec![
            json!({"a": 1}),
            json!({"b": "x"}),
            json!({"a": 2, "b": "y"}),
        ];
        let l = infer_collection(&docs, Equivalence::Label);
        assert!(matches!(&l, JType::Union(ms) if ms.len() == 3));
        let collapsed = collapse_record_unions(l);
        let k = infer_collection(&docs, Equivalence::Kind);
        assert_eq!(collapsed, k);
    }

    #[test]
    fn depth_bounded_collapse_interpolates() {
        // Top-level shapes differ AND nested shapes differ.
        let docs = vec![
            json!({"a": {"x": 1}}),
            json!({"a": {"y": 2}}),
            json!({"b": {"x": 1}}),
        ];
        let l = infer_collection(&docs, Equivalence::Label);
        // d = 0 equals full K.
        assert_eq!(
            collapse_below_depth(l.clone(), 0),
            infer_collection(&docs, Equivalence::Kind)
        );
        // Large d is the identity (nothing deeper to collapse).
        assert_eq!(collapse_below_depth(l.clone(), 10), l);
        // d = 1: top-level union survives, nested records merge.
        let d1 = collapse_below_depth(l.clone(), 1);
        let JType::Union(ms) = &d1 else {
            panic!("top union expected")
        };
        assert_eq!(ms.len(), 2);
        for m in ms {
            let JType::Record(r) = m else { panic!() };
            for (_, f) in &r.fields {
                assert!(
                    !matches!(f.ty, JType::Union(_)),
                    "nested unions must have collapsed"
                );
            }
        }
        // Soundness survives every depth.
        for d in 0..3 {
            let t = collapse_below_depth(l.clone(), d);
            for doc in &docs {
                assert!(t.admits(doc), "depth {d} lost {doc}");
            }
        }
    }

    #[test]
    fn union_width_bounding() {
        let docs: Vec<_> = (0..6)
            .map(|i| {
                let key = format!("k{i}");
                json!({ key: i })
            })
            .collect();
        let l = infer_collection(&docs, Equivalence::Label);
        assert!(matches!(&l, JType::Union(ms) if ms.len() == 6));
        let bounded = bound_union_width(l.clone(), 3);
        let JType::Union(ms) = &bounded else { panic!() };
        assert!(ms.len() <= 3);
        // All six documents still admitted.
        for d in &docs {
            assert!(bounded.admits(d));
        }
        // k=1 collapses to a single type.
        let single = bound_union_width(l, 1);
        assert!(!matches!(single, JType::Union(_)));
    }
}
