//! Precision and succinctness metrics for inferred types.
//!
//! These are the measurement axes of the inference experiments (E3, E5,
//! E7): how *big* is a schema, and how much does it *over-approximate* the
//! data it was inferred from.

use crate::types::JType;
use jsonx_data::Value;

/// Structural size of a type: number of nodes in the type AST (each scalar
/// member, record, field, array and union node counts 1). The papers use
/// this as the succinctness measure.
pub fn type_size(ty: &JType) -> usize {
    match ty {
        JType::Bottom
        | JType::Null { .. }
        | JType::Bool { .. }
        | JType::Int { .. }
        | JType::Float { .. }
        | JType::Str { .. } => 1,
        JType::Array(at) => 1 + type_size(&at.item),
        JType::Record(rt) => {
            1 + rt
                .fields
                .iter()
                .map(|(_, f)| 1 + type_size(&f.ty))
                .sum::<usize>()
        }
        JType::Union(ms) => 1 + ms.iter().map(type_size).sum::<usize>(),
    }
}

/// Summary metrics for one inferred type.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeMetrics {
    /// AST node count ([`type_size`]).
    pub size: usize,
    /// Maximum union width anywhere in the type.
    pub max_union_width: usize,
    /// Number of record fields marked optional.
    pub optional_fields: usize,
    /// Total number of record fields.
    pub total_fields: usize,
}

/// Computes [`TypeMetrics`].
pub fn measure(ty: &JType) -> TypeMetrics {
    let mut m = TypeMetrics {
        size: type_size(ty),
        max_union_width: 0,
        optional_fields: 0,
        total_fields: 0,
    };
    walk(ty, &mut m);
    m
}

fn walk(ty: &JType, m: &mut TypeMetrics) {
    match ty {
        JType::Array(at) => walk(&at.item, m),
        JType::Record(rt) => {
            for (_, f) in &rt.fields {
                m.total_fields += 1;
                if f.presence < rt.count {
                    m.optional_fields += 1;
                }
                walk(&f.ty, m);
            }
        }
        JType::Union(ms) => {
            m.max_union_width = m.max_union_width.max(ms.len());
            for member in ms {
                walk(member, m);
            }
        }
        _ => {}
    }
}

/// Empirical precision: the fraction of `probes` (values *not* drawn from
/// the original collection) that the type wrongly admits. Lower is more
/// precise. This is the measurable stand-in for the papers' semantic
/// precision comparisons — E5 uses it to show Spark-style inference
/// (string-widened) admits nearly everything while K/L stay tight.
pub fn false_acceptance_rate(ty: &JType, probes: &[Value]) -> f64 {
    if probes.is_empty() {
        return 0.0;
    }
    let admitted = probes.iter().filter(|p| ty.admits(p)).count();
    admitted as f64 / probes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::Equivalence;
    use crate::infer::infer_collection;
    use jsonx_data::json;

    #[test]
    fn sizes() {
        assert_eq!(type_size(&JType::Bottom), 1);
        let t = infer_collection(&[json!({"a": 1, "b": [true]})], Equivalence::Kind);
        // record + (field a + Int) + (field b + array + Bool) = 6
        assert_eq!(type_size(&t), 6);
    }

    #[test]
    fn k_is_smaller_than_l_on_heterogeneous_data() {
        let docs: Vec<_> = (0..20)
            .map(|i| match i % 4 {
                0 => json!({"a": 1}),
                1 => json!({"a": 1, "b": 2}),
                2 => json!({"b": 2, "c": 3}),
                _ => json!({"c": 3}),
            })
            .collect();
        let k = type_size(&infer_collection(&docs, Equivalence::Kind));
        let l = type_size(&infer_collection(&docs, Equivalence::Label));
        assert!(k < l, "K={k} should be smaller than L={l}");
    }

    #[test]
    fn metrics_walk() {
        let docs = vec![json!({"a": 1}), json!({"a": "s", "b": 2})];
        let m = measure(&infer_collection(&docs, Equivalence::Kind));
        assert_eq!(m.total_fields, 2);
        assert_eq!(m.optional_fields, 1); // b
        assert_eq!(m.max_union_width, 2); // a: Int + Str
    }

    #[test]
    fn far_distinguishes_precision() {
        let docs = vec![json!({"a": 1}), json!({"a": 2})];
        let l = infer_collection(&docs, Equivalence::Label);
        let probes = vec![json!({"a": "oops"}), json!({"a": 3}), json!({"b": 1})];
        let far = false_acceptance_rate(&l, &probes);
        // Only {"a": 3} is admitted.
        assert!((far - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(false_acceptance_rate(&l, &[]), 0.0);
    }
}
