//! Parser for the concrete type syntax emitted by [`crate::printer`].
//!
//! Round-tripping types through text matters operationally: the massive-
//! inference papers exchange partial schemas between workers, and users
//! want to store inferred schemas and re-load them. `parse_type` accepts
//! both plain and counting renderings.

use crate::types::{ArrayType, FieldName, FieldType, JType, RecordType};
use std::fmt;

/// Field data accumulated during record parsing:
/// (name, optional marker, type, optional `(presence/count)` annotation).
type RawField = (String, bool, JType, Option<(u64, u64)>);

/// A type-syntax parse error with a character offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeParseError {
    /// Offset (in characters) where parsing failed.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for TypeParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type syntax error at {}: {}", self.at, self.message)
    }
}

impl std::error::Error for TypeParseError {}

/// Parses a type rendered by [`crate::print_type`].
pub fn parse_type(text: &str) -> Result<JType, TypeParseError> {
    let chars: Vec<char> = text.chars().collect();
    let mut p = P { chars, pos: 0 };
    p.skip_ws();
    let t = p.parse_type()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(p.err("trailing input"));
    }
    Ok(t)
}

struct P {
    chars: Vec<char>,
    pos: usize,
}

impl P {
    fn err(&self, message: &str) -> TypeParseError {
        TypeParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), TypeParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{c}'")))
        }
    }

    fn parse_type(&mut self) -> Result<JType, TypeParseError> {
        self.skip_ws();
        match self.peek() {
            Some('(') => self.parse_union(),
            Some('[') => self.parse_array(),
            Some('{') => self.parse_record(),
            Some('⊥') => {
                self.bump();
                Ok(JType::Bottom)
            }
            Some(c) if c.is_ascii_alphabetic() => self.parse_scalar(),
            _ => Err(self.err("expected a type")),
        }
    }

    fn parse_union(&mut self) -> Result<JType, TypeParseError> {
        self.expect('(')?;
        let mut members = vec![self.parse_type()?];
        loop {
            self.skip_ws();
            if self.eat('+') {
                members.push(self.parse_type()?);
            } else {
                break;
            }
        }
        self.skip_ws();
        self.expect(')')?;
        Ok(if members.len() == 1 {
            // Parenthesised single type.
            members.pop().expect("len checked")
        } else {
            JType::Union(members)
        })
    }

    fn parse_array(&mut self) -> Result<JType, TypeParseError> {
        self.expect('[')?;
        self.skip_ws();
        let item = if self.peek() == Some(']') {
            JType::Bottom
        } else {
            self.parse_type()?
        };
        self.skip_ws();
        self.expect(']')?;
        let (count, total_items) = self.parse_array_counts()?.unwrap_or((1, 0));
        Ok(JType::Array(ArrayType {
            item: Box::new(item),
            count,
            total_items,
        }))
    }

    /// Parses the optional `(count#items)` suffix of arrays.
    fn parse_array_counts(&mut self) -> Result<Option<(u64, u64)>, TypeParseError> {
        let save = self.pos;
        if !self.eat('(') {
            return Ok(None);
        }
        let Some(count) = self.parse_number() else {
            self.pos = save;
            return Ok(None);
        };
        if !self.eat('#') {
            self.pos = save;
            return Ok(None);
        }
        let total = self
            .parse_number()
            .ok_or_else(|| self.err("expected item count after '#'"))?;
        self.expect(')')?;
        Ok(Some((count, total)))
    }

    fn parse_scalar(&mut self) -> Result<JType, TypeParseError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_alphanumeric()) {
            self.pos += 1;
        }
        let name: String = self.chars[start..self.pos].iter().collect();
        let count = self.parse_count_suffix().unwrap_or(1);
        Ok(match name.as_str() {
            "Null" => JType::Null { count },
            "Bool" => JType::Bool { count },
            "Int" => JType::Int { count },
            "Num" => JType::Float { count },
            "Str" => JType::Str { count },
            other => {
                return Err(TypeParseError {
                    at: start,
                    message: format!("unknown type name '{other}'"),
                })
            }
        })
    }

    /// Parses an optional `(n)` counting suffix.
    fn parse_count_suffix(&mut self) -> Option<u64> {
        let save = self.pos;
        if !self.eat('(') {
            return None;
        }
        let Some(n) = self.parse_number() else {
            self.pos = save;
            return None;
        };
        if !self.eat(')') {
            self.pos = save;
            return None;
        }
        Some(n)
    }

    fn parse_number(&mut self) -> Option<u64> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return None;
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .ok()
    }

    fn parse_record(&mut self) -> Result<JType, TypeParseError> {
        self.expect('{')?;
        let mut raw_fields: Vec<RawField> = Vec::new();
        self.skip_ws();
        if !self.eat('}') {
            loop {
                self.skip_ws();
                let name = self.parse_field_name()?;
                let optional = self.eat('?');
                self.skip_ws();
                self.expect(':')?;
                let ty = self.parse_type()?;
                self.skip_ws();
                let presence = self.parse_presence_suffix()?;
                self.skip_ws();
                raw_fields.push((name, optional, ty, presence));
                if self.eat(',') {
                    continue;
                }
                self.expect('}')?;
                break;
            }
        }
        let record_count = self.parse_count_suffix();

        // Reconstruct counters. With explicit annotations we trust them;
        // otherwise count=1 and optional fields get presence 0 (the plain
        // rendering does not retain exact statistics).
        let count = record_count
            .or_else(|| raw_fields.iter().find_map(|(_, _, _, p)| p.map(|(_, c)| c)))
            .unwrap_or(1);
        let mut fields: Vec<(FieldName, FieldType)> = raw_fields
            .into_iter()
            .map(|(name, optional, ty, presence)| {
                let presence = match presence {
                    Some((p, _)) => p,
                    None if optional => count.saturating_sub(1),
                    None => count,
                };
                (FieldName::from(name.as_str()), FieldType { ty, presence })
            })
            .collect();
        fields.sort_by(|(a, _), (b, _)| a.cmp(b));
        Ok(JType::Record(RecordType { fields, count }))
    }

    /// Parses a `(presence/count)` suffix after a field type.
    fn parse_presence_suffix(&mut self) -> Result<Option<(u64, u64)>, TypeParseError> {
        let save = self.pos;
        if !self.eat('(') {
            return Ok(None);
        }
        let Some(p) = self.parse_number() else {
            self.pos = save;
            return Ok(None);
        };
        if !self.eat('/') {
            self.pos = save;
            return Ok(None);
        }
        let c = self
            .parse_number()
            .ok_or_else(|| self.err("expected total after '/'"))?;
        self.expect(')')?;
        Ok(Some((p, c)))
    }

    fn parse_field_name(&mut self) -> Result<String, TypeParseError> {
        if self.eat('"') {
            let mut out = String::new();
            loop {
                match self.bump() {
                    Some('\\') => match self.bump() {
                        Some(c) => out.push(c),
                        None => return Err(self.err("unterminated field name")),
                    },
                    Some('"') => return Ok(out),
                    Some(c) => out.push(c),
                    None => return Err(self.err("unterminated field name")),
                }
            }
        }
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a field name"));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::{print_type, PrintOptions};

    #[test]
    fn scalars() {
        assert_eq!(parse_type("Int").unwrap(), JType::Int { count: 1 });
        assert_eq!(parse_type("Str(7)").unwrap(), JType::Str { count: 7 });
        assert_eq!(parse_type("Num").unwrap(), JType::Float { count: 1 });
        assert!(parse_type("Widget").is_err());
    }

    #[test]
    fn composites() {
        let t = parse_type("[(Int + Str)]").unwrap();
        let JType::Array(at) = t else { panic!() };
        assert!(matches!(*at.item, JType::Union(_)));
        let t = parse_type("{a: Int, b?: Str}").unwrap();
        let JType::Record(r) = t else { panic!() };
        assert!(r.is_optional("b"));
        assert!(!r.is_optional("a"));
    }

    #[test]
    fn quoted_field_names() {
        let t = parse_type("{\"a b\": Int}").unwrap();
        let JType::Record(r) = t else { panic!() };
        assert!(r.field("a b").is_some());
    }

    #[test]
    fn counting_round_trip_exact() {
        use crate::equiv::Equivalence;
        use crate::infer::infer_collection;
        use jsonx_data::json;
        let docs = vec![
            json!({"id": 1, "tags": ["a", "b"], "geo": null}),
            json!({"id": 2, "tags": []}),
            json!({"id": "x", "tags": [1]}),
        ];
        for equiv in [Equivalence::Kind, Equivalence::Label] {
            let t = infer_collection(&docs, equiv);
            let text = print_type(&t, PrintOptions::with_counts());
            let back = parse_type(&text).unwrap();
            assert_eq!(back, t, "round-trip failed for {text}");
        }
    }

    #[test]
    fn plain_round_trip_is_stable() {
        let text = "{id: (Int + Str), tags?: [Str]}";
        let t = parse_type(text).unwrap();
        assert_eq!(print_type(&t, PrintOptions::plain()), text);
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_type("{a Int}").unwrap_err();
        assert!(err.at > 0);
        assert!(parse_type("(Int +").is_err());
        assert!(parse_type("Int garbage").is_err());
        assert!(parse_type("").is_err());
    }

    #[test]
    fn bottom_and_empty_array() {
        assert_eq!(parse_type("⊥").unwrap(), JType::Bottom);
        let JType::Array(at) = parse_type("[]").unwrap() else {
            panic!()
        };
        assert_eq!(*at.item, JType::Bottom);
    }
}
