//! Exporting inferred types as JSON Schema documents.
//!
//! This is the bridge between the tutorial's two halves: §4.1's inferred
//! types become §2's schema language, so a schemaless collection can be
//! profiled and then *validated* against its own history. The integration
//! tests assert the round-trip soundness: every document that fed an
//! inference validates against the exported schema.

use crate::types::{JType, RecordType};
use jsonx_data::{json, Object, Value};

/// Renders an inferred type as a JSON Schema document (draft-06 keywords).
///
/// Counting annotations have no schema counterpart and are dropped, except
/// that field presence decides `required`.
pub fn to_json_schema(ty: &JType) -> Value {
    match ty {
        // Bottom accepts nothing: the `false` schema.
        JType::Bottom => Value::Bool(false),
        JType::Null { .. } => json!({"type": "null"}),
        JType::Bool { .. } => json!({"type": "boolean"}),
        JType::Int { .. } => json!({"type": "integer"}),
        JType::Float { .. } => json!({"type": "number"}),
        JType::Str { .. } => json!({"type": "string"}),
        JType::Array(at) => {
            if matches!(*at.item, JType::Bottom) {
                // All observed arrays were empty.
                json!({"type": "array", "maxItems": 0})
            } else {
                let mut obj = Object::new();
                obj.insert("type", Value::from("array"));
                obj.insert("items", to_json_schema(&at.item));
                Value::Obj(obj)
            }
        }
        JType::Record(rt) => record_schema(rt),
        JType::Union(members) => {
            let branches: Vec<Value> = members.iter().map(to_json_schema).collect();
            let mut obj = Object::new();
            obj.insert("anyOf", Value::Arr(branches));
            Value::Obj(obj)
        }
    }
}

fn record_schema(rt: &RecordType) -> Value {
    let mut properties = Object::new();
    let mut required: Vec<Value> = Vec::new();
    for (name, field) in &rt.fields {
        properties.insert(name.to_string(), to_json_schema(&field.ty));
        if field.presence == rt.count {
            required.push(Value::from(&**name));
        }
    }
    let mut obj = Object::new();
    obj.insert("type", Value::from("object"));
    obj.insert("properties", Value::Obj(properties));
    if !required.is_empty() {
        obj.insert("required", Value::Arr(required));
    }
    // Inference observed a closed field set; the schema says so.
    obj.insert("additionalProperties", Value::Bool(false));
    Value::Obj(obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::Equivalence;
    use crate::infer::{infer_collection, infer_value};

    #[test]
    fn scalar_schemas() {
        let t = infer_value(&json!(3), Equivalence::Kind);
        assert_eq!(to_json_schema(&t), json!({"type": "integer"}));
        assert_eq!(to_json_schema(&JType::Bottom), json!(false));
    }

    #[test]
    fn record_schema_reflects_optionality() {
        let t = infer_collection(
            &[json!({"id": 1, "name": "a"}), json!({"id": 2})],
            Equivalence::Kind,
        );
        let schema = to_json_schema(&t);
        assert_eq!(schema.get("required"), Some(&json!(["id"])));
        assert!(schema.get("properties").unwrap().get("name").is_some());
    }

    #[test]
    fn unions_become_any_of() {
        let t = infer_collection(&[json!(1), json!("s")], Equivalence::Kind);
        let schema = to_json_schema(&t);
        assert_eq!(
            schema,
            json!({"anyOf": [{"type": "integer"}, {"type": "string"}]})
        );
    }

    #[test]
    fn empty_arrays_export_max_items_zero() {
        let t = infer_value(&json!([]), Equivalence::Kind);
        assert_eq!(to_json_schema(&t), json!({"type": "array", "maxItems": 0}));
    }
}
