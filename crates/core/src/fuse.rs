//! Type fusion — the reduce step of parametric inference.
//!
//! `fuse` is a commutative, associative operator on [`JType`] with
//! [`JType::Bottom`] as unit; the collection type is the fold of the
//! per-document types under it. The property tests in `tests/` pin the
//! algebraic laws, which are what make the distributed/parallel reduce
//! correct.

use crate::equiv::Equivalence;
use crate::types::{ArrayType, FieldName, FieldType, JType, RecordType};

/// Fuses two types under the given equivalence.
pub fn fuse(a: JType, b: JType, equiv: Equivalence) -> JType {
    match (a, b) {
        (JType::Bottom, t) | (t, JType::Bottom) => t,
        (JType::Union(xs), JType::Union(ys)) => {
            let mut members = xs;
            for y in ys {
                members = add_member(members, y, equiv);
            }
            normalize_union(members)
        }
        (JType::Union(xs), y) => normalize_union(add_member(xs, y, equiv)),
        (x, JType::Union(ys)) => {
            // Commutativity: fold x into ys.
            normalize_union(add_member(ys, x, equiv))
        }
        (x, y) => match try_merge(x, y, equiv) {
            Ok(merged) => merged,
            Err((x, y)) => normalize_union(vec![x, y]),
        },
    }
}

/// Fuses a whole sequence of types.
pub fn fuse_all<I: IntoIterator<Item = JType>>(types: I, equiv: Equivalence) -> JType {
    types
        .into_iter()
        .fold(JType::Bottom, |acc, t| fuse(acc, t, equiv))
}

/// Adds one (non-union, non-bottom) member into a member list, merging with
/// the first compatible member.
fn add_member(mut members: Vec<JType>, incoming: JType, equiv: Equivalence) -> Vec<JType> {
    debug_assert!(!matches!(incoming, JType::Union(_) | JType::Bottom));
    let mut incoming = incoming;
    for i in 0..members.len() {
        let existing = members.swap_remove(i);
        match try_merge(existing, incoming, equiv) {
            Ok(merged) => {
                members.push(merged);
                return members;
            }
            Err((existing, original)) => {
                incoming = original;
                // Put the existing member back where swap_remove left a hole
                // (order is re-established by normalize_union).
                members.push(existing);
                let last = members.len() - 1;
                members.swap(i, last);
            }
        }
    }
    members.push(incoming);
    members
}

/// Attempts to merge two non-union types; returns them unchanged when they
/// are incompatible under `equiv`.
fn try_merge(a: JType, b: JType, equiv: Equivalence) -> Result<JType, (JType, JType)> {
    use JType::*;
    match (a, b) {
        (Null { count: x }, Null { count: y }) => Ok(Null { count: x + y }),
        (Bool { count: x }, Bool { count: y }) => Ok(Bool { count: x + y }),
        (Int { count: x }, Int { count: y }) => Ok(Int { count: x + y }),
        (Float { count: x }, Float { count: y }) => Ok(Float { count: x + y }),
        (Str { count: x }, Str { count: y }) => Ok(Str { count: x + y }),
        (Array(x), Array(y)) => Ok(Array(fuse_arrays(x, y, equiv))),
        (Record(x), Record(y)) => {
            if equiv.records_mergeable(&x, &y) {
                Ok(Record(fuse_records(x, y, equiv)))
            } else {
                Err((Record(x), Record(y)))
            }
        }
        (a, b) => Err((a, b)),
    }
}

fn fuse_arrays(a: ArrayType, b: ArrayType, equiv: Equivalence) -> ArrayType {
    ArrayType {
        item: Box::new(fuse(*a.item, *b.item, equiv)),
        count: a.count + b.count,
        total_items: a.total_items + b.total_items,
    }
}

/// Merges two record types: union of fields, fused field types, added
/// presence counters.
pub(crate) fn fuse_records(a: RecordType, b: RecordType, equiv: Equivalence) -> RecordType {
    let mut fields: Vec<(FieldName, FieldType)> =
        Vec::with_capacity(a.fields.len().max(b.fields.len()));
    let mut ai = a.fields.into_iter().peekable();
    let mut bi = b.fields.into_iter().peekable();
    // Both sides are sorted by name; merge like a sorted-list union.
    loop {
        match (ai.peek(), bi.peek()) {
            (Some((an, _)), Some((bn, _))) => {
                if an == bn {
                    let (name, fa) = ai.next().expect("peeked");
                    let (_, fb) = bi.next().expect("peeked");
                    fields.push((
                        name,
                        FieldType {
                            ty: fuse(fa.ty, fb.ty, equiv),
                            presence: fa.presence + fb.presence,
                        },
                    ));
                } else if an < bn {
                    fields.push(ai.next().expect("peeked"));
                } else {
                    fields.push(bi.next().expect("peeked"));
                }
            }
            (Some(_), None) => fields.push(ai.next().expect("peeked")),
            (None, Some(_)) => fields.push(bi.next().expect("peeked")),
            (None, None) => break,
        }
    }
    RecordType {
        fields,
        count: a.count + b.count,
    }
}

/// Canonicalises a member list into a type: unwraps singletons and orders
/// members deterministically.
fn normalize_union(mut members: Vec<JType>) -> JType {
    match members.len() {
        0 => JType::Bottom,
        1 => members.pop().expect("len checked"),
        _ => {
            members.sort_by(member_order);
            JType::Union(members)
        }
    }
}

/// Deterministic order for union members: by rank, then (for records) by
/// label set, then by count for stability.
fn member_order(a: &JType, b: &JType) -> std::cmp::Ordering {
    a.rank().cmp(&b.rank()).then_with(|| match (a, b) {
        (JType::Record(x), JType::Record(y)) => {
            let xs: Vec<&str> = x.labels().collect();
            let ys: Vec<&str> = y.labels().collect();
            xs.cmp(&ys)
        }
        _ => std::cmp::Ordering::Equal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer_value;
    use jsonx_data::json;

    fn t(v: jsonx_data::Value, e: Equivalence) -> JType {
        infer_value(&v, e)
    }

    #[test]
    fn bottom_is_unit() {
        let s = JType::Str { count: 3 };
        assert_eq!(fuse(JType::Bottom, s.clone(), Equivalence::Kind), s);
        assert_eq!(fuse(s.clone(), JType::Bottom, Equivalence::Kind), s);
    }

    #[test]
    fn same_kind_scalars_add_counts() {
        let a = JType::Int { count: 2 };
        let b = JType::Int { count: 5 };
        assert_eq!(fuse(a, b, Equivalence::Kind), JType::Int { count: 7 });
    }

    #[test]
    fn distinct_kinds_form_unions() {
        let u = fuse(
            JType::Int { count: 1 },
            JType::Str { count: 1 },
            Equivalence::Kind,
        );
        assert_eq!(
            u,
            JType::Union(vec![JType::Int { count: 1 }, JType::Str { count: 1 }])
        );
        // Fusing another Int folds into the existing member.
        let u2 = fuse(u, JType::Int { count: 3 }, Equivalence::Kind);
        assert_eq!(
            u2,
            JType::Union(vec![JType::Int { count: 4 }, JType::Str { count: 1 }])
        );
    }

    #[test]
    fn kind_merges_different_records() {
        let a = t(json!({"a": 1}), Equivalence::Kind);
        let b = t(json!({"b": "x"}), Equivalence::Kind);
        let fused = fuse(a, b, Equivalence::Kind);
        let JType::Record(r) = fused else {
            panic!("expected single record")
        };
        assert_eq!(r.count, 2);
        assert_eq!(r.labels().collect::<Vec<_>>(), vec!["a", "b"]);
        assert!(r.is_optional("a"));
        assert!(r.is_optional("b"));
    }

    #[test]
    fn label_keeps_different_records_apart() {
        let a = t(json!({"a": 1}), Equivalence::Label);
        let b = t(json!({"b": "x"}), Equivalence::Label);
        let fused = fuse(a, b, Equivalence::Label);
        let JType::Union(ms) = fused else {
            panic!("expected union")
        };
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn label_merges_same_labels() {
        let a = t(json!({"a": 1}), Equivalence::Label);
        let b = t(json!({"a": "x"}), Equivalence::Label);
        let fused = fuse(a, b, Equivalence::Label);
        let JType::Record(r) = fused else {
            panic!("expected record")
        };
        // Field type is itself a union of Int and Str.
        assert!(matches!(r.field("a").unwrap().ty, JType::Union(_)));
    }

    #[test]
    fn arrays_fuse_item_types() {
        let a = t(json!([1, 2]), Equivalence::Kind);
        let b = t(json!(["x"]), Equivalence::Kind);
        let JType::Array(at) = fuse(a, b, Equivalence::Kind) else {
            panic!("expected array")
        };
        assert_eq!(at.count, 2);
        assert_eq!(at.total_items, 3);
        assert!(matches!(*at.item, JType::Union(_)));
    }

    #[test]
    fn union_member_order_is_deterministic() {
        let u1 = fuse(
            JType::Str { count: 1 },
            JType::Int { count: 1 },
            Equivalence::Kind,
        );
        let u2 = fuse(
            JType::Int { count: 1 },
            JType::Str { count: 1 },
            Equivalence::Kind,
        );
        assert_eq!(u1, u2);
    }

    #[test]
    fn fuse_all_over_collection() {
        let types = vec![
            JType::Int { count: 1 },
            JType::Int { count: 1 },
            JType::Null { count: 1 },
        ];
        let fused = fuse_all(types, Equivalence::Kind);
        assert_eq!(
            fused,
            JType::Union(vec![JType::Null { count: 1 }, JType::Int { count: 2 }])
        );
        assert_eq!(fuse_all(vec![], Equivalence::Kind), JType::Bottom);
    }

    #[test]
    fn nested_record_fusion_is_recursive() {
        let a = t(json!({"u": {"id": 1}}), Equivalence::Kind);
        let b = t(json!({"u": {"id": 2, "name": "x"}}), Equivalence::Kind);
        let JType::Record(r) = fuse(a, b, Equivalence::Kind) else {
            panic!()
        };
        let JType::Record(inner) = &r.field("u").unwrap().ty else {
            panic!("inner record expected")
        };
        assert_eq!(inner.count, 2);
        assert!(inner.is_optional("name"));
        assert!(!inner.is_optional("id"));
    }
}
