//! The equivalence parameter of parametric inference.

use crate::types::RecordType;

/// Decides when two record types collapse into one during fusion — the
/// tunable knob of the parametric inference framework (VLDBJ 2019 calls
/// these *equivalence relations on types*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Equivalence {
    /// **K** — kind equivalence: any two records merge. Produces one record
    /// type with optional fields; maximal succinctness, minimal precision.
    Kind,
    /// **L** — label equivalence: records merge only when their field-name
    /// sets coincide. Keeps structurally distinct record shapes apart as
    /// union members; maximal precision, larger schemas.
    Label,
}

impl Equivalence {
    /// Should these two record types be fused into one?
    pub fn records_mergeable(&self, a: &RecordType, b: &RecordType) -> bool {
        match self {
            Equivalence::Kind => true,
            Equivalence::Label => a.same_labels(b),
        }
    }

    /// The name used in reports and benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            Equivalence::Kind => "K",
            Equivalence::Label => "L",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{FieldType, JType, RecordType};

    fn rec(names: &[&str]) -> RecordType {
        RecordType {
            fields: names
                .iter()
                .map(|n| {
                    (
                        crate::types::FieldName::from(*n),
                        FieldType {
                            ty: JType::Null { count: 1 },
                            presence: 1,
                        },
                    )
                })
                .collect(),
            count: 1,
        }
    }

    #[test]
    fn kind_merges_everything() {
        assert!(Equivalence::Kind.records_mergeable(&rec(&["a"]), &rec(&["b"])));
        assert!(Equivalence::Kind.records_mergeable(&rec(&[]), &rec(&["x", "y"])));
    }

    #[test]
    fn label_requires_same_names() {
        assert!(Equivalence::Label.records_mergeable(&rec(&["a", "b"]), &rec(&["a", "b"])));
        assert!(!Equivalence::Label.records_mergeable(&rec(&["a"]), &rec(&["a", "b"])));
        assert!(!Equivalence::Label.records_mergeable(&rec(&["a"]), &rec(&["b"])));
    }

    #[test]
    fn names() {
        assert_eq!(Equivalence::Kind.name(), "K");
        assert_eq!(Equivalence::Label.name(), "L");
    }
}
