//! Rendering inferred types in the papers' concrete syntax.
//!
//! The grammar mirrors the EDBT/VLDBJ papers:
//!
//! ```text
//! T ::= Null | Bool | Int | Num | Str
//!     | { l: T, l?: T, … }        (record; ? marks optional fields)
//!     | [ T ]                     (array; [] when all arrays were empty)
//!     | (T + T + …)               (union)
//! ```
//!
//! With [`PrintOptions::with_counts`], counting annotations are attached:
//! `Str(12)`, `{… (7)}`, field presence `name: Str (5/7)`.

use crate::types::{FieldType, JType, RecordType};

/// Printer configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrintOptions {
    /// Attach counting annotations.
    pub counts: bool,
}

impl PrintOptions {
    /// Plain structural types, no counters.
    pub fn plain() -> Self {
        PrintOptions { counts: false }
    }

    /// Counting types (DBPL 2017 style).
    pub fn with_counts() -> Self {
        PrintOptions { counts: true }
    }
}

/// Renders a type.
pub fn print_type(ty: &JType, opts: PrintOptions) -> String {
    let mut out = String::new();
    write_type(ty, opts, &mut out);
    out
}

fn write_type(ty: &JType, opts: PrintOptions, out: &mut String) {
    match ty {
        JType::Bottom => out.push('⊥'),
        JType::Null { count } => write_scalar("Null", *count, opts, out),
        JType::Bool { count } => write_scalar("Bool", *count, opts, out),
        JType::Int { count } => write_scalar("Int", *count, opts, out),
        JType::Float { count } => write_scalar("Num", *count, opts, out),
        JType::Str { count } => write_scalar("Str", *count, opts, out),
        JType::Array(at) => {
            out.push('[');
            if !matches!(*at.item, JType::Bottom) {
                write_type(&at.item, opts, out);
            }
            out.push(']');
            if opts.counts {
                out.push_str(&format!("({}#{})", at.count, at.total_items));
            }
        }
        JType::Record(rt) => write_record(rt, opts, out),
        JType::Union(members) => {
            out.push('(');
            for (i, m) in members.iter().enumerate() {
                if i > 0 {
                    out.push_str(" + ");
                }
                write_type(m, opts, out);
            }
            out.push(')');
        }
    }
}

fn write_scalar(name: &str, count: u64, opts: PrintOptions, out: &mut String) {
    out.push_str(name);
    if opts.counts {
        out.push_str(&format!("({count})"));
    }
}

fn write_record(rt: &RecordType, opts: PrintOptions, out: &mut String) {
    out.push('{');
    for (i, (name, field)) in rt.fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_field(name, field, rt, opts, out);
    }
    out.push('}');
    if opts.counts {
        out.push_str(&format!("({})", rt.count));
    }
}

fn write_field(
    name: &str,
    field: &FieldType,
    rt: &RecordType,
    opts: PrintOptions,
    out: &mut String,
) {
    // Quote names that would not re-parse as identifiers.
    if is_plain_ident(name) {
        out.push_str(name);
    } else {
        out.push('"');
        for c in name.chars() {
            if c == '"' || c == '\\' {
                out.push('\\');
            }
            out.push(c);
        }
        out.push('"');
    }
    if field.presence < rt.count {
        out.push('?');
    }
    out.push_str(": ");
    write_type(&field.ty, opts, out);
    if opts.counts {
        out.push_str(&format!(" ({}/{})", field.presence, rt.count));
    }
}

pub(crate) fn is_plain_ident(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::Equivalence;
    use crate::infer::{infer_collection, infer_value};
    use jsonx_data::json;

    #[test]
    fn scalar_rendering() {
        let t = infer_value(&json!(1), Equivalence::Kind);
        assert_eq!(print_type(&t, PrintOptions::plain()), "Int");
        assert_eq!(print_type(&t, PrintOptions::with_counts()), "Int(1)");
    }

    #[test]
    fn record_with_optional_fields() {
        let t = infer_collection(
            &[json!({"id": 1, "name": "a"}), json!({"id": 2})],
            Equivalence::Kind,
        );
        assert_eq!(
            print_type(&t, PrintOptions::plain()),
            "{id: Int, name?: Str}"
        );
        assert_eq!(
            print_type(&t, PrintOptions::with_counts()),
            "{id: Int(2) (2/2), name?: Str(1) (1/2)}(2)"
        );
    }

    #[test]
    fn arrays_and_unions() {
        let t = infer_value(&json!([1, "a"]), Equivalence::Kind);
        assert_eq!(print_type(&t, PrintOptions::plain()), "[(Int + Str)]");
        let t = infer_value(&json!([]), Equivalence::Kind);
        assert_eq!(print_type(&t, PrintOptions::plain()), "[]");
    }

    #[test]
    fn exotic_field_names_are_quoted() {
        let t = infer_value(&json!({"a b": 1, "ok_1": 2}), Equivalence::Kind);
        assert_eq!(
            print_type(&t, PrintOptions::plain()),
            "{\"a b\": Int, ok_1: Int}"
        );
    }

    #[test]
    fn bottom_renders() {
        assert_eq!(print_type(&JType::Bottom, PrintOptions::plain()), "⊥");
    }
}
