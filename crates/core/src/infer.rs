//! The map step: abstracting one document into its type, and the
//! sequential collection fold.

use crate::equiv::Equivalence;
use crate::fuse::{fuse, fuse_all};
use crate::types::{ArrayType, FieldName, FieldType, JType, RecordType};
use jsonx_data::Value;

/// Abstracts a single JSON value into its exact structural type, with all
/// counters at 1. Array element types are fused immediately (the map step
/// already applies the equivalence inside arrays, as in the papers).
pub fn infer_value(value: &Value, equiv: Equivalence) -> JType {
    match value {
        Value::Null => JType::Null { count: 1 },
        Value::Bool(_) => JType::Bool { count: 1 },
        Value::Num(n) if n.is_integer() => JType::Int { count: 1 },
        Value::Num(_) => JType::Float { count: 1 },
        Value::Str(_) => JType::Str { count: 1 },
        Value::Arr(items) => {
            let item = fuse_all(items.iter().map(|v| infer_value(v, equiv)), equiv);
            JType::Array(ArrayType {
                item: Box::new(item),
                count: 1,
                total_items: items.len() as u64,
            })
        }
        Value::Obj(obj) => {
            let mut fields: Vec<(FieldName, FieldType)> = obj
                .iter()
                .map(|(k, v)| {
                    (
                        FieldName::from(k),
                        FieldType {
                            ty: infer_value(v, equiv),
                            presence: 1,
                        },
                    )
                })
                .collect();
            fields.sort_by(|(a, _), (b, _)| a.cmp(b));
            JType::Record(RecordType { fields, count: 1 })
        }
    }
}

/// Infers the type of a whole collection: map then sequential reduce.
pub fn infer_collection(docs: &[Value], equiv: Equivalence) -> JType {
    docs.iter()
        .map(|d| infer_value(d, equiv))
        .fold(JType::Bottom, |acc, t| fuse(acc, t, equiv))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    #[test]
    fn scalar_abstraction() {
        assert_eq!(
            infer_value(&json!(null), Equivalence::Kind),
            JType::Null { count: 1 }
        );
        assert_eq!(
            infer_value(&json!(2.5), Equivalence::Kind),
            JType::Float { count: 1 }
        );
        assert_eq!(
            infer_value(&json!(2), Equivalence::Kind),
            JType::Int { count: 1 }
        );
    }

    #[test]
    fn record_fields_are_sorted() {
        let t = infer_value(&json!({"b": 1, "a": 2}), Equivalence::Kind);
        let JType::Record(r) = t else { panic!() };
        assert_eq!(r.labels().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn empty_array_has_bottom_items() {
        let t = infer_value(&json!([]), Equivalence::Kind);
        let JType::Array(at) = t else { panic!() };
        assert_eq!(*at.item, JType::Bottom);
        assert_eq!(at.total_items, 0);
    }

    #[test]
    fn heterogeneous_array_items_fuse() {
        let t = infer_value(&json!([1, "a", 2, null]), Equivalence::Kind);
        let JType::Array(at) = t else { panic!() };
        let JType::Union(ms) = &*at.item else {
            panic!()
        };
        assert_eq!(ms.len(), 3); // Null, Int, Str
        assert_eq!(at.total_items, 4);
    }

    #[test]
    fn collection_inference_counts() {
        let docs = vec![
            json!({"id": 1}),
            json!({"id": 2, "tag": "x"}),
            json!({"id": 3}),
        ];
        let JType::Record(r) = infer_collection(&docs, Equivalence::Kind) else {
            panic!()
        };
        assert_eq!(r.count, 3);
        assert_eq!(r.field("id").unwrap().presence, 3);
        assert_eq!(r.field("tag").unwrap().presence, 1);
    }

    #[test]
    fn every_input_is_admitted() {
        let docs = vec![
            json!({"a": [1, {"x": true}], "b": null}),
            json!({"a": [], "c": "s"}),
            json!({"a": [2.5], "b": null}),
        ];
        for equiv in [Equivalence::Kind, Equivalence::Label] {
            let t = infer_collection(&docs, equiv);
            for d in &docs {
                assert!(t.admits(d), "{equiv:?} failed to admit {d}");
            }
        }
    }

    #[test]
    fn empty_collection_is_bottom() {
        assert_eq!(infer_collection(&[], Equivalence::Kind), JType::Bottom);
    }

    #[test]
    fn label_inference_keeps_variants() {
        let docs = vec![
            json!({"kind": "a", "x": 1}),
            json!({"kind": "b", "y": 2}),
            json!({"kind": "a", "x": 3}),
        ];
        let t = infer_collection(&docs, Equivalence::Label);
        let JType::Union(ms) = &t else {
            panic!("expected union, got {t:?}")
        };
        assert_eq!(ms.len(), 2);
        assert_eq!(t.count(), 3);
    }
}
