//! # jsonx-core
//!
//! The tutorial's centre of gravity (§4.1): **parametric schema inference
//! for massive JSON collections**, after the line of work by Baazizi,
//! Colazzo, Ghelli and Sartiani (EDBT 2017; DBPL 2017 "counting types";
//! VLDB Journal 2019 "parametric schema inference").
//!
//! The pipeline is a map/reduce:
//!
//! 1. **Map** ([`infer_value`]): each document is abstracted into a
//!    [`JType`] — its exact structural type with all counters set to 1.
//! 2. **Reduce** ([`fuse`]): types are pairwise *fused* with a commutative,
//!    associative, idempotent-on-shape operator, parameterised by an
//!    [`Equivalence`] that decides when two record types collapse into one:
//!    * [`Equivalence::Kind`] (**K**): all records merge — maximal
//!      succinctness, fields become optional as needed;
//!    * [`Equivalence::Label`] (**L**): records merge only when they have
//!      the same field-name set — maximal precision, unions grow.
//!
//! Because fusion is a commutative monoid (with [`JType::Bottom`] as the
//! unit), the reduce parallelises and distributes freely;
//! [`infer_collection_parallel`] exploits that with scoped worker
//! threads, standing in for the papers' Spark deployment.
//!
//! Types carry **counting annotations** (DBPL 2017): how many values were
//! fused into each node and how often each record field was present, so the
//! inferred schema doubles as a statistical profile of the collection.
//!
//! ```
//! use jsonx_data::json;
//! use jsonx_core::{infer_collection, Equivalence, print_type, PrintOptions};
//!
//! let docs = vec![
//!     json!({"id": 1, "name": "ada"}),
//!     json!({"id": 2}),
//!     json!({"id": "x3", "name": "lin"}),
//! ];
//! let ty = infer_collection(&docs, Equivalence::Kind);
//! let rendered = print_type(&ty, PrintOptions::plain());
//! assert_eq!(rendered, "{id: (Int + Str), name?: Str}");
//! ```

pub mod equiv;
pub mod export;
pub mod fuse;
pub mod infer;
pub mod metrics;
pub mod parallel;
pub mod printer;
pub mod simplify;
pub mod type_parser;
pub mod types;

pub use equiv::Equivalence;
pub use export::to_json_schema;
pub use fuse::{fuse, fuse_all};
pub use infer::{infer_collection, infer_value};
pub use metrics::{false_acceptance_rate, measure, type_size, TypeMetrics};
pub use parallel::{infer_collection_parallel, ParallelOptions};
pub use printer::{print_type, PrintOptions};
pub use simplify::{
    bound_union_width, collapse_below_depth, collapse_record_unions, widen_numeric,
};
pub use type_parser::{parse_type, TypeParseError};
pub use types::{ArrayType, FieldName, FieldType, JType, RecordType};
