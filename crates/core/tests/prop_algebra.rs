//! Property tests for the fusion algebra and inference soundness — the
//! laws that make distributed/parallel inference correct.

use jsonx_core::{
    fuse, fuse_all, infer_collection, infer_collection_parallel, infer_value, parse_type,
    print_type, to_json_schema, Equivalence, JType, ParallelOptions, PrintOptions,
};
use jsonx_data::{Number, Object, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(|i| Value::Num(Number::Int(i))),
        (-10.0f64..10.0).prop_map(|f| Value::Num(Number::from_f64(f).unwrap())),
        "[a-z]{0,6}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 24, 5, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Arr),
            prop::collection::vec(("[a-d]{1,2}", inner), 0..4)
                .prop_map(|pairs| { Value::Obj(pairs.into_iter().collect::<Object>()) }),
        ]
    })
}

fn arb_equiv() -> impl Strategy<Value = Equivalence> {
    prop_oneof![Just(Equivalence::Kind), Just(Equivalence::Label)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fusion_is_commutative(a in arb_value(), b in arb_value(), e in arb_equiv()) {
        let ta = infer_value(&a, e);
        let tb = infer_value(&b, e);
        prop_assert_eq!(
            fuse(ta.clone(), tb.clone(), e),
            fuse(tb, ta, e)
        );
    }

    #[test]
    fn fusion_is_associative(
        a in arb_value(), b in arb_value(), c in arb_value(), e in arb_equiv()
    ) {
        let (ta, tb, tc) = (infer_value(&a, e), infer_value(&b, e), infer_value(&c, e));
        let left = fuse(fuse(ta.clone(), tb.clone(), e), tc.clone(), e);
        let right = fuse(ta, fuse(tb, tc, e), e);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn bottom_is_identity(a in arb_value(), e in arb_equiv()) {
        let t = infer_value(&a, e);
        prop_assert_eq!(fuse(t.clone(), JType::Bottom, e), t.clone());
        prop_assert_eq!(fuse(JType::Bottom, t.clone(), e), t);
    }

    #[test]
    fn inference_is_sound(docs in prop::collection::vec(arb_value(), 0..12), e in arb_equiv()) {
        let t = infer_collection(&docs, e);
        for d in &docs {
            prop_assert!(t.admits(d), "inferred type does not admit {}", d);
        }
    }

    #[test]
    fn count_equals_collection_size(
        docs in prop::collection::vec(arb_value(), 0..12), e in arb_equiv()
    ) {
        let t = infer_collection(&docs, e);
        prop_assert_eq!(t.count(), docs.len() as u64);
    }

    #[test]
    fn parallel_matches_sequential(
        docs in prop::collection::vec(arb_value(), 0..64), e in arb_equiv(),
        workers in 1usize..5
    ) {
        let seq = infer_collection(&docs, e);
        let par = infer_collection_parallel(
            &docs, e, ParallelOptions { workers, min_chunk: 4 }
        );
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn partition_invariance(
        docs in prop::collection::vec(arb_value(), 0..24),
        split in 0usize..24, e in arb_equiv()
    ) {
        // Fusing partition-wise equals fusing document-wise regardless of
        // the cut point.
        let cut = split.min(docs.len());
        let left = infer_collection(&docs[..cut], e);
        let right = infer_collection(&docs[cut..], e);
        prop_assert_eq!(fuse(left, right, e), infer_collection(&docs, e));
    }

    #[test]
    fn counting_print_parse_round_trip(
        docs in prop::collection::vec(arb_value(), 1..10), e in arb_equiv()
    ) {
        let t = infer_collection(&docs, e);
        let text = print_type(&t, PrintOptions::with_counts());
        let back = parse_type(&text)
            .unwrap_or_else(|err| panic!("reparse of {text:?} failed: {err}"));
        prop_assert_eq!(back, t);
    }

    #[test]
    fn exported_schema_shape_is_schema_like(
        docs in prop::collection::vec(arb_value(), 0..8), e in arb_equiv()
    ) {
        // Full cross-crate validation lives in the workspace integration
        // tests; here we check the export is always a bool or object.
        let t = infer_collection(&docs, e);
        let schema = to_json_schema(&t);
        prop_assert!(matches!(schema, Value::Bool(_) | Value::Obj(_)));
    }

    #[test]
    fn fuse_all_equals_pairwise_fold(
        docs in prop::collection::vec(arb_value(), 0..10), e in arb_equiv()
    ) {
        let types: Vec<_> = docs.iter().map(|d| infer_value(d, e)).collect();
        let a = fuse_all(types.clone(), e);
        let b = types.into_iter().fold(JType::Bottom, |acc, t| fuse(acc, t, e));
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn abstractions_preserve_soundness(
        docs in prop::collection::vec(arb_value(), 1..10),
        depth in 0usize..4,
        k in 1usize..4,
    ) {
        use jsonx_core::{bound_union_width, collapse_below_depth,
                         collapse_record_unions, widen_numeric};
        let l = infer_collection(&docs, Equivalence::Label);
        for (name, abstracted) in [
            ("widen_numeric", widen_numeric(l.clone())),
            ("collapse_record_unions", collapse_record_unions(l.clone())),
            ("collapse_below_depth", collapse_below_depth(l.clone(), depth)),
            ("bound_union_width", bound_union_width(l.clone(), k)),
        ] {
            for d in &docs {
                prop_assert!(
                    abstracted.admits(d),
                    "{} lost document {}", name, d
                );
            }
        }
    }

    #[test]
    fn depth_zero_collapse_equals_kind_inference(
        docs in prop::collection::vec(arb_value(), 0..10)
    ) {
        use jsonx_core::collapse_below_depth;
        let l = infer_collection(&docs, Equivalence::Label);
        let k = infer_collection(&docs, Equivalence::Kind);
        prop_assert_eq!(collapse_below_depth(l, 0), k);
    }
}
