//! Per-connection handling: the defensive framer and the request loop.
//!
//! Each connection gets one thread and one [`Framer`] — a newline framer
//! that polls with a short read timeout so it can notice the shutdown
//! latch, caps the frame size (oversized frames are rejected before
//! buffering grows without bound), and enforces a completion budget on
//! partially received frames (the slow-loris guard: a client trickling
//! one byte at a time gets `slow-frame` and the socket back, not a
//! parked thread forever).
//!
//! Admin verbs (`PING`, `STATS`, `RELOAD`, `SHUTDOWN`) are answered on
//! the connection thread — they must keep working while the data queue
//! is saturated. Data verbs go through the bounded queue with `try_send`:
//! a full queue answers `busy` immediately (explicit load-shedding), and
//! the connection then blocks on its rendezvous reply channel, so
//! responses stay in request order per connection.

use crate::cache::handle_reload;
use crate::engine::{Job, Work};
use crate::protocol::{
    parse_request, Request, Response, KIND_BAD_FRAME, KIND_BUSY, KIND_RELOAD_FAILED,
    KIND_SHUTTING_DOWN, KIND_SLOW_FRAME,
};
use crate::Shared;
use jsonx_syntax::{ParseErrorKind, RecordLimit};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::time::{Duration, Instant};

/// Read-timeout granularity: how often a blocked read re-checks the
/// shutdown latch and the frame budget.
const POLL: Duration = Duration::from_millis(25);

/// What one call to [`Framer::next`] produced.
pub(crate) enum FrameEvent {
    /// A complete line (newline stripped).
    Line(String),
    /// A complete line that was not valid UTF-8.
    BadUtf8,
    /// The frame grew past the cap without a newline.
    Oversized,
    /// The frame's first byte arrived but the rest didn't within budget.
    Slow,
    /// The peer closed (EOF). `mid_frame` is true when bytes of an
    /// unterminated frame were pending — a mid-request disconnect.
    Closed { mid_frame: bool },
    /// The daemon is draining and this connection is idle.
    ShuttingDown,
    /// The socket failed.
    Io,
}

/// Newline framer over a polled, capped, budgeted socket read loop.
pub(crate) struct Framer {
    stream: TcpStream,
    buf: Vec<u8>,
    cap: usize,
    budget: Duration,
}

impl Framer {
    pub(crate) fn new(stream: TcpStream, cap: usize, budget: Duration) -> std::io::Result<Framer> {
        stream.set_read_timeout(Some(POLL))?;
        // A peer that stops reading its responses shouldn't park the
        // handler forever either.
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        Ok(Framer {
            stream,
            buf: Vec::new(),
            cap,
            budget,
        })
    }

    /// Blocks until one frame completes (or fails to). Pipelined frames
    /// already buffered are returned without touching the socket.
    pub(crate) fn next(&mut self, shutdown: &AtomicBool) -> FrameEvent {
        let mut started: Option<Instant> = (!self.buf.is_empty()).then(Instant::now);
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                return match String::from_utf8(line) {
                    Ok(text) => FrameEvent::Line(text),
                    Err(_) => FrameEvent::BadUtf8,
                };
            }
            if self.buf.len() > self.cap {
                return FrameEvent::Oversized;
            }
            if let Some(t0) = started {
                if t0.elapsed() > self.budget {
                    return FrameEvent::Slow;
                }
            }
            let mut tmp = [0u8; 4096];
            match self.stream.read(&mut tmp) {
                Ok(0) => {
                    return FrameEvent::Closed {
                        mid_frame: !self.buf.is_empty(),
                    }
                }
                Ok(n) => {
                    if started.is_none() {
                        started = Some(Instant::now());
                    }
                    self.buf.extend_from_slice(&tmp[..n]);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if shutdown.load(Ordering::SeqCst) && self.buf.is_empty() {
                        return FrameEvent::ShuttingDown;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return FrameEvent::Io,
            }
        }
    }

    /// Writes one response line. A failed write (peer gone) is reported
    /// so the handler can stop, but never panics the connection.
    pub(crate) fn send(&mut self, response: &Response) -> bool {
        let mut line = response.line.clone().into_bytes();
        line.push(b'\n');
        self.stream.write_all(&line).is_ok()
    }
}

/// Answers one over-cap connection with a structured `busy` line.
pub(crate) fn refuse(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let resp = Response::err(KIND_BUSY, "connection limit reached");
    let _ = stream.write_all(format!("{}\n", resp.line).as_bytes());
}

/// The per-connection request loop. Returns when the peer closes, a
/// frame-level fault closes the connection, or the daemon drains.
pub(crate) fn handle_conn(
    shared: &std::sync::Arc<Shared>,
    tx: &SyncSender<Job>,
    stream: TcpStream,
    conn_id: usize,
) {
    let config = &shared.config;
    let mut framer = match Framer::new(stream, config.frame_cap(), config.frame_budget) {
        Ok(framer) => framer,
        Err(_) => return,
    };
    loop {
        let event = framer.next(&shared.shutdown);
        let line = match event {
            FrameEvent::Line(line) => line,
            FrameEvent::BadUtf8 => {
                shared.stats.lock().unwrap().bad_frames += 1;
                framer.send(&Response::err_close(KIND_BAD_FRAME, "frame is not UTF-8"));
                return;
            }
            FrameEvent::Oversized => {
                shared.stats.lock().unwrap().oversized_frames += 1;
                // Same stable label an oversized record gets in the batch
                // pipeline, so clients see one vocabulary.
                let kind = ParseErrorKind::LimitExceeded(RecordLimit::InputBytes).label();
                framer.send(&Response::err_close(
                    kind,
                    &format!("frame exceeds {} bytes", config.frame_cap()),
                ));
                return;
            }
            FrameEvent::Slow => {
                shared.stats.lock().unwrap().slow_frames += 1;
                framer.send(&Response::err_close(
                    KIND_SLOW_FRAME,
                    &format!(
                        "frame did not complete within {} ms",
                        config.frame_budget.as_millis()
                    ),
                ));
                return;
            }
            FrameEvent::Closed { mid_frame } => {
                if mid_frame {
                    shared.stats.lock().unwrap().disconnects += 1;
                }
                return;
            }
            FrameEvent::ShuttingDown | FrameEvent::Io => return,
        };
        shared.stats.lock().unwrap().frames += 1;
        let request = match parse_request(&line, config.debug_faults) {
            Ok(request) => request,
            Err(resp) => {
                shared.stats.lock().unwrap().malformed_requests += 1;
                if !framer.send(&resp) {
                    return;
                }
                continue;
            }
        };
        let work = match request {
            Request::Ping => {
                let epoch = shared.cache.snapshot().epoch;
                if !framer.send(&Response::ok_ping(epoch)) {
                    return;
                }
                continue;
            }
            Request::Stats => {
                let resp = {
                    let stats = shared.stats.lock().unwrap();
                    crate::stats::stats_response(
                        &stats,
                        shared.cache.snapshot().epoch,
                        shared.config.effective_queue_depth(),
                    )
                };
                if !framer.send(&resp) {
                    return;
                }
                continue;
            }
            Request::Reload => {
                let resp = match handle_reload(shared) {
                    Ok(epoch) => Response::ok_reload(epoch),
                    Err(message) => Response::err(KIND_RELOAD_FAILED, &message),
                };
                if !framer.send(&resp) {
                    return;
                }
                continue;
            }
            Request::Shutdown => {
                framer.send(&Response::ok_shutdown());
                shared.begin_shutdown();
                return;
            }
            Request::Boom => Work::Boom,
            Request::Sleep(ms) => Work::Sleep(ms),
            Request::Data { op, payload } => {
                let work = Work::Data(op);
                if !enqueue(shared, tx, &mut framer, work, payload, conn_id) {
                    return;
                }
                continue;
            }
        };
        if !enqueue(shared, tx, &mut framer, work, String::new(), conn_id) {
            return;
        }
    }
}

/// Admits one request to the bounded queue and relays its reply. Returns
/// false when the connection must close (write failure or a poisoned
/// request).
fn enqueue(
    shared: &std::sync::Arc<Shared>,
    tx: &SyncSender<Job>,
    framer: &mut Framer,
    work: Work,
    payload: String,
    conn_id: usize,
) -> bool {
    if shared.shutdown.load(Ordering::SeqCst) {
        framer.send(&Response::err_close(
            KIND_SHUTTING_DOWN,
            "daemon is draining",
        ));
        return false;
    }
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let job = Job {
        work,
        payload,
        seq: shared.next_seq(),
        conn: conn_id,
        enqueued: Instant::now(),
        reply: reply_tx,
    };
    match tx.try_send(job) {
        Ok(()) => {
            shared.stats.lock().unwrap().enqueued += 1;
            // The worker's catch_unwind guarantees exactly one reply per
            // enqueued job; a dropped sender (impossible today) degrades
            // to a panic response rather than a hang.
            let response = reply_rx.recv().unwrap_or_else(|_| {
                Response::err_close(crate::protocol::KIND_PANIC, "reply channel lost")
            });
            let close = response.close;
            framer.send(&response) && !close
        }
        Err(TrySendError::Full(_)) => {
            shared.stats.lock().unwrap().shed += 1;
            framer.send(&Response::err(
                KIND_BUSY,
                &format!(
                    "request queue full (depth {})",
                    shared.config.effective_queue_depth()
                ),
            ))
        }
        Err(TrySendError::Disconnected(_)) => {
            framer.send(&Response::err_close(
                KIND_SHUTTING_DOWN,
                "daemon is draining",
            ));
            false
        }
    }
}
