//! # jsonx-serve
//!
//! The resident schema service: a long-running daemon exposing the
//! workspace's validate / infer / translate stages over a line-oriented
//! protocol on a TCP socket — the "compile once, amortise across millions
//! of requests" runtime the ROADMAP's north star calls for.
//!
//! Robustness is the headline, not an afterthought:
//!
//! * **Epoch-swapped schema cache** ([`SchemaCache`]): the schema is
//!   compiled once into the arena IR and shared behind an `Arc`; the
//!   admin `RELOAD` verb recompiles off to the side and atomically swaps
//!   the `Arc` in, so in-flight requests finish against the epoch they
//!   started with and a failed recompile keeps the old epoch serving.
//! * **Bounded queue with explicit load-shedding**: requests enter a
//!   fixed-depth queue; when it is full the client gets a structured
//!   `busy` response immediately instead of the daemon buffering without
//!   bound.
//! * **Per-request deadlines and [`ParseLimits`]**: a request that waited
//!   in the queue past its deadline is answered `deadline-exceeded`
//!   without being parsed, and oversized / too-deep / string-bomb
//!   payloads are rejected with the same stable error labels the batch
//!   pipeline uses — a hostile payload can never wedge a worker.
//! * **Per-connection panic isolation**: each request runs under
//!   `catch_unwind` (the engine's machinery, reporting through the same
//!   [`ShardPanic`](jsonx_pipeline::ShardPanic) shape); a poisoned
//!   request closes its own connection and the daemon keeps serving.
//! * **Graceful shutdown**: `SHUTDOWN` stops the acceptor, lets every
//!   connection finish its current frame, drains the queue, and emits a
//!   final aggregated [`FinalReport`] whose embedded
//!   [`RunReport`](jsonx_pipeline::RunReport) reconciles every accepted
//!   request against every response sent.
//!
//! The protocol is deliberately minimal — one request per line, one JSON
//! response line back (see [`protocol`]) — so the fault-injection harness
//! can drive it from a few lines of test code and misbehaving clients are
//! easy to write on purpose.

mod cache;
mod conn;
mod engine;
pub mod protocol;
mod stats;

pub use cache::{SchemaCache, SchemaEpoch};
pub use protocol::{DataOp, Request, Response};
pub use stats::FinalReport;

use engine::Job;
use jsonx_syntax::ParseLimits;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Default bounded queue depth.
pub const DEFAULT_QUEUE_DEPTH: usize = 64;
/// Default concurrent-connection cap.
pub const DEFAULT_MAX_CONNS: usize = 64;
/// Default budget for one frame to finish arriving once its first byte
/// has (the slow-loris guard).
pub const DEFAULT_FRAME_BUDGET: Duration = Duration::from_secs(2);
/// Default frame cap when `limits.max_input_bytes` is unset.
pub const DEFAULT_FRAME_CAP: usize = 8 << 20;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port `0` picks a free port).
    pub listen: String,
    /// Schema document to compile and serve; `None` runs schema-less
    /// (VALIDATE answers `no-schema`, INFER / TRANSLATE still work).
    pub schema_path: Option<PathBuf>,
    /// Bounded request-queue depth (`0` = [`DEFAULT_QUEUE_DEPTH`]).
    pub queue_depth: usize,
    /// Worker threads (`0` = auto, like the pipeline engine).
    pub workers: usize,
    /// Per-request queue-wait deadline; a request still queued past this
    /// is answered `deadline-exceeded` without being parsed.
    pub deadline: Option<Duration>,
    /// Concurrent-connection cap (`0` = [`DEFAULT_MAX_CONNS`]); excess
    /// connections get one `busy` line and are closed.
    pub max_conns: usize,
    /// Per-request resource limits, enforced exactly like the batch
    /// pipeline's guarded paths.
    pub limits: ParseLimits,
    /// Budget for one frame to finish arriving once its first byte has;
    /// slower writers are cut off with `slow-frame`.
    pub frame_budget: Duration,
    /// Enable the deterministic fault verbs (`BOOM`, `SLEEP`) the
    /// fault-injection harness uses. Off by default.
    pub debug_faults: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            schema_path: None,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            workers: 0,
            deadline: None,
            max_conns: DEFAULT_MAX_CONNS,
            limits: ParseLimits::default(),
            frame_budget: DEFAULT_FRAME_BUDGET,
            debug_faults: false,
        }
    }
}

impl ServeConfig {
    /// The hard cap on one frame's bytes: the record limit plus slack for
    /// the verb, or [`DEFAULT_FRAME_CAP`] when no record limit is set.
    pub(crate) fn frame_cap(&self) -> usize {
        match self.limits.max_input_bytes {
            Some(limit) => limit.saturating_add(4096),
            None => DEFAULT_FRAME_CAP,
        }
    }

    pub(crate) fn effective_queue_depth(&self) -> usize {
        if self.queue_depth == 0 {
            DEFAULT_QUEUE_DEPTH
        } else {
            self.queue_depth
        }
    }

    pub(crate) fn effective_max_conns(&self) -> usize {
        if self.max_conns == 0 {
            DEFAULT_MAX_CONNS
        } else {
            self.max_conns
        }
    }

    pub(crate) fn effective_workers(&self) -> usize {
        jsonx_pipeline::resolve_workers(self.workers)
    }
}

/// Why the daemon failed to start.
#[derive(Debug)]
pub enum ServeError {
    /// The listen socket could not be bound.
    Bind(std::io::Error),
    /// The schema file could not be read.
    SchemaIo(PathBuf, std::io::Error),
    /// The schema file did not parse or compile.
    SchemaInvalid(PathBuf, String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "binding listen socket: {e}"),
            ServeError::SchemaIo(p, e) => write!(f, "reading schema {}: {e}", p.display()),
            ServeError::SchemaInvalid(p, msg) => {
                write!(f, "compiling schema {}: {msg}", p.display())
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// State shared by the acceptor, every connection thread, and the worker
/// pool.
pub(crate) struct Shared {
    pub(crate) config: ServeConfig,
    pub(crate) cache: SchemaCache,
    pub(crate) stats: Mutex<stats::Counters>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) next_seq: AtomicUsize,
    pub(crate) local_addr: Mutex<Option<SocketAddr>>,
}

impl Shared {
    pub(crate) fn next_seq(&self) -> usize {
        self.next_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Flips the shutdown latch and pokes the blocking acceptor awake
    /// with a throwaway self-connection.
    pub(crate) fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(addr) = *self.local_addr.lock().unwrap() {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
        }
    }
}

/// A bound (but not yet running) daemon.
///
/// [`bind`](Server::bind) compiles the schema and binds the socket so
/// configuration errors surface before the caller commits;
/// [`run`](Server::run) blocks serving requests until a `SHUTDOWN` verb
/// arrives, then drains and returns the final [`FinalReport`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    tx: SyncSender<Job>,
    rx: Arc<Mutex<Receiver<Job>>>,
}

impl Server {
    /// Compiles the schema (if any), binds the listen socket, and sets up
    /// the bounded queue. Nothing is served until [`run`](Server::run).
    pub fn bind(config: ServeConfig) -> Result<Server, ServeError> {
        let cache = SchemaCache::load(config.schema_path.clone())?;
        let listener = TcpListener::bind(&config.listen).map_err(ServeError::Bind)?;
        let local = listener.local_addr().ok();
        let (tx, rx) = mpsc::sync_channel(config.effective_queue_depth());
        let shared = Arc::new(Shared {
            config,
            cache,
            stats: Mutex::new(stats::Counters::default()),
            shutdown: AtomicBool::new(false),
            next_seq: AtomicUsize::new(0),
            local_addr: Mutex::new(local),
        });
        Ok(Server {
            listener,
            shared,
            tx,
            rx: Arc::new(Mutex::new(rx)),
        })
    }

    /// The bound listen address (useful with port `0`).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listener.local_addr().ok()
    }

    /// Serves until a `SHUTDOWN` verb arrives: accepts connections,
    /// spawns one handler thread per connection, then drains — the
    /// acceptor stops, connection threads finish their current frames,
    /// the worker pool empties the queue — and returns the aggregated
    /// final report.
    pub fn run(self) -> FinalReport {
        let Server {
            listener,
            shared,
            tx,
            rx,
        } = self;
        let workers: Vec<_> = (0..shared.config.effective_workers())
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || engine::worker_loop(&shared, &rx))
            })
            .collect();
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let max_conns = shared.config.effective_max_conns();
        let mut next_conn = 0usize;
        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    continue;
                }
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            conns.retain(|h| !h.is_finished());
            if conns.len() >= max_conns {
                shared.stats.lock().unwrap().refused += 1;
                conn::refuse(stream);
                continue;
            }
            shared.stats.lock().unwrap().connections += 1;
            let conn_id = next_conn;
            next_conn += 1;
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            conns.push(std::thread::spawn(move || {
                conn::handle_conn(&shared, &tx, stream, conn_id);
            }));
        }
        // Drain: the acceptor's sender drops first, each connection
        // thread notices the latch (or finishes its last frame) and drops
        // its clone, and only then does the workers' recv() run dry —
        // after the queue has fully emptied.
        drop(tx);
        for h in conns {
            let _ = h.join();
        }
        for h in workers {
            let _ = h.join();
        }
        let counters = std::mem::take(&mut *shared.stats.lock().unwrap());
        stats::FinalReport::from_counters(counters, shared.cache.snapshot().epoch)
    }
}
