//! The epoch-swapped schema cache: compile once, serve millions of
//! requests, hot-reload without interrupting any of them.
//!
//! The cache holds one [`SchemaEpoch`] — the compiled arena IR plus a
//! monotonically increasing epoch number — behind an `Arc` that request
//! workers clone at admission. `RELOAD` recompiles from the configured
//! path *off to the side* (no lock held during file I/O or compilation)
//! and swaps the `Arc` in one short critical section; requests that
//! already hold the old epoch finish against it, requests admitted after
//! the swap see the new one, and a failed recompile leaves the serving
//! epoch untouched.

use crate::{ServeError, Shared};
use jsonx_schema::CompiledSchema;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// One compiled-schema generation.
#[derive(Debug)]
pub struct SchemaEpoch {
    /// Generation number: `0` = no schema configured, `1` = the schema
    /// loaded at startup, `+1` per successful reload.
    pub epoch: u64,
    /// The compiled schema; `None` when the daemon runs schema-less.
    pub schema: Option<CompiledSchema>,
}

/// The cache itself. See the module docs for the swap discipline.
pub struct SchemaCache {
    path: Option<PathBuf>,
    current: Mutex<Arc<SchemaEpoch>>,
    /// Serialises reloads so concurrent `RELOAD`s can't interleave their
    /// read-compile-swap sequences (each still observes an up-to-date
    /// epoch number when it swaps).
    reload_gate: Mutex<()>,
}

/// Reads and compiles the schema document at `path`.
fn compile_path(path: &PathBuf) -> Result<CompiledSchema, ServeError> {
    let text = std::fs::read_to_string(path).map_err(|e| ServeError::SchemaIo(path.clone(), e))?;
    let doc = jsonx_syntax::parse(&text)
        .map_err(|e| ServeError::SchemaInvalid(path.clone(), e.to_string()))?;
    CompiledSchema::compile(&doc)
        .map_err(|e| ServeError::SchemaInvalid(path.clone(), e.to_string()))
}

impl SchemaCache {
    /// Compiles the schema at `path` (when given) into epoch 1; `None`
    /// starts a schema-less cache at epoch 0.
    pub fn load(path: Option<PathBuf>) -> Result<SchemaCache, ServeError> {
        let initial = match &path {
            Some(p) => SchemaEpoch {
                epoch: 1,
                schema: Some(compile_path(p)?),
            },
            None => SchemaEpoch {
                epoch: 0,
                schema: None,
            },
        };
        Ok(SchemaCache {
            path,
            current: Mutex::new(Arc::new(initial)),
            reload_gate: Mutex::new(()),
        })
    }

    /// The serving epoch, cloned cheaply. Callers hold the `Arc` for the
    /// whole request, so a concurrent swap never invalidates it.
    pub fn snapshot(&self) -> Arc<SchemaEpoch> {
        Arc::clone(&self.current.lock().unwrap())
    }

    /// Recompiles from the configured path and atomically swaps the new
    /// epoch in. Returns the new epoch number, or an error message — in
    /// which case the previous epoch keeps serving.
    pub fn reload(&self) -> Result<u64, String> {
        let Some(path) = &self.path else {
            return Err("no schema configured; start with --schema".to_string());
        };
        let _gate = self.reload_gate.lock().unwrap();
        // Compile outside the swap lock: requests keep being admitted
        // against the old epoch while the new one builds.
        let schema = compile_path(path).map_err(|e| e.to_string())?;
        let mut current = self.current.lock().unwrap();
        let epoch = current.epoch + 1;
        *current = Arc::new(SchemaEpoch {
            epoch,
            schema: Some(schema),
        });
        Ok(epoch)
    }
}

/// Counted reload driven by a `RELOAD` frame.
pub(crate) fn handle_reload(shared: &Shared) -> Result<u64, String> {
    let result = shared.cache.reload();
    let mut stats = shared.stats.lock().unwrap();
    match &result {
        Ok(_) => stats.reloads += 1,
        Err(_) => stats.reload_failures += 1,
    }
    result
}
