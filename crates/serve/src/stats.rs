//! Aggregate accounting: live counters, the `STATS` snapshot, and the
//! final report graceful shutdown emits.
//!
//! The daemon's account embeds a pipeline [`RunReport`] — `records` is
//! every data request processed (accepted + rejected), `shards` is the
//! connection count, rejected payloads carry the same
//! [`RecordDiagnostic`](jsonx_pipeline::RecordDiagnostic) shape the batch
//! quarantine uses, and worker panics land in `poisoned` with connection
//! / request-sequence provenance. Around it sit the service-only
//! counters (shed, expired, refused connections, frame-level faults), and
//! [`FinalReport::reconciled`] checks the books balance: every admitted
//! request is accounted for exactly once.

use jsonx_data::Value;
use jsonx_pipeline::{ErrorSummary, RunReport, ShardPanic};

/// Live counters behind the shared mutex.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    /// Connections accepted and handled.
    pub connections: usize,
    /// Connections turned away at the connection cap.
    pub refused: usize,
    /// Complete frames received (before verb parsing).
    pub frames: usize,
    /// Frames that parsed to no request (unknown verb, missing payload).
    pub malformed_requests: usize,
    /// Data requests admitted to the queue.
    pub enqueued: usize,
    /// Data requests a worker has pulled off the queue (including ones
    /// that then expired); `enqueued - dequeued` is the live queue depth.
    pub dequeued: usize,
    /// Data requests a worker finished (accepted + rejected).
    pub processed: usize,
    /// `VALIDATE` verdicts.
    pub valid: usize,
    /// `VALIDATE` verdicts.
    pub invalid: usize,
    /// Data requests rejected (parse error, limit, not-a-record).
    pub rejected: usize,
    /// Data requests shed with `busy` at the full queue.
    pub shed: usize,
    /// Data requests expired in the queue past the deadline.
    pub expired: usize,
    /// Frames that were not UTF-8.
    pub bad_frames: usize,
    /// Frames cut off at the size cap.
    pub oversized_frames: usize,
    /// Frames cut off at the completion budget (slow-loris).
    pub slow_frames: usize,
    /// Peers that vanished mid-frame.
    pub disconnects: usize,
    /// Successful `RELOAD`s.
    pub reloads: usize,
    /// Failed `RELOAD`s (old epoch kept serving).
    pub reload_failures: usize,
    /// Rejected-payload diagnostics, batch-shaped.
    pub errors: ErrorSummary,
    /// Caught worker panics, batch-shaped.
    pub poisoned: Vec<ShardPanic>,
}

/// The aggregated account [`Server::run`](crate::Server::run) returns
/// after a graceful drain.
#[derive(Debug, Clone)]
pub struct FinalReport {
    /// The batch-shaped core: `records` = data requests processed,
    /// `shards` = connections handled, `errors` = rejected payloads,
    /// `poisoned` = caught request panics.
    pub report: RunReport,
    /// Connections turned away at the connection cap.
    pub refused: usize,
    /// Complete frames received.
    pub frames: usize,
    /// Frames that parsed to no request.
    pub malformed_requests: usize,
    /// Data requests admitted to the queue.
    pub enqueued: usize,
    /// `VALIDATE` verdict counts.
    pub valid: usize,
    /// `VALIDATE` verdict counts.
    pub invalid: usize,
    /// Data requests rejected (parse error, limit, not-a-record).
    pub rejected: usize,
    /// Data requests shed with `busy`.
    pub shed: usize,
    /// Data requests expired past the deadline.
    pub expired: usize,
    /// Non-UTF-8 frames.
    pub bad_frames: usize,
    /// Frames over the size cap.
    pub oversized_frames: usize,
    /// Frames over the completion budget.
    pub slow_frames: usize,
    /// Mid-frame disconnects.
    pub disconnects: usize,
    /// Successful reloads.
    pub reloads: usize,
    /// Failed reloads.
    pub reload_failures: usize,
    /// The schema epoch serving at shutdown.
    pub epoch: u64,
}

impl FinalReport {
    pub(crate) fn from_counters(c: Counters, epoch: u64) -> FinalReport {
        FinalReport {
            report: RunReport {
                records: c.processed,
                shards: c.connections,
                errors: c.errors,
                poisoned: c.poisoned,
                timings: Vec::new(),
            },
            refused: c.refused,
            frames: c.frames,
            malformed_requests: c.malformed_requests,
            enqueued: c.enqueued,
            valid: c.valid,
            invalid: c.invalid,
            rejected: c.rejected,
            shed: c.shed,
            expired: c.expired,
            bad_frames: c.bad_frames,
            oversized_frames: c.oversized_frames,
            slow_frames: c.slow_frames,
            disconnects: c.disconnects,
            reloads: c.reloads,
            reload_failures: c.reload_failures,
            epoch,
        }
    }

    /// Whether the books balance: every admitted request was processed,
    /// expired, or panicked — exactly once — the per-record error account
    /// matches the rejection counter, and verdicts plus rejections never
    /// exceed the records that produced them.
    pub fn reconciled(&self) -> bool {
        self.enqueued == self.report.records + self.expired + self.report.poisoned.len()
            && self.report.errors.total == self.rejected
            && self.valid + self.invalid + self.rejected <= self.report.records
    }

    /// The report as one JSON value (the shutdown line on stderr).
    pub fn to_json(&self) -> Value {
        let mut by_kind = jsonx_data::Object::new();
        for (kind, n) in &self.report.errors.by_kind {
            by_kind.insert(*kind, Value::from(*n as i64));
        }
        jsonx_data::json!({
            "records": (self.report.records as i64),
            "connections": (self.report.shards as i64),
            "refused": (self.refused as i64),
            "frames": (self.frames as i64),
            "malformed_requests": (self.malformed_requests as i64),
            "enqueued": (self.enqueued as i64),
            "valid": (self.valid as i64),
            "invalid": (self.invalid as i64),
            "rejected": (self.report.errors.total as i64),
            "shed": (self.shed as i64),
            "expired": (self.expired as i64),
            "panics": (self.report.poisoned.len() as i64),
            "bad_frames": (self.bad_frames as i64),
            "oversized_frames": (self.oversized_frames as i64),
            "slow_frames": (self.slow_frames as i64),
            "disconnects": (self.disconnects as i64),
            "reloads": (self.reloads as i64),
            "reload_failures": (self.reload_failures as i64),
            "epoch": (self.epoch as i64),
            "errors_by_kind": Value::Obj(by_kind),
            "reconciled": self.reconciled(),
        })
    }

    /// The report as one serialised JSON line.
    pub fn to_json_line(&self) -> String {
        jsonx_syntax::to_string(&self.to_json())
    }
}

/// The `STATS` verb's inline snapshot: live queue occupancy next to the
/// shed/expired/poisoned counters and the serving schema epoch, so an
/// operator can tell back-pressure (depth near capacity, shed rising)
/// from a stall (depth pinned, processed flat) without restarting.
pub(crate) fn stats_response(c: &Counters, epoch: u64, queue_capacity: usize) -> crate::Response {
    let line = jsonx_syntax::to_string(&jsonx_data::json!({
        "ok": true,
        "op": "stats",
        "connections": (c.connections as i64),
        "frames": (c.frames as i64),
        "enqueued": (c.enqueued as i64),
        "processed": (c.processed as i64),
        "queue_depth": (c.enqueued.saturating_sub(c.dequeued) as i64),
        "queue_capacity": (queue_capacity as i64),
        "valid": (c.valid as i64),
        "invalid": (c.invalid as i64),
        "rejected": (c.rejected as i64),
        "shed": (c.shed as i64),
        "expired": (c.expired as i64),
        "panics": (c.poisoned.len() as i64),
        "reloads": (c.reloads as i64),
        "epoch": (epoch as i64),
    }));
    crate::Response { line, close: false }
}
