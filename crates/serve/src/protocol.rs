//! The wire protocol: one request per line, one JSON response line back.
//!
//! Requests are a verb, optionally followed by one space and a payload:
//!
//! ```text
//! VALIDATE {"name": "ada", "age": 36}
//! INFER {"name": "ada", "tags": ["x"]}
//! TRANSLATE {"name": "ada", "age": 36}
//! PING
//! STATS
//! RELOAD
//! SHUTDOWN
//! ```
//!
//! Every line gets exactly one JSON object back. Successes carry
//! `"ok": true` plus per-op fields; failures carry `"ok": false`, a
//! stable machine-readable `"kind"` (the batch pipeline's
//! [`ParseErrorKind::label`](jsonx_syntax::ParseErrorKind::label) values
//! for payload rejections, plus the service kinds below), and a
//! human-readable `"error"`:
//!
//! ```text
//! {"ok": true, "op": "validate", "verdict": "valid", "epoch": 1}
//! {"ok": false, "kind": "busy", "error": "request queue full (depth 64)"}
//! ```
//!
//! When the daemon runs with `--debug-faults`, two extra verbs exist for
//! deterministic fault injection: `BOOM` (panics inside a worker, proving
//! the isolation boundary) and `SLEEP <ms>` (occupies a worker, filling
//! queues on demand). Without the flag they answer `unknown-verb` like
//! any other typo.

/// Structured overload response kind (queue full or connection cap hit).
pub const KIND_BUSY: &str = "busy";
/// The request waited in the queue past the configured deadline.
pub const KIND_DEADLINE: &str = "deadline-exceeded";
/// The verb is not part of the protocol (or a debug verb without
/// `--debug-faults`).
pub const KIND_UNKNOWN_VERB: &str = "unknown-verb";
/// The frame was not well-formed (bad UTF-8, missing payload, bad
/// argument).
pub const KIND_BAD_FRAME: &str = "bad-frame";
/// `VALIDATE` was sent to a daemon started without `--schema`.
pub const KIND_NO_SCHEMA: &str = "no-schema";
/// The request panicked a worker; the connection closes, the daemon
/// survives.
pub const KIND_PANIC: &str = "panic";
/// `RELOAD` failed; the previous schema epoch keeps serving.
pub const KIND_RELOAD_FAILED: &str = "reload-failed";
/// The daemon is draining and no longer admits requests.
pub const KIND_SHUTTING_DOWN: &str = "shutting-down";
/// The frame's bytes did not finish arriving within the frame budget
/// (the slow-loris guard); the connection closes.
pub const KIND_SLOW_FRAME: &str = "slow-frame";
/// `TRANSLATE` payload was well-formed JSON but not an object (matches
/// the batch translation stage's label).
pub const KIND_NOT_A_RECORD: &str = "not-a-record";

/// A data-plane operation, processed on the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataOp {
    /// Validate one JSON document against the cached schema.
    Validate,
    /// Infer the structural type of one JSON document.
    Infer,
    /// Shred one JSON record into its columnar layout.
    Translate,
}

impl DataOp {
    /// The `"op"` field value in responses.
    pub fn label(&self) -> &'static str {
        match self {
            DataOp::Validate => "validate",
            DataOp::Infer => "infer",
            DataOp::Translate => "translate",
        }
    }
}

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// A data-plane request with its raw JSON payload.
    Data {
        /// Which stage to run.
        op: DataOp,
        /// The payload text after the verb, unparsed.
        payload: String,
    },
    /// Liveness probe; answered inline.
    Ping,
    /// Counter snapshot; answered inline.
    Stats,
    /// Recompile the schema and swap epochs.
    Reload,
    /// Begin graceful drain.
    Shutdown,
    /// Debug: panic inside a worker.
    Boom,
    /// Debug: hold a worker for the given milliseconds.
    Sleep(u64),
}

/// One response frame: the JSON line to write, and whether the
/// connection must close after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The serialised JSON object (no trailing newline).
    pub line: String,
    /// Close the connection after writing (panics, frame-level faults).
    pub close: bool,
}

impl Response {
    /// A success response from pre-rendered `"key":value` fragments
    /// (compact, matching the serializer's output for error responses).
    fn ok(op: &str, extra: &[(&str, String)]) -> Response {
        let mut line = format!("{{\"ok\":true,\"op\":\"{op}\"");
        for (key, rendered) in extra {
            line.push_str(&format!(",\"{key}\":{rendered}"));
        }
        line.push('}');
        Response { line, close: false }
    }

    /// A failure response with a stable kind and message.
    pub fn err(kind: &str, message: &str) -> Response {
        let line = jsonx_syntax::to_string(&jsonx_data::json!({
            "ok": false,
            "kind": kind,
            "error": message,
        }));
        Response { line, close: false }
    }

    /// A failure response that also closes the connection.
    pub fn err_close(kind: &str, message: &str) -> Response {
        let mut resp = Response::err(kind, message);
        resp.close = true;
        resp
    }

    pub(crate) fn ok_validate(valid: bool, epoch: u64) -> Response {
        let verdict = if valid { "valid" } else { "invalid" };
        Response::ok(
            "validate",
            &[
                ("verdict", format!("\"{verdict}\"")),
                ("epoch", epoch.to_string()),
            ],
        )
    }

    pub(crate) fn ok_infer(ty: &str) -> Response {
        Response::ok(
            "infer",
            &[(
                "type",
                jsonx_syntax::to_string(&jsonx_data::Value::Str(ty.to_string())),
            )],
        )
    }

    pub(crate) fn ok_translate(rows: usize, columns: usize, schema: &str) -> Response {
        Response::ok(
            "translate",
            &[
                ("rows", rows.to_string()),
                ("columns", columns.to_string()),
                (
                    "schema",
                    jsonx_syntax::to_string(&jsonx_data::Value::Str(schema.to_string())),
                ),
            ],
        )
    }

    pub(crate) fn ok_ping(epoch: u64) -> Response {
        Response::ok("ping", &[("epoch", epoch.to_string())])
    }

    pub(crate) fn ok_reload(epoch: u64) -> Response {
        Response::ok("reload", &[("epoch", epoch.to_string())])
    }

    pub(crate) fn ok_shutdown() -> Response {
        let mut resp = Response::ok("shutdown", &[("draining", "true".to_string())]);
        resp.close = true;
        resp
    }

    pub(crate) fn ok_sleep(ms: u64) -> Response {
        Response::ok("sleep", &[("ms", ms.to_string())])
    }
}

/// Parses one frame. `Err` carries the response to send instead (the
/// connection stays open — a typo'd verb shouldn't cost a reconnect).
pub fn parse_request(line: &str, debug_faults: bool) -> Result<Request, Response> {
    let line = line.trim_end_matches('\r');
    let (verb, rest) = match line.find(' ') {
        Some(pos) => (&line[..pos], line[pos + 1..].trim()),
        None => (line, ""),
    };
    let data = |op: DataOp| {
        if rest.is_empty() {
            Err(Response::err(
                KIND_BAD_FRAME,
                &format!("{} requires a JSON payload", op.label().to_uppercase()),
            ))
        } else {
            Ok(Request::Data {
                op,
                payload: rest.to_string(),
            })
        }
    };
    match verb {
        "VALIDATE" => data(DataOp::Validate),
        "INFER" => data(DataOp::Infer),
        "TRANSLATE" => data(DataOp::Translate),
        "PING" => Ok(Request::Ping),
        "STATS" => Ok(Request::Stats),
        "RELOAD" => Ok(Request::Reload),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "BOOM" if debug_faults => Ok(Request::Boom),
        "SLEEP" if debug_faults => match rest.parse::<u64>() {
            Ok(ms) => Ok(Request::Sleep(ms)),
            Err(_) => Err(Response::err(KIND_BAD_FRAME, "SLEEP requires milliseconds")),
        },
        "" => Err(Response::err(KIND_BAD_FRAME, "empty frame")),
        other => Err(Response::err(
            KIND_UNKNOWN_VERB,
            &format!("unknown verb {other:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse() {
        assert_eq!(
            parse_request("VALIDATE {\"a\": 1}", false),
            Ok(Request::Data {
                op: DataOp::Validate,
                payload: "{\"a\": 1}".to_string()
            })
        );
        assert_eq!(parse_request("PING\r", false), Ok(Request::Ping));
        assert_eq!(parse_request("SLEEP 50", true), Ok(Request::Sleep(50)));
        assert_eq!(parse_request("BOOM", true), Ok(Request::Boom));
    }

    #[test]
    fn debug_verbs_hidden_without_flag() {
        for line in ["BOOM", "SLEEP 50"] {
            let resp = parse_request(line, false).unwrap_err();
            assert!(resp.line.contains(KIND_UNKNOWN_VERB), "{}", resp.line);
            assert!(!resp.close);
        }
    }

    #[test]
    fn malformed_frames_answer_without_closing() {
        for line in ["", "VALIDATE", "SLEEP soon", "NONSENSE {}"] {
            let resp = parse_request(line, true).unwrap_err();
            assert!(resp.line.contains("\"ok\":false"), "{}", resp.line);
            assert!(!resp.close);
        }
    }

    #[test]
    fn responses_are_parseable_json() {
        for resp in [
            Response::ok_validate(true, 3),
            Response::ok_infer("{id: Int}"),
            Response::ok_translate(1, 2, "a:int64, b:utf8"),
            Response::err(KIND_BUSY, "queue full"),
            Response::ok_shutdown(),
        ] {
            let doc = jsonx_syntax::parse(&resp.line).unwrap();
            assert!(doc.get("ok").is_some(), "{}", resp.line);
        }
    }
}
