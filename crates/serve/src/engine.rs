//! The worker pool: bounded-queue consumers running data-plane requests
//! under deadlines, [`ParseLimits`], and `catch_unwind` panic isolation.
//!
//! Request semantics deliberately reuse the exact primitives the batch
//! pipeline's stages are built from — [`JsonDecoder::decode_value`] under
//! the configured limits, the compiled schema's fail-fast validator,
//! [`infer_collection`] and the shredder — so a verdict from the daemon
//! is identical to the batch CLI's for the same payload, and rejected
//! payloads carry the same stable error labels the quarantine sidecar
//! uses.

use crate::protocol::{Response, KIND_DEADLINE, KIND_NOT_A_RECORD, KIND_NO_SCHEMA, KIND_PANIC};
use crate::{DataOp, Shared};
use jsonx_core::{infer_collection, print_type, Equivalence, PrintOptions};
use jsonx_data::Value;
use jsonx_pipeline::{panic_message, RecordDiagnostic, ShardPanic, DIAGNOSTIC_SAMPLES};
use jsonx_schema::ValidatorOptions;
use jsonx_syntax::{JsonDecoder, ParseError, ParseErrorKind, RecordDecoder, RecordLimit};
use jsonx_translate::Shredder;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What a worker should do with one dequeued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Work {
    Data(DataOp),
    /// Debug: panic inside the worker's `catch_unwind`.
    Boom,
    /// Debug: hold the worker for this many milliseconds.
    Sleep(u64),
}

/// One enqueued request.
pub(crate) struct Job {
    pub(crate) work: Work,
    pub(crate) payload: String,
    /// Global request sequence number (reported as `first_record` in
    /// panic provenance).
    pub(crate) seq: usize,
    /// Owning connection (reported as `shard` in panic provenance).
    pub(crate) conn: usize,
    pub(crate) enqueued: Instant,
    /// Rendezvous channel back to the connection thread.
    pub(crate) reply: SyncSender<Response>,
}

/// One worker: dequeue, enforce the deadline, process under
/// `catch_unwind`, always reply. Exits when the queue's senders are gone
/// and the queue is drained — the graceful-shutdown contract.
pub(crate) fn worker_loop(shared: &Arc<Shared>, rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the lock only to dequeue; processing runs unlocked so the
        // pool drains the queue concurrently.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        shared.stats.lock().unwrap().dequeued += 1;
        if let Some(deadline) = shared.config.deadline {
            if job.enqueued.elapsed() > deadline {
                shared.stats.lock().unwrap().expired += 1;
                let _ = job.reply.send(Response::err(
                    KIND_DEADLINE,
                    &format!("queued longer than {} ms", deadline.as_millis()),
                ));
                continue;
            }
        }
        let response = match catch_unwind(AssertUnwindSafe(|| process(shared, &job))) {
            Ok(response) => response,
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                let mut stats = shared.stats.lock().unwrap();
                stats.poisoned.push(ShardPanic {
                    shard: job.conn,
                    first_record: job.seq,
                    message: message.clone(),
                });
                Response::err_close(KIND_PANIC, &format!("request panicked: {message}"))
            }
        };
        let _ = job.reply.send(response);
    }
}

/// Decodes the payload under the daemon's limits, mirroring the batch
/// fault layer: the record-size guard runs *before* any parsing, so an
/// oversized payload is rejected with the same label whether it arrives
/// over a socket or in an NDJSON corpus.
fn decode(shared: &Shared, payload: &str) -> Result<Value, ParseError> {
    if let Some(limit) = shared.config.limits.max_input_bytes {
        if payload.len() > limit {
            return Err(ParseError::at(
                ParseErrorKind::LimitExceeded(RecordLimit::InputBytes),
                payload.as_bytes(),
                limit,
            ));
        }
    }
    let decoder = JsonDecoder::new().with_limits(shared.config.limits);
    decoder.decode_value(&mut decoder.scratch(), payload)
}

/// Runs one data-plane request, updating the aggregate counters. Always
/// returns a response; panics escape to the worker's `catch_unwind`.
fn process(shared: &Shared, job: &Job) -> Response {
    match job.work {
        Work::Boom => panic!("BOOM requested by client"),
        Work::Sleep(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            shared.stats.lock().unwrap().processed += 1;
            Response::ok_sleep(ms)
        }
        Work::Data(op) => {
            let value = match decode(shared, &job.payload) {
                Ok(value) => value,
                Err(err) => {
                    return reject(shared, job, err.kind.label(), err.offset, &err.to_string())
                }
            };
            let response = match op {
                DataOp::Validate => {
                    let epoch = shared.cache.snapshot();
                    let Some(schema) = &epoch.schema else {
                        return reject(
                            shared,
                            job,
                            KIND_NO_SCHEMA,
                            0,
                            "daemon started without --schema",
                        );
                    };
                    // A fresh fail-fast validator per request: compilation
                    // is the expensive part and is amortised by the cache;
                    // the validator itself is scratch space.
                    let mut validator = schema.fast_validator_with(ValidatorOptions::default());
                    let valid = validator.is_valid(&value);
                    let mut stats = shared.stats.lock().unwrap();
                    stats.processed += 1;
                    if valid {
                        stats.valid += 1;
                    } else {
                        stats.invalid += 1;
                    }
                    Response::ok_validate(valid, epoch.epoch)
                }
                DataOp::Infer => {
                    let ty = infer_collection(std::slice::from_ref(&value), Equivalence::Kind);
                    shared.stats.lock().unwrap().processed += 1;
                    Response::ok_infer(&print_type(&ty, PrintOptions::plain()))
                }
                DataOp::Translate => {
                    let ty = infer_collection(std::slice::from_ref(&value), Equivalence::Kind);
                    let mut shredder = Shredder::from_type(&ty);
                    match shredder.shred(std::slice::from_ref(&value)) {
                        Ok(batch) => {
                            shared.stats.lock().unwrap().processed += 1;
                            Response::ok_translate(
                                batch.rows,
                                batch.columns.len(),
                                &batch.schema_string(),
                            )
                        }
                        Err(err) => {
                            return reject(shared, job, KIND_NOT_A_RECORD, 0, &err.to_string())
                        }
                    }
                }
            };
            response
        }
    }
}

/// Records one rejected payload in the aggregate error summary — the
/// same [`RecordDiagnostic`] shape the batch `RunReport` carries — and
/// answers with its stable kind. Rejected records still count as
/// processed (the batch convention: accepted + rejected).
fn reject(
    shared: &Shared,
    job: &Job,
    kind: &'static str,
    offset: usize,
    message: &str,
) -> Response {
    let mut stats = shared.stats.lock().unwrap();
    stats.processed += 1;
    stats.rejected += 1;
    stats.errors.push(
        RecordDiagnostic {
            record: job.seq,
            offset,
            kind,
            message: message.to_string(),
            raw: None,
        },
        DIAGNOSTIC_SAMPLES,
    );
    Response::err(kind, message)
}
