//! The corpus registry used by benches, examples and integration tests.

use crate::github::{events, GithubConfig};
use crate::nytimes::{articles, NytimesConfig};
use crate::opendata::{datasets, OpendataConfig};
use crate::param::{DialedGenerator, GeneratorConfig};
use crate::twitter::{tweets, TwitterConfig};
use jsonx_data::Value;

/// A named, reproducible workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corpus {
    /// Twitter-like tweets (nested records, null|object unions, drift).
    Twitter,
    /// GitHub-events-like (payload shape depends on event type).
    Github,
    /// NYTimes-article-like (wide flat records, long strings).
    Nytimes,
    /// data.gov-catalog-like (ragged optional metadata, nested publisher).
    Opendata,
    /// Dialed generator with `heterogeneity`% type noise (0–100).
    Heterogeneous(u8),
}

impl Corpus {
    /// Generates `n` documents of this corpus (always the same `n`
    /// documents for a given variant).
    pub fn generate(&self, n: usize) -> Vec<Value> {
        match self {
            Corpus::Twitter => tweets(&TwitterConfig::default(), n),
            Corpus::Github => events(&GithubConfig::default(), n),
            Corpus::Nytimes => articles(&NytimesConfig::default(), n),
            Corpus::Opendata => datasets(&OpendataConfig::default(), n),
            Corpus::Heterogeneous(noise) => {
                let config = GeneratorConfig {
                    type_noise: f64::from(*noise) / 100.0,
                    shape_variants: 1,
                    ..Default::default()
                };
                DialedGenerator::new(config).generate(n)
            }
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> String {
        match self {
            Corpus::Twitter => "twitter".to_string(),
            Corpus::Github => "github".to_string(),
            Corpus::Nytimes => "nytimes".to_string(),
            Corpus::Opendata => "opendata".to_string(),
            Corpus::Heterogeneous(h) => format!("dialed-h{h}"),
        }
    }

    /// All fixed-shape corpora.
    pub const FIXED: [Corpus; 4] = [
        Corpus::Twitter,
        Corpus::Github,
        Corpus::Nytimes,
        Corpus::Opendata,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_corpora_generate() {
        for c in Corpus::FIXED {
            let docs = c.generate(10);
            assert_eq!(docs.len(), 10);
            assert!(docs.iter().all(|d| d.as_object().is_some()));
        }
        assert_eq!(Corpus::Heterogeneous(50).generate(5).len(), 5);
    }

    #[test]
    fn names() {
        assert_eq!(Corpus::Twitter.name(), "twitter");
        assert_eq!(Corpus::Heterogeneous(25).name(), "dialed-h25");
    }
}
