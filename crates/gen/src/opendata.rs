//! data.gov-like open-data catalog corpus.
//!
//! The tutorial's §1 names "the U.S. Government's open data platform"
//! among the JSON publishers. Catalog entries follow the DCAT/POD schema:
//! dataset records with publisher hierarchies, contact points, a
//! `distribution` array of downloadable resources, free-form `keyword`
//! arrays, and the wild west of optional metadata fields — the most
//! *ragged* of the four corpora (many optional fields, deeply uneven
//! records), which is what exercises optionality counters and skeleton
//! coverage.

use jsonx_data::{json, Object, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Catalog generator configuration.
#[derive(Debug, Clone)]
pub struct OpendataConfig {
    pub seed: u64,
    /// Fraction of datasets carrying a `distribution` array.
    pub distribution_rate: f64,
    /// Fraction carrying the optional `temporal`/`spatial` coverage pair.
    pub coverage_rate: f64,
}

impl Default for OpendataConfig {
    fn default() -> Self {
        OpendataConfig {
            seed: 31,
            distribution_rate: 0.8,
            coverage_rate: 0.35,
        }
    }
}

const AGENCIES: [&str; 5] = [
    "Department of Energy",
    "Department of Transportation",
    "National Oceanic and Atmospheric Administration",
    "Census Bureau",
    "General Services Administration",
];

const FORMATS: [(&str, &str); 4] = [
    ("CSV", "text/csv"),
    ("JSON", "application/json"),
    ("XML", "application/xml"),
    ("API", "application/json"),
];

/// Generates `n` catalog entries.
pub fn datasets(config: &OpendataConfig, n: usize) -> Vec<Value> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    (0..n).map(|i| dataset(&mut rng, config, i)).collect()
}

fn dataset(rng: &mut SmallRng, config: &OpendataConfig, idx: usize) -> Value {
    let agency = AGENCIES[rng.gen_range(0..AGENCIES.len())];
    let mut obj = Object::new();
    obj.insert("@type", Value::from("dcat:Dataset"));
    obj.insert(
        "identifier",
        Value::Str(format!("https://data.example.gov/id/{idx:06}")),
    );
    obj.insert(
        "title",
        Value::Str(format!("Dataset {idx}: {agency} records")),
    );
    obj.insert(
        "description",
        Value::Str(format!(
            "Machine-readable records published by the {agency}."
        )),
    );
    let keywords: Vec<Value> = (0..rng.gen_range(1..6usize))
        .map(|k| Value::Str(format!("topic-{}", (idx + k) % 23)))
        .collect();
    obj.insert("keyword", Value::Arr(keywords));
    obj.insert(
        "modified",
        Value::Str(format!(
            "2019-{:02}-{:02}",
            rng.gen_range(1..13),
            rng.gen_range(1..29)
        )),
    );
    obj.insert(
        "publisher",
        json!({
            "@type": "org:Organization",
            "name": agency,
            "subOrganizationOf": {
                "@type": "org:Organization",
                "name": "U.S. Government"
            }
        }),
    );
    obj.insert(
        "contactPoint",
        json!({
            "@type": "vcard:Contact",
            "fn": format!("Data Steward {}", rng.gen_range(1..40u32)),
            "hasEmail": format!("mailto:open{}@example.gov", rng.gen_range(1..40u32))
        }),
    );
    obj.insert(
        "accessLevel",
        Value::from(if rng.gen_ratio(9, 10) {
            "public"
        } else {
            "restricted public"
        }),
    );
    // Ragged optionality: licence, coverage, bureau codes, distributions.
    if rng.gen_ratio(2, 3) {
        obj.insert(
            "license",
            Value::from("https://creativecommons.org/publicdomain/zero/1.0/"),
        );
    }
    if rng.gen::<f64>() < config.coverage_rate {
        obj.insert(
            "temporal",
            Value::Str(format!("2010-01-01/2019-0{}-01", rng.gen_range(1..10))),
        );
        obj.insert("spatial", Value::from("United States"));
    }
    if rng.gen_ratio(1, 2) {
        obj.insert(
            "bureauCode",
            Value::Arr(vec![Value::Str(format!(
                "{:03}:{:02}",
                rng.gen_range(1..999),
                rng.gen_range(1..99)
            ))]),
        );
    }
    if rng.gen::<f64>() < config.distribution_rate {
        let dists: Vec<Value> = (0..rng.gen_range(1..4usize))
            .map(|d| {
                let (format, media) = FORMATS[rng.gen_range(0..FORMATS.len())];
                let mut dist = Object::new();
                dist.insert("@type", Value::from("dcat:Distribution"));
                dist.insert("format", Value::from(format));
                dist.insert("mediaType", Value::from(media));
                if format == "API" {
                    dist.insert(
                        "accessURL",
                        Value::Str(format!("https://api.example.gov/ds/{idx}/v{d}")),
                    );
                } else {
                    dist.insert(
                        "downloadURL",
                        Value::Str(format!(
                            "https://data.example.gov/files/{idx}/part{d}.{}",
                            format.to_lowercase()
                        )),
                    );
                }
                Value::Obj(dist)
            })
            .collect();
        obj.insert("distribution", Value::Arr(dists));
    }
    Value::Obj(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let c = OpendataConfig::default();
        assert_eq!(datasets(&c, 15), datasets(&c, 15));
    }

    #[test]
    fn distributions_are_format_dependent() {
        let c = OpendataConfig {
            distribution_rate: 1.0,
            ..Default::default()
        };
        for d in datasets(&c, 100) {
            for dist in d.get("distribution").unwrap().as_array().unwrap() {
                let is_api = dist.get("format").unwrap().as_str() == Some("API");
                assert_eq!(dist.get("accessURL").is_some(), is_api);
                assert_eq!(dist.get("downloadURL").is_some(), !is_api);
            }
        }
    }

    #[test]
    fn raggedness_produces_optional_fields() {
        let docs = datasets(&OpendataConfig::default(), 300);
        let with_license = docs.iter().filter(|d| d.get("license").is_some()).count();
        let with_temporal = docs.iter().filter(|d| d.get("temporal").is_some()).count();
        assert!(with_license > 100 && with_license < 300);
        assert!(with_temporal > 40 && with_temporal < 200);
        // temporal and spatial co-occur (a correlation mongodb-schema
        // style profiles cannot express).
        for d in &docs {
            assert_eq!(d.get("temporal").is_some(), d.get("spatial").is_some());
        }
    }

    #[test]
    fn publisher_hierarchy_nests() {
        let d = &datasets(&OpendataConfig::default(), 1)[0];
        assert_eq!(
            d.get("publisher")
                .unwrap()
                .get("subOrganizationOf")
                .unwrap()
                .get("name")
                .unwrap()
                .as_str(),
            Some("U.S. Government")
        );
    }
}
