//! # jsonx-gen
//!
//! Deterministic, seeded generators for the JSON collections every
//! experiment in this workspace consumes.
//!
//! The tutorial's examples "come from publicly available datasets"
//! (Twitter and NYTimes API results, GitHub events, data.gov). Live pulls
//! are neither reproducible nor available offline, so this crate generates
//! *structurally equivalent* corpora instead: the shapes, optional-field
//! patterns, nesting and heterogeneity of those feeds, behind explicit
//! dials. Every structural claim the experiments measure (schema sizes,
//! union widths, projection ratios, merge behaviour) depends only on those
//! dials — which is what makes the substitution sound (see DESIGN.md §4).
//!
//! * [`param::DialedGenerator`] — fully parameterised generator: record
//!   width, optional-field rate, type-noise rate, nesting, shape variants,
//!   skew.
//! * [`github`], [`twitter`], [`nytimes`], [`opendata`] — fixed-shape
//!   corpora modelled on the public feeds the tutorial cites.
//! * [`corpus::Corpus`] — a registry used by benches and examples to name
//!   workloads.
//! * [`dirty`] — dirty NDJSON corpora (seeded corruption with ground
//!   truth) for the fault-tolerance suites.
//! * [`fault_client`] — deliberately misbehaving line-protocol clients
//!   (slow-loris writers, mid-frame disconnects, pipelined bursts) for
//!   the resident service's fault-injection harness.
//!
//! Everything is seeded: the same configuration always yields the same
//! collection, byte for byte.

pub mod corpus;
pub mod crashpoint;
pub mod dirty;
pub mod fault_client;
pub mod github;
pub mod nytimes;
pub mod opendata;
pub mod param;
pub mod twitter;

pub use corpus::Corpus;
pub use crashpoint::Crashpoint;
pub use dirty::{dirty_ndjson, DirtyConfig, DirtyNdjson};
pub use param::{DialedGenerator, GeneratorConfig};
