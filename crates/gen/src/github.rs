//! GitHub-events-like corpus.
//!
//! Models the GitHub public events feed: an envelope (`id`, `type`,
//! `actor`, `repo`, `created_at`) whose `payload` shape **depends on the
//! event type** — the canonical value-dependent / label-distinct structure
//! that L-equivalence inference, skeleton mining and Joi's `when`
//! conditionals are all built for.

use jsonx_data::{json, Object, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The event types generated, with their weights.
pub const EVENT_TYPES: [&str; 4] = ["PushEvent", "IssuesEvent", "WatchEvent", "ForkEvent"];

/// GitHub generator configuration.
#[derive(Debug, Clone)]
pub struct GithubConfig {
    pub seed: u64,
    /// Weights over [`EVENT_TYPES`] (normalised internally).
    pub type_weights: [f64; 4],
}

impl Default for GithubConfig {
    fn default() -> Self {
        GithubConfig {
            seed: 11,
            // Pushes dominate real feeds.
            type_weights: [0.55, 0.2, 0.15, 0.1],
        }
    }
}

/// Generates `n` events.
pub fn events(config: &GithubConfig, n: usize) -> Vec<Value> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let total: f64 = config.type_weights.iter().sum();
    (0..n)
        .map(|i| {
            let mut x: f64 = rng.gen::<f64>() * total;
            let mut which = 0;
            for (k, w) in config.type_weights.iter().enumerate() {
                if x < *w {
                    which = k;
                    break;
                }
                x -= w;
            }
            event(&mut rng, i as i64, EVENT_TYPES[which])
        })
        .collect()
}

fn event(rng: &mut SmallRng, id: i64, event_type: &str) -> Value {
    let mut obj = Object::new();
    obj.insert("id", Value::Str(format!("{}", 9_000_000_000i64 + id)));
    obj.insert("type", Value::from(event_type));
    obj.insert(
        "actor",
        json!({
            "id": (rng.gen_range(1..500_000i64)),
            "login": format!("dev{}", rng.gen_range(1..10_000u32)),
            "gravatar_id": ""
        }),
    );
    obj.insert(
        "repo",
        json!({
            "id": (rng.gen_range(1..2_000_000i64)),
            "name": format!("org{}/repo{}", rng.gen_range(1..100u32), rng.gen_range(1..1000u32)),
            "url": format!("https://api.github.com/repos/r{}", rng.gen_range(1..1000u32))
        }),
    );
    obj.insert("payload", payload(rng, event_type));
    obj.insert("public", Value::Bool(true));
    obj.insert(
        "created_at",
        Value::Str(format!(
            "2019-03-{:02}T{:02}:{:02}:{:02}Z",
            rng.gen_range(1..29),
            rng.gen_range(0..24),
            rng.gen_range(0..60),
            rng.gen_range(0..60)
        )),
    );
    Value::Obj(obj)
}

/// Payload shape depends on the event type — distinct label sets per type.
fn payload(rng: &mut SmallRng, event_type: &str) -> Value {
    match event_type {
        "PushEvent" => {
            let commits: Vec<Value> = (0..rng.gen_range(1..4usize))
                .map(|c| {
                    json!({
                        "sha": format!("{:040x}", rng.gen::<u64>()),
                        "message": format!("commit {c}"),
                        "distinct": true
                    })
                })
                .collect();
            json!({
                "push_id": (rng.gen_range(1..9_000_000i64)),
                "size": (commits.len() as i64),
                "ref": "refs/heads/main",
                "commits": commits
            })
        }
        "IssuesEvent" => json!({
            "action": if rng.gen() { "opened" } else { "closed" },
            "issue": {
                "number": (rng.gen_range(1..5000i64)),
                "title": "schema drift observed",
                "labels": [{"name": "bug", "color": "d73a4a"}],
                "assignee": if rng.gen() {
                    json!({"login": format!("dev{}", rng.gen_range(1..100u32))})
                } else {
                    Value::Null
                }
            }
        }),
        "WatchEvent" => json!({"action": "started"}),
        _ => json!({"forkee": {
            "id": (rng.gen_range(1..9_000_000i64)),
            "full_name": format!("fork{}/copy", rng.gen_range(1..1000u32)),
            "private": false
        }}),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let c = GithubConfig::default();
        assert_eq!(events(&c, 25), events(&c, 25));
    }

    #[test]
    fn payload_tracks_event_type() {
        let docs = events(&GithubConfig::default(), 300);
        for d in &docs {
            let t = d.get("type").unwrap().as_str().unwrap();
            let payload = d.get("payload").unwrap();
            match t {
                "PushEvent" => assert!(payload.get("commits").is_some()),
                "IssuesEvent" => assert!(payload.get("issue").is_some()),
                "WatchEvent" => assert_eq!(payload.get("action"), Some(&Value::from("started"))),
                "ForkEvent" => assert!(payload.get("forkee").is_some()),
                other => panic!("unexpected type {other}"),
            }
        }
    }

    #[test]
    fn all_types_appear() {
        let docs = events(&GithubConfig::default(), 400);
        for t in EVENT_TYPES {
            assert!(
                docs.iter()
                    .any(|d| d.get("type").unwrap().as_str() == Some(t)),
                "missing {t}"
            );
        }
    }
}
