//! NYTimes-article-like corpus.
//!
//! Models the NYTimes Article Search API results the tutorial cites: wide,
//! mostly-flat records with long text fields, a `headline` object, a
//! `byline` that is an object or null, `multimedia` arrays that are often
//! empty, and a `keywords` array of tagged name/value pairs. This corpus
//! is the *wide-record* workload: many fields, few of them needed by any
//! one analytics task — the setting where Mison-style projection shines
//! (E9).

use jsonx_data::{json, Object, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Article generator configuration.
#[derive(Debug, Clone)]
pub struct NytimesConfig {
    pub seed: u64,
    /// Fraction of articles with a null `byline`.
    pub null_byline_rate: f64,
    /// Fraction of articles with a non-empty `multimedia` array.
    pub multimedia_rate: f64,
}

impl Default for NytimesConfig {
    fn default() -> Self {
        NytimesConfig {
            seed: 23,
            null_byline_rate: 0.15,
            multimedia_rate: 0.4,
        }
    }
}

const SECTIONS: [&str; 6] = [
    "World",
    "Science",
    "Technology",
    "Opinion",
    "Arts",
    "Sports",
];

/// Generates `n` articles.
pub fn articles(config: &NytimesConfig, n: usize) -> Vec<Value> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    (0..n).map(|i| article(&mut rng, config, i)).collect()
}

fn article(rng: &mut SmallRng, config: &NytimesConfig, idx: usize) -> Value {
    let mut obj = Object::new();
    obj.insert("_id", Value::Str(format!("nyt://article/{idx:08}")));
    obj.insert(
        "web_url",
        Value::Str(format!("https://www.nytimes.com/2019/03/26/a{idx}.html")),
    );
    obj.insert(
        "snippet",
        Value::Str(format!(
            "Snippet text for article {idx} about JSON schemas."
        )),
    );
    obj.insert(
        "lead_paragraph",
        Value::Str("Researchers presented a tutorial on schemas and types.".to_string()),
    );
    obj.insert("print_page", Value::from(rng.gen_range(1..40i64)));
    obj.insert("source", Value::from("The New York Times"));
    obj.insert(
        "headline",
        json!({
            "main": format!("Headline {idx}"),
            "kicker": if rng.gen_ratio(1, 3) { Value::from("Analysis") } else { Value::Null },
            "print_headline": format!("Print headline {idx}")
        }),
    );
    // byline: object or null (another real-world union).
    if rng.gen::<f64>() < config.null_byline_rate {
        obj.insert("byline", Value::Null);
    } else {
        obj.insert(
            "byline",
            json!({
                "original": format!("By Reporter {}", rng.gen_range(1..50u32)),
                "person": [{
                    "firstname": "Alex",
                    "lastname": format!("Writer{}", rng.gen_range(1..50u32)),
                    "rank": 1
                }]
            }),
        );
    }
    let multimedia: Vec<Value> = if rng.gen::<f64>() < config.multimedia_rate {
        (0..rng.gen_range(1..4usize))
            .map(|m| {
                json!({
                    "url": format!("images/2019/03/26/a{idx}/img{m}.jpg"),
                    "height": (rng.gen_range(100..2000i64)),
                    "width": (rng.gen_range(100..3000i64)),
                    "type": "image"
                })
            })
            .collect()
    } else {
        Vec::new()
    };
    obj.insert("multimedia", Value::Arr(multimedia));
    let keywords: Vec<Value> = (0..rng.gen_range(0..5usize))
        .map(|k| {
            json!({
                "name": "subject",
                "value": format!("keyword-{k}"),
                "rank": ((k + 1) as i64)
            })
        })
        .collect();
    obj.insert("keywords", Value::Arr(keywords));
    obj.insert(
        "pub_date",
        Value::Str(format!(
            "2019-03-{:02}T{:02}:00:00Z",
            rng.gen_range(1..29),
            rng.gen_range(0..24)
        )),
    );
    obj.insert("document_type", Value::from("article"));
    obj.insert(
        "section_name",
        Value::from(SECTIONS[rng.gen_range(0..SECTIONS.len())]),
    );
    obj.insert("word_count", Value::from(rng.gen_range(100..3000i64)));
    Value::Obj(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let c = NytimesConfig::default();
        assert_eq!(articles(&c, 10), articles(&c, 10));
    }

    #[test]
    fn byline_union() {
        let c = NytimesConfig {
            null_byline_rate: 0.5,
            ..Default::default()
        };
        let docs = articles(&c, 200);
        let nulls = docs
            .iter()
            .filter(|d| d.get("byline").unwrap().is_null())
            .count();
        assert!(nulls > 50 && nulls < 150, "got {nulls}");
    }

    #[test]
    fn records_are_wide() {
        let docs = articles(&NytimesConfig::default(), 1);
        assert!(docs[0].as_object().unwrap().len() >= 13);
    }

    #[test]
    fn empty_multimedia_common() {
        let c = NytimesConfig {
            multimedia_rate: 0.0,
            ..Default::default()
        };
        for d in articles(&c, 20) {
            assert!(d.get("multimedia").unwrap().as_array().unwrap().is_empty());
        }
    }
}
