//! Misbehaving (and well-behaved) clients for the resident schema
//! service's fault-injection harness.
//!
//! The serve daemon's robustness claims — slow-loris cutoff, oversized
//! frame rejection, mid-request disconnect tolerance, bounded-queue
//! shedding — are only testable with clients that misbehave *on
//! purpose*, deterministically. This module packages those behaviours so
//! `tests/serve_faults.rs` (and any future soak harness) can drive a
//! live server with a few lines per scenario:
//!
//! * [`LineClient`] — the honest baseline: one request line out, one
//!   response line back.
//! * [`slow_loris`] — trickles a frame one byte at a time, the classic
//!   hold-a-worker-hostage attack.
//! * [`abandon_mid_frame`] — writes half a frame and vanishes.
//! * [`send_raw`] — arbitrary bytes (invalid UTF-8, binary garbage) as
//!   one frame.
//! * [`pipeline`] — writes a burst of frames before reading any
//!   responses, for queue-overflow storms.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A well-behaved line-protocol client: UTF-8 frames, newline
/// terminated, reads exactly one response per request.
pub struct LineClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl LineClient {
    /// Connects with a generous read timeout so a wedged server fails a
    /// test instead of hanging it.
    pub fn connect(addr: SocketAddr) -> std::io::Result<LineClient> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(LineClient { stream, reader })
    }

    /// Sends one frame (newline appended).
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")
    }

    /// Reads one response line (newline stripped). `Ok(None)` on EOF —
    /// the server closed this connection.
    pub fn read_response(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        match self.reader.read_line(&mut line)? {
            0 => Ok(None),
            _ => {
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                Ok(Some(line))
            }
        }
    }

    /// One full round trip.
    pub fn request(&mut self, line: &str) -> std::io::Result<Option<String>> {
        self.send(line)?;
        self.read_response()
    }

    /// Whether the server has closed the connection (EOF on read).
    pub fn is_closed(&mut self) -> bool {
        matches!(self.read_response(), Ok(None))
    }
}

/// Trickles `frame` one byte every `per_byte` — never finishing within
/// any sane frame budget — then reads whatever the server answers.
/// Returns the response line, or `None` when the server just closed the
/// connection.
pub fn slow_loris(
    addr: SocketAddr,
    frame: &str,
    per_byte: Duration,
) -> std::io::Result<Option<String>> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    for byte in frame.as_bytes() {
        if stream.write_all(std::slice::from_ref(byte)).is_err() {
            // The server already cut us off mid-trickle; read its parting
            // response below.
            break;
        }
        std::thread::sleep(per_byte);
    }
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => Ok(None),
        Ok(_) => Ok(Some(line.trim_end().to_string())),
        // The cutoff can also race the trickle into a reset.
        Err(_) => Ok(None),
    }
}

/// Writes `partial` (no newline — an unterminated frame) and drops the
/// connection: the mid-request disconnect.
pub fn abandon_mid_frame(addr: SocketAddr, partial: &str) -> std::io::Result<()> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.write_all(partial.as_bytes())?;
    // Dropping the stream closes it with the frame unterminated.
    Ok(())
}

/// Sends arbitrary bytes as one newline-terminated frame and reads one
/// response line (`None` when the server closes without answering).
pub fn send_raw(addr: SocketAddr, bytes: &[u8]) -> std::io::Result<Option<String>> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(bytes)?;
    stream.write_all(b"\n")?;
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return Ok((!buf.is_empty()).then(|| String::from_utf8_lossy(&buf).into_owned()))
            }
            Ok(_) if byte[0] == b'\n' => {
                return Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
            }
            Ok(_) => buf.push(byte[0]),
            Err(e) => return Err(e),
        }
    }
}

/// Writes every frame before reading any responses — the burst shape
/// that fills a bounded queue — then collects one response per frame
/// (stopping early if the server closes). Returns the response lines.
pub fn pipeline(addr: SocketAddr, frames: &[String]) -> std::io::Result<Vec<String>> {
    let mut client = LineClient::connect(addr)?;
    for frame in frames {
        client.send(frame)?;
    }
    let mut responses = Vec::new();
    for _ in frames {
        match client.read_response()? {
            Some(line) => responses.push(line),
            None => break,
        }
    }
    Ok(responses)
}
