//! Dirty-corpus generator for the fault-tolerance suites.
//!
//! Real NDJSON feeds carry a tail of junk — truncated uploads, log lines
//! interleaved with records, nesting bombs, editor artifacts. This module
//! generates such corpora *with ground truth*: the same collection twice,
//! once with a seeded fraction of lines corrupted and once with exactly
//! those lines blanked. Because blank lines are skipped (not counted as
//! records) by every streaming entry point, the blanked twin keeps the
//! surviving records on their original line numbers — so
//! `Skip`-policy output over the dirty text must equal fail-fast output
//! over the clean text, record indices included. That identity is what
//! `tests/fault_tolerance.rs` pins across worker counts.
//!
//! Every corruption is guaranteed-invalid, not merely unusual:
//!
//! * **truncation** — a strict prefix of an object (unbalanced braces);
//! * **stray prefix byte** — junk before the document;
//! * **trailing garbage** — junk after a complete document;
//! * **nesting bomb** — arrays nested beyond the default depth cap;
//! * **raw control character** — unescaped `0x01` inside a string;
//! * **oversized line** — only generated when
//!   [`DirtyConfig::oversize_bytes`] is set, for suites that configure a
//!   `max_input_bytes` resource guard.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`dirty_ndjson`]. Same config, same corpus — byte
/// for byte, like every generator in this crate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirtyConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of record lines (blank lines are inserted on top).
    pub docs: usize,
    /// Probability that a record line is corrupted.
    pub corruption_rate: f64,
    /// Probability of inserting a blank line before a record.
    pub blank_rate: f64,
    /// Nesting depth of the array bomb; keep above the parser's
    /// `max_depth` (default 128) so the bomb actually trips it.
    pub bomb_depth: usize,
    /// When set, also emit lines padded past this many bytes — for
    /// suites that configure a `max_input_bytes` guard at this value.
    pub oversize_bytes: Option<usize>,
}

impl Default for DirtyConfig {
    fn default() -> Self {
        DirtyConfig {
            seed: 42,
            docs: 1_000,
            corruption_rate: 0.05,
            blank_rate: 0.01,
            bomb_depth: 160,
            oversize_bytes: None,
        }
    }
}

/// A dirty corpus and its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct DirtyNdjson {
    /// The corpus with corrupted lines in place.
    pub text: String,
    /// The same corpus with every corrupted line blanked — identical
    /// line numbering, no bad records.
    pub clean_text: String,
    /// 0-based line indices of the corrupted lines, ascending.
    pub bad_lines: Vec<usize>,
}

/// Generates a dirty NDJSON corpus plus its blanked clean twin.
pub fn dirty_ndjson(config: &DirtyConfig) -> DirtyNdjson {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut dirty: Vec<String> = Vec::new();
    let mut clean: Vec<String> = Vec::new();
    let mut bad_lines = Vec::new();
    for i in 0..config.docs {
        if rng.gen_bool(config.blank_rate) {
            dirty.push(String::new());
            clean.push(String::new());
        }
        let line = record_line(&mut rng, i as i64);
        if rng.gen_bool(config.corruption_rate) {
            bad_lines.push(dirty.len());
            dirty.push(corrupt(&mut rng, &line, config));
            clean.push(String::new());
        } else {
            clean.push(line.clone());
            dirty.push(line);
        }
    }
    DirtyNdjson {
        text: dirty.join("\n") + "\n",
        clean_text: clean.join("\n") + "\n",
        bad_lines,
    }
}

/// One well-formed record, drawn from a small heterogeneous shape pool
/// (optional fields, type noise on `id`, one nested shape) so the
/// inferred type is a non-trivial union.
fn record_line(rng: &mut SmallRng, id: i64) -> String {
    match rng.gen_range(0..4u8) {
        0 => format!(
            "{{\"id\": {id}, \"name\": \"user{}\"}}",
            rng.gen_range(0..100u32)
        ),
        1 => format!(
            "{{\"id\": {id}, \"tags\": [{}, \"t{}\"]}}",
            rng.gen_range(0..50u32),
            rng.gen_range(0..10u32)
        ),
        2 => format!("{{\"id\": \"s{id}\", \"active\": {}}}", rng.gen_bool(0.5)),
        _ => format!(
            "{{\"id\": {id}, \"geo\": {{\"lat\": {}.5, \"lon\": -{}.25}}}}",
            rng.gen_range(0..90u32),
            rng.gen_range(0..180u32)
        ),
    }
}

/// Replaces a well-formed line with one of the guaranteed-invalid
/// corruption kinds. Lines are pure ASCII, so byte-slicing is safe.
fn corrupt(rng: &mut SmallRng, line: &str, config: &DirtyConfig) -> String {
    let kinds = if config.oversize_bytes.is_some() {
        6
    } else {
        5
    };
    match rng.gen_range(0..kinds) {
        0 => line[..line.len() / 2].to_string(),
        1 => format!("@{line}"),
        2 => format!("{line} trailing"),
        3 => "[".repeat(config.bomb_depth) + &"]".repeat(config.bomb_depth),
        4 => "\"ctrl\u{1}char\"".to_string(),
        _ => format!(
            "{{\"pad\": \"{}\"}}",
            "x".repeat(config.oversize_bytes.expect("kind gated on Some"))
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let config = DirtyConfig::default();
        assert_eq!(dirty_ndjson(&config), dirty_ndjson(&config));
        let other = DirtyConfig { seed: 7, ..config };
        assert_ne!(dirty_ndjson(&other).text, dirty_ndjson(&config).text);
    }

    #[test]
    fn twins_align_line_by_line() {
        let out = dirty_ndjson(&DirtyConfig {
            docs: 500,
            corruption_rate: 0.2,
            ..DirtyConfig::default()
        });
        let dirty: Vec<&str> = out.text.lines().collect();
        let clean: Vec<&str> = out.clean_text.lines().collect();
        assert_eq!(dirty.len(), clean.len());
        assert!(!out.bad_lines.is_empty());
        assert!(out.bad_lines.windows(2).all(|w| w[0] < w[1]));
        for (i, (d, c)) in dirty.iter().zip(&clean).enumerate() {
            if out.bad_lines.contains(&i) {
                assert!(c.is_empty(), "bad line {i} must be blanked in the twin");
                assert!(!d.is_empty());
            } else {
                assert_eq!(d, c, "good line {i} must match");
            }
        }
    }

    #[test]
    fn good_lines_parse_and_bad_lines_do_not() {
        let out = dirty_ndjson(&DirtyConfig {
            docs: 400,
            corruption_rate: 0.25,
            oversize_bytes: Some(256),
            ..DirtyConfig::default()
        });
        for (i, line) in out.text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let parsed = jsonx_syntax::parse(line);
            if out.bad_lines.contains(&i) {
                // Oversized lines are well-formed JSON — they only reject
                // under a configured byte limit. Everything else must
                // fail the plain parser outright.
                if !line.starts_with("{\"pad\":") {
                    assert!(parsed.is_err(), "bad line {i} parsed: {line:.60}");
                } else {
                    assert!(line.len() > 256);
                }
            } else {
                assert!(parsed.is_ok(), "good line {i} failed: {line:.60}");
            }
        }
    }
}
