//! Twitter-like tweet corpus.
//!
//! Models the structure of the Twitter statuses API the tutorial cites:
//! tweets with a nested `user`, optional `coordinates` (null or a GeoJSON
//! point — a union type in the wild), `entities` with hashtag/url arrays,
//! and optional retweet nesting. Heterogeneity knobs: `geo_rate` (how many
//! tweets carry coordinates), `retweet_rate`, `extended_rate` (the
//! 2016 API change that added `full_text` next to `text` — a real-world
//! schema drift event).

use jsonx_data::{json, Object, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tweet generator configuration.
#[derive(Debug, Clone)]
pub struct TwitterConfig {
    pub seed: u64,
    /// Fraction of tweets with non-null coordinates.
    pub geo_rate: f64,
    /// Fraction of tweets that embed a `retweeted_status`.
    pub retweet_rate: f64,
    /// Fraction of tweets in "extended" form (`full_text`, no `text`).
    pub extended_rate: f64,
}

impl Default for TwitterConfig {
    fn default() -> Self {
        TwitterConfig {
            seed: 7,
            geo_rate: 0.2,
            retweet_rate: 0.25,
            extended_rate: 0.3,
        }
    }
}

const WORDS: [&str; 12] = [
    "json",
    "schema",
    "types",
    "edbt",
    "lisbon",
    "data",
    "inference",
    "spark",
    "mison",
    "tutorial",
    "union",
    "records",
];

/// Generates `n` tweets.
pub fn tweets(config: &TwitterConfig, n: usize) -> Vec<Value> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    (0..n)
        .map(|i| tweet(&mut rng, config, i as i64, true))
        .collect()
}

fn tweet(rng: &mut SmallRng, config: &TwitterConfig, id: i64, allow_retweet: bool) -> Value {
    let mut obj = Object::new();
    obj.insert("id", Value::from(id));
    obj.insert(
        "created_at",
        Value::Str(format!(
            "2019-03-{:02}T{:02}:{:02}:{:02}Z",
            rng.gen_range(1..29),
            rng.gen_range(0..24),
            rng.gen_range(0..60),
            rng.gen_range(0..60)
        )),
    );
    let text = format!(
        "{} {} #{}",
        WORDS[rng.gen_range(0..WORDS.len())],
        WORDS[rng.gen_range(0..WORDS.len())],
        WORDS[rng.gen_range(0..WORDS.len())]
    );
    if rng.gen::<f64>() < config.extended_rate {
        obj.insert("full_text", Value::Str(text));
        obj.insert("display_text_range", json!([0, 42]));
    } else {
        obj.insert("text", Value::Str(text));
    }
    obj.insert("user", user(rng));
    // `coordinates` is the canonical union-typed field: null | geo object.
    if rng.gen::<f64>() < config.geo_rate {
        obj.insert(
            "coordinates",
            json!({
                "type": "Point",
                "coordinates": [
                    (rng.gen_range(-180.0..180.0f64)),
                    (rng.gen_range(-90.0..90.0f64))
                ]
            }),
        );
    } else {
        obj.insert("coordinates", Value::Null);
    }
    obj.insert("entities", entities(rng));
    obj.insert("retweet_count", Value::from(rng.gen_range(0..5_000i64)));
    obj.insert("favorite_count", Value::from(rng.gen_range(0..10_000i64)));
    if allow_retweet && rng.gen::<f64>() < config.retweet_rate {
        obj.insert(
            "retweeted_status",
            tweet(rng, config, id + 1_000_000, false),
        );
    }
    Value::Obj(obj)
}

fn user(rng: &mut SmallRng) -> Value {
    let uid = rng.gen_range(1..100_000i64);
    let mut obj = Object::new();
    obj.insert("id", Value::from(uid));
    obj.insert("screen_name", Value::Str(format!("user_{uid}")));
    obj.insert("verified", Value::Bool(rng.gen_ratio(1, 20)));
    obj.insert(
        "followers_count",
        Value::from(rng.gen_range(0..1_000_000i64)),
    );
    // `location` is free text or absent — optional string.
    if rng.gen_ratio(2, 3) {
        obj.insert("location", Value::Str("Lisbon, Portugal".to_string()));
    }
    Value::Obj(obj)
}

fn entities(rng: &mut SmallRng) -> Value {
    let hashtags: Vec<Value> = (0..rng.gen_range(0..3usize))
        .map(|_| {
            json!({
                "text": WORDS[rng.gen_range(0..WORDS.len())],
                "indices": [(rng.gen_range(0..100i64)), (rng.gen_range(100..140i64))]
            })
        })
        .collect();
    let urls: Vec<Value> = (0..rng.gen_range(0..2usize))
        .map(|i| {
            json!({
                "url": format!("https://t.co/x{i}"),
                "expanded_url": format!("https://example.org/p/{i}")
            })
        })
        .collect();
    json!({"hashtags": hashtags, "urls": urls})
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let c = TwitterConfig::default();
        assert_eq!(tweets(&c, 20), tweets(&c, 20));
    }

    #[test]
    fn geo_rate_controls_union() {
        let none = TwitterConfig {
            geo_rate: 0.0,
            ..Default::default()
        };
        for t in tweets(&none, 50) {
            assert!(t.get("coordinates").unwrap().is_null());
        }
        let all = TwitterConfig {
            geo_rate: 1.0,
            ..Default::default()
        };
        for t in tweets(&all, 50) {
            assert!(t.get("coordinates").unwrap().as_object().is_some());
        }
    }

    #[test]
    fn extended_tweets_drift_schema() {
        let c = TwitterConfig {
            extended_rate: 0.5,
            ..Default::default()
        };
        let docs = tweets(&c, 200);
        let classic = docs.iter().filter(|d| d.get("text").is_some()).count();
        let extended = docs.iter().filter(|d| d.get("full_text").is_some()).count();
        assert_eq!(classic + extended, 200);
        assert!(classic > 0 && extended > 0);
    }

    #[test]
    fn retweets_nest_one_level() {
        let c = TwitterConfig {
            retweet_rate: 1.0,
            ..Default::default()
        };
        let docs = tweets(&c, 10);
        for d in &docs {
            let rt = d.get("retweeted_status").expect("retweet forced");
            assert!(rt.get("retweeted_status").is_none(), "no double nesting");
        }
    }
}
