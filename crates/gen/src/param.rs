//! The dialed generator: heterogeneity under explicit control.

use jsonx_data::{Number, Object, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`DialedGenerator`].
///
/// Each dial maps to a phenomenon the surveyed tools react to:
///
/// * `optional_rate` — fraction of fields that may be absent (drives
///   `required` inference and K-optionality),
/// * `type_noise` — probability that a field value takes an alternative
///   kind (drives union widths and Spark's `String` fallback),
/// * `shape_variants` — number of distinct record shapes (drives
///   L-equivalence union growth and skeleton mining),
/// * `shape_skew` — how unevenly documents distribute over shapes
///   (Zipf-like; drives skeleton coverage thresholds),
/// * `nesting_depth` / `array_len` — structural depth and array sizes.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// RNG seed; equal configs generate equal corpora.
    pub seed: u64,
    /// Number of scalar fields per record at each nesting level.
    pub record_width: usize,
    /// Probability each optional field is *absent* from a document.
    pub optional_rate: f64,
    /// Fraction of fields declared optional (the rest always present).
    pub optional_fraction: f64,
    /// Probability a field value takes an alternative kind.
    pub type_noise: f64,
    /// Depth of nested record levels (0 = flat).
    pub nesting_depth: usize,
    /// Array length range (inclusive); arrays appear at the deepest level.
    pub array_len: (usize, usize),
    /// Number of distinct record shapes (label sets).
    pub shape_variants: usize,
    /// Zipf-like skew across shapes: 0.0 = uniform, larger = more skewed.
    pub shape_skew: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 42,
            record_width: 6,
            optional_rate: 0.3,
            optional_fraction: 0.33,
            type_noise: 0.0,
            nesting_depth: 1,
            array_len: (0, 4),
            shape_variants: 1,
            shape_skew: 0.0,
        }
    }
}

/// A deterministic document generator.
pub struct DialedGenerator {
    config: GeneratorConfig,
    rng: SmallRng,
    /// Pre-computed shape-selection cumulative weights.
    shape_cdf: Vec<f64>,
}

impl DialedGenerator {
    /// Creates a generator from a config.
    pub fn new(config: GeneratorConfig) -> Self {
        let n = config.shape_variants.max(1);
        let mut weights: Vec<f64> = (1..=n)
            .map(|rank| 1.0 / (rank as f64).powf(config.shape_skew))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        DialedGenerator {
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            shape_cdf: weights,
        }
    }

    /// Generates `n` documents.
    pub fn generate(&mut self, n: usize) -> Vec<Value> {
        (0..n).map(|i| self.document(i)).collect()
    }

    /// Which shape a random draw lands on.
    fn pick_shape(&mut self) -> usize {
        let x: f64 = self.rng.gen();
        self.shape_cdf
            .iter()
            .position(|&c| x <= c)
            .unwrap_or(self.shape_cdf.len() - 1)
    }

    fn document(&mut self, idx: usize) -> Value {
        let shape = self.pick_shape();
        self.record(idx, shape, self.config.nesting_depth)
    }

    fn record(&mut self, idx: usize, shape: usize, depth: usize) -> Value {
        let mut obj = Object::new();
        obj.insert("id", Value::from(idx as i64));
        let optional_from =
            (self.config.record_width as f64 * (1.0 - self.config.optional_fraction)) as usize;
        for f in 0..self.config.record_width {
            // Field names differ per shape so L-equivalence sees distinct
            // label sets.
            let name = if shape == 0 {
                format!("f{f}")
            } else {
                format!("s{shape}_f{f}")
            };
            if f >= optional_from && self.rng.gen::<f64>() < self.config.optional_rate {
                continue;
            }
            let value = self.field_value(f);
            obj.insert(name, value);
        }
        if depth > 0 {
            obj.insert("nested", self.record(idx, shape, depth - 1));
        } else {
            let (lo, hi) = self.config.array_len;
            let len = if hi > lo {
                self.rng.gen_range(lo..=hi)
            } else {
                lo
            };
            let items: Vec<Value> = (0..len).map(|j| self.field_value(j)).collect();
            obj.insert("items", Value::Arr(items));
        }
        Value::Obj(obj)
    }

    /// Field values rotate through the scalar kinds by position; with
    /// probability `type_noise` the kind is swapped for a different one.
    fn field_value(&mut self, position: usize) -> Value {
        let base_kind = position % 4;
        let kind = if self.rng.gen::<f64>() < self.config.type_noise {
            (base_kind + 1 + self.rng.gen_range(0..3)) % 4
        } else {
            base_kind
        };
        match kind {
            0 => Value::from(self.rng.gen_range(0..1_000_000i64)),
            1 => Value::Str(format!("v{}", self.rng.gen_range(0..10_000u32))),
            2 => Value::Num(
                Number::from_f64(self.rng.gen_range(-1000.0..1000.0) + 0.5)
                    .expect("finite by construction"),
            ),
            _ => Value::Bool(self.rng.gen()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(config: GeneratorConfig, n: usize) -> Vec<Value> {
        DialedGenerator::new(config).generate(n)
    }

    #[test]
    fn deterministic_per_seed() {
        let c = GeneratorConfig::default();
        let a = gen(c.clone(), 50);
        let b = gen(c.clone(), 50);
        assert_eq!(a, b);
        let other = gen(GeneratorConfig { seed: 43, ..c }, 50);
        assert_ne!(a, other);
    }

    #[test]
    fn zero_noise_means_stable_kinds() {
        let docs = gen(
            GeneratorConfig {
                type_noise: 0.0,
                optional_rate: 0.0,
                shape_variants: 1,
                ..Default::default()
            },
            100,
        );
        // Field f0 is always an integer with noise off.
        for d in &docs {
            assert!(d.get("f0").unwrap().as_i64().is_some());
        }
    }

    #[test]
    fn noise_produces_heterogeneity() {
        let docs = gen(
            GeneratorConfig {
                type_noise: 0.5,
                optional_rate: 0.0,
                ..Default::default()
            },
            200,
        );
        let int_count = docs
            .iter()
            .filter(|d| d.get("f0").is_some_and(|v| v.as_i64().is_some()))
            .count();
        assert!(int_count > 50 && int_count < 200, "got {int_count}");
    }

    #[test]
    fn shape_variants_differ_in_labels() {
        let docs = gen(
            GeneratorConfig {
                shape_variants: 3,
                shape_skew: 0.0,
                ..Default::default()
            },
            300,
        );
        let mut label_sets = std::collections::BTreeSet::new();
        for d in &docs {
            let keys: Vec<String> = d
                .as_object()
                .unwrap()
                .keys()
                .map(str::to_string)
                .filter(|k| k != "id" && k != "items" && k != "nested")
                .map(|k| k.split("_f").next().unwrap_or("f").to_string())
                .collect();
            label_sets.insert(keys.first().cloned().unwrap_or_default());
        }
        assert!(label_sets.len() >= 2, "expected multiple shapes");
    }

    #[test]
    fn skew_concentrates_mass() {
        let docs = gen(
            GeneratorConfig {
                shape_variants: 5,
                shape_skew: 2.0,
                record_width: 2,
                ..Default::default()
            },
            1000,
        );
        // Shape 0 fields are named f0/f1; count its share.
        let shape0 = docs
            .iter()
            .filter(|d| {
                d.as_object()
                    .unwrap()
                    .keys()
                    .any(|k| k == "f0" || k == "f1")
            })
            .count();
        assert!(shape0 > 500, "skewed head shape got {shape0}/1000");
    }

    #[test]
    fn nesting_depth_respected() {
        let docs = gen(
            GeneratorConfig {
                nesting_depth: 3,
                ..Default::default()
            },
            3,
        );
        let mut v = &docs[0];
        for _ in 0..3 {
            v = v.get("nested").expect("nested level");
        }
        assert!(v.get("items").is_some());
    }
}
