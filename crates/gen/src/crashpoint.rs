//! Deterministic crash/stop injection for the kill-and-resume harness.
//!
//! Real crashes (SIGKILL, power loss) strike at arbitrary moments, which
//! makes "resumed output equals uninterrupted output" impossible to pin
//! in a test matrix. A *crashpoint* substitutes a deterministic strike:
//! the `JSONX_CRASHPOINT` environment variable names exactly when to die
//! (or to stop gracefully), keyed to the journal's commit count — the
//! only clock that matters for resumability, because everything before
//! commit `N` is durable by construction and everything after it never
//! happened.
//!
//! Syntax: `commits:N` aborts the process (no unwinding, no buffer
//! flushing — the closest stand-in for SIGKILL that stays in-process)
//! after the `N`th committed chunk; `stop:N` trips the graceful-stop
//! latch instead, exercising the signal path without a signal.

/// When — and how — an injected crash strikes, parsed from
/// `JSONX_CRASHPOINT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Crashpoint {
    /// `commits:N` — call [`std::process::abort`] once `N` chunks have
    /// committed. Durable state at that instant is exactly the journal's
    /// first `N` records.
    Abort {
        /// Commit count that triggers the abort.
        after: u64,
    },
    /// `stop:N` — trip the run's graceful-stop latch once `N` chunks
    /// have committed: workers drain in-flight chunks and the run exits
    /// as interrupted-resumable.
    Stop {
        /// Commit count that triggers the stop.
        after: u64,
    },
}

impl Crashpoint {
    /// Parses a crashpoint spec (`commits:N` or `stop:N`).
    pub fn parse(spec: &str) -> Option<Crashpoint> {
        let (kind, count) = spec.split_once(':')?;
        let after: u64 = count.trim().parse().ok()?;
        match kind.trim() {
            "commits" => Some(Crashpoint::Abort { after }),
            "stop" => Some(Crashpoint::Stop { after }),
            _ => None,
        }
    }

    /// Reads `JSONX_CRASHPOINT` from the environment; `None` when unset
    /// or malformed (a typo'd spec must not silently run un-instrumented
    /// in the harness, but the library cannot abort here — callers that
    /// care should `parse` explicitly).
    pub fn from_env() -> Option<Crashpoint> {
        Crashpoint::parse(&std::env::var("JSONX_CRASHPOINT").ok()?)
    }

    /// Called with the running commit count; strikes when the configured
    /// threshold is reached. `Abort` does not return.
    pub fn observe_commit(&self, committed: u64, stop_latch: &std::sync::atomic::AtomicBool) {
        match *self {
            Crashpoint::Abort { after } if committed >= after => std::process::abort(),
            Crashpoint::Stop { after } if committed >= after => {
                stop_latch.store(true, std::sync::atomic::Ordering::SeqCst);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn parses_both_kinds() {
        assert_eq!(
            Crashpoint::parse("commits:3"),
            Some(Crashpoint::Abort { after: 3 })
        );
        assert_eq!(
            Crashpoint::parse("stop:12"),
            Some(Crashpoint::Stop { after: 12 })
        );
        assert_eq!(Crashpoint::parse("commits"), None);
        assert_eq!(Crashpoint::parse("kill:1"), None);
        assert_eq!(Crashpoint::parse("commits:x"), None);
    }

    #[test]
    fn stop_trips_latch_only_at_threshold() {
        let latch = AtomicBool::new(false);
        let cp = Crashpoint::Stop { after: 2 };
        cp.observe_commit(1, &latch);
        assert!(!latch.load(Ordering::SeqCst));
        cp.observe_commit(2, &latch);
        assert!(latch.load(Ordering::SeqCst));
    }
}
