//! Property tests pinning the fail-fast contract: compiled-IR validation
//! (`is_valid` / `FastValidator`) must be **verdict-identical** to the
//! error-collecting interpreter (`validate`) for arbitrary schema/value
//! pairs — including `$ref` chains, reference cycles and bad references —
//! and the interpreter's error output (kinds and instance paths) must be
//! deterministic across repeated runs and independent compilations, so
//! compile-time reference memoization cannot change diagnostics.

use jsonx_data::{json, Number, Object, Value};
use jsonx_schema::{CompiledSchema, ValidatorOptions};
use proptest::prelude::*;

/// Arbitrary JSON instances. Object keys are drawn from a pool that
/// overlaps the property names the schema strategy uses ("a", "b", …),
/// so properties/required/dependencies keywords actually fire.
fn arb_instance() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-20i64..20).prop_map(|i| Value::Num(Number::Int(i))),
        (-20.0f64..20.0).prop_map(|f| Value::Num(Number::from_f64(f).unwrap())),
        "[a-z]{0,6}".prop_map(Value::Str),
        Just(Value::Str("2019-03-26".to_string())),
    ];
    leaf.prop_recursive(3, 24, 5, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Arr),
            prop::collection::vec((arb_key(), inner), 0..4)
                .prop_map(|pairs| Value::Obj(pairs.into_iter().collect::<Object>())),
        ]
    })
}

fn arb_key() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        "[a-z]{0,4}".prop_map(|s| s),
    ]
}

/// Small pool of values for `enum` / `const`.
fn arb_const() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(json!(1)),
        Just(json!("a")),
        Just(json!(null)),
        Just(json!([1])),
        Just(json!({"a": 1})),
    ]
}

/// Leaf schemas: single keywords, boolean schemas, and references into
/// the definitions pool (including the root and a dangling target).
fn arb_leaf_schema() -> impl Strategy<Value = Value> + Clone {
    prop_oneof![
        Just(json!(true)),
        Just(json!(false)),
        Just(json!({})),
        prop_oneof![
            Just("null"),
            Just("boolean"),
            Just("integer"),
            Just("number"),
            Just("string"),
            Just("array"),
            Just("object")
        ]
        .prop_map(|t| json!({ "type": t })),
        Just(json!({"type": ["integer", "string"]})),
        (-10i64..10).prop_map(|n| json!({ "minimum": n })),
        (-10i64..10).prop_map(|n| json!({ "maximum": n })),
        (1i64..5).prop_map(|n| json!({ "multipleOf": n })),
        (0i64..4).prop_map(|n| json!({ "minLength": n })),
        (0i64..6).prop_map(|n| json!({ "maxLength": n })),
        prop_oneof![Just("^[a-z]+$"), Just("\\d"), Just("^a")]
            .prop_map(|p| json!({ "pattern": p })),
        Just(json!({"format": "date"})),
        prop::collection::vec(arb_const(), 1..4).prop_map(|vs| json!({ "enum": vs })),
        arb_const().prop_map(|v| json!({ "const": v })),
        prop::collection::vec(arb_key(), 1..3).prop_map(|ks| json!({ "required": ks })),
        Just(json!({"uniqueItems": true})),
        (0i64..3).prop_map(|n| json!({ "minItems": n })),
        (0i64..3).prop_map(|n| json!({ "minProperties": n })),
        prop_oneof![
            Just("#/definitions/d0"),
            Just("#/definitions/d1"),
            Just("#/definitions/d2"),
            Just("#"),
            Just("#/definitions/missing")
        ]
        .prop_map(|r| json!({ "$ref": r })),
    ]
}

/// Full schema strategy: leaves composed through every applicator.
fn arb_schema() -> impl Strategy<Value = Value> {
    arb_leaf_schema().prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|s| json!({ "items": s })),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| json!({"items": [a], "additionalItems": b})),
            (arb_key(), inner.clone(), any::<bool>()).prop_map(|(k, s, req)| {
                if req {
                    json!({"properties": {k.clone(): s}, "required": [k]})
                } else {
                    json!({ "properties": { k: s } })
                }
            }),
            inner
                .clone()
                .prop_map(|s| json!({"patternProperties": {"^[ab]$": s}})),
            inner
                .clone()
                .prop_map(|s| json!({ "additionalProperties": s })),
            inner.clone().prop_map(|s| json!({ "propertyNames": s })),
            prop::collection::vec(inner.clone(), 1..3).prop_map(|ss| json!({ "anyOf": ss })),
            prop::collection::vec(inner.clone(), 1..3).prop_map(|ss| json!({ "oneOf": ss })),
            prop::collection::vec(inner.clone(), 1..3).prop_map(|ss| json!({ "allOf": ss })),
            inner.clone().prop_map(|s| json!({ "not": s })),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(i, t, e)| json!({"if": i, "then": t, "else": e})),
            inner.clone().prop_map(|s| json!({ "contains": s })),
            Just(json!({"dependencies": {"a": ["b"]}})),
            inner
                .clone()
                .prop_map(|s| json!({"dependencies": {"a": s}})),
        ]
    })
}

/// A whole schema document: a root schema plus a definitions pool the
/// `$ref` leaves point into. Definitions may reference each other (and
/// the root), so guarded and unguarded cycles both occur.
fn arb_schema_document() -> impl Strategy<Value = Value> {
    (arb_schema(), arb_schema(), arb_schema(), arb_schema()).prop_map(|(root, d0, d1, d2)| {
        match root {
            Value::Obj(mut obj) => {
                obj.insert("definitions", json!({"d0": d0, "d1": d1, "d2": d2}));
                Value::Obj(obj)
            }
            // Boolean root schemas carry no refs; use them as-is.
            other => other,
        }
    })
}

/// (kind keyword, instance path) pairs — the stable identity of an error.
fn error_shape(result: &Result<(), Vec<jsonx_schema::ValidationError>>) -> Vec<(String, String)> {
    match result {
        Ok(()) => Vec::new(),
        Err(errors) => errors
            .iter()
            .map(|e| (e.kind.keyword().to_string(), e.instance_path.to_string()))
            .collect(),
    }
}

proptest! {
    #[test]
    fn compiled_ir_agrees_with_interpreter(
        doc in arb_schema_document(),
        instance in arb_instance(),
    ) {
        let compiled = CompiledSchema::compile(&doc)
            .unwrap_or_else(|e| panic!("strategy produced uncompilable schema {doc}: {e}"));
        let slow = compiled.validate(&instance);
        let fast = compiled.is_valid(&instance);
        prop_assert_eq!(
            fast,
            slow.is_ok(),
            "verdict mismatch on schema {} instance {}",
            doc,
            instance
        );

        // Error-path determinism: same kinds and paths on repeat, and on a
        // fresh compilation (memoized vs recomputed reference resolution).
        let again = compiled.validate(&instance);
        prop_assert_eq!(error_shape(&slow), error_shape(&again));
        let recompiled = CompiledSchema::compile(&doc).unwrap();
        prop_assert_eq!(error_shape(&slow), error_shape(&recompiled.validate(&instance)));
    }

    #[test]
    fn agreement_holds_with_formats_enforced(
        doc in arb_schema_document(),
        instance in arb_instance(),
    ) {
        let opts = ValidatorOptions { enforce_formats: true };
        let compiled = CompiledSchema::compile(&doc).unwrap();
        prop_assert_eq!(
            compiled.is_valid_with(&instance, opts),
            compiled.validate_with(&instance, opts).is_ok(),
            "format-enforcing verdict mismatch on schema {} instance {}",
            doc,
            instance
        );
    }

    #[test]
    fn reused_fast_validator_agrees_across_documents(
        doc in arb_schema_document(),
        instances in prop::collection::vec(arb_instance(), 1..8),
    ) {
        let compiled = CompiledSchema::compile(&doc).unwrap();
        let mut fv = compiled.fast_validator();
        for instance in &instances {
            prop_assert_eq!(
                fv.is_valid(instance),
                compiled.validate(instance).is_ok(),
                "reused-validator mismatch on schema {} instance {}",
                doc,
                instance
            );
        }
    }
}
