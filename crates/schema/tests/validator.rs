//! Keyword-by-keyword validator conformance tests, in the style of the
//! official JSON-Schema-Test-Suite: each case is (schema, instance,
//! expected validity).

use jsonx_data::{json, Value};
use jsonx_schema::CompiledSchema;

fn check(schema: Value, cases: &[(Value, bool)]) {
    let compiled = CompiledSchema::compile(&schema)
        .unwrap_or_else(|e| panic!("schema {schema} failed to compile: {e}"));
    for (instance, expected) in cases {
        let got = compiled.is_valid(instance);
        assert_eq!(
            got, *expected,
            "schema {schema} instance {instance}: expected valid={expected}"
        );
    }
}

#[test]
fn type_keyword() {
    check(
        json!({"type": "string"}),
        &[
            (json!("x"), true),
            (json!(""), true),
            (json!(1), false),
            (json!(null), false),
            (json!([]), false),
            (json!({}), false),
        ],
    );
    check(
        json!({"type": ["string", "null"]}),
        &[(json!("x"), true), (json!(null), true), (json!(1), false)],
    );
    check(
        json!({"type": "array"}),
        &[(json!([1, 2]), true), (json!({}), false)],
    );
}

#[test]
fn enum_and_const() {
    check(
        json!({"enum": ["red", "green", 3, [1], {"k": 1}]}),
        &[
            (json!("red"), true),
            (json!(3), true),
            (json!(3.0), true), // canonical numeric equality
            (json!([1]), true),
            (json!({"k": 1}), true),
            (json!("blue"), false),
            (json!([1, 2]), false),
        ],
    );
    check(
        json!({"const": {"a": [1, 2]}}),
        &[
            (json!({"a": [1, 2]}), true),
            (json!({"a": [2, 1]}), false),
            (json!({"a": [1, 2], "b": 3}), false),
        ],
    );
}

#[test]
fn string_constraints() {
    check(
        json!({"minLength": 2, "maxLength": 4}),
        &[
            (json!("ab"), true),
            (json!("abcd"), true),
            (json!("a"), false),
            (json!("abcde"), false),
            // Length counts characters, not bytes.
            (json!("héé"), true),
            (json!(12), true), // non-strings pass string keywords
        ],
    );
    check(
        json!({"pattern": "^[a-z]+$"}),
        &[
            (json!("abc"), true),
            (json!("aBc"), false),
            (json!(""), false),
        ],
    );
}

#[test]
fn numeric_constraints() {
    check(
        json!({"minimum": 0, "maximum": 10}),
        &[
            (json!(0), true),
            (json!(10), true),
            (json!(5.5), true),
            (json!(-0.1), false),
            (json!(10.1), false),
            (json!("11"), true), // strings pass numeric keywords
        ],
    );
    check(
        json!({"exclusiveMinimum": 0, "exclusiveMaximum": 1}),
        &[(json!(0.5), true), (json!(0), false), (json!(1), false)],
    );
    check(
        json!({"multipleOf": 0.5}),
        &[(json!(1.5), true), (json!(2), true), (json!(1.3), false)],
    );
}

#[test]
fn array_constraints() {
    check(
        json!({"items": {"type": "integer"}, "minItems": 1, "maxItems": 3}),
        &[
            (json!([1]), true),
            (json!([1, 2, 3]), true),
            (json!([]), false),
            (json!([1, 2, 3, 4]), false),
            (json!([1, "x"]), false),
        ],
    );
    check(
        json!({"uniqueItems": true}),
        &[
            (json!([1, 2, 3]), true),
            (json!([1, 2, 1]), false),
            (json!([1, 1.0]), false), // canonical equality
            (json!([{"a": 1}, {"a": 1}]), false),
            (json!([[1], [2]]), true),
        ],
    );
    check(
        json!({"contains": {"type": "string"}}),
        &[
            (json!([1, "x"]), true),
            (json!([1, 2]), false),
            (json!([]), false),
        ],
    );
}

#[test]
fn tuple_items_and_additional() {
    let schema = json!({
        "items": [{"type": "integer"}, {"type": "string"}],
        "additionalItems": {"type": "boolean"}
    });
    check(
        schema,
        &[
            (json!([1, "a"]), true),
            (json!([1]), true),
            (json!([]), true),
            (json!([1, "a", true, false]), true),
            (json!([1, "a", 3]), false),
            (json!(["a", 1]), false),
        ],
    );
}

#[test]
fn object_constraints() {
    check(
        json!({
            "properties": {"a": {"type": "integer"}},
            "required": ["a"],
            "minProperties": 1,
            "maxProperties": 2
        }),
        &[
            (json!({"a": 1}), true),
            (json!({"a": 1, "b": 2}), true),
            (json!({}), false),
            (json!({"b": 1}), false),
            (json!({"a": "x"}), false),
            (json!({"a": 1, "b": 2, "c": 3}), false),
        ],
    );
}

#[test]
fn pattern_and_additional_properties() {
    let schema = json!({
        "properties": {"name": {"type": "string"}},
        "patternProperties": {"^x_": {"type": "integer"}},
        "additionalProperties": false
    });
    check(
        schema,
        &[
            (json!({"name": "n", "x_a": 1}), true),
            (json!({"x_a": 1, "x_b": 2}), true),
            (json!({"other": 1}), false),
            (json!({"x_a": "not int"}), false),
        ],
    );
    // additionalProperties as a schema.
    check(
        json!({"additionalProperties": {"type": "string"}}),
        &[
            (json!({"a": "x", "b": "y"}), true),
            (json!({"a": 1}), false),
        ],
    );
}

#[test]
fn property_names() {
    check(
        json!({"propertyNames": {"pattern": "^[a-z]+$"}}),
        &[
            (json!({"abc": 1}), true),
            (json!({"Abc": 1}), false),
            (json!({}), true),
        ],
    );
}

#[test]
fn dependencies_keyword() {
    // Key dependencies (co-occurrence).
    check(
        json!({"dependencies": {"credit_card": ["billing_address"]}}),
        &[
            (json!({"credit_card": "123", "billing_address": "x"}), true),
            (json!({"credit_card": "123"}), false),
            (json!({"billing_address": "x"}), true),
            (json!({}), true),
        ],
    );
    // Schema dependencies.
    check(
        json!({"dependencies": {"a": {"required": ["b"]}}}),
        &[
            (json!({"a": 1, "b": 2}), true),
            (json!({"a": 1}), false),
            (json!({"c": 1}), true),
        ],
    );
}

#[test]
fn combinators() {
    check(
        json!({"allOf": [{"type": "integer"}, {"minimum": 3}]}),
        &[(json!(4), true), (json!(3.5), false), (json!(2), false)],
    );
    check(
        json!({"anyOf": [{"type": "string"}, {"minimum": 10}]}),
        &[(json!("x"), true), (json!(12), true), (json!(5), false)],
    );
    // Union types for heterogeneous fields — the §2 motivating example.
    check(
        json!({"anyOf": [
            {"type": "string"},
            {"type": "object", "properties": {"lat": {"type": "number"}}, "required": ["lat"]}
        ]}),
        &[
            (json!("Lisbon"), true),
            (json!({"lat": 38.7}), true),
            (json!({"lon": -9.1}), false),
            (json!(7), false),
        ],
    );
}

#[test]
fn boolean_schemas_and_nesting() {
    check(json!(true), &[(json!(1), true), (json!(null), true)]);
    check(json!(false), &[(json!(1), false), (json!(null), false)]);
    check(
        json!({"properties": {"banned": false}}),
        &[
            (json!({}), true),
            (json!({"banned": 1}), false),
            (json!({"ok": 1}), true),
        ],
    );
}

#[test]
fn definitions_with_refs() {
    let schema = json!({
        "definitions": {
            "name": {"type": "string", "minLength": 1},
            "person": {
                "type": "object",
                "properties": {
                    "name": {"$ref": "#/definitions/name"},
                    "friend": {"$ref": "#/definitions/person"}
                },
                "required": ["name"]
            }
        },
        "$ref": "#/definitions/person"
    });
    check(
        schema,
        &[
            (json!({"name": "ada"}), true),
            (json!({"name": "ada", "friend": {"name": "grace"}}), true),
            (json!({"name": ""}), false),
            (json!({"name": "ada", "friend": {"name": 3}}), false),
            (json!({"friend": {"name": "grace"}}), false),
        ],
    );
}

#[test]
fn deeply_nested_error_paths() {
    let compiled = CompiledSchema::compile(&json!({
        "properties": {
            "a": {"items": {"properties": {"b": {"type": "integer"}}}}
        }
    }))
    .unwrap();
    let errs = compiled
        .validate(&json!({"a": [{"b": 1}, {"b": "x"}]}))
        .unwrap_err();
    assert_eq!(errs[0].instance_path.to_string(), "/a/1/b");
}

#[test]
fn twitter_like_schema_end_to_end() {
    // The tutorial's running example: a schema for (simplified) tweets.
    let schema = json!({
        "type": "object",
        "properties": {
            "id": {"type": "integer", "minimum": 0},
            "text": {"type": "string", "maxLength": 280},
            "user": {
                "type": "object",
                "properties": {
                    "screen_name": {"type": "string", "pattern": "^[A-Za-z0-9_]{1,15}$"},
                    "verified": {"type": "boolean"}
                },
                "required": ["screen_name"]
            },
            "coordinates": {
                "anyOf": [
                    {"type": "null"},
                    {
                        "type": "object",
                        "properties": {
                            "type": {"const": "Point"},
                            "coordinates": {
                                "type": "array",
                                "items": {"type": "number"},
                                "minItems": 2, "maxItems": 2
                            }
                        },
                        "required": ["type", "coordinates"]
                    }
                ]
            },
            "entities": {
                "type": "object",
                "properties": {
                    "hashtags": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "properties": {"text": {"type": "string"}},
                            "required": ["text"]
                        }
                    }
                }
            }
        },
        "required": ["id", "text", "user"]
    });
    check(
        schema,
        &[
            (
                json!({
                    "id": 1, "text": "hello EDBT",
                    "user": {"screen_name": "baazizi", "verified": false},
                    "coordinates": null,
                    "entities": {"hashtags": [{"text": "json"}]}
                }),
                true,
            ),
            (
                json!({
                    "id": 2, "text": "geo",
                    "user": {"screen_name": "colazzo"},
                    "coordinates": {"type": "Point", "coordinates": [38.72, -9.13]}
                }),
                true,
            ),
            (
                // Bad screen_name and missing text.
                json!({"id": 3, "user": {"screen_name": "way too long for twitter handles"}}),
                false,
            ),
            (
                // Coordinates wrong arity.
                json!({
                    "id": 4, "text": "x", "user": {"screen_name": "ok"},
                    "coordinates": {"type": "Point", "coordinates": [1.0]}
                }),
                false,
            ),
        ],
    );
}

#[test]
fn if_then_else_conditionals() {
    // The draft-07 conditional: country-dependent postal code shapes.
    let schema = json!({
        "type": "object",
        "properties": {
            "country": {"type": "string"},
            "postal_code": {"type": "string"}
        },
        "if": {"properties": {"country": {"const": "US"}}, "required": ["country"]},
        "then": {"properties": {"postal_code": {"pattern": "^\\d{5}$"}}},
        "else": {"properties": {"postal_code": {"pattern": "^[A-Z0-9 -]{3,10}$"}}}
    });
    check(
        schema,
        &[
            (json!({"country": "US", "postal_code": "20500"}), true),
            (json!({"country": "US", "postal_code": "W1A 1AA"}), false),
            (json!({"country": "UK", "postal_code": "W1A 1AA"}), true),
            (json!({"country": "UK", "postal_code": "*"}), false),
            // `if` fails when country is absent → else branch applies.
            (json!({"postal_code": "SW1"}), true),
        ],
    );
}

#[test]
fn if_without_branches_is_vacuous() {
    check(
        json!({"if": {"type": "string"}}),
        &[(json!("x"), true), (json!(1), true)],
    );
    // `then` without `if` is ignored per spec.
    check(json!({"then": {"type": "string"}}), &[(json!(1), true)]);
}

#[test]
fn conditional_error_kinds() {
    use jsonx_schema::ValidationErrorKind;
    let schema = CompiledSchema::compile(&json!({
        "if": {"type": "integer"},
        "then": {"minimum": 10},
        "else": {"type": "string"}
    }))
    .unwrap();
    let errs = schema.validate(&json!(3)).unwrap_err();
    assert!(matches!(
        errs[0].kind,
        ValidationErrorKind::Conditional { then_branch: true }
    ));
    let errs = schema.validate(&json!(null)).unwrap_err();
    assert!(matches!(
        errs[0].kind,
        ValidationErrorKind::Conditional { then_branch: false }
    ));
    assert!(schema.is_valid(&json!(12)));
    assert!(schema.is_valid(&json!("s")));
}
