//! Schema compilation and validation errors.

use jsonx_data::Pointer;
use std::fmt;

/// An error found while *compiling* a schema document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// JSON Pointer into the schema document.
    pub schema_path: String,
    /// Human-readable description.
    pub message: String,
}

impl SchemaError {
    pub(crate) fn new(schema_path: impl Into<String>, message: impl Into<String>) -> Self {
        SchemaError {
            schema_path: schema_path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid schema at '{}': {}",
            self.schema_path, self.message
        )
    }
}

impl std::error::Error for SchemaError {}

/// Which keyword a validation failure came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationErrorKind {
    Type,
    Enum,
    Const,
    AllOf,
    AnyOf,
    OneOf {
        matched: usize,
    },
    Not,
    /// `if`/`then`/`else` conditional failed.
    Conditional {
        then_branch: bool,
    },
    MinLength,
    MaxLength,
    Pattern,
    Format,
    Minimum,
    Maximum,
    ExclusiveMinimum,
    ExclusiveMaximum,
    MultipleOf,
    Items,
    AdditionalItems,
    MinItems,
    MaxItems,
    UniqueItems,
    Contains,
    Required {
        missing: String,
    },
    Properties,
    PatternProperties,
    AdditionalProperties {
        key: String,
    },
    MinProperties,
    MaxProperties,
    PropertyNames {
        key: String,
    },
    Dependencies {
        key: String,
    },
    /// `false` schema (or compiled `Never`) reached.
    Never,
    /// `$ref` target missing or not a valid schema.
    BadRef {
        reference: String,
    },
    /// Unguarded `$ref` recursion: the same reference re-entered on the
    /// same instance location without consuming input.
    RefCycle {
        reference: String,
    },
}

impl ValidationErrorKind {
    /// The keyword name as spelled in schema documents.
    pub fn keyword(&self) -> &'static str {
        use ValidationErrorKind::*;
        match self {
            Type => "type",
            Enum => "enum",
            Const => "const",
            AllOf => "allOf",
            AnyOf => "anyOf",
            OneOf { .. } => "oneOf",
            Not => "not",
            Conditional { then_branch: true } => "then",
            Conditional { then_branch: false } => "else",
            MinLength => "minLength",
            MaxLength => "maxLength",
            Pattern => "pattern",
            Format => "format",
            Minimum => "minimum",
            Maximum => "maximum",
            ExclusiveMinimum => "exclusiveMinimum",
            ExclusiveMaximum => "exclusiveMaximum",
            MultipleOf => "multipleOf",
            Items => "items",
            AdditionalItems => "additionalItems",
            MinItems => "minItems",
            MaxItems => "maxItems",
            UniqueItems => "uniqueItems",
            Contains => "contains",
            Required { .. } => "required",
            Properties => "properties",
            PatternProperties => "patternProperties",
            AdditionalProperties { .. } => "additionalProperties",
            MinProperties => "minProperties",
            MaxProperties => "maxProperties",
            PropertyNames { .. } => "propertyNames",
            Dependencies { .. } => "dependencies",
            Never => "false",
            BadRef { .. } | RefCycle { .. } => "$ref",
        }
    }
}

/// One validation failure: where in the instance, which keyword, and a
/// rendered message.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationError {
    /// Path into the *instance* (the validated value).
    pub instance_path: Pointer,
    /// Which keyword failed.
    pub kind: ValidationErrorKind,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let path = self.instance_path.to_string();
        let shown = if path.is_empty() { "<root>" } else { &path };
        write!(f, "{}: [{}] {}", shown, self.kind.keyword(), self.message)
    }
}

impl std::error::Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_names() {
        assert_eq!(ValidationErrorKind::OneOf { matched: 2 }.keyword(), "oneOf");
        assert_eq!(
            ValidationErrorKind::Required {
                missing: "x".into()
            }
            .keyword(),
            "required"
        );
    }

    #[test]
    fn display_formats() {
        let e = ValidationError {
            instance_path: Pointer::root().push_key("age"),
            kind: ValidationErrorKind::Minimum,
            message: "-1 < 0".into(),
        };
        assert_eq!(e.to_string(), "/age: [minimum] -1 < 0");
        let root = ValidationError {
            instance_path: Pointer::root(),
            kind: ValidationErrorKind::Type,
            message: "m".into(),
        };
        assert!(root.to_string().starts_with("<root>"));
    }
}
