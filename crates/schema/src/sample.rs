//! Witness generation: producing values that *satisfy* a schema.
//!
//! The generative dual of validation — what tools like json-schema-faker
//! do. The sampler builds a candidate from the schema's positive
//! constraints (types, bounds, patterns, required fields), then runs the
//! real validator; combinators (`not`, `oneOf`) are handled by retrying
//! with fresh randomness. The guarantee is soundness, not completeness:
//! `sample` may return `None` for satisfiable-but-contrived schemas, but
//! every returned value validates (property-tested).

use crate::ast::{Dependency, Items, Schema, SchemaNode};
use crate::parse::CompiledSchema;
use jsonx_data::{Number, Object, Value};

/// How many candidate attempts before giving up on a schema node.
const ATTEMPTS: u64 = 24;
/// Recursion budget (guards `$ref` cycles and deep nesting).
const MAX_DEPTH: usize = 24;

impl CompiledSchema {
    /// Generates a value that validates against this schema, or `None`
    /// when the sampler's strategies don't find one.
    pub fn sample(&self, seed: u64) -> Option<Value> {
        for attempt in 0..ATTEMPTS {
            let mut rng = Rng(seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9)));
            if let Some(candidate) = self.candidate(self.root(), &mut rng, MAX_DEPTH) {
                if self.is_valid(&candidate) {
                    return Some(candidate);
                }
            }
        }
        None
    }

    fn candidate(&self, schema: &Schema, rng: &mut Rng, depth: usize) -> Option<Value> {
        if depth == 0 {
            return None;
        }
        match schema {
            Schema::Any => Some(simple_value(rng)),
            Schema::Never => None,
            Schema::Node(node) => self.candidate_node(node, rng, depth),
        }
    }

    fn candidate_node(&self, node: &SchemaNode, rng: &mut Rng, depth: usize) -> Option<Value> {
        if let Some(reference) = &node.reference {
            let target = self.resolve_ref(reference).ok()?;
            return self.candidate(&target, rng, depth - 1);
        }
        if let Some(v) = &node.const_value {
            return Some(v.clone());
        }
        if let Some(options) = &node.enumeration {
            return Some(options[rng.below(options.len())].clone());
        }
        // Combinators: defer to a branch (validation filters bad picks).
        if !node.one_of.is_empty() {
            let branch = &node.one_of[rng.below(node.one_of.len())];
            return self.candidate(branch, rng, depth - 1);
        }
        if !node.any_of.is_empty() {
            let branch = &node.any_of[rng.below(node.any_of.len())];
            return self.candidate(branch, rng, depth - 1);
        }
        if let Some(first) = node.all_of.first() {
            return self.candidate(first, rng, depth - 1);
        }

        // Pick a kind: declared `type`, or inferred from present keywords.
        let kind = self.pick_kind(node, rng);
        match kind {
            "null" => Some(Value::Null),
            "boolean" => Some(Value::Bool(rng.below(2) == 0)),
            "integer" => Some(Value::Num(Number::Int(self.pick_integer(node, rng)))),
            "number" => Some(Value::Num(self.pick_number(node, rng))),
            "string" => Some(Value::Str(self.pick_string(node, rng))),
            "array" => self.pick_array(node, rng, depth),
            "object" => self.pick_object(node, rng, depth),
            _ => Some(simple_value(rng)),
        }
    }

    fn pick_kind(&self, node: &SchemaNode, rng: &mut Rng) -> &'static str {
        if let Some(types) = &node.types {
            let t = types[rng.below(types.len())];
            return t.name();
        }
        if !node.properties.is_empty() || !node.required.is_empty() || node.min_properties.is_some()
        {
            return "object";
        }
        if node.items.is_some() || node.min_items.is_some() || node.contains.is_some() {
            return "array";
        }
        if node.pattern.is_some() || node.min_length.is_some() || node.format.is_some() {
            return "string";
        }
        if node.minimum.is_some()
            || node.maximum.is_some()
            || node.multiple_of.is_some()
            || node.exclusive_minimum.is_some()
            || node.exclusive_maximum.is_some()
        {
            return "number";
        }
        ["null", "boolean", "integer", "number", "string"][rng.below(5)]
    }

    fn pick_integer(&self, node: &SchemaNode, rng: &mut Rng) -> i64 {
        // Widen to i128: schemas may carry bounds at the i64 extremes, and
        // `hi - lo + 1` must not overflow (e.g. `maximum: i64::MAX`).
        let lo: i128 = node
            .minimum
            .map(|n| n.as_f64().ceil() as i128)
            .or(node
                .exclusive_minimum
                .map(|n| n.as_f64().floor() as i128 + 1))
            .unwrap_or(0);
        let hi: i128 = node
            .maximum
            .map(|n| n.as_f64().floor() as i128)
            .or(node
                .exclusive_maximum
                .map(|n| n.as_f64().ceil() as i128 - 1))
            .unwrap_or(lo + 100);
        let base: i128 = if hi >= lo {
            // Sample within a window of the lower bound; u32-sized windows
            // keep `below` meaningful without giant ranges.
            let span = (hi - lo + 1).min(1 << 31) as usize;
            lo + rng.below(span) as i128
        } else {
            lo
        };
        let base = base.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64;
        match node.multiple_of.and_then(|m| m.as_i64()) {
            Some(m) if m > 0 => (base / m) * m,
            _ => base,
        }
    }

    fn pick_number(&self, node: &SchemaNode, rng: &mut Rng) -> Number {
        // Integral candidates satisfy `number` and are easy to bound.
        Number::Int(self.pick_integer(node, rng))
    }

    fn pick_string(&self, node: &SchemaNode, rng: &mut Rng) -> String {
        if let Some(pattern) = &node.pattern {
            if let Some(s) = pattern.regex.sample(rng.next()) {
                return s;
            }
        }
        if let Some(format) = node.format.as_deref() {
            if let Some(s) = format_witness(format) {
                return s.to_string();
            }
        }
        let min = node.min_length.unwrap_or(0) as usize;
        let max = node.max_length.map(|m| m as usize).unwrap_or(min + 8);
        let len = min + rng.below(max.saturating_sub(min) + 1);
        (0..len)
            .map(|_| (b'a' + rng.below(26) as u8) as char)
            .collect()
    }

    fn pick_array(&self, node: &SchemaNode, rng: &mut Rng, depth: usize) -> Option<Value> {
        // Cap witness arrays: a schema demanding millions of items gets a
        // `None` (via validation failure) instead of an allocation storm.
        let min = (node.min_items.unwrap_or(0) as usize).min(4_096);
        let max = node.max_items.map(|m| m as usize).unwrap_or(min.max(1) + 2);
        let len = min + rng.below(max.saturating_sub(min) + 1);
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let item = match &node.items {
                Some(Items::All(schema)) => self.candidate(schema, rng, depth - 1)?,
                Some(Items::Tuple(schemas)) => match schemas.get(i) {
                    Some(schema) => self.candidate(schema, rng, depth - 1)?,
                    None => match &node.additional_items {
                        Some(schema) => self.candidate(schema, rng, depth - 1)?,
                        None => simple_value(rng),
                    },
                },
                None => match &node.contains {
                    Some(schema) => self.candidate(schema, rng, depth - 1)?,
                    None => simple_value(rng),
                },
            };
            out.push(item);
        }
        Some(Value::Arr(out))
    }

    fn pick_object(&self, node: &SchemaNode, rng: &mut Rng, depth: usize) -> Option<Value> {
        let mut obj = Object::new();
        for (name, schema) in &node.properties {
            let required = node.required.iter().any(|r| r == name);
            // Required fields always; optional ones half the time.
            if required || rng.below(2) == 0 {
                obj.insert(name.clone(), self.candidate(schema, rng, depth - 1)?);
            }
        }
        // Required names without a property schema.
        for name in &node.required {
            if !obj.contains_key(name) {
                obj.insert(name.clone(), simple_value(rng));
            }
        }
        // Key dependencies: satisfy them by adding the needed fields.
        for (trigger, dep) in &node.dependencies {
            if obj.contains_key(trigger) {
                if let Dependency::Keys(keys) = dep {
                    for key in keys {
                        if !obj.contains_key(key) {
                            let schema = node
                                .properties
                                .iter()
                                .find(|(n, _)| n == key)
                                .map(|(_, s)| s);
                            let v = match schema {
                                Some(s) => self.candidate(s, rng, depth - 1)?,
                                None => simple_value(rng),
                            };
                            obj.insert(key.clone(), v);
                        }
                    }
                }
            }
        }
        Some(Value::Obj(obj))
    }
}

fn simple_value(rng: &mut Rng) -> Value {
    match rng.below(5) {
        0 => Value::Null,
        1 => Value::Bool(true),
        2 => Value::Num(Number::Int(rng.below(100) as i64)),
        3 => Value::Str(format!("s{}", rng.below(1000))),
        _ => Value::Num(Number::Int(-(rng.below(100) as i64))),
    }
}

/// Known-good witnesses for the formats `formats.rs` enforces.
fn format_witness(format: &str) -> Option<&'static str> {
    Some(match format {
        "date-time" => "2019-03-26T12:30:00Z",
        "date" => "2019-03-26",
        "time" => "12:30:00Z",
        "email" => "attendee@edbt2019.example.org",
        "hostname" => "openproceedings.org",
        "ipv4" => "192.0.2.7",
        "uri" => "https://openproceedings.org/2019/edbt",
        "uuid" => "123e4567-e89b-12d3-a456-426614174000",
        _ => return None,
    })
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    fn assert_samples(doc: Value) {
        let schema = CompiledSchema::compile(&doc).unwrap();
        let mut produced = 0;
        for seed in 0..20 {
            if let Some(v) = schema.sample(seed) {
                produced += 1;
                assert!(schema.is_valid(&v), "sample {v} violates {doc}");
            }
        }
        assert!(produced > 0, "no samples produced for {doc}");
    }

    #[test]
    fn scalar_schemas() {
        assert_samples(json!({"type": "integer", "minimum": 10, "maximum": 20}));
        assert_samples(json!({"type": "string", "minLength": 3, "maxLength": 5}));
        assert_samples(json!({"type": "string", "pattern": "^[A-Z]{3}-\\d{4}$"}));
        assert_samples(json!({"enum": ["red", "green", 3]}));
        assert_samples(json!({"const": {"nested": [1]}}));
        assert_samples(json!({"type": "number", "exclusiveMinimum": 0, "maximum": 1}));
        assert_samples(json!({"type": "integer", "multipleOf": 7, "minimum": 14}));
    }

    #[test]
    fn object_schemas() {
        assert_samples(json!({
            "type": "object",
            "required": ["id", "name"],
            "properties": {
                "id": {"type": "integer", "minimum": 1},
                "name": {"type": "string", "minLength": 1},
                "tags": {"type": "array", "items": {"type": "string"}}
            },
            "additionalProperties": false
        }));
        assert_samples(json!({
            "type": "object",
            "dependencies": {"a": ["b"]},
            "properties": {"a": {"type": "integer"}, "b": {"type": "string"}},
            "required": ["a"]
        }));
    }

    #[test]
    fn combinator_schemas() {
        assert_samples(json!({"anyOf": [{"type": "string"}, {"type": "integer"}]}));
        assert_samples(json!({"oneOf": [
            {"type": "integer", "maximum": 4},
            {"type": "integer", "minimum": 10}
        ]}));
        assert_samples(json!({"type": "integer", "not": {"const": 0}}));
        assert_samples(json!({"allOf": [
            {"type": "integer", "minimum": 5},
            {"maximum": 10}
        ]}));
    }

    #[test]
    fn formats_and_refs() {
        assert_samples(json!({"type": "string", "format": "date-time"}));
        assert_samples(json!({
            "definitions": {"pos": {"type": "integer", "minimum": 1}},
            "type": "object",
            "required": ["n"],
            "properties": {"n": {"$ref": "#/definitions/pos"}}
        }));
    }

    #[test]
    fn recursive_schema_terminates() {
        let schema = CompiledSchema::compile(&json!({
            "definitions": {
                "tree": {
                    "type": "object",
                    "required": ["v"],
                    "properties": {
                        "v": {"type": "integer"},
                        "kids": {"type": "array", "items": {"$ref": "#/definitions/tree"}}
                    }
                }
            },
            "$ref": "#/definitions/tree"
        }))
        .unwrap();
        // May or may not find a witness within budget, but must terminate
        // and any witness must validate.
        for seed in 0..10 {
            if let Some(v) = schema.sample(seed) {
                assert!(schema.is_valid(&v));
            }
        }
    }

    #[test]
    fn never_has_no_samples() {
        let schema = CompiledSchema::compile(&json!(false)).unwrap();
        assert_eq!(schema.sample(0), None);
        let schema = CompiledSchema::compile(&json!({
            "type": "integer", "minimum": 5, "maximum": 4
        }))
        .unwrap();
        assert_eq!(schema.sample(0), None);
    }
}
