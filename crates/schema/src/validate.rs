//! The validator: formal JSON Schema semantics over [`Schema`].

use crate::ast::{Dependency, Items, Schema, SchemaNode};
use crate::errors::{ValidationError, ValidationErrorKind};
use crate::formats::check_format;
use crate::parse::CompiledSchema;
use jsonx_data::{all_unique, Pointer, Value};

/// Validation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidatorOptions {
    /// Enforce the `format` keyword for formats this crate knows
    /// (annotation-only by default, per spec).
    pub enforce_formats: bool,
}

impl CompiledSchema {
    /// Validates `value`, returning every violation found.
    pub fn validate(&self, value: &Value) -> Result<(), Vec<ValidationError>> {
        self.validate_with(value, ValidatorOptions::default())
    }

    /// Validates with explicit options.
    pub fn validate_with(
        &self,
        value: &Value,
        options: ValidatorOptions,
    ) -> Result<(), Vec<ValidationError>> {
        let mut ctx = Ctx {
            doc: self,
            options,
            errors: Vec::new(),
            ref_stack: Vec::new(),
        };
        ctx.check(self.root(), value, &Pointer::root());
        if ctx.errors.is_empty() {
            Ok(())
        } else {
            Err(ctx.errors)
        }
    }

    /// True when `value` conforms.
    ///
    /// Runs the compiled fail-fast IR path (see [`crate::ir`]), which
    /// short-circuits on the first violation and allocates nothing —
    /// verdict-identical to `validate(value).is_ok()` but without paths,
    /// messages, or per-reference resolution. For bulk validation prefer
    /// a reused [`crate::FastValidator`].
    pub fn is_valid(&self, value: &Value) -> bool {
        self.fast_validator().is_valid(value)
    }

    /// True when `value` conforms under explicit options (fail-fast).
    pub fn is_valid_with(&self, value: &Value, options: ValidatorOptions) -> bool {
        self.fast_validator_with(options).is_valid(value)
    }
}

struct Ctx<'a> {
    doc: &'a CompiledSchema,
    options: ValidatorOptions,
    errors: Vec<ValidationError>,
    /// Active `$ref` expansions: (reference, instance path) pairs, used to
    /// detect unguarded recursion that would never consume input.
    ref_stack: Vec<(String, Pointer)>,
}

impl<'a> Ctx<'a> {
    fn emit(&mut self, path: &Pointer, kind: ValidationErrorKind, message: String) {
        self.errors.push(ValidationError {
            instance_path: path.clone(),
            kind,
            message,
        });
    }

    /// Validates without recording errors; returns conformity.
    fn probe(&mut self, schema: &Schema, value: &Value, path: &Pointer) -> bool {
        let saved = std::mem::take(&mut self.errors);
        self.check(schema, value, path);
        let ok = self.errors.is_empty();
        self.errors = saved;
        ok
    }

    fn check(&mut self, schema: &Schema, value: &Value, path: &Pointer) {
        match schema {
            Schema::Any => {}
            Schema::Never => self.emit(
                path,
                ValidationErrorKind::Never,
                "schema 'false' accepts nothing".to_string(),
            ),
            Schema::Node(node) => self.check_node(node, value, path),
        }
    }

    fn check_node(&mut self, node: &SchemaNode, value: &Value, path: &Pointer) {
        // `$ref`: per draft-04/06, siblings of $ref are ignored.
        if let Some(reference) = &node.reference {
            self.check_ref(reference, value, path);
            return;
        }

        self.check_general(node, value, path);
        self.check_combinators(node, value, path);
        match value {
            Value::Str(s) => self.check_string(node, s, path),
            Value::Num(_) => self.check_number(node, value, path),
            Value::Arr(items) => self.check_array(node, items, path),
            Value::Obj(_) => self.check_object(node, value, path),
            _ => {}
        }
    }

    fn check_ref(&mut self, reference: &str, value: &Value, path: &Pointer) {
        // Compare borrowed before owning: the cycle check itself must not
        // allocate — only an actual expansion pays for the owned frame.
        let cycles = self
            .ref_stack
            .iter()
            .any(|(r, p)| r == reference && p == path);
        if cycles {
            self.emit(
                path,
                ValidationErrorKind::RefCycle {
                    reference: reference.to_string(),
                },
                format!("reference '{reference}' loops without consuming input"),
            );
            return;
        }
        match self.doc.resolve_ref(reference) {
            Ok(target) => {
                self.ref_stack.push((reference.to_string(), path.clone()));
                self.check(&target, value, path);
                self.ref_stack.pop();
            }
            Err(e) => self.emit(
                path,
                ValidationErrorKind::BadRef {
                    reference: reference.to_string(),
                },
                e.to_string(),
            ),
        }
    }

    fn check_general(&mut self, node: &SchemaNode, value: &Value, path: &Pointer) {
        if let Some(types) = &node.types {
            let actual = value.kind();
            if !types.iter().any(|t| t.subsumes(actual)) {
                let names: Vec<&str> = types.iter().map(|t| t.name()).collect();
                self.emit(
                    path,
                    ValidationErrorKind::Type,
                    format!("expected {}, found {}", names.join(" or "), actual),
                );
            }
        }
        if let Some(options) = &node.enumeration {
            if !options.iter().any(|o| o == value) {
                self.emit(
                    path,
                    ValidationErrorKind::Enum,
                    format!("{value} is not one of the permitted values"),
                );
            }
        }
        if let Some(expected) = &node.const_value {
            if expected != value {
                self.emit(
                    path,
                    ValidationErrorKind::Const,
                    format!("expected {expected}, found {value}"),
                );
            }
        }
    }

    fn check_combinators(&mut self, node: &SchemaNode, value: &Value, path: &Pointer) {
        for (i, sub) in node.all_of.iter().enumerate() {
            if !self.probe(sub, value, path) {
                self.emit(
                    path,
                    ValidationErrorKind::AllOf,
                    format!("does not satisfy allOf branch {i}"),
                );
            }
        }
        if !node.any_of.is_empty() {
            let hit = node.any_of.iter().any(|sub| self.probe(sub, value, path));
            if !hit {
                self.emit(
                    path,
                    ValidationErrorKind::AnyOf,
                    format!("matches none of the {} anyOf branches", node.any_of.len()),
                );
            }
        }
        if !node.one_of.is_empty() {
            let matched = node
                .one_of
                .iter()
                .filter(|sub| self.probe(sub, value, path))
                .count();
            if matched != 1 {
                self.emit(
                    path,
                    ValidationErrorKind::OneOf { matched },
                    format!("matches {matched} oneOf branches, expected exactly 1"),
                );
            }
        }
        if let Some(negated) = &node.not {
            if self.probe(negated, value, path) {
                self.emit(
                    path,
                    ValidationErrorKind::Not,
                    "matches the negated schema".to_string(),
                );
            }
        }
        if let Some(condition) = &node.if_schema {
            if self.probe(condition, value, path) {
                if let Some(then_schema) = &node.then_schema {
                    if !self.probe(then_schema, value, path) {
                        self.emit(
                            path,
                            ValidationErrorKind::Conditional { then_branch: true },
                            "matches 'if' but violates 'then'".to_string(),
                        );
                    }
                }
            } else if let Some(else_schema) = &node.else_schema {
                if !self.probe(else_schema, value, path) {
                    self.emit(
                        path,
                        ValidationErrorKind::Conditional { then_branch: false },
                        "fails 'if' and violates 'else'".to_string(),
                    );
                }
            }
        }
    }

    fn check_string(&mut self, node: &SchemaNode, s: &str, path: &Pointer) {
        // Lengths count Unicode scalar values, not bytes, per spec.
        let need_len = node.min_length.is_some() || node.max_length.is_some();
        if need_len {
            let len = s.chars().count() as u64;
            if let Some(min) = node.min_length {
                if len < min {
                    self.emit(
                        path,
                        ValidationErrorKind::MinLength,
                        format!("length {len} < minLength {min}"),
                    );
                }
            }
            if let Some(max) = node.max_length {
                if len > max {
                    self.emit(
                        path,
                        ValidationErrorKind::MaxLength,
                        format!("length {len} > maxLength {max}"),
                    );
                }
            }
        }
        if let Some(pattern) = &node.pattern {
            if !pattern.regex.is_match(s) {
                self.emit(
                    path,
                    ValidationErrorKind::Pattern,
                    format!("does not match pattern '{}'", pattern.source),
                );
            }
        }
        if self.options.enforce_formats {
            if let Some(format) = &node.format {
                if !check_format(format, s) {
                    self.emit(
                        path,
                        ValidationErrorKind::Format,
                        format!("'{s}' is not a valid {format}"),
                    );
                }
            }
        }
    }

    fn check_number(&mut self, node: &SchemaNode, value: &Value, path: &Pointer) {
        let n = *value.as_number().expect("checked by caller");
        if let Some(min) = node.minimum {
            if n < min {
                self.emit(
                    path,
                    ValidationErrorKind::Minimum,
                    format!("{n} < minimum {min}"),
                );
            }
        }
        if let Some(max) = node.maximum {
            if n > max {
                self.emit(
                    path,
                    ValidationErrorKind::Maximum,
                    format!("{n} > maximum {max}"),
                );
            }
        }
        if let Some(min) = node.exclusive_minimum {
            if n <= min {
                self.emit(
                    path,
                    ValidationErrorKind::ExclusiveMinimum,
                    format!("{n} <= exclusiveMinimum {min}"),
                );
            }
        }
        if let Some(max) = node.exclusive_maximum {
            if n >= max {
                self.emit(
                    path,
                    ValidationErrorKind::ExclusiveMaximum,
                    format!("{n} >= exclusiveMaximum {max}"),
                );
            }
        }
        if let Some(divisor) = node.multiple_of {
            if !n.is_multiple_of(&divisor) {
                self.emit(
                    path,
                    ValidationErrorKind::MultipleOf,
                    format!("{n} is not a multiple of {divisor}"),
                );
            }
        }
    }

    fn check_array(&mut self, node: &SchemaNode, items: &[Value], path: &Pointer) {
        let len = items.len() as u64;
        if let Some(min) = node.min_items {
            if len < min {
                self.emit(
                    path,
                    ValidationErrorKind::MinItems,
                    format!("{len} items < minItems {min}"),
                );
            }
        }
        if let Some(max) = node.max_items {
            if len > max {
                self.emit(
                    path,
                    ValidationErrorKind::MaxItems,
                    format!("{len} items > maxItems {max}"),
                );
            }
        }
        if node.unique_items && !all_unique(items) {
            self.emit(
                path,
                ValidationErrorKind::UniqueItems,
                "array items are not unique".to_string(),
            );
        }
        match &node.items {
            Some(Items::All(schema)) => {
                for (i, item) in items.iter().enumerate() {
                    let item_path = path.push_index(i);
                    self.check(schema, item, &item_path);
                }
            }
            Some(Items::Tuple(schemas)) => {
                for (i, item) in items.iter().enumerate() {
                    let item_path = path.push_index(i);
                    match schemas.get(i) {
                        Some(schema) => self.check(schema, item, &item_path),
                        None => {
                            if let Some(extra) = &node.additional_items {
                                let before = self.errors.len();
                                self.check(extra, item, &item_path);
                                if self.errors.len() > before {
                                    self.emit(
                                        path,
                                        ValidationErrorKind::AdditionalItems,
                                        format!("item {i} violates additionalItems"),
                                    );
                                }
                            }
                        }
                    }
                }
            }
            None => {}
        }
        if let Some(contains) = &node.contains {
            let hit = items
                .iter()
                .enumerate()
                .any(|(i, item)| self.probe(contains, item, &path.push_index(i)));
            if !hit {
                self.emit(
                    path,
                    ValidationErrorKind::Contains,
                    "no element matches 'contains'".to_string(),
                );
            }
        }
    }

    fn check_object(&mut self, node: &SchemaNode, value: &Value, path: &Pointer) {
        let obj = value.as_object().expect("checked by caller");
        let len = obj.len() as u64;
        if let Some(min) = node.min_properties {
            if len < min {
                self.emit(
                    path,
                    ValidationErrorKind::MinProperties,
                    format!("{len} properties < minProperties {min}"),
                );
            }
        }
        if let Some(max) = node.max_properties {
            if len > max {
                self.emit(
                    path,
                    ValidationErrorKind::MaxProperties,
                    format!("{len} properties > maxProperties {max}"),
                );
            }
        }
        for required in &node.required {
            if !obj.contains_key(required) {
                self.emit(
                    path,
                    ValidationErrorKind::Required {
                        missing: required.clone(),
                    },
                    format!("missing required property '{required}'"),
                );
            }
        }
        for (key, member) in obj.iter() {
            let member_path = path.push_key(key);
            let mut matched = false;
            if let Some((_, schema)) = node.properties.iter().find(|(name, _)| name == key) {
                matched = true;
                self.check(schema, member, &member_path);
            }
            for (pattern, schema) in &node.pattern_properties {
                if pattern.regex.is_match(key) {
                    matched = true;
                    self.check(schema, member, &member_path);
                }
            }
            if !matched {
                if let Some(additional) = &node.additional_properties {
                    let before = self.errors.len();
                    self.check(additional, member, &member_path);
                    if self.errors.len() > before {
                        // Make the offending key visible at the object level
                        // too (matches the error shape real validators emit).
                        self.emit(
                            path,
                            ValidationErrorKind::AdditionalProperties {
                                key: key.to_string(),
                            },
                            format!("property '{key}' violates additionalProperties"),
                        );
                    }
                }
            }
            if let Some(name_schema) = &node.property_names {
                if !self.probe(name_schema, &Value::Str(key.to_string()), &member_path) {
                    self.emit(
                        path,
                        ValidationErrorKind::PropertyNames {
                            key: key.to_string(),
                        },
                        format!("property name '{key}' violates propertyNames"),
                    );
                }
            }
        }
        for (trigger, dep) in &node.dependencies {
            if !obj.contains_key(trigger) {
                continue;
            }
            match dep {
                Dependency::Keys(keys) => {
                    for needed in keys {
                        if !obj.contains_key(needed) {
                            self.emit(
                                path,
                                ValidationErrorKind::Dependencies {
                                    key: trigger.clone(),
                                },
                                format!("'{trigger}' requires '{needed}' to be present"),
                            );
                        }
                    }
                }
                Dependency::Schema(schema) => {
                    if !self.probe(schema, value, path) {
                        self.emit(
                            path,
                            ValidationErrorKind::Dependencies {
                                key: trigger.clone(),
                            },
                            format!("object violates the schema dependency of '{trigger}'"),
                        );
                    }
                }
            }
        }
    }
}

/// Convenience: compile + validate in one call (for one-shot use; prefer
/// [`CompiledSchema`] when validating many instances).
pub fn validate_document(
    schema_doc: &Value,
    instance: &Value,
) -> Result<Result<(), Vec<ValidationError>>, crate::SchemaError> {
    let compiled = CompiledSchema::compile(schema_doc)?;
    Ok(compiled.validate(instance))
}

// Integration-grade tests for the validator live in `tests/validator.rs`;
// the unit tests here pin the subtle corners.
#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    fn compile(doc: Value) -> CompiledSchema {
        CompiledSchema::compile(&doc).unwrap()
    }

    #[test]
    fn integer_number_subsumption() {
        let s = compile(json!({"type": "number"}));
        assert!(s.is_valid(&json!(3)));
        assert!(s.is_valid(&json!(3.5)));
        let s = compile(json!({"type": "integer"}));
        assert!(s.is_valid(&json!(3)));
        assert!(s.is_valid(&json!(3.0))); // integral float is an integer
        assert!(!s.is_valid(&json!(3.5)));
    }

    #[test]
    fn negation_types() {
        let s = compile(json!({"not": {"type": "string"}}));
        assert!(s.is_valid(&json!(1)));
        assert!(!s.is_valid(&json!("s")));
        // Double negation.
        let s = compile(json!({"not": {"not": {"type": "string"}}}));
        assert!(s.is_valid(&json!("s")));
        assert!(!s.is_valid(&json!(1)));
    }

    #[test]
    fn one_of_counts_matches() {
        let s = compile(json!({"oneOf": [
            {"type": "integer"},
            {"minimum": 5}
        ]}));
        assert!(s.is_valid(&json!(3))); // integer only
        assert!(s.is_valid(&json!(5.5))); // minimum only
        assert!(!s.is_valid(&json!(7))); // both → fails
        let err = s.validate(&json!(7)).unwrap_err();
        assert!(matches!(
            err[0].kind,
            ValidationErrorKind::OneOf { matched: 2 }
        ));
    }

    #[test]
    fn ref_cycle_detected() {
        let s = compile(json!({"$ref": "#"}));
        let err = s.validate(&json!(1)).unwrap_err();
        assert!(matches!(err[0].kind, ValidationErrorKind::RefCycle { .. }));
    }

    #[test]
    fn guarded_recursion_works() {
        // A recursive tree schema: recursion consumes input, so no cycle.
        let s = compile(json!({
            "definitions": {
                "tree": {
                    "type": "object",
                    "properties": {
                        "value": {"type": "integer"},
                        "children": {"type": "array", "items": {"$ref": "#/definitions/tree"}}
                    },
                    "required": ["value"]
                }
            },
            "$ref": "#/definitions/tree"
        }));
        let ok = json!({"value": 1, "children": [
            {"value": 2, "children": []},
            {"value": 3, "children": [{"value": 4, "children": []}]}
        ]});
        assert!(s.is_valid(&ok));
        let bad = json!({"value": 1, "children": [{"children": []}]});
        let errs = s.validate(&bad).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.instance_path.to_string() == "/children/0"));
    }

    #[test]
    fn error_paths_point_into_instance() {
        let s = compile(json!({
            "type": "object",
            "properties": {"xs": {"type": "array", "items": {"type": "integer"}}}
        }));
        let errs = s.validate(&json!({"xs": [1, "two", 3]})).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].instance_path.to_string(), "/xs/1");
    }

    #[test]
    fn formats_are_annotations_unless_enforced() {
        let s = compile(json!({"format": "date"}));
        assert!(s.is_valid(&json!("not a date")));
        let opts = ValidatorOptions {
            enforce_formats: true,
        };
        assert!(s.validate_with(&json!("not a date"), opts).is_err());
        assert!(s.validate_with(&json!("2019-03-26"), opts).is_ok());
    }

    #[test]
    fn multiple_errors_collected() {
        let s = compile(json!({
            "type": "object",
            "properties": {"a": {"type": "integer"}, "b": {"type": "string"}},
            "required": ["a", "b", "c"]
        }));
        let errs = s.validate(&json!({"a": "x", "b": 1})).unwrap_err();
        assert_eq!(errs.len(), 3); // a wrong, b wrong, c missing
    }

    #[test]
    fn validate_document_convenience() {
        let ok = validate_document(&json!({"type": "null"}), &json!(null)).unwrap();
        assert!(ok.is_ok());
        assert!(validate_document(&json!(3), &json!(null)).is_err());
    }
}
