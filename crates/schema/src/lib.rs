//! # jsonx-schema
//!
//! An implementation of the JSON Schema core the tutorial's §2 surveys,
//! following the formal semantics of Pezoa et al. (*Foundations of JSON
//! Schema*, WWW 2016): the draft-04/06 validation vocabulary including the
//! boolean combinators (`allOf`, `anyOf`, `oneOf`, and **negation** via
//! `not`), intra-document `$ref` with cycle detection, `definitions`,
//! per-kind keyword sets, and `uniqueItems`/`enum`/`const` under canonical
//! value equality.
//!
//! ```
//! use jsonx_data::json;
//! use jsonx_schema::CompiledSchema;
//!
//! let schema = CompiledSchema::compile(&json!({
//!     "type": "object",
//!     "properties": {
//!         "name": { "type": "string", "minLength": 1 },
//!         "age":  { "type": "integer", "minimum": 0 }
//!     },
//!     "required": ["name"]
//! })).unwrap();
//!
//! assert!(schema.is_valid(&json!({ "name": "ada", "age": 36 })));
//! assert!(!schema.is_valid(&json!({ "age": -1 })));
//! ```
//!
//! Design notes:
//! * Schemas compile once ([`CompiledSchema::compile`]) into an AST with
//!   pre-compiled `pattern` regexes, then lower into a flat validation IR
//!   ([`ir`]) with `$ref` targets pre-resolved to arena indices, sorted
//!   `properties` tables, kind bitmasks, and deduplicated pattern slots.
//! * Two validation paths share one verdict: the fail-fast boolean path
//!   ([`CompiledSchema::is_valid`] / [`FastValidator`]) short-circuits
//!   over the IR and allocates nothing; the error-collecting path
//!   ([`CompiledSchema::validate`]) walks the AST and reports every
//!   violation with instance paths. Unguarded reference cycles (schemas
//!   that recurse without consuming input) are detected by both and
//!   reported as [`ValidationErrorKind::RefCycle`].
//! * `format` is an annotation by default (per spec); [`ValidatorOptions`]
//!   can opt in to enforcing the formats this crate knows.

pub mod ast;
pub mod errors;
pub mod formats;
pub mod ir;
pub mod parse;
pub mod sample;
pub mod validate;

pub use ast::{Dependency, Items, Schema, SchemaNode};
pub use errors::{SchemaError, ValidationError, ValidationErrorKind};
pub use ir::FastValidator;
pub use parse::CompiledSchema;
pub use validate::ValidatorOptions;
