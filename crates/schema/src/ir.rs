//! The flat validation IR and its fail-fast evaluator.
//!
//! [`CompiledSchema::compile`](crate::CompiledSchema::compile) lowers the
//! boxed [`Schema`] AST into an arena of [`IrNode`]s where every subschema
//! edge — combinator branches, `items`, `properties` values, and crucially
//! `$ref` targets — is a plain `u32` index. Resolving a reference at
//! validation time is therefore an array index instead of a pointer walk
//! over the source document plus a compile; `properties` tables are sorted
//! for binary search; `type` lists become a kind bitmask; and `pattern`
//! regexes live in deduplicated slots, each analysed once into a
//! specialised [`MatchPlan`](jsonx_regex::MatchPlan) (anchored literal,
//! fixed class sequence, class repetition) with the Pike VM — driven by
//! one reusable [`Matcher`](jsonx_regex::Matcher) — as fallback.
//!
//! [`FastValidator`] walks that arena and answers *boolean* conformance
//! only: it short-circuits on the first violation, builds no instance
//! paths and renders no messages, and in steady state (validator reused
//! across documents) performs no allocation. Diagnostics stay on the
//! tree-walking error-collecting path in [`crate::validate`]; the two
//! paths agree verdict-for-verdict (property-tested in
//! `tests/prop_ir_agreement.rs`), which is the fail-fast contract: use
//! `is_valid` to filter at full speed, re-run `validate` on the rare
//! rejects when you need to know *why*.

use crate::ast::{CompiledPattern, Dependency, Items, Schema, SchemaNode};
use crate::errors::SchemaError;
use crate::formats::check_format;
use crate::parse::{resolve_and_compile, CompiledSchema};
use crate::validate::ValidatorOptions;
use jsonx_data::{all_unique, Kind, Number, Value};
use jsonx_regex::{MatchPlan, Matcher, Regex};
use std::collections::HashMap;

/// Arena index of the shared `Any` node.
const ANY: u32 = 0;
/// Arena index of the shared `Never` node.
const NEVER: u32 = 1;

/// The lowered schema document: every node of the (ref-expanded) schema
/// graph, flat.
#[derive(Debug)]
pub(crate) struct Ir {
    nodes: Vec<IrNode>,
    patterns: Vec<IrPattern>,
    root: u32,
}

/// One deduplicated pattern slot: the compiled automaton plus the
/// specialised plan chosen for it at build time.
#[derive(Debug)]
struct IrPattern {
    regex: Regex,
    plan: MatchPlan,
}

impl IrPattern {
    /// Unanchored search via the plan, falling back to the Pike VM.
    #[inline]
    fn is_match(&self, matcher: &mut Matcher, text: &str) -> bool {
        match self.plan.eval(text) {
            Some(hit) => hit,
            None => self.regex.is_match_with(matcher, text),
        }
    }
}

/// One arena node.
#[derive(Debug)]
enum IrNode {
    /// Accepts everything (`true`, `{}`).
    Any,
    /// Rejects everything (`false`).
    Never,
    /// A `$ref` site with its target pre-resolved to an arena index.
    Ref { target: u32 },
    /// A `$ref` whose target is missing or not a schema; always rejects
    /// (the error-collecting path reports the details).
    BadRef,
    /// A constraining keyword node.
    Node(Box<IrSchemaNode>),
}

/// [`SchemaNode`] with every subschema edge flattened to an arena index.
#[derive(Debug, Default)]
struct IrSchemaNode {
    /// `type` as a bitmask over [`Kind`]s, subsumption pre-applied.
    types: Option<u8>,
    enumeration: Option<Vec<Value>>,
    const_value: Option<Value>,

    all_of: Vec<u32>,
    any_of: Vec<u32>,
    one_of: Vec<u32>,
    not: Option<u32>,
    if_schema: Option<u32>,
    then_schema: Option<u32>,
    else_schema: Option<u32>,

    min_length: Option<u64>,
    max_length: Option<u64>,
    /// Index into the shared pattern slot table.
    pattern: Option<u32>,
    format: Option<String>,

    minimum: Option<Number>,
    maximum: Option<Number>,
    exclusive_minimum: Option<Number>,
    exclusive_maximum: Option<Number>,
    multiple_of: Option<Number>,

    items: Option<IrItems>,
    additional_items: Option<u32>,
    min_items: Option<u64>,
    max_items: Option<u64>,
    unique_items: bool,
    contains: Option<u32>,

    /// Sorted by name for binary search.
    properties: Vec<(String, u32)>,
    /// (pattern slot, schema index) pairs.
    pattern_properties: Vec<(u32, u32)>,
    additional_properties: Option<u32>,
    required: Vec<String>,
    min_properties: Option<u64>,
    max_properties: Option<u64>,
    property_names: Option<u32>,
    dependencies: Vec<(String, IrDependency)>,
}

#[derive(Debug)]
enum IrItems {
    All(u32),
    Tuple(Vec<u32>),
}

#[derive(Debug)]
enum IrDependency {
    Keys(Vec<String>),
    Schema(u32),
}

/// The bit of one kind in a `type` mask.
fn kind_bit(kind: Kind) -> u8 {
    match kind {
        Kind::Null => 1 << 0,
        Kind::Boolean => 1 << 1,
        Kind::Integer => 1 << 2,
        Kind::Number => 1 << 3,
        Kind::String => 1 << 4,
        Kind::Array => 1 << 5,
        Kind::Object => 1 << 6,
    }
}

/// The set of kinds `declared` accepts, as a mask (`number ⊇ integer`).
fn subsumed_bits(declared: Kind) -> u8 {
    match declared {
        Kind::Number => kind_bit(Kind::Number) | kind_bit(Kind::Integer),
        other => kind_bit(other),
    }
}

impl Ir {
    /// Follows `Ref` chains from `idx` to a non-reference node, with a
    /// hop cap so reference cycles terminate (the node returned is then
    /// still a `Ref`, which callers treat conservatively).
    fn deref(&self, mut idx: u32) -> &IrNode {
        let mut hops = 0usize;
        loop {
            match &self.nodes[idx as usize] {
                IrNode::Ref { target } if hops <= self.nodes.len() => {
                    idx = *target;
                    hops += 1;
                }
                node => return node,
            }
        }
    }

    /// The root-level field names the fail-fast validator's verdict can
    /// depend on — the projection-pushdown source for the streaming fast
    /// path.
    ///
    /// Returns `Some(names)` only when validating an **object** document
    /// provably reads nothing but the named fields: the root (after
    /// `$ref`s) is `Any`/`Never`, or a keyword node with no enum/const,
    /// no combinators or conditional schemas, no pattern/name/count/
    /// dependency constraints over properties, and whose
    /// `additionalProperties` is absent or accepts everything. The names
    /// are the declared `properties` plus `required` (membership in
    /// `required` must remain observable). `None` means the fast path
    /// must hand whole records to the full parser + validator.
    pub(crate) fn root_projection(&self) -> Option<Vec<String>> {
        match self.deref(self.root) {
            // The verdict ignores document content entirely; every field
            // can be skipped.
            IrNode::Any | IrNode::Never => Some(Vec::new()),
            IrNode::Ref { .. } | IrNode::BadRef => None,
            IrNode::Node(n) => {
                let clean = n.enumeration.is_none()
                    && n.const_value.is_none()
                    && n.all_of.is_empty()
                    && n.any_of.is_empty()
                    && n.one_of.is_empty()
                    && n.not.is_none()
                    && n.if_schema.is_none()
                    && n.then_schema.is_none()
                    && n.else_schema.is_none()
                    && n.pattern_properties.is_empty()
                    && n.property_names.is_none()
                    && n.dependencies.is_empty()
                    && n.min_properties.is_none()
                    && n.max_properties.is_none();
                if !clean {
                    return None;
                }
                if let Some(extra) = n.additional_properties {
                    if !matches!(self.deref(extra), IrNode::Any) {
                        return None;
                    }
                }
                let mut names: Vec<String> =
                    n.properties.iter().map(|(name, _)| name.clone()).collect();
                names.extend(n.required.iter().cloned());
                names.sort();
                names.dedup();
                Some(names)
            }
        }
    }
}

/// Lowers a compiled AST into the IR, resolving every reachable `$ref`
/// against `source` exactly once. Returns the arena plus the table of
/// resolved (or failed) reference targets, which
/// [`CompiledSchema::resolve_ref`] serves lookups from.
pub(crate) fn build(
    root: &Schema,
    source: &Value,
) -> (Ir, HashMap<String, Result<Schema, SchemaError>>) {
    let mut b = Builder {
        source,
        nodes: vec![IrNode::Any, IrNode::Never],
        patterns: Vec::new(),
        pattern_slots: HashMap::new(),
        ref_slots: HashMap::new(),
        ref_table: HashMap::new(),
    };
    let root_idx = b.lower(root);
    (
        Ir {
            nodes: b.nodes,
            patterns: b.patterns,
            root: root_idx,
        },
        b.ref_table,
    )
}

struct Builder<'a> {
    source: &'a Value,
    nodes: Vec<IrNode>,
    patterns: Vec<IrPattern>,
    /// Pattern source → slot, so identical patterns share one automaton.
    pattern_slots: HashMap<String, u32>,
    /// Reference text → arena slot of the compiled target body (or `Err`
    /// for unresolvable references).
    ref_slots: HashMap<String, Result<u32, ()>>,
    ref_table: HashMap<String, Result<Schema, SchemaError>>,
}

impl<'a> Builder<'a> {
    fn push(&mut self, node: IrNode) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(node);
        idx
    }

    fn lower(&mut self, schema: &Schema) -> u32 {
        match schema {
            Schema::Any => ANY,
            Schema::Never => NEVER,
            Schema::Node(_) => {
                let node = self.lower_value(schema);
                self.push(node)
            }
        }
    }

    fn lower_value(&mut self, schema: &Schema) -> IrNode {
        match schema {
            Schema::Any => IrNode::Any,
            Schema::Never => IrNode::Never,
            Schema::Node(node) => {
                // `$ref` siblings are ignored (draft-04/06), mirroring the
                // interpreter.
                if let Some(reference) = &node.reference {
                    match self.ref_target(reference) {
                        Ok(target) => IrNode::Ref { target },
                        Err(()) => IrNode::BadRef,
                    }
                } else {
                    IrNode::Node(Box::new(self.lower_fields(node)))
                }
            }
        }
    }

    /// The arena slot of `reference`'s compiled body, compiling it on
    /// first sight. A placeholder reserved *before* the recursive lowering
    /// lets cyclic references close over their own slot.
    fn ref_target(&mut self, reference: &str) -> Result<u32, ()> {
        if let Some(slot) = self.ref_slots.get(reference) {
            return *slot;
        }
        match resolve_and_compile(self.source, reference) {
            Ok(ast) => {
                let slot = self.nodes.len() as u32;
                self.nodes.push(IrNode::Any); // placeholder
                self.ref_slots.insert(reference.to_string(), Ok(slot));
                self.ref_table
                    .insert(reference.to_string(), Ok(ast.clone()));
                let lowered = self.lower_value(&ast);
                self.nodes[slot as usize] = lowered;
                Ok(slot)
            }
            Err(e) => {
                self.ref_slots.insert(reference.to_string(), Err(()));
                self.ref_table.insert(reference.to_string(), Err(e));
                Err(())
            }
        }
    }

    fn pattern_slot(&mut self, pattern: &CompiledPattern) -> u32 {
        if let Some(&slot) = self.pattern_slots.get(&pattern.source) {
            return slot;
        }
        let slot = self.patterns.len() as u32;
        self.patterns.push(IrPattern {
            plan: pattern.regex.plan(),
            regex: pattern.regex.clone(),
        });
        self.pattern_slots.insert(pattern.source.clone(), slot);
        slot
    }

    fn lower_opt(&mut self, schema: &Option<Schema>) -> Option<u32> {
        schema.as_ref().map(|s| self.lower(s))
    }

    fn lower_all(&mut self, schemas: &[Schema]) -> Vec<u32> {
        schemas.iter().map(|s| self.lower(s)).collect()
    }

    fn lower_fields(&mut self, node: &SchemaNode) -> IrSchemaNode {
        let mut properties: Vec<(String, u32)> = node
            .properties
            .iter()
            .map(|(name, s)| (name.clone(), self.lower(s)))
            .collect();
        properties.sort_by(|(a, _), (b, _)| a.cmp(b));
        IrSchemaNode {
            types: node
                .types
                .as_ref()
                .map(|ts| ts.iter().fold(0u8, |m, t| m | subsumed_bits(*t))),
            enumeration: node.enumeration.clone(),
            const_value: node.const_value.clone(),
            all_of: self.lower_all(&node.all_of),
            any_of: self.lower_all(&node.any_of),
            one_of: self.lower_all(&node.one_of),
            not: self.lower_opt(&node.not),
            if_schema: self.lower_opt(&node.if_schema),
            then_schema: self.lower_opt(&node.then_schema),
            else_schema: self.lower_opt(&node.else_schema),
            min_length: node.min_length,
            max_length: node.max_length,
            pattern: node.pattern.as_ref().map(|p| self.pattern_slot(p)),
            format: node.format.clone(),
            minimum: node.minimum,
            maximum: node.maximum,
            exclusive_minimum: node.exclusive_minimum,
            exclusive_maximum: node.exclusive_maximum,
            multiple_of: node.multiple_of,
            items: node.items.as_ref().map(|items| match items {
                Items::All(s) => IrItems::All(self.lower(s)),
                Items::Tuple(ss) => IrItems::Tuple(self.lower_all(ss)),
            }),
            additional_items: self.lower_opt(&node.additional_items),
            min_items: node.min_items,
            max_items: node.max_items,
            unique_items: node.unique_items,
            contains: self.lower_opt(&node.contains),
            properties,
            pattern_properties: node
                .pattern_properties
                .iter()
                .map(|(p, s)| (self.pattern_slot(p), self.lower(s)))
                .collect(),
            additional_properties: self.lower_opt(&node.additional_properties),
            required: node.required.clone(),
            min_properties: node.min_properties,
            max_properties: node.max_properties,
            property_names: self.lower_opt(&node.property_names),
            dependencies: node
                .dependencies
                .iter()
                .map(|(name, dep)| {
                    let dep = match dep {
                        Dependency::Keys(keys) => IrDependency::Keys(keys.clone()),
                        Dependency::Schema(s) => IrDependency::Schema(self.lower(s)),
                    };
                    (name.clone(), dep)
                })
                .collect(),
        }
    }
}

/// The reusable fail-fast validator.
///
/// Holds the mutable scratch the arena walk needs — the `$ref` expansion
/// stack, one regex [`Matcher`], and a string buffer for `propertyNames`
/// probes — so validating many documents through one `FastValidator`
/// allocates nothing in steady state. Create one per worker thread; it is
/// deliberately `!Sync` (cheap to construct, not to share).
pub struct FastValidator<'s> {
    ir: &'s Ir,
    options: ValidatorOptions,
    /// Active `$ref` expansions as (target slot, instance location). The
    /// instance location is identified by address: within one document
    /// walk, revisiting the same slot at the same address means the
    /// reference recursed without consuming input — exactly the
    /// (reference, instance path) cycle the interpreter detects.
    ref_stack: Vec<(u32, *const Value)>,
    matcher: Matcher,
    /// Reused `Value::Str` for `propertyNames` probes.
    key_scratch: Value,
}

impl CompiledSchema {
    /// A fail-fast validator over this schema (default options).
    pub fn fast_validator(&self) -> FastValidator<'_> {
        self.fast_validator_with(ValidatorOptions::default())
    }

    /// A fail-fast validator with explicit options.
    pub fn fast_validator_with(&self, options: ValidatorOptions) -> FastValidator<'_> {
        FastValidator {
            ir: self.ir(),
            options,
            ref_stack: Vec::new(),
            matcher: Matcher::new(),
            key_scratch: Value::Str(String::new()),
        }
    }
}

impl<'s> FastValidator<'s> {
    /// True when `value` conforms. Verdict-identical to running the
    /// error-collecting `validate` and checking for emptiness, but
    /// short-circuiting and allocation-free.
    pub fn is_valid(&mut self, value: &Value) -> bool {
        self.ref_stack.clear();
        let root = self.ir.root;
        self.probe(root, value)
    }

    fn probe(&mut self, idx: u32, value: &Value) -> bool {
        let ir = self.ir;
        match &ir.nodes[idx as usize] {
            IrNode::Any => true,
            IrNode::Never => false,
            IrNode::BadRef => false,
            IrNode::Ref { target } => {
                let key = (*target, value as *const Value);
                if self.ref_stack.contains(&key) {
                    // Unguarded recursion — the interpreter reports
                    // RefCycle, i.e. invalid.
                    return false;
                }
                self.ref_stack.push(key);
                let ok = self.probe(*target, value);
                self.ref_stack.pop();
                ok
            }
            IrNode::Node(node) => self.probe_node(node, value),
        }
    }

    fn probe_node(&mut self, node: &'s IrSchemaNode, value: &Value) -> bool {
        if let Some(mask) = node.types {
            if mask & kind_bit(value.kind()) == 0 {
                return false;
            }
        }
        if let Some(options) = &node.enumeration {
            if !options.iter().any(|o| o == value) {
                return false;
            }
        }
        if let Some(expected) = &node.const_value {
            if expected != value {
                return false;
            }
        }
        if !self.probe_combinators(node, value) {
            return false;
        }
        match value {
            Value::Str(s) => self.probe_string(node, s),
            Value::Num(n) => probe_number(node, *n),
            Value::Arr(items) => self.probe_array(node, items),
            Value::Obj(_) => self.probe_object(node, value),
            _ => true,
        }
    }

    fn probe_combinators(&mut self, node: &'s IrSchemaNode, value: &Value) -> bool {
        for &sub in &node.all_of {
            if !self.probe(sub, value) {
                return false;
            }
        }
        if !node.any_of.is_empty() && !node.any_of.iter().any(|&sub| self.probe(sub, value)) {
            return false;
        }
        if !node.one_of.is_empty() {
            let mut matched = 0usize;
            for &sub in &node.one_of {
                if self.probe(sub, value) {
                    matched += 1;
                    if matched > 1 {
                        return false;
                    }
                }
            }
            if matched != 1 {
                return false;
            }
        }
        if let Some(negated) = node.not {
            if self.probe(negated, value) {
                return false;
            }
        }
        if let Some(condition) = node.if_schema {
            if self.probe(condition, value) {
                if let Some(then_schema) = node.then_schema {
                    if !self.probe(then_schema, value) {
                        return false;
                    }
                }
            } else if let Some(else_schema) = node.else_schema {
                if !self.probe(else_schema, value) {
                    return false;
                }
            }
        }
        true
    }

    fn probe_string(&mut self, node: &IrSchemaNode, s: &str) -> bool {
        if node.min_length.is_some() || node.max_length.is_some() {
            let len = s.chars().count() as u64;
            if node.min_length.is_some_and(|min| len < min) {
                return false;
            }
            if node.max_length.is_some_and(|max| len > max) {
                return false;
            }
        }
        if let Some(slot) = node.pattern {
            let pattern = &self.ir.patterns[slot as usize];
            if !pattern.is_match(&mut self.matcher, s) {
                return false;
            }
        }
        if self.options.enforce_formats {
            if let Some(format) = &node.format {
                if !check_format(format, s) {
                    return false;
                }
            }
        }
        true
    }

    fn probe_array(&mut self, node: &'s IrSchemaNode, items: &[Value]) -> bool {
        let len = items.len() as u64;
        if node.min_items.is_some_and(|min| len < min) {
            return false;
        }
        if node.max_items.is_some_and(|max| len > max) {
            return false;
        }
        if node.unique_items && !all_unique(items) {
            return false;
        }
        match &node.items {
            Some(IrItems::All(schema)) => {
                for item in items {
                    if !self.probe(*schema, item) {
                        return false;
                    }
                }
            }
            Some(IrItems::Tuple(schemas)) => {
                for (i, item) in items.iter().enumerate() {
                    match schemas.get(i) {
                        Some(&schema) => {
                            if !self.probe(schema, item) {
                                return false;
                            }
                        }
                        None => {
                            if let Some(extra) = node.additional_items {
                                if !self.probe(extra, item) {
                                    return false;
                                }
                            }
                        }
                    }
                }
            }
            None => {}
        }
        if let Some(contains) = node.contains {
            if !items.iter().any(|item| self.probe(contains, item)) {
                return false;
            }
        }
        true
    }

    fn probe_object(&mut self, node: &'s IrSchemaNode, value: &Value) -> bool {
        let obj = value.as_object().expect("checked by caller");
        let len = obj.len() as u64;
        if node.min_properties.is_some_and(|min| len < min) {
            return false;
        }
        if node.max_properties.is_some_and(|max| len > max) {
            return false;
        }
        for required in &node.required {
            if !obj.contains_key(required) {
                return false;
            }
        }
        for (key, member) in obj.iter() {
            let mut matched = false;
            if let Ok(pos) = node
                .properties
                .binary_search_by(|(name, _)| name.as_str().cmp(key))
            {
                matched = true;
                if !self.probe(node.properties[pos].1, member) {
                    return false;
                }
            }
            for &(pattern, schema) in &node.pattern_properties {
                let hit = self.ir.patterns[pattern as usize].is_match(&mut self.matcher, key);
                if hit {
                    matched = true;
                    if !self.probe(schema, member) {
                        return false;
                    }
                }
            }
            if !matched {
                if let Some(additional) = node.additional_properties {
                    if !self.probe(additional, member) {
                        return false;
                    }
                }
            }
            if let Some(name_schema) = node.property_names {
                if !self.probe_key(name_schema, key) {
                    return false;
                }
            }
        }
        for (trigger, dep) in &node.dependencies {
            if !obj.contains_key(trigger) {
                continue;
            }
            match dep {
                IrDependency::Keys(keys) => {
                    if keys.iter().any(|needed| !obj.contains_key(needed)) {
                        return false;
                    }
                }
                IrDependency::Schema(schema) => {
                    if !self.probe(*schema, value) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Probes a property name as a string value, reusing one scratch
    /// buffer instead of allocating a `Value::Str` per key.
    fn probe_key(&mut self, schema: u32, key: &str) -> bool {
        let mut scratch = std::mem::take(&mut self.key_scratch);
        match &mut scratch {
            Value::Str(buf) => {
                buf.clear();
                buf.push_str(key);
            }
            _ => scratch = Value::Str(key.to_string()),
        }
        let ok = self.probe(schema, &scratch);
        self.key_scratch = scratch;
        ok
    }
}

/// Numeric keyword checks (no scratch state needed).
fn probe_number(node: &IrSchemaNode, n: Number) -> bool {
    if node.minimum.is_some_and(|min| n < min) {
        return false;
    }
    if node.maximum.is_some_and(|max| n > max) {
        return false;
    }
    if node.exclusive_minimum.is_some_and(|min| n <= min) {
        return false;
    }
    if node.exclusive_maximum.is_some_and(|max| n >= max) {
        return false;
    }
    if let Some(divisor) = node.multiple_of {
        if !n.is_multiple_of(&divisor) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonx_data::json;

    fn compile(doc: Value) -> CompiledSchema {
        CompiledSchema::compile(&doc).unwrap()
    }

    /// Both paths, asserted to agree; returns the verdict.
    fn agree(schema: &CompiledSchema, value: &Value) -> bool {
        let fast = schema.fast_validator().is_valid(value);
        let slow = schema.validate(value).is_ok();
        assert_eq!(fast, slow, "paths disagree on {value}");
        fast
    }

    #[test]
    fn refs_resolve_to_arena_indices() {
        let s = compile(json!({
            "definitions": {"pos": {"type": "integer", "minimum": 1}},
            "properties": {
                "a": {"$ref": "#/definitions/pos"},
                "b": {"$ref": "#/definitions/pos"}
            }
        }));
        // Both ref sites share one compiled target body.
        let ref_targets: Vec<u32> = s
            .ir()
            .nodes
            .iter()
            .filter_map(|n| match n {
                IrNode::Ref { target } => Some(*target),
                _ => None,
            })
            .collect();
        assert_eq!(ref_targets.len(), 2);
        assert_eq!(ref_targets[0], ref_targets[1]);
        assert!(agree(&s, &json!({"a": 1, "b": 2})));
        assert!(!agree(&s, &json!({"a": 0})));
    }

    #[test]
    fn recursive_ref_closes_over_its_own_slot() {
        let s = compile(json!({
            "definitions": {
                "tree": {
                    "type": "object",
                    "properties": {
                        "value": {"type": "integer"},
                        "children": {"type": "array", "items": {"$ref": "#/definitions/tree"}}
                    },
                    "required": ["value"]
                }
            },
            "$ref": "#/definitions/tree"
        }));
        assert!(agree(
            &s,
            &json!({"value": 1, "children": [{"value": 2, "children": []}]})
        ));
        assert!(!agree(&s, &json!({"value": 1, "children": [{}]})));
    }

    #[test]
    fn unguarded_cycle_rejects_like_interpreter() {
        let s = compile(json!({"$ref": "#"}));
        assert!(!agree(&s, &json!(1)));
        // Mutual recursion without consuming input.
        let s = compile(json!({
            "definitions": {
                "a": {"$ref": "#/definitions/b"},
                "b": {"$ref": "#/definitions/a"}
            },
            "$ref": "#/definitions/a"
        }));
        assert!(!agree(&s, &json!("x")));
    }

    #[test]
    fn bad_ref_rejects() {
        let s = compile(json!({"$ref": "#/nope"}));
        assert!(!agree(&s, &json!(null)));
        let s = compile(json!({"$ref": "http://elsewhere"}));
        assert!(!agree(&s, &json!(null)));
    }

    #[test]
    fn identical_patterns_share_a_slot() {
        let s = compile(json!({
            "properties": {
                "a": {"pattern": "^[a-z]+$"},
                "b": {"pattern": "^[a-z]+$"},
                "c": {"pattern": "^[0-9]+$"}
            }
        }));
        assert_eq!(s.ir().patterns.len(), 2);
        assert!(agree(&s, &json!({"a": "x", "b": "y", "c": "7"})));
        assert!(!agree(&s, &json!({"b": "UPPER"})));
    }

    #[test]
    fn type_mask_subsumption() {
        let s = compile(json!({"type": "number"}));
        assert!(agree(&s, &json!(3)));
        assert!(agree(&s, &json!(3.5)));
        assert!(!agree(&s, &json!("3")));
        let s = compile(json!({"type": "integer"}));
        assert!(agree(&s, &json!(3)));
        assert!(agree(&s, &json!(3.0)));
        assert!(!agree(&s, &json!(3.5)));
        let s = compile(json!({"type": ["string", "null"]}));
        assert!(agree(&s, &json!(null)));
        assert!(agree(&s, &json!("s")));
        assert!(!agree(&s, &json!(true)));
    }

    #[test]
    fn one_of_short_circuits_at_two_matches() {
        let s = compile(json!({"oneOf": [
            {"type": "integer"},
            {"minimum": 5},
            {"maximum": 100}
        ]}));
        assert!(!agree(&s, &json!(7))); // matches all three
        assert!(!agree(&s, &json!("s"))); // matches none
        assert!(agree(&s, &json!(4.5))); // maximum only
    }

    #[test]
    fn property_names_via_scratch_buffer() {
        let s = compile(json!({"propertyNames": {"pattern": "^[a-z]+$", "maxLength": 3}}));
        assert!(agree(&s, &json!({"ab": 1, "xyz": 2})));
        assert!(!agree(&s, &json!({"toolong": 1})));
        assert!(!agree(&s, &json!({"NOPE": 1})));
    }

    #[test]
    fn tuple_items_and_additional() {
        let s = compile(json!({
            "items": [{"type": "integer"}, {"type": "string"}],
            "additionalItems": {"type": "boolean"}
        }));
        assert!(agree(&s, &json!([1, "a", true, false])));
        assert!(!agree(&s, &json!([1, "a", "not-bool"])));
        // No additionalItems: extras are unconstrained.
        let s = compile(json!({"items": [{"type": "integer"}]}));
        assert!(agree(&s, &json!([1, "anything", null])));
    }

    #[test]
    fn dependencies_both_forms() {
        let s = compile(json!({
            "dependencies": {
                "a": ["b"],
                "c": {"required": ["d"]}
            }
        }));
        assert!(agree(&s, &json!({"a": 1, "b": 2})));
        assert!(!agree(&s, &json!({"a": 1})));
        assert!(!agree(&s, &json!({"c": 1})));
        assert!(agree(&s, &json!({"c": 1, "d": 2})));
        assert!(agree(&s, &json!({"x": 1})));
    }

    #[test]
    fn formats_respected_when_enforced() {
        let s = compile(json!({"format": "date"}));
        assert!(s.fast_validator().is_valid(&json!("not a date")));
        let opts = ValidatorOptions {
            enforce_formats: true,
        };
        let mut fv = s.fast_validator_with(opts);
        assert!(!fv.is_valid(&json!("not a date")));
        assert!(fv.is_valid(&json!("2019-03-26")));
        assert_eq!(
            fv.is_valid(&json!("2019-03-26")),
            s.validate_with(&json!("2019-03-26"), opts).is_ok()
        );
    }

    #[test]
    fn validator_reuse_across_documents() {
        let s = compile(json!({
            "definitions": {"leaf": {"type": "integer"}},
            "type": "object",
            "properties": {"xs": {"type": "array", "items": {"$ref": "#/definitions/leaf"}}},
            "propertyNames": {"pattern": "^[a-z]+$"}
        }));
        let mut fv = s.fast_validator();
        for i in 0..100 {
            let ok = fv.is_valid(&json!({"xs": [i, i + 1]}));
            assert!(ok);
            assert!(!fv.is_valid(&json!({"xs": ["not int"]})));
        }
    }
}
